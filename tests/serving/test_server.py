"""Daemon behavior: concurrency, shedding, deadlines, drain + resume.

The serving acceptance bar (see docs/SERVING.md): every admitted
session's checksum is bit-exact with a solo ``run_configuration`` of
the same benchmark at the same shape — concurrency, shared-fleet
placement, and drain/resume may change *timing*, never *values*.
"""

import dataclasses

import pytest

from repro.apps.registry import BENCHMARKS
from repro.errors import AdmissionRejected
from repro.evaluation.harness import run_configuration
from repro.serving.server import ServeConfig, ServeDaemon
from repro.serving.session import SessionSpec

SCALE = 0.15
STEPS = 2
MAX_ITEMS = 128


def spec(name, benchmark="jg-series-single", tenant="default", **kw):
    return SessionSpec(
        name=name,
        benchmark=benchmark,
        tenant=tenant,
        scale=SCALE,
        steps=STEPS,
        **kw,
    )


def solo_checksum(benchmark):
    return run_configuration(
        BENCHMARKS[benchmark],
        "gtx580",
        scale=SCALE,
        steps=STEPS,
        max_sim_items=MAX_ITEMS,
    ).checksum


def fleet_config(**kw):
    base = dict(
        devices=["gtx580", "hd5970"],
        max_concurrency=4,
        queue_depth=16,
        tenant_max_inflight=16,
        max_sim_items=MAX_ITEMS,
    )
    base.update(kw)
    return ServeConfig(**base)


def test_concurrent_sessions_complete_bit_exact():
    daemon = ServeDaemon(fleet_config())
    specs = [
        spec("a", "jg-series-single", "t0"),
        spec("b", "mosaic", "t1"),
        spec("c", "jg-series-single", "t0"),
        spec("d", "mosaic", "t1"),
    ]
    report = daemon.serve(specs)
    assert report["counts"] == {"completed": 4}
    want = {b: solo_checksum(b) for b in ("jg-series-single", "mosaic")}
    for s in specs:
        got = report["sessions"][s.name]
        assert got["checksum"] == want[s.benchmark], s.name
    # Both tenants settled: no leaked in-flight slots.
    for tenant in ("t0", "t1"):
        assert report["tenants"][tenant]["inflight"] == 0
        assert report["tenants"][tenant]["completed"] == 2


def test_bounded_queue_sheds_queue_full():
    daemon = ServeDaemon(fleet_config(queue_depth=1))
    # No scheduler workers: submissions purely fill the bounded queue.
    daemon.submit(spec("s0"))
    with pytest.raises(AdmissionRejected) as exc:
        daemon.submit(spec("s1"))
    assert exc.value.code == "queue_full"
    assert daemon.sessions["s1"].state == "rejected"
    # The shed released its slot: the tenant can submit elsewhere.
    assert daemon.controller.tenant("default").inflight == 1


def test_tenant_inflight_quota_enforced_at_submit():
    daemon = ServeDaemon(fleet_config(tenant_max_inflight=1))
    daemon.submit(spec("s0"))
    session, rejection = daemon.try_submit(spec("s1"))
    assert session is None
    assert rejection.code == "tenant_inflight"
    # A different tenant is unaffected.
    other, err = daemon.try_submit(spec("s2", tenant="other"))
    assert err is None and other.state == "queued"


def test_duplicate_session_name_rejected():
    daemon = ServeDaemon(fleet_config())
    daemon.submit(spec("same"))
    with pytest.raises(AdmissionRejected) as exc:
        daemon.submit(spec("same"))
    assert exc.value.code == "duplicate"


def test_session_deadline_aborts_and_journals(tmp_path):
    cfg = fleet_config(serve_dir=str(tmp_path))
    daemon = ServeDaemon(cfg)
    report = daemon.serve([spec("slow", "mosaic", deadline_ms=0.0)])
    got = report["sessions"]["slow"]
    assert got["state"] == "aborted"
    assert "deadline" in got["error"]
    # The abort was journaled at an item boundary; a resumed daemon
    # (without the deadline) finishes the session bit-exactly.
    daemon2 = ServeDaemon(dataclasses.replace(cfg, resume=True))
    report2 = daemon2.serve([spec("slow", "mosaic")])
    got2 = report2["sessions"]["slow"]
    assert got2["state"] == "completed"
    assert got2["journal"]["resumed"]
    assert got2["journal"]["prior_aborts"] >= 1
    assert got2["checksum"] == solo_checksum("mosaic")


def test_drain_then_resume_restores_every_session(tmp_path):
    cfg = fleet_config(serve_dir=str(tmp_path), max_concurrency=2)
    daemon = ServeDaemon(cfg)
    specs = [
        spec("s0", "jg-series-single"),
        spec("s1", "mosaic"),
        spec("s2", "mosaic"),
        spec("s3", "jg-series-single"),
    ]
    report = daemon.serve(specs, drain_after_ms=200)
    assert report["drained"]
    states = {n: s["state"] for n, s in report["sessions"].items()}
    assert all(v in ("completed", "drained") for v in states.values())
    # New work is refused while draining.
    _, rejection = daemon.try_submit(spec("late"))
    assert rejection is not None and rejection.code == "draining"

    daemon2 = ServeDaemon(dataclasses.replace(cfg, resume=True))
    resumed = daemon2.resume_specs()
    assert {s.name for s in resumed} == {s.name for s in specs}
    report2 = daemon2.serve(resumed)
    assert report2["counts"] == {"completed": 4}
    want = {b: solo_checksum(b) for b in ("jg-series-single", "mosaic")}
    for s in specs:
        assert report2["sessions"][s.name]["checksum"] == want[s.benchmark]


def test_single_target_daemon_needs_no_fleet():
    daemon = ServeDaemon(
        ServeConfig(
            devices=None,
            target="cpu-6",
            max_concurrency=2,
            tenant_max_inflight=8,
            max_sim_items=MAX_ITEMS,
        )
    )
    report = daemon.serve([spec("a"), spec("b")])
    assert report["counts"] == {"completed": 2}
    assert report["fleet"] == {}
