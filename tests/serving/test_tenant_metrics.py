"""Per-tenant metrics isolation (ISSUE 7 satellite).

Each session runs in its own engine with a private
``MetricsRegistry``; its final ``RunResult.metrics_delta`` is merged
exactly once into its tenant's registry and exactly once into the
daemon's global registry. The invariant under concurrency: for every
session-scoped metric, the per-tenant registries sum to the daemon's
global value *exactly* — no double counting, no lost updates.

Daemon-only namespaces (``serving.*`` from the controller,
``fleet.*`` from the shared health monitor) must never leak into a
tenant registry.
"""

import pytest

from repro.serving.server import ServeConfig, ServeDaemon
from repro.serving.session import SessionSpec

SCALE = 0.15
STEPS = 3
MAX_ITEMS = 128


def run_daemon(n_sessions=6, tenants=3, **cfg_kw):
    cfg = dict(
        devices=["gtx580", "hd5970"],
        max_concurrency=4,
        queue_depth=16,
        tenant_max_inflight=16,
        max_sim_items=MAX_ITEMS,
        fault_rate=0.08,
        fault_seed=5,
    )
    cfg.update(cfg_kw)
    daemon = ServeDaemon(ServeConfig(**cfg))
    specs = [
        SessionSpec(
            name="s{}".format(i),
            benchmark=("jg-series-single", "mosaic")[i % 2],
            tenant="t{}".format(i % tenants),
            scale=SCALE,
            steps=STEPS,
        )
        for i in range(n_sessions)
    ]
    report = daemon.serve(specs)
    assert report["counts"] == {"completed": n_sessions}
    return daemon, report


def additive_items(registry_dict):
    """The summable view of a flattened registry: counters plus
    histogram ``.count``/``.sum`` flats (min/max and gauges don't
    add)."""
    return {
        k: v
        for k, v in registry_dict.items()
        if not k.endswith(".min") and not k.endswith(".max")
    }


def test_tenant_registries_sum_to_global_exactly():
    daemon, report = run_daemon()
    tenant_dicts = [
        additive_items(t["metrics"]) for t in report["tenants"].values()
    ]
    summed = {}
    for d in tenant_dicts:
        for k, v in d.items():
            summed[k] = summed.get(k, 0) + v
    assert summed, "sessions produced no metrics?"
    global_dict = additive_items(report["metrics"])
    for name, value in summed.items():
        assert name in global_dict, "tenant metric {} missing globally".format(
            name
        )
        got = global_dict[name]
        if isinstance(value, float) or isinstance(got, float):
            # Histogram sums are floats; merge order across tenants may
            # differ from the global merge order, so allow float
            # associativity noise (counters stay integer-exact below).
            assert got == pytest.approx(value, rel=1e-9), name
        else:
            assert got == value, (
                "metric {}: tenants sum to {} but global says {}".format(
                    name, value, got
                )
            )


def test_daemon_namespaces_never_leak_into_tenants():
    daemon, report = run_daemon(n_sessions=4, tenants=2)
    for tenant, t in report["tenants"].items():
        leaked = [
            k
            for k in t["metrics"]
            if k.startswith("serving.") or k.startswith("fleet.")
        ]
        assert not leaked, "tenant {} has daemon metrics: {}".format(
            tenant, leaked
        )


def test_faults_are_attributed_to_the_tenant_that_hit_them():
    daemon, report = run_daemon(n_sessions=4, tenants=2)
    total_faults = report["metrics"].get("recovery.faults", 0)
    per_tenant = sum(
        t["metrics"].get("recovery.faults", 0)
        for t in report["tenants"].values()
    )
    assert total_faults == per_tenant
    assert total_faults > 0, "fault injection at 8% produced no faults?"


def test_guard_and_cache_counters_partition_exactly():
    daemon, report = run_daemon(n_sessions=4, tenants=2, validate_every=2)
    for name in ("guards.validations", "cache.hits", "cache.misses"):
        per_tenant = sum(
            t["metrics"].get(name, 0) for t in report["tenants"].values()
        )
        assert report["metrics"].get(name, 0) == per_tenant, name
