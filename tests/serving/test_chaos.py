"""The serving chaos acceptance test.

ISSUE 7's bar: >= 4 concurrent sessions on a 2-device fleet with one
device killed mid-serve — every admitted session finishes bit-exact
with a solo run, the daemon never crashes, and overload produces typed
``AdmissionRejected`` errors instead of queue growth.
"""

from repro.apps.registry import BENCHMARKS
from repro.evaluation.harness import run_configuration
from repro.serving.loadgen import serving_bench
from repro.serving.server import ServeConfig, ServeDaemon
from repro.serving.session import SessionSpec

SCALE = 0.15
STEPS = 3
MAX_ITEMS = 128
KNOWN_CODES = {
    "queue_full",
    "tenant_inflight",
    "tenant_budget",
    "draining",
    "duplicate",
}


def chaos_config(**kw):
    base = dict(
        devices=["gtx580", "hd5970"],
        max_concurrency=4,
        queue_depth=16,
        tenant_max_inflight=16,
        max_sim_items=MAX_ITEMS,
        fault_rate=0.05,
        fault_seed=99,
        kill_devices={"gtx580": 1},  # dies after its first launch
    )
    base.update(kw)
    return ServeConfig(**base)


def workload(n, benchmarks=("jg-series-single", "mosaic")):
    return [
        SessionSpec(
            name="s{}".format(i),
            benchmark=benchmarks[i % len(benchmarks)],
            tenant="t{}".format(i % 2),
            scale=SCALE,
            steps=STEPS,
        )
        for i in range(n)
    ]


def test_device_death_mid_serve_keeps_sessions_bit_exact():
    daemon = ServeDaemon(chaos_config())
    specs = workload(4)
    report = daemon.serve(specs)
    assert report["counts"] == {"completed": 4}
    # Ground truth: clean solo runs, single device, no faults.
    want = {
        b: run_configuration(
            BENCHMARKS[b],
            "gtx580",
            scale=SCALE,
            steps=STEPS,
            max_sim_items=MAX_ITEMS,
        ).checksum
        for b in ("jg-series-single", "mosaic")
    }
    for s in specs:
        assert report["sessions"][s.name]["checksum"] == want[s.benchmark]
    # The kill actually bit: launches failed over to the survivor.
    assert report["metrics"].get("recovery.failovers", 0) > 0


def test_overload_under_chaos_sheds_typed_not_crashes():
    daemon = ServeDaemon(chaos_config(max_concurrency=1, queue_depth=1))
    report = daemon.serve(workload(6, benchmarks=("jg-series-single",)))
    counts = report["counts"]
    assert counts.get("failed", 0) == 0
    assert set(counts) <= {"completed", "rejected"}
    assert counts.get("rejected", 0) >= 1  # the bounded queue shed
    for name, s in report["sessions"].items():
        if s["state"] == "rejected":
            assert s["error"] in KNOWN_CODES, name
    rejected_metrics = {
        k: v
        for k, v in report["metrics"].items()
        if k.startswith("serving.rejected.")
    }
    assert sum(rejected_metrics.values()) == counts.get("rejected", 0)


def test_serving_bench_clean_vs_chaos_is_bit_exact(tmp_path):
    out = tmp_path / "BENCH_serving.json"
    payload = serving_bench(
        sessions=4,
        tenants=2,
        apps=["jg-series-single", "mosaic"],
        scale=SCALE,
        steps=STEPS,
        max_sim_items=MAX_ITEMS,
        max_concurrency=3,
        kill_devices={"gtx580": 1},
        out_path=str(out),
    )
    assert payload["ok"], payload["bit_exact"]
    assert out.exists()
    for phase in ("clean", "chaos"):
        stats = payload[phase]
        assert stats["counts"] == {"completed": 4}
        assert stats["sessions_per_sec"] > 0
        assert stats["latency_ms"]["p99"] is not None
    assert payload["chaos"]["recovery"]["failovers"] > 0
