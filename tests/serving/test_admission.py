"""Admission control: quotas, typed load shedding, drain, accounting.

Pure controller tests — no benchmark runs, so every decision is
deterministic and instantaneous.
"""

import pytest

from repro.errors import AdmissionRejected
from repro.serving.admission import AdmissionController, TenantQuota


def admit_n(ctl, tenant, n, start=0):
    for i in range(start, start + n):
        ctl.admit(tenant, "s{}".format(i))


def test_admits_within_quota_and_counts():
    ctl = AdmissionController(default_quota=TenantQuota(max_inflight=2))
    admit_n(ctl, "acme", 2)
    state = ctl.tenant("acme")
    assert state.inflight == 2
    assert state.admitted == 2
    assert ctl.metrics.get("serving.sessions.admitted") == 2
    assert ctl.metrics.get("serving.sessions.submitted") == 2


def test_inflight_quota_sheds_with_typed_code():
    ctl = AdmissionController(default_quota=TenantQuota(max_inflight=1))
    ctl.admit("acme", "s0")
    with pytest.raises(AdmissionRejected) as exc:
        ctl.admit("acme", "s1")
    assert exc.value.code == "tenant_inflight"
    assert exc.value.tenant == "acme"
    assert exc.value.session == "s1"
    assert ctl.metrics.get("serving.rejected.tenant_inflight") == 1
    # Other tenants are unaffected.
    ctl.admit("globex", "s2")


def test_finish_releases_inflight_slot():
    ctl = AdmissionController(default_quota=TenantQuota(max_inflight=1))
    ctl.admit("acme", "s0")
    ctl.finish("acme", "completed", sim_ns=100.0)
    ctl.admit("acme", "s1")  # slot free again
    state = ctl.tenant("acme")
    assert state.completed == 1
    assert state.sim_ns_used == 100.0


def test_sim_budget_exhaustion_sheds():
    ctl = AdmissionController(
        default_quota=TenantQuota(max_inflight=8, sim_budget_ns=50.0)
    )
    ctl.admit("acme", "s0")
    ctl.finish("acme", "completed", sim_ns=60.0)
    assert ctl.tenant_over_budget("acme")
    with pytest.raises(AdmissionRejected) as exc:
        ctl.admit("acme", "s1")
    assert exc.value.code == "tenant_budget"


def test_queue_full_shed_releases_the_admitted_slot():
    ctl = AdmissionController(default_quota=TenantQuota(max_inflight=1))
    ctl.admit("acme", "s0")
    with pytest.raises(AdmissionRejected) as exc:
        ctl.shed("acme", "s0")
    assert exc.value.code == "queue_full"
    # The slot came back: the tenant can admit again.
    ctl.admit("acme", "s1")


def test_drain_rejects_everything_new():
    ctl = AdmissionController()
    ctl.start_drain()
    with pytest.raises(AdmissionRejected) as exc:
        ctl.admit("acme", "s0")
    assert exc.value.code == "draining"
    assert ctl.metrics.get("serving.drains") == 1
    ctl.start_drain()  # idempotent
    assert ctl.metrics.get("serving.drains") == 1


def test_per_tenant_quota_overrides():
    ctl = AdmissionController(
        default_quota=TenantQuota(max_inflight=1),
        quotas={"vip": TenantQuota(max_inflight=3)},
    )
    admit_n(ctl, "vip", 3)
    ctl.admit("free", "s9")
    with pytest.raises(AdmissionRejected):
        ctl.admit("free", "s10")  # default quota is 1 in flight


def test_metrics_delta_merges_into_tenant_registry():
    ctl = AdmissionController()
    ctl.admit("acme", "s0")
    delta = {"recovery.faults": {"kind": "counter", "inc": 3}}
    ctl.finish("acme", "completed", sim_ns=1.0, metrics_delta=delta)
    assert ctl.tenant("acme").registry.get("recovery.faults") == 3


def test_snapshot_is_jsonable_accounting():
    import json

    ctl = AdmissionController(default_quota=TenantQuota(max_inflight=2))
    ctl.admit("acme", "s0")
    snap = ctl.snapshot()
    json.dumps(snap)
    assert snap["acme"]["inflight"] == 1
    assert snap["acme"]["quota"]["max_inflight"] == 2
