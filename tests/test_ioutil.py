"""Tests for the shared crash-safe write helpers."""

import json
import os

import pytest

from repro.ioutil import atomic_write, atomic_write_json


def test_atomic_write_bytes_and_str(tmp_path):
    p = tmp_path / "out.bin"
    atomic_write(p, b"\x00\x01")
    assert p.read_bytes() == b"\x00\x01"
    atomic_write(p, "text")
    assert p.read_bytes() == b"text"


def test_atomic_write_creates_parent_dirs(tmp_path):
    p = tmp_path / "a" / "b" / "out.txt"
    atomic_write(p, "x")
    assert p.read_text() == "x"


def test_atomic_write_replaces_existing(tmp_path):
    p = tmp_path / "out.txt"
    atomic_write(p, "old")
    atomic_write(p, "new")
    assert p.read_text() == "new"


def test_atomic_write_leaves_no_temp_files(tmp_path):
    p = tmp_path / "out.txt"
    atomic_write(p, "data")
    assert os.listdir(tmp_path) == ["out.txt"]


def test_atomic_write_cleans_up_on_failure(tmp_path):
    # A write that fails mid-stream must not leave a temp file behind
    # or clobber the existing target.
    target = tmp_path / "out.txt"
    atomic_write(target, "intact")

    real_replace = os.replace

    def failing_replace(src, dst):
        raise OSError("simulated crash during rename")

    os.replace = failing_replace
    try:
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write(target, "half-written")
    finally:
        os.replace = real_replace
    assert target.read_text() == "intact"
    assert os.listdir(tmp_path) == ["out.txt"]


def test_atomic_write_json_is_byte_stable(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    atomic_write_json(a, {"x": 1, "y": [2, 3]})
    atomic_write_json(b, {"y": [2, 3], "x": 1})  # different insertion order
    assert a.read_bytes() == b.read_bytes()
    assert a.read_text().endswith("\n")
    assert json.loads(a.read_text()) == {"x": 1, "y": [2, 3]}
