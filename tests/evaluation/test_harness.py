"""Evaluation harness tests at tiny scale (shape checks, not numbers)."""

import pytest

from repro.apps.registry import BENCHMARKS
from repro.evaluation.figure7 import format_figure7, run_figure7
from repro.evaluation.figure8 import (
    best_config_ratio,
    format_figure8,
    measure_compiled_kernel,
    measure_hand_tuned,
    run_figure8,
)
from repro.evaluation.figure9 import (
    communication_fraction,
    format_figure9,
    run_figure9,
)
from repro.evaluation.harness import TARGETS, run_configuration
from repro.evaluation.tables import table1, table2, table3

SCALE = 0.15


def test_targets_cover_the_paper_platforms():
    assert set(TARGETS) == {
        "bytecode",
        "cpu-1",
        "cpu-6",
        "gtx8800",
        "gtx580",
        "hd5970",
    }


def test_run_configuration_bytecode():
    result = run_configuration(
        BENCHMARKS["nbody-single"], "bytecode", scale=SCALE, steps=1
    )
    assert result.total_ns > 0
    assert result.offloaded == []
    assert result.stages["kernel"] == 0


def test_run_configuration_gpu_offloads():
    result = run_configuration(
        BENCHMARKS["nbody-single"], "gtx580", scale=SCALE, steps=1
    )
    assert result.offloaded == ["NBody.computeForces"]
    assert result.stages["kernel"] > 0
    assert result.rejections == []


def test_figure7_speedups_positive_and_gpu_beats_baseline():
    table = run_figure7(
        scale=SCALE, steps=1, benchmarks=["nbody-single"], targets=["gtx580"]
    )
    row = table["nbody-single"]
    assert row["gtx580"] > 1.0
    assert "_baseline_ns" in row
    text = format_figure7(table)
    assert "nbody-single" in text


def test_figure8_rows_have_all_configs():
    table = run_figure8(
        scale=SCALE, gpus=["gtx580"], benchmarks=["nbody-single"]
    )
    row = table["gtx580"]["nbody-single"]
    config_names = [k for k in row if not k.startswith("_")]
    assert len(config_names) == 8
    assert best_config_ratio(row) > 0
    assert "vs hand-tuned" in format_figure8(table)


def test_figure8_kernel_measurements_check_outputs():
    bench = BENCHMARKS["nbody-single"]
    hand_ns = measure_hand_tuned(bench, "gtx580", scale=SCALE)
    from repro.compiler.options import OptimizationConfig

    lime_ns, out = measure_compiled_kernel(
        bench, "gtx580", OptimizationConfig(), scale=SCALE
    )
    assert hand_ns > 0 and lime_ns > 0
    assert out.shape[0] > 0


def test_figure9_fractions_sum_to_one():
    table = run_figure9(
        "gtx580", scale=SCALE, benchmarks=["nbody-single"], steps=1
    )
    row = table["nbody-single"]
    fractions = [v for k, v in row.items() if not k.startswith("_")]
    assert sum(fractions) == pytest.approx(1.0)
    assert 0 < communication_fraction(row) < 1
    assert "comm%" in format_figure9(table)


def test_table1_lists_the_six_contrasts():
    text = table1()
    for line in ("offload unit", "map & reduce", "=> operator"):
        assert line in text


def test_table2_matches_device_catalog():
    text = table2()
    assert "GTX 580" in text
    assert "16x48KB" in text
    assert "Core i7" in text


def test_table3_lists_all_nine_benchmarks():
    text = table3()
    for name in BENCHMARKS:
        assert name in text
