"""ASCII chart renderer tests."""

from repro.evaluation.report import (
    bar_chart,
    figure7_chart,
    figure9_chart,
    grouped_bar_chart,
    hbar,
    stacked_fraction_chart,
)


def test_hbar_scales_to_width():
    assert len(hbar(10, 10, width=20)) == 20
    assert len(hbar(5, 10, width=20)) == 10
    assert hbar(0, 10) == ""


def test_hbar_minimum_one_cell_for_nonzero():
    assert hbar(0.001, 100.0, width=10) == "#"


def test_bar_chart_alignment():
    text = bar_chart([("alpha", 10.0), ("b", 5.0)], title="T", unit="x")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("alpha |")
    assert lines[2].startswith("b     |")
    assert "10.0x" in lines[1]


def test_bar_chart_empty():
    assert "(no data)" in bar_chart([], title="T")


def test_grouped_bar_chart():
    text = grouped_bar_chart(
        [("g1", [("a", 1.0), ("bb", 2.0)]), ("g2", [("a", 0.5)])]
    )
    assert "g1" in text and "g2" in text
    assert text.count("|") == 3


def test_stacked_fractions_fill_width():
    rows = [("bench", {"kernel": 0.5, "java_marshal": 0.5})]
    stages = [("kernel", "#"), ("java_marshal", "J")]
    text = stacked_fraction_chart(rows, stages, width=10)
    line = text.splitlines()[-1]
    assert "#####JJJJJ" in line


def test_figure7_chart_from_table():
    table = {
        "nbody": {"gtx580": 50.0, "_baseline_ns": 1.0},
        "crypt": {"gtx580": 5.0, "_baseline_ns": 1.0},
    }
    text = figure7_chart(table, "gtx580")
    assert "nbody" in text and "crypt" in text
    assert "gtx580" in text


def test_figure9_chart_from_table():
    table = {
        "nbody": {
            "kernel": 0.4,
            "java_marshal": 0.3,
            "c_marshal": 0.1,
            "opencl_setup": 0.1,
            "transfer": 0.05,
            "host_compute": 0.05,
            "_total_ns": 100.0,
        }
    }
    text = figure9_chart(table, "gtx580")
    assert "legend" in text
    assert "nbody" in text
