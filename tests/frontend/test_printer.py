"""Pretty-printer tests, including parse/print round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.registry import BENCHMARKS
from repro.frontend import ast, check_program, parse_program
from repro.frontend.parser import parse_expression
from repro.frontend.printer import expr_text, print_program, type_text
from repro.frontend.types import FLOAT, value_array


def structurally_equal(a, b):
    """Compare two AST nodes ignoring locations and annotations."""
    if type(a) is not type(b):
        return False
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            structurally_equal(x, y) for x, y in zip(a, b)
        )
    if not hasattr(a, "__dict__") and not hasattr(a, "__dataclass_fields__"):
        return a == b
    if isinstance(a, (int, float, str, bool)) or a is None:
        return a == b
    fields = getattr(a, "__dataclass_fields__", None)
    if fields is None:
        return a == b
    for name in fields:
        if name in ("location", "type", "binding", "owner", "resolved", "builtin"):
            continue
        if not structurally_equal(getattr(a, name), getattr(b, name)):
            return False
    return True


def roundtrip_program(source):
    first = parse_program(source)
    text = print_program(first)
    second = parse_program(text)
    assert structurally_equal(first, second), text


def test_type_text_value_array():
    assert type_text(value_array(FLOAT, None, 4)) == "float[[][4]]"


def test_type_text_mutable_array():
    from repro.frontend.types import mutable_array

    assert type_text(mutable_array(FLOAT, None, None)) == "float[][]"


@pytest.mark.parametrize(
    "source",
    [
        "a + b * c",
        "(a + b) * c",
        "x < y ? 1 : 0 - 2",
        "(float) (x + 1)",
        "arr[i][j]",
        "Math.sqrt(x * x)",
        "M.f(a, 1.5f) @ xs",
        "+! (M.sq @ xs)",
        "Math.max ! scores",
        "task NBody.computeForces",
        "task Crypt.encrypt(key)",
        "task NBody(data, 3).gen",
        "a => b => c",
        "new float[n][4]",
        "new int[] { 1, 2, 3 }",
    ],
)
def test_expression_roundtrip(source):
    first = parse_expression(source)
    second = parse_expression(expr_text(first))
    assert structurally_equal(first, second), expr_text(first)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_benchmark_programs_roundtrip(name):
    roundtrip_program(BENCHMARKS[name].lime_source)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_printed_benchmark_still_typechecks(name):
    text = print_program(parse_program(BENCHMARKS[name].lime_source))
    check_program(parse_program(text))


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from(["x", "y", "1", "2.5", "3.5f", "true"]))
    kind = draw(st.sampled_from(["bin", "un", "tern", "cast", "index", "call"]))
    if kind == "bin":
        op = draw(st.sampled_from(["+", "-", "*", "/", "<", "==", "&&"]))
        return "({} {} {})".format(
            draw(expressions(depth=depth + 1)),
            op,
            draw(expressions(depth=depth + 1)),
        )
    if kind == "un":
        return "(-{})".format(draw(expressions(depth=depth + 1)))
    if kind == "tern":
        return "({} ? {} : {})".format(
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)),
        )
    if kind == "cast":
        return "((float) {})".format(draw(expressions(depth=depth + 1)))
    if kind == "index":
        return "xs[{}]".format(draw(expressions(depth=depth + 1)))
    return "Math.min({}, {})".format(
        draw(expressions(depth=depth + 1)), draw(expressions(depth=depth + 1))
    )


@given(expressions())
@settings(max_examples=80, deadline=None)
def test_random_expression_roundtrip(source):
    first = parse_expression(source)
    printed = expr_text(first)
    second = parse_expression(printed)
    assert structurally_equal(first, second), printed


def test_print_then_run_produces_identical_results():
    """The printed program is not just parseable — it computes the same
    thing through the whole pipeline."""
    bench = BENCHMARKS["nbody-single"]
    text = print_program(parse_program(bench.lime_source))
    reparsed = check_program(parse_program(text))
    from repro.runtime.interp import Interpreter

    original = check_program(parse_program(bench.lime_source))
    inputs = bench.make_input(scale=0.15)
    a = Interpreter(original).call_static("NBody", "computeForces", [inputs[0]])
    b = Interpreter(reparsed).call_static("NBody", "computeForces", [inputs[0]])
    assert np.array_equal(np.asarray(a), np.asarray(b))
