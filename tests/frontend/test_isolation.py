"""Isolation checker tests: every rule the compiler relies on."""

import pytest

from repro.errors import IsolationError
from repro.frontend import check_program, parse_program


def check(source):
    return check_program(parse_program(source))


def fails(source, fragment):
    with pytest.raises(IsolationError) as err:
        check(source)
    assert fragment in str(err.value)


def test_local_reading_mutable_static_rejected():
    fails(
        "class A { static int c = 0;"
        " static local int f(int x) { return x + c; } }",
        "mutable field",
    )


def test_local_reading_final_static_allowed():
    check(
        "class A { static final int C = 3;"
        " static local int f(int x) { return x + C; } }"
    )


def test_local_writing_field_rejected():
    fails(
        "class A { static int c = 0;"
        " static local void f() { c = 1; } }",
        "writes field",
    )


def test_local_calling_nonlocal_rejected():
    fails(
        "class A { static int g() { return 1; }"
        " static local int f() { return A.g(); } }",
        "non-local",
    )


def test_local_calling_local_allowed():
    check(
        "class A { static local int g() { return 1; }"
        " static local int f() { return A.g(); } }"
    )


def test_local_math_builtin_allowed():
    check("class A { static local float f(float x) { return Math.sin(x); } }")


def test_local_print_rejected():
    fails(
        "class A { static local void f(int x) { Lime.print(x); } }",
        "host-only",
    )


def test_local_iota_allowed():
    check("class A { static local int[[]] f(int n) { return Lime.iota(n); } }")


def test_local_params_must_be_values():
    fails(
        "class A { static local float f(float[] xs) { return xs[0]; } }",
        "non-value type",
    )


def test_local_return_must_be_value():
    fails(
        "class A { static local float[] f(int n) { return new float[n]; } }",
        "non-value type",
    )


def test_local_void_return_allowed():
    check("class A { static local void f(int x) { } }")


def test_local_object_allocation_rejected():
    fails(
        "class B {} class A { static local void f() { B b = new B(); } }",
        "host-only",
    )


def test_local_task_construction_rejected():
    fails(
        "class A { static void g() {}"
        " static local void f() { var t = task A.g; } }",
        "host-only",
    )


def test_local_map_with_nonlocal_function_rejected():
    fails(
        "class A { static float g(float x) { return x; }"
        " static local float[[]] f(float[[]] xs) { return A.g @ xs; } }",
        "static",  # caught by the typechecker path or isolation
    ) if False else None
    # The typechecker allows static non-local map functions on the host;
    # isolation must reject them inside a local method.
    with pytest.raises(IsolationError):
        check(
            "class A { static float g(float x) { return x; }"
            " static local float[[]] f(float[[]] xs) { return A.g @ xs; } }"
        )


def test_nonlocal_method_may_do_anything():
    check(
        "class A { static int c = 0;"
        " static int f() { c = c + 1; return c; } }"
    )


def test_mutable_arrays_inside_local_method_are_fine():
    # Locally allocated mutable state never escapes: allowed.
    check(
        "class A { static local float f(int n) {"
        " float[] t = new float[4]; t[0] = 1.0f; return t[0]; } }"
    )
