"""Source-file utility tests (locations, snippets)."""

import pytest

from repro.frontend.source import Location, SourceFile, Span


def test_location_rendering():
    loc = Location("f.lime", 3, 7)
    assert str(loc) == "f.lime:3:7"


def test_span_renders_start():
    a = Location("f", 1, 1)
    b = Location("f", 2, 5)
    assert str(Span(a, b)) == "f:1:1"


def test_offset_to_location():
    src = SourceFile("ab\ncd\n\nef")
    assert src.location(0) == Location("<lime>", 1, 1)
    assert src.location(1) == Location("<lime>", 1, 2)
    assert src.location(3) == Location("<lime>", 2, 1)
    assert src.location(6) == Location("<lime>", 3, 1)
    assert src.location(7) == Location("<lime>", 4, 1)


def test_location_at_end_of_file():
    src = SourceFile("abc")
    assert src.location(3).column == 4


def test_offset_out_of_range():
    src = SourceFile("ab")
    with pytest.raises(ValueError):
        src.location(5)
    with pytest.raises(ValueError):
        src.location(-1)


def test_line_text():
    src = SourceFile("first\nsecond\nthird")
    assert src.line_text(1) == "first"
    assert src.line_text(2) == "second"
    assert src.line_text(3) == "third"


def test_line_out_of_range():
    src = SourceFile("one")
    with pytest.raises(ValueError):
        src.line_text(2)


def test_snippet_renders_caret():
    src = SourceFile("let x = oops;")
    snippet = src.snippet(Location("<lime>", 1, 9))
    lines = snippet.splitlines()
    assert lines[0] == "let x = oops;"
    assert lines[1].index("^") == 8


def test_error_message_carries_location():
    from repro.errors import ParseError

    err = ParseError("boom", Location("x.lime", 4, 2))
    assert "x.lime:4:2" in str(err)


def test_error_without_location():
    from repro.errors import ParseError

    assert str(ParseError("boom")) == "boom"
