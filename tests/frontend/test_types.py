"""Type-system object tests (value-ness, widening, casting)."""

from repro.frontend.types import (
    ArrayType,
    BOOLEAN,
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    assignable,
    binary_result,
    castable,
    erase_value,
    freeze,
    mutable_array,
    value_array,
    widens_to,
)


def test_primitives_are_values():
    assert INT.is_value()
    assert DOUBLE.is_value()


def test_value_array_is_value():
    t = value_array(FLOAT, None, 4)
    assert t.is_value()


def test_mutable_array_is_not_value():
    assert not mutable_array(FLOAT, None).is_value()


def test_value_array_str_matches_paper_syntax():
    assert str(value_array(FLOAT, None, 4)) == "float[[][4]]"


def test_rank_and_dims():
    t = value_array(FLOAT, None, 4)
    assert t.rank == 2
    assert t.dims() == (None, 4)
    assert t.base_elem == FLOAT


def test_widening_chain():
    assert widens_to(BYTE, INT)
    assert widens_to(INT, LONG)
    assert widens_to(INT, FLOAT)
    assert widens_to(FLOAT, DOUBLE)
    assert not widens_to(DOUBLE, FLOAT)
    assert not widens_to(BOOLEAN, INT)


def test_binary_promotion():
    assert binary_result(INT, FLOAT) == FLOAT
    assert binary_result(FLOAT, DOUBLE) == DOUBLE
    assert binary_result(BYTE, BYTE) == INT  # byte arithmetic promotes
    assert binary_result(BOOLEAN, INT) is None


def test_assignable_widening():
    assert assignable(INT, DOUBLE)
    assert not assignable(DOUBLE, INT)


def test_array_assignability_requires_matching_valueness():
    mutable = mutable_array(FLOAT, None)
    frozen = value_array(FLOAT, None)
    assert not assignable(mutable, frozen)
    assert not assignable(frozen, mutable)
    assert assignable(frozen, frozen)


def test_bounded_flows_into_unbounded():
    bounded = value_array(FLOAT, 4)
    unbounded = value_array(FLOAT, None)
    assert assignable(bounded, unbounded)
    assert not assignable(unbounded, bounded)


def test_freeze_cast_is_castable_not_assignable():
    mutable = mutable_array(FLOAT, None)
    frozen = value_array(FLOAT, None)
    assert castable(mutable, frozen)
    assert castable(frozen, mutable)


def test_cast_shape_mismatch_rejected():
    a = mutable_array(FLOAT, None)
    b = value_array(FLOAT, None, 4)  # different rank
    assert not castable(a, b)


def test_numeric_casts():
    assert castable(DOUBLE, INT)
    assert castable(INT, BYTE)
    assert not castable(BOOLEAN, INT)


def test_freeze_and_erase_are_inverses_on_valueness():
    t = mutable_array(FLOAT, None, 4)
    frozen = freeze(t)
    assert frozen.is_value()
    assert erase_value(frozen) == t
