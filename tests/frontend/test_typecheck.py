"""Typechecker tests: annotations and rejections."""

import pytest

from repro.errors import TypeError_
from repro.frontend import ast, check_program, parse_program
from repro.frontend.types import (
    ArrayType,
    BOOLEAN,
    FLOAT,
    INT,
    TaskGraphType,
    TaskType,
)


def check(source):
    return check_program(parse_program(source))


def check_fails(source, fragment=None):
    with pytest.raises(TypeError_) as err:
        check(source)
    if fragment is not None:
        assert fragment in str(err.value)
    return err.value


def test_simple_method_types():
    checked = check("class A { static int f(int x) { return x + 1; } }")
    method = checked.lookup_method("A", "f")
    ret = method.body.stmts[0]
    assert ret.value.type == INT


def test_binary_promotion_annotation():
    checked = check("class A { static float f(int x) { return x * 0.5f; } }")
    ret = checked.lookup_method("A", "f").body.stmts[0]
    assert ret.value.type == FLOAT


def test_unknown_name_rejected():
    check_fails("class A { static int f() { return nope; } }", "unknown name")


def test_condition_must_be_boolean():
    check_fails("class A { static void f(int x) { if (x) { return; } } }")


def test_return_type_mismatch():
    check_fails("class A { static int f() { return 1.5; } }")


def test_missing_return_detected():
    check_fails(
        "class A { static int f(boolean b) { if (b) { return 1; } } }",
        "may complete without returning",
    )


def test_both_branches_return_is_ok():
    check(
        "class A { static int f(boolean b) {"
        " if (b) { return 1; } else { return 2; } } }"
    )


def test_value_array_element_immutable():
    check_fails(
        "class A { static void f(float[[]] xs) { xs[0] = 1.0f; } }",
        "value array",
    )


def test_mutable_array_element_assignable():
    check("class A { static void f(float[] xs) { xs[0] = 1.0f; } }")


def test_final_field_not_assignable():
    check_fails(
        "class A { static final int N = 3; static void f() { N = 4; } }",
        "final",
    )


def test_freeze_cast_flagged():
    checked = check(
        "class A { static float[[]] f(int n) {"
        " float[] xs = new float[n]; return (float[[]]) xs; } }"
    )
    ret = checked.lookup_method("A", "f").body.stmts[1]
    assert isinstance(ret.value, ast.Cast)
    assert ret.value.freezes


def test_map_requires_value_array_source():
    check_fails(
        "class A { static local float g(float x) { return x; }"
        " static float[[]] f(float[] xs) { return A.g @ xs; } }",
        "value array",
    )


def test_map_type_propagates_bound():
    checked = check(
        "class A { static local float g(float x) { return x; }"
        " static local float[[]] f(float[[]] xs) { return A.g @ xs; } }"
    )
    ret = checked.lookup_method("A", "f").body.stmts[0]
    assert isinstance(ret.value.type, ArrayType)
    assert ret.value.type.is_value()


def test_map_function_must_be_static():
    check_fails(
        "class A { local float g(float x) { return x; }"
        " static local float[[]] f(float[[]] xs) { return A.g @ xs; } }",
        "static",
    )


def test_map_arity_checked():
    check_fails(
        "class A { static local float g(float x, float y) { return x; }"
        " static local float[[]] f(float[[]] xs) { return A.g @ xs; } }",
        "expects",
    )


def test_reduce_result_is_element_type():
    checked = check(
        "class A { static local float f(float[[]] xs) { return +! xs; } }"
    )
    ret = checked.lookup_method("A", "f").body.stmts[0]
    assert ret.value.type == FLOAT


def test_reduce_combinator_shape_enforced():
    check_fails(
        "class A { static local float g(float x) { return x; }"
        " static local float f(float[[]] xs) { return A.g ! xs; } }",
        "combinator",
    )


def test_task_types():
    checked = check(
        "class A { static local float[[]] f(float[[]] xs) { return +! xs @ xs; } }"
        .replace("+! xs @ xs", "A.id @ xs")
        + ""
    ) if False else check(
        "class A {"
        " static local float id(float x) { return x; }"
        " static local float[[]] f(float[[]] xs) { return A.id @ xs; }"
        " static void sink(float[[]] xs) { }"
        " static void main(float[[]] xs) {"
        "   var t = task A.f;"
        "   var u = t => task A.sink;"
        " } }"
    )
    main = checked.lookup_method("A", "main")
    task_decl = main.body.stmts[0]
    assert isinstance(task_decl.type, TaskType)
    assert task_decl.type.isolated
    graph_decl = main.body.stmts[1]
    assert isinstance(graph_decl.type, TaskGraphType)


def test_connect_type_mismatch():
    check_fails(
        "class A {"
        " static local float[[]] f(float[[]] xs) { return A.id @ xs; }"
        " static local float id(float x) { return x; }"
        " static void sink(int[[]] xs) { }"
        " static void main() { var g = task A.f => task A.sink; } }",
        "cannot connect",
    )


def test_finish_requires_source():
    check_fails(
        "class A {"
        " static local float id(float x) { return x; }"
        " static local float[[]] f(float[[]] xs) { return A.id @ xs; }"
        " static void main() { var t = task A.f; t.finish(); } }",
        "source",
    )


def test_partial_application_binds_leading_params():
    checked = check(
        "class A {"
        " static local float id(float x) { return x; }"
        " static local float[[]] f(int[[]] key, float[[]] xs) { return A.id @ xs; }"
        " static void main(int[[]] key) { var t = task A.f(key); } }"
    )
    main = checked.lookup_method("A", "main")
    task_type = main.body.stmts[0].type
    assert isinstance(task_type.input, ArrayType)
    assert task_type.input.base_elem == FLOAT


def test_too_many_bound_args():
    check_fails(
        "class A {"
        " static local float f(float x) { return x; }"
        " static void main() { var t = task A.f(1.0f, 2.0f); } }",
        "too many",
    )


def test_worker_with_two_free_params_rejected():
    check_fails(
        "class A {"
        " static local float f(float x, float y) { return x; }"
        " static void main() { var t = task A.f; } }",
        "at most one input",
    )


def test_duplicate_method_rejected():
    check_fails(
        "class A { static void f() {} static void f() {} }", "duplicate"
    )


def test_duplicate_class_rejected():
    check_fails("class A {} class A {}", "duplicate class")


def test_reserved_class_names():
    check_fails("class Math {}", "reserved")


def test_iota_type():
    checked = check(
        "class A { static local int[[]] f(int n) { return Lime.iota(n); } }"
    )
    ret = checked.lookup_method("A", "f").body.stmts[0]
    assert ret.value.type.is_value()
    assert ret.value.type.elem == INT


def test_array_length():
    checked = check("class A { static int f(float[[]] xs) { return xs.length; } }")
    ret = checked.lookup_method("A", "f").body.stmts[0]
    assert ret.value.type == INT


def test_var_inference():
    checked = check("class A { static float f() { var x = 1.5f; return x; } }")
    decl = checked.lookup_method("A", "f").body.stmts[0]
    assert decl.type == FLOAT


def test_compound_assignment_narrowing():
    # Java semantics: x += 0.5 narrows back to int implicitly.
    check("class A { static int f(int x) { x += 1; return x; } }")


def test_shift_requires_integral():
    check_fails("class A { static float f(float x) { return x << 1; } }")


def test_math_polymorphism():
    checked = check(
        "class A { static float f(float x) { return Math.sqrt(x); }"
        " static double g(double x) { return Math.sqrt(x); } }"
    )
    f = checked.lookup_method("A", "f")
    assert f.body.stmts[0].value.type == FLOAT
