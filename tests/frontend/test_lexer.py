"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind as T


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def test_keywords_and_identifiers():
    assert kinds("class task value local foo") == [
        T.KW_CLASS,
        T.KW_TASK,
        T.KW_VALUE,
        T.KW_LOCAL,
        T.IDENT,
    ]


def test_int_literal():
    token = tokenize("42")[0]
    assert token.kind is T.INT_LITERAL
    assert token.value == 42


def test_hex_literal():
    token = tokenize("0xFF")[0]
    assert token.value == 255


def test_long_literal():
    token = tokenize("65537L")[0]
    assert token.kind is T.LONG_LITERAL
    assert token.value == 65537


def test_float_literal_suffix():
    token = tokenize("1.5f")[0]
    assert token.kind is T.FLOAT_LITERAL
    assert token.value == 1.5


def test_double_literal():
    token = tokenize("2.25")[0]
    assert token.kind is T.DOUBLE_LITERAL
    assert token.value == 2.25


def test_scientific_notation():
    token = tokenize("1e3")[0]
    assert token.kind is T.DOUBLE_LITERAL
    assert token.value == 1000.0


def test_exponent_with_sign():
    token = tokenize("2.5e-2")[0]
    assert abs(token.value - 0.025) < 1e-12


def test_integer_then_method_call_is_not_float():
    # `x.length` style: dot after identifier, not part of a number.
    assert kinds("a.length") == [T.IDENT, T.DOT, T.IDENT]


def test_connect_operator():
    assert kinds("a => b") == [T.IDENT, T.CONNECT, T.IDENT]


def test_connect_vs_ge():
    assert kinds("a >= b") == [T.IDENT, T.GE, T.IDENT]


def test_map_and_reduce_tokens():
    assert kinds("f @ xs") == [T.IDENT, T.AT, T.IDENT]
    assert kinds("+! xs") == [T.PLUS, T.BANG, T.IDENT]


def test_shift_operators():
    assert kinds("a >> b >>> c << d") == [
        T.IDENT,
        T.SHR,
        T.IDENT,
        T.USHR,
        T.IDENT,
        T.SHL,
        T.IDENT,
    ]


def test_compound_assignment():
    assert kinds("x += 1") == [T.IDENT, T.PLUS_ASSIGN, T.INT_LITERAL]


def test_increment():
    assert kinds("i++") == [T.IDENT, T.PLUS_PLUS]


def test_line_comment_skipped():
    assert kinds("a // comment\n b") == [T.IDENT, T.IDENT]


def test_block_comment_skipped():
    assert kinds("a /* x\ny */ b") == [T.IDENT, T.IDENT]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_string_literal():
    token = tokenize('"hello\\nworld"')[0]
    assert token.kind is T.STRING_LITERAL
    assert token.value == "hello\nworld"


def test_unterminated_string():
    with pytest.raises(LexError):
        tokenize('"oops')


def test_char_literal():
    token = tokenize("'a'")[0]
    assert token.kind is T.CHAR_LITERAL
    assert token.value == ord("a")


def test_unknown_character():
    with pytest.raises(LexError):
        tokenize("#")


def test_locations_track_lines():
    tokens = tokenize("a\n  b")
    assert tokens[0].location.line == 1
    assert tokens[1].location.line == 2
    assert tokens[1].location.column == 3


def test_value_array_brackets():
    assert kinds("float[[][4]]") == [
        T.KW_FLOAT,
        T.LBRACKET,
        T.LBRACKET,
        T.RBRACKET,
        T.LBRACKET,
        T.INT_LITERAL,
        T.RBRACKET,
        T.RBRACKET,
    ]
