"""Parser error reporting: each malformed construct fails with a
located, descriptive diagnostic (never a crash or silent acceptance)."""

import pytest

from repro.errors import ParseError
from repro.frontend.parser import parse_expression, parse_program


def fails(source, fragment=None):
    with pytest.raises(ParseError) as err:
        parse_program(source)
    assert err.value.location is not None
    if fragment is not None:
        assert fragment in str(err.value)
    return err.value


def test_missing_class_name():
    fails("class { }", "class name")


def test_unterminated_class():
    fails("class A {")


def test_field_missing_semicolon():
    fails("class A { int x }")


def test_local_field_rejected():
    fails("class A { local int x; }", "local")


def test_bad_type_in_params():
    fails("class A { void f(1 x) { } }", "type")


def test_malformed_value_array():
    fails("class A { float[[]x]] f() { return f(); } }")


def test_reduce_with_arguments_rejected():
    with pytest.raises(ParseError) as err:
        parse_expression("M.f(a) ! xs")
    assert "bound arguments" in str(err.value)


def test_map_left_operand_must_be_method_ref():
    with pytest.raises(ParseError) as err:
        parse_expression("(a + b) @ xs")
    assert "method reference" in str(err.value)


def test_dimension_after_empty_dimension():
    fails("class A { void f() { int[][] m = new int[][3]; } }", "dimension")


def test_array_initializer_needs_empty_dim():
    fails(
        "class A { void f() { int[] m = new int[3] { 1, 2, 3 }; } }",
        "initializer",
    )


def test_task_requires_method():
    fails("class A { void f() { var t = task A; } }")


def test_error_location_points_at_offender():
    err = fails("class A {\n  void f() {\n    int x = ;\n  }\n}")
    assert err.location.line == 3


def test_empty_source_is_valid():
    program = parse_program("")
    assert program.classes == []


def test_stray_token_after_class():
    fails("class A { } ;")
