"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.parser import parse_expression, parse_program
from repro.frontend.types import ArrayType, FLOAT, INT


def test_empty_class():
    program = parse_program("class A { }")
    assert program.classes[0].name == "A"
    assert program.classes[0].fields == []
    assert program.classes[0].methods == []


def test_value_class_modifier():
    program = parse_program("value class V { }")
    assert program.classes[0].is_value


def test_field_declaration():
    program = parse_program("class A { static final int N = 4; }")
    field = program.classes[0].fields[0]
    assert field.is_static and field.is_final
    assert isinstance(field.init, ast.IntLit)


def test_method_modifiers():
    program = parse_program(
        "class A { static local float f(float x) { return x; } }"
    )
    method = program.classes[0].methods[0]
    assert method.is_static and method.is_local
    assert method.return_type == FLOAT
    assert method.params[0].type == FLOAT


def test_constructor():
    program = parse_program("class A { int n; A(int m) { n = m; } }")
    ctor = program.classes[0].lookup_method("<init>")
    assert ctor is not None
    assert not ctor.is_static


def test_value_array_type_shape():
    program = parse_program("class A { static float[[][4]] f() { return A.f(); } }")
    rt = program.classes[0].methods[0].return_type
    assert isinstance(rt, ArrayType)
    assert rt.value and rt.bound is None
    assert rt.elem.value and rt.elem.bound == 4
    assert rt.elem.elem == FLOAT


def test_mutable_array_type():
    program = parse_program("class A { static float[][] f() { return A.f(); } }")
    rt = program.classes[0].methods[0].return_type
    assert not rt.value and rt.bound is None
    assert isinstance(rt.elem, ArrayType) and not rt.elem.value


def test_mutable_bounded_dimension_rejected():
    with pytest.raises(ParseError):
        parse_program("class A { static float[4] f() { return A.f(); } }")


def test_precedence_mul_over_add():
    expr = parse_expression("a + b * c")
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_ternary():
    expr = parse_expression("a < b ? x : y")
    assert isinstance(expr, ast.Ternary)


def test_cast_of_primitive():
    expr = parse_expression("(float) x")
    assert isinstance(expr, ast.Cast)
    assert expr.target == FLOAT


def test_cast_of_value_array():
    expr = parse_expression("(float[[3]]) f")
    assert isinstance(expr, ast.Cast)
    assert expr.target.bound == 3 and expr.target.value


def test_parenthesized_expression_is_not_cast():
    expr = parse_expression("(a) + b")
    assert isinstance(expr, ast.Binary)


def test_map_with_partial_application():
    expr = parse_expression("NBody.forces(all) @ all")
    assert isinstance(expr, ast.MapExpr)
    assert expr.func.class_name == "NBody"
    assert len(expr.bound_args) == 1


def test_map_without_bound_args():
    expr = parse_expression("M.f @ xs")
    assert isinstance(expr, ast.MapExpr)
    assert expr.bound_args == []


def test_operator_reduce():
    expr = parse_expression("+! xs")
    assert isinstance(expr, ast.ReduceExpr)
    assert expr.op == "+"


def test_method_reduce():
    expr = parse_expression("Math.max ! xs")
    assert isinstance(expr, ast.ReduceExpr)
    assert expr.func.method_name == "max"


def test_map_then_reduce_composition():
    expr = parse_expression("+! (M.f @ xs)")
    assert isinstance(expr, ast.ReduceExpr)
    assert isinstance(expr.source, ast.MapExpr)


def test_connect_left_associative():
    expr = parse_expression("a => b => c")
    assert isinstance(expr, ast.ConnectExpr)
    assert isinstance(expr.left, ast.ConnectExpr)


def test_task_static_worker():
    expr = parse_expression("task NBody.computeForces")
    assert isinstance(expr, ast.TaskExpr)
    assert expr.is_static_worker
    assert expr.worker_args is None


def test_task_partial_application():
    expr = parse_expression("task Crypt.encrypt(key)")
    assert expr.is_static_worker
    assert len(expr.worker_args) == 1


def test_task_instance_worker():
    expr = parse_expression("task NBody(data, 3).gen")
    assert not expr.is_static_worker
    assert len(expr.ctor_args) == 2


def test_new_array():
    expr = parse_expression("new float[3]")
    assert isinstance(expr, ast.NewArray)
    assert len(expr.dims) == 1


def test_array_initializer():
    expr = parse_expression("new int[] { 1, 2, 3 }")
    assert isinstance(expr, ast.ArrayInit)
    assert len(expr.values) == 3
    assert expr.elem == INT


def test_for_statement_roundtrip():
    program = parse_program(
        "class A { static int f() { int s = 0;"
        " for (int i = 0; i < 10; i++) { s += i; } return s; } }"
    )
    body = program.classes[0].methods[0].body
    loop = body.stmts[1]
    assert isinstance(loop, ast.For)
    assert isinstance(loop.init, ast.VarDecl)
    assert isinstance(loop.update, ast.Assign)


def test_throw_underflow():
    program = parse_program(
        "class A { void f() { throw new UnderflowException(); } }"
    )
    stmt = program.classes[0].methods[0].body.stmts[0]
    assert isinstance(stmt, ast.Throw)


def test_unqualified_call():
    program = parse_program("class A { int g() { return h(); } int h() { return 1; } }")
    ret = program.classes[0].methods[0].body.stmts[0]
    assert isinstance(ret.value, ast.Call)
    assert ret.value.receiver is None


def test_missing_semicolon_reports_location():
    with pytest.raises(ParseError) as err:
        parse_program("class A { void f() { int x = 1 } }")
    assert err.value.location is not None


def test_var_inference_syntax():
    program = parse_program("class A { void f() { var g = task A.h; } static void h() {} }")
    decl = program.classes[0].methods[0].body.stmts[0]
    assert isinstance(decl, ast.VarDecl)
    assert decl.declared_type is None
