"""Documentation drift guards.

The README's CLI flag reference and the argparse definitions in
``repro.cli`` must agree: every subcommand and every long flag that
``repro <cmd> --help`` reports has to appear in README.md, and the
README must not document flags that no longer exist. DESIGN.md's
package-layout section likewise has to name every runtime-layer module.
CI runs this as the docs-consistency job.
"""

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

ROOT = Path(__file__).parent.parent
README = (ROOT / "README.md").read_text()
DESIGN = (ROOT / "DESIGN.md").read_text()


def _subcommands():
    parser = build_parser()
    (sub,) = [
        a
        for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    ]
    return sub.choices  # {name: subparser}


def _long_flags(subparser):
    flags = set()
    for action in subparser._actions:
        for opt in action.option_strings:
            if opt.startswith("--"):
                flags.add(opt)
    flags.discard("--help")
    return flags


def test_every_subcommand_documented_in_readme():
    for name in _subcommands():
        assert "`{}".format(name) in README or "repro {}".format(
            name
        ) in README, "subcommand '{}' missing from README.md".format(name)


def test_every_cli_flag_documented_in_readme():
    missing = []
    for name, subparser in _subcommands().items():
        for flag in _long_flags(subparser):
            if flag not in README:
                missing.append("{} {}".format(name, flag))
    assert not missing, (
        "flags in `repro <cmd> --help` but not README.md: "
        + ", ".join(sorted(missing))
    )


def test_readme_flag_table_has_no_stale_flags():
    """Every flag named in the README's reference table must still
    exist on the corresponding subcommand."""
    section = README.split("Full flag reference", 1)[1]
    rows, in_table = [], False
    for line in section.splitlines():
        if line.startswith("|"):
            in_table = True
            rows.append(line)
        elif in_table:
            break  # first table after the heading only
    table_rows = re.findall(
        r"^\| `([\w-]+)[^`]*` \| (.+) \|$", "\n".join(rows), re.M
    )
    assert table_rows, "README flag-reference table not found"
    commands = _subcommands()
    for name, flags_cell in table_rows:
        assert name in commands, (
            "README documents unknown subcommand '{}'".format(name)
        )
        documented = set(re.findall(r"--[\w-]+", flags_cell))
        actual = _long_flags(commands[name])
        stale = documented - actual
        assert not stale, "README documents stale flags for '{}': {}".format(
            name, sorted(stale)
        )
        assert documented == actual, (
            "README flag table incomplete for '{}': missing {}".format(
                name, sorted(actual - documented)
            )
        )


@pytest.mark.parametrize(
    "module",
    sorted(
        p.name
        for p in (ROOT / "src" / "repro" / "runtime").glob("*.py")
        if p.name != "__init__.py"
    ),
)
def test_design_names_every_runtime_module(module):
    assert module in DESIGN, (
        "runtime module {} missing from DESIGN.md package layout".format(
            module
        )
    )


def test_design_names_satellite_modules():
    for module in ("kernel_cache.py", "perfbench.py", "sanitizer.py",
                   "tracing.py", "resilience.py"):
        assert module in DESIGN


def test_observability_doc_exists_and_covers_span_taxonomy():
    doc = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
    # Span names emitted by the instrumentation.
    for span in ("item", "kernel", "java_marshal", "c_marshal",
                 "transfer", "opencl_setup", "compile", "cache_lookup",
                 "device", "sanitizer_scan", "retry_backoff",
                 "host_compute", "validate"):
        assert "`{}`".format(span) in doc, (
            "span '{}' undocumented in OBSERVABILITY.md".format(span)
        )
    # Canonical metric names.
    for metric in ("recovery.faults", "recovery.retries",
                   "recovery.demotions", "guards.validations",
                   "guards.mismatches", "executor.launches.",
                   "cache.hits", "cache.misses",
                   "transfer.bytes_to_device", "task.invoke_ns",
                   "kernel.launch_ns"):
        assert metric in doc, (
            "metric '{}' undocumented in OBSERVABILITY.md".format(metric)
        )


def test_observability_doc_covers_queue_instrumentation():
    doc = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
    assert "`queue`" in doc, "queue span undocumented"
    for metric in ("queue.submitted.", "queue.completed.",
                   "queue.busy_ns.", "queue.wait_ns."):
        assert metric in doc, (
            "metric '{}' undocumented in OBSERVABILITY.md".format(metric)
        )


def test_observability_doc_covers_fusion_instrumentation():
    doc = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
    for span in ("fusion_chain", "fusion_fused", "fusion_declined",
                 "marshal_elided", "resident_settle"):
        assert "`{}`".format(span) in doc, (
            "span '{}' undocumented in OBSERVABILITY.md".format(span)
        )
    for metric in ("fusion.chains", "fusion.fused_kernels",
                   "fusion.declined.", "fusion.elisions",
                   "fusion.rematerialized", "transfer.bytes_saved"):
        assert metric in doc, (
            "metric '{}' undocumented in OBSERVABILITY.md".format(metric)
        )


def test_fusion_doc_covers_planner_contract():
    doc = (ROOT / "docs" / "FUSION.md").read_text()
    # The flag surface and the three modes.
    for term in ("--fuse", "REPRO_FUSE", "`--fuse off`",
                 "`--fuse resident`", "`--fuse kernel`"):
        assert term in doc, "'{}' missing from docs/FUSION.md".format(term)
    # Every typed decline reason the planner can emit.
    for reason in ("scalar_boundary", "type_mismatch", "multi_consumer",
                   "no_stream_param", "consumer_reduce", "rate_mismatch",
                   "array_intermediate", "gather", "param_collision",
                   "barrier", "divergence", "rejected"):
        assert "`{}`".format(reason) in doc, (
            "decline reason '{}' missing from docs/FUSION.md".format(reason)
        )
    # The buffer lifecycle and its settlement contract.
    for term in ("plan", "acquire", "release", "settle_resident",
                 "fusion.rematerialized", "transfer.bytes_saved",
                 "ResidentMeta"):
        assert term in doc, "'{}' missing from docs/FUSION.md".format(term)
    # The harness the contract is enforced by.
    for path in ("tests/compiler/test_fusion_pass.py",
                 "tests/runtime/test_fusion_elision.py",
                 "benchmarks/perf/test_fusion_comm.py"):
        assert path in doc
        assert (ROOT / path).exists(), (
            "FUSION.md references missing file {}".format(path)
        )


def test_docs_index_lists_every_docs_file():
    index = (ROOT / "docs" / "INDEX.md").read_text()
    for doc in sorted((ROOT / "docs").glob("*.md")):
        if doc.name == "INDEX.md":
            continue
        assert "[{}]({})".format(doc.name, doc.name) in index, (
            "docs/{} is not linked from docs/INDEX.md".format(doc.name)
        )
    assert "docs/INDEX.md" in README, (
        "README.md does not link the docs/INDEX.md landing page"
    )


def test_concurrency_doc_covers_queue_model():
    doc = (ROOT / "docs" / "CONCURRENCY.md").read_text()
    # The queue model and both dispatch schedules.
    for term in ("CommandQueue", "`concurrent`", "`sequential`",
                 "makespan", "dispatch_seed", "--fleet-schedule",
                 "queue_context"):
        assert term in doc, (
            "'{}' missing from docs/CONCURRENCY.md".format(term)
        )
    # The determinism contract's three clauses.
    for term in ("schedule-INVARIANT", "schedule-DETERMINISTIC",
                 "restore"):
        assert term in doc, (
            "determinism contract clause '{}' missing from "
            "docs/CONCURRENCY.md".format(term)
        )
    # The harness the contract is enforced by.
    for path in ("tests/runtime/schedutil.py",
                 "tests/runtime/test_schedule_fuzz.py",
                 "tests/runtime/test_trace_invariants.py",
                 "benchmarks/perf/test_fleet_makespan.py"):
        assert path in doc
        assert (ROOT / path).exists(), (
            "CONCURRENCY.md references missing file {}".format(path)
        )


def test_observability_doc_covers_hedging_instrumentation():
    doc = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
    for span in ("hedge", "vote_mismatch"):
        assert "`{}`".format(span) in doc, (
            "span '{}' undocumented in OBSERVABILITY.md".format(span)
        )
    for metric in ("hedge.launched", "hedge.won", "hedge.cancelled",
                   "hedge.wasted_ns", "queue.cancelled.",
                   "vote.launched", "vote.agreed", "vote.mismatch",
                   "vote.skipped", "vote.errors"):
        assert metric in doc, (
            "metric '{}' undocumented in OBSERVABILITY.md".format(metric)
        )


def test_hedging_doc_covers_contract():
    doc = (ROOT / "docs" / "HEDGING.md").read_text()
    # The flag surface.
    for flag in ("--hedge", "--hedge-quantile", "--hedge-factor",
                 "--redundancy", "--slow-device"):
        assert flag in doc, (
            "'{}' missing from docs/HEDGING.md".format(flag)
        )
    # The budget, settlement, and conservation contract.
    for term in ("kernel.launch_ns", "hedge_min_samples", "backdated",
                 "hedge.wasted_ns", "queue.cancelled.",
                 "fusion.rematerialized", "hedge-lost", "hedge-won",
                 "hedge-cancelled", "VoteMismatchFault",
                 "vote.skipped"):
        assert term in doc, (
            "'{}' missing from docs/HEDGING.md".format(term)
        )
    # The harness the contract is enforced by.
    for path in ("tests/runtime/test_hedging.py",
                 "tests/runtime/test_fleet_queues.py",
                 "tests/runtime/test_latency_faults.py",
                 "tests/runtime/test_schedule_fuzz.py",
                 "benchmarks/perf/test_tail_tolerance.py"):
        assert path in doc
        assert (ROOT / path).exists(), (
            "HEDGING.md references missing file {}".format(path)
        )
