"""Benchmark-suite correctness: every Table 3 configuration, three ways
(host interpreter vs NumPy, compiled device kernel vs NumPy, end-to-end
host vs offloaded checksums)."""

import numpy as np
import pytest

from repro.apps.registry import BENCHMARKS, FIGURE8_BENCHMARKS, get_benchmark
from repro.compiler import Offloader
from repro.compiler.pipeline import compile_filter
from repro.evaluation.figure8 import _BOUND_PARAMS
from repro.opencl import get_device
from repro.runtime.engine import Engine

SCALE = 0.15  # keep unit tests fast; the bench harness uses 1.0

ALL = sorted(BENCHMARKS)


def compiled_filter(bench, device="gtx580", config=None):
    checked = bench.checked()
    inputs = bench.make_input(scale=SCALE)
    bound = {
        name: inputs[idx]
        for name, idx in _BOUND_PARAMS.get(bench.name, {}).items()
    }
    cf = compile_filter(
        checked,
        bench.filter_worker(),
        device=get_device(device),
        config=config,
        bound_values=bound or None,
        local_size=16,
    )
    return cf, inputs


def assert_matches(out, ref):
    out = np.asarray(out)
    ref = np.asarray(ref)
    if out.dtype.kind == "f":
        assert np.allclose(out, ref, rtol=2e-3, atol=1e-4)
    else:
        assert np.array_equal(out, ref)


@pytest.mark.parametrize("name", ALL)
def test_registry_lookup(name):
    bench = get_benchmark(name)
    assert bench.name == name
    assert bench.table3["dtype"]


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        get_benchmark("doom")


@pytest.mark.parametrize("name", ALL)
def test_lime_program_typechecks(name):
    checked = BENCHMARKS[name].checked()
    assert checked.lookup_method(
        BENCHMARKS[name].main_class, BENCHMARKS[name].filter_method
    )


@pytest.mark.parametrize("name", ALL)
def test_compiled_filter_matches_numpy(name):
    bench = BENCHMARKS[name]
    cf, inputs = compiled_filter(bench)
    out = cf(inputs[0])
    assert_matches(out, bench.reference(*inputs))


@pytest.mark.parametrize("name", ALL)
def test_end_to_end_offload_matches_host(name):
    bench = BENCHMARKS[name]
    checked = bench.checked()
    inputs = bench.make_input(scale=SCALE)
    host = Engine(checked)
    cs_host = host.run_static(bench.main_class, bench.run_method, inputs + [1])
    offloader = Offloader(device=get_device("gtx580"), local_size=16)
    gpu = Engine(checked, offloader=offloader)
    cs_gpu = gpu.run_static(bench.main_class, bench.run_method, inputs + [1])
    assert offloader.rejections == []
    assert gpu.offloaded_tasks, "filter did not offload"
    assert cs_gpu == pytest.approx(cs_host, rel=2e-3, abs=1e-4)


@pytest.mark.parametrize("name", FIGURE8_BENCHMARKS)
def test_hand_baseline_matches_numpy(name):
    bench = BENCHMARKS[name]
    inputs = bench.make_input(scale=SCALE)
    out, kernel_ns = bench.run_baseline("gtx8800", *inputs, local_size=16)
    assert kernel_ns > 0
    assert_matches(out, bench.reference(*inputs))


def test_double_variants_share_checksum_with_single():
    """The single/double N-Body variants compute the same physics."""
    single = BENCHMARKS["nbody-single"]
    double = BENCHMARKS["nbody-double"]
    cs = []
    for bench in (single, double):
        engine = Engine(bench.checked())
        inputs = bench.make_input(scale=SCALE)
        cs.append(engine.run_static(bench.main_class, bench.run_method, inputs + [1]))
    assert cs[0] == pytest.approx(cs[1], rel=1e-3)


def test_crypt_is_ideal_idea():
    """IDEA self-check: encrypting with the all-identity-ish schedule
    keeps the 16-bit words stable for mul(x, 1) and add(x, 0)."""
    import repro.apps.jg_crypt as crypt

    blocks = np.zeros((4, 8), dtype=np.int8)
    key = np.zeros(52, dtype=np.int32)
    key[0::6][:8] = 1  # x1 multipliers
    key[3::6][:8] = 1  # x4 multipliers
    key[4::6][:8] = 1
    key[5::6][:8] = 1
    key[48] = 1
    key[51] = 1
    out = crypt.reference(blocks, key)
    assert out.shape == (4, 8)


def test_mosaic_best_match_is_exact_for_library_members():
    """A tile identical to a library tile must match itself."""
    import repro.apps.mosaic as mosaic

    inputs = mosaic.make_input(scale=SCALE)
    tiles = inputs[0]
    ref = mosaic.reference(tiles)
    # Rows 0..LIB_TILES-1 are the library itself: best match is identity.
    lib = np.arange(mosaic.LIB_TILES)
    assert np.array_equal(ref[: mosaic.LIB_TILES], lib)


def test_rpes_spatial_locality_shape():
    """Neighboring pairs read overlapping table windows."""
    import repro.apps.parboil_rpes as rpes

    table = rpes.make_input(scale=SCALE)[0]
    base = (table[:, 3] * 0.25).astype(np.int64)
    assert (np.diff(base) >= 0).all()
    assert base[-1] + rpes.QUAD_ROOTS <= table.shape[0]


@pytest.mark.parametrize("name", ["parboil-mriq", "jg-series-single"])
def test_transcendental_flag(name):
    assert BENCHMARKS[name].transcendental


def test_rpes_has_deep_stream():
    assert BENCHMARKS["parboil-rpes"].steps > BENCHMARKS["nbody-single"].steps
