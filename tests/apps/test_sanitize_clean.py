"""Property-style guard check: every registered benchmark runs clean
under full sanitization.

The sanitizer must produce zero false positives on correct kernels —
no bounds/race/divergence/NaN trips on any Table 3 configuration — and
the guarded run's checksum must equal the unguarded run's (the
instrumentation only observes; it never perturbs results).
"""

import pytest

from repro.apps.registry import BENCHMARKS
from repro.evaluation.harness import run_configuration
from repro.runtime.resilience import ResiliencePolicy
from repro.runtime.sanitizer import SanitizerConfig

SCALE = 0.1
MAX_SIM_ITEMS = 128
ALL = sorted(BENCHMARKS)

FULL_GUARDS = SanitizerConfig(deadline_ns=1e12, validate_every=2)


def run(name, sanitizer=None, resilience=None):
    return run_configuration(
        BENCHMARKS[name],
        "gtx580",
        scale=SCALE,
        steps=1,
        resilience=resilience,
        max_sim_items=MAX_SIM_ITEMS,
        sanitizer=sanitizer,
    )


@pytest.mark.parametrize("name", ALL)
def test_benchmark_runs_clean_under_full_sanitize(name):
    policy = ResiliencePolicy.from_flags(
        sanitize=True, validate_every=FULL_GUARDS.validate_every
    )
    plain = run(name)
    guarded = run(name, sanitizer=FULL_GUARDS, resilience=policy)
    # No guard tripped, no validation mismatch, nothing was demoted.
    faults = guarded.faults
    assert faults.get("guards.trips", {}) == {}, faults
    assert faults.get("guards.mismatches", 0) == 0, faults
    assert faults.get("demoted_tasks", []) == [], faults
    assert faults.get("recovery.faults", 0) == 0, faults
    # Observational only: same tasks offloaded, same checksum.
    assert guarded.offloaded == plain.offloaded
    assert guarded.checksum == plain.checksum
    # Validation actually sampled at least one item per offloaded task.
    if guarded.offloaded:
        assert faults.get("guards.validations", 0) >= 1


@pytest.mark.parametrize("name", ALL[:2])
def test_sanitizer_off_run_is_byte_identical(name):
    """A run with no sanitizer takes the seed code path exactly."""
    a = run(name)
    b = run(name)
    assert a.checksum == b.checksum
    assert a.stages == b.stages
    assert a.faults == {}
