"""Idiom pattern-matcher tests (the Figure 5 recognizers)."""

from repro.frontend import check_program, parse_program
from repro.ir.patterns import analyze_worker


def worker_patterns(source, class_name, method):
    checked = check_program(parse_program(source))
    return analyze_worker(checked.lookup_method(class_name, method))


NBODY = """
class N {
    static local float[[3]] forceOne(float[[4]] p, float[[][4]] all) {
        float[] f = new float[3];
        for (int j = 0; j < all.length; j++) {
            f[0] = f[0] + all[j][0] * p[0];
        }
        return (float[[3]]) f;
    }
}
"""


def test_elem_param_is_tainted():
    patterns = worker_patterns(NBODY, "N", "forceOne")
    assert patterns.elem_param == "p"
    usage = patterns.arrays["p"]
    assert all(a.thread_variant is False for a in usage.accesses) or True
    # accesses to p use constant indices but p itself is per-thread data


def test_scan_loop_detected():
    patterns = worker_patterns(NBODY, "N", "forceOne")
    assert "j" in patterns.arrays["all"].scan_loops


def test_bound_arg_accesses_are_uniform():
    patterns = worker_patterns(NBODY, "N", "forceOne")
    usage = patterns.arrays["all"]
    assert usage.all_uniform
    assert usage.read_only


def test_private_allocation_recorded():
    patterns = worker_patterns(NBODY, "N", "forceOne")
    usage = patterns.arrays["f"]
    assert not usage.is_param
    assert usage.alloc_size == 3
    assert usage.written


def test_static_last_index():
    patterns = worker_patterns(NBODY, "N", "forceOne")
    assert patterns.arrays["all"].static_last_index
    assert patterns.arrays["all"].last_dim == 4


def test_tiling_candidates():
    patterns = worker_patterns(NBODY, "N", "forceOne")
    names = [u.name for u in patterns.tiling_candidates()]
    assert names == ["all"]


THREAD_VARIANT = """
class T {
    static local float f(float[[4]] p, float[[][4]] table) {
        int base = (int) p[3];
        float acc = 0.0f;
        for (int k = 0; k < 6; k++) {
            acc = acc + table[base + k][0];
        }
        return acc;
    }
}
"""


def test_thread_variant_index_detected():
    patterns = worker_patterns(THREAD_VARIANT, "T", "f")
    usage = patterns.arrays["table"]
    assert not usage.all_uniform  # base depends on the element
    assert not usage.scan_loops  # index is not the loop variable alone


def test_literal_bound_scan_is_uniform():
    source = """
    class L {
        static local int f(int[[16]] t, int[[][16]] lib) {
            int best = 0;
            for (int j = 0; j < 96; j++) {
                best = best + lib[j][0];
            }
            return best;
        }
    }
    """
    patterns = worker_patterns(source, "L", "f")
    assert "j" in patterns.arrays["lib"].scan_loops


def test_nonzero_start_loop_not_uniform():
    source = """
    class L {
        static local float f(float[[4]] p, float[[][4]] arr) {
            float s = 0.0f;
            for (int j = 1; j < arr.length; j++) { s = s + arr[j][0]; }
            return s;
        }
    }
    """
    patterns = worker_patterns(source, "L", "f")
    assert not patterns.arrays["arr"].scan_loops


def test_written_param_not_tiling_candidate():
    # Value arrays cannot be written, so use a locally allocated array
    # scanned by a loop: not a parameter, never a tiling candidate.
    source = """
    class W {
        static local float f(float x) {
            float[] tmp = new float[8];
            float s = 0.0f;
            for (int j = 0; j < 8; j++) { s = s + tmp[j]; }
            return s;
        }
    }
    """
    patterns = worker_patterns(source, "W", "f")
    assert patterns.tiling_candidates() == []


def test_dynamic_last_index_blocks_vectorization_precondition():
    source = """
    class D {
        static local float f(float[[4]] p, float[[][4]] arr) {
            float s = 0.0f;
            for (int j = 0; j < arr.length; j++) {
                for (int k = 0; k < 4; k++) { s = s + arr[j][k]; }
            }
            return s;
        }
    }
    """
    patterns = worker_patterns(source, "D", "f")
    assert not patterns.arrays["arr"].static_last_index
