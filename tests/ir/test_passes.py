"""Kernel-IR simplification tests."""

from repro.backend import kernel_ir as K
from repro.ir.passes import simplify, simplify_stmts

I = K.K_INT
F = K.K_FLOAT


def const(v, t=I):
    return K.KConst(v, t)


def var(name, t=I):
    return K.KVar(name, t)


def test_constant_folding():
    expr = K.KBin("+", const(2), const(3), I)
    assert simplify(expr).value == 5


def test_add_zero_elided():
    expr = K.KBin("+", var("x"), const(0), I)
    assert simplify(expr) is expr.left or simplify(expr).name == "x"


def test_mul_one_elided():
    expr = K.KBin("*", var("x"), const(1), I)
    assert simplify(expr).name == "x"


def test_mul_zero_folds():
    expr = K.KBin("*", var("x"), const(0), I)
    assert simplify(expr).value == 0


def test_float_mul_zero_keeps_float_type():
    expr = K.KBin("*", var("x", F), const(0.0, F), F)
    folded = simplify(expr)
    assert folded.value == 0.0
    assert folded.ktype == F


def test_nested_index_arithmetic():
    # (i * 4 + 0) -> i * 4
    expr = K.KBin("+", K.KBin("*", var("i"), const(4), I), const(0), I)
    folded = simplify(expr)
    assert isinstance(folded, K.KBin) and folded.op == "*"


def test_int_division_truncation():
    expr = K.KBin("/", const(-7), const(2), I)
    assert simplify(expr).value == -3


def test_division_by_zero_not_folded():
    expr = K.KBin("/", const(1), const(0), I)
    assert isinstance(simplify(expr), K.KBin)


def test_comparison_folding():
    expr = K.KBin("<", const(1), const(2), K.K_BOOL)
    assert simplify(expr).value is True


def test_select_with_constant_condition():
    expr = K.KSelect(const(True, K.K_BOOL), var("a"), var("b"), I)
    assert simplify(expr).name == "a"


def test_unary_negation_folds():
    assert simplify(K.KUn("-", const(5), I)).value == -5


def test_cast_of_constant_folds():
    expr = K.KCast(const(3.7, F), I)
    assert simplify(expr).value == 3


def test_simplify_stmts_in_place():
    stmts = [
        K.KDecl("x", I, K.KBin("+", const(1), const(1), I)),
        K.KStore(
            "out",
            K.KBin("+", var("i"), const(0), I),
            var("x"),
            K.Space.GLOBAL,
            I,
        ),
    ]
    simplify_stmts(stmts)
    assert stmts[0].init.value == 2
    assert isinstance(stmts[1].index, K.KVar)


def test_loads_inside_calls_simplified():
    load = K.KLoad("a", K.KBin("*", var("i"), const(1), I), K.Space.GLOBAL, F)
    call = K.KCall("sqrt", [load], F)
    folded = simplify(call)
    assert isinstance(folded.args[0].index, K.KVar)
