"""Property-based tests: kernel-IR simplification preserves semantics.

Random expression trees over integer variables are evaluated directly
and after :func:`repro.ir.passes.simplify`; results must agree exactly
(the simplifier implements the same truncating division/remainder the
executor uses).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import kernel_ir as K
from repro.ir.passes import simplify

I = K.K_INT
B = K.K_BOOL

_INT_OPS = ["+", "-", "*", "&", "|", "^"]
_CMP_OPS = ["<", ">", "<=", ">=", "==", "!="]


@st.composite
def int_exprs(draw, depth=0):
    if depth >= 4 or draw(st.booleans()):
        if draw(st.booleans()):
            return K.KConst(draw(st.integers(-64, 64)), I)
        return K.KVar(draw(st.sampled_from(["a", "b", "c"])), I)
    kind = draw(st.sampled_from(["bin", "neg", "select", "div", "rem"]))
    if kind == "bin":
        return K.KBin(
            draw(st.sampled_from(_INT_OPS)),
            draw(int_exprs(depth=depth + 1)),
            draw(int_exprs(depth=depth + 1)),
            I,
        )
    if kind == "neg":
        return K.KUn("-", draw(int_exprs(depth=depth + 1)), I)
    if kind == "select":
        cond = K.KBin(
            draw(st.sampled_from(_CMP_OPS)),
            draw(int_exprs(depth=depth + 1)),
            draw(int_exprs(depth=depth + 1)),
            B,
        )
        return K.KSelect(
            cond,
            draw(int_exprs(depth=depth + 1)),
            draw(int_exprs(depth=depth + 1)),
            I,
        )
    op = "/" if kind == "div" else "%"
    return K.KBin(
        op,
        draw(int_exprs(depth=depth + 1)),
        draw(int_exprs(depth=depth + 1)),
        I,
    )


def evaluate(expr, env):
    if isinstance(expr, K.KConst):
        return expr.value
    if isinstance(expr, K.KVar):
        return env[expr.name]
    if isinstance(expr, K.KUn):
        value = evaluate(expr.operand, env)
        return -value if expr.op == "-" else value
    if isinstance(expr, K.KSelect):
        return (
            evaluate(expr.then, env)
            if evaluate(expr.cond, env)
            else evaluate(expr.otherwise, env)
        )
    if isinstance(expr, K.KBin):
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        op = expr.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "/":
            if right == 0:
                return None
            q = abs(left) // abs(right)
            return q if (left >= 0) == (right >= 0) else -q
        if op == "%":
            if right == 0:
                return None
            q = abs(left) // abs(right)
            q = q if (left >= 0) == (right >= 0) else -q
            return left - q * right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
    raise AssertionError(type(expr))


class _DivByZero(Exception):
    pass


def evaluate_strict(expr, env):
    result = evaluate(expr, env)
    if result is None:
        raise _DivByZero()
    # Inner None results propagate through evaluate as TypeErrors; treat
    # any failure as division-by-zero territory and skip.
    return result


@given(int_exprs(), st.integers(-10, 10), st.integers(-10, 10), st.integers(-10, 10))
@settings(max_examples=150, deadline=None)
def test_simplify_preserves_integer_semantics(expr, a, b, c):
    env = {"a": a, "b": b, "c": c}
    try:
        before = evaluate_strict(expr, env)
    except (_DivByZero, TypeError):
        return  # division by zero somewhere: undefined either way
    after = evaluate_strict(simplify(expr), env)
    assert before == after


@given(int_exprs())
@settings(max_examples=100, deadline=None)
def test_simplify_is_idempotent(expr):
    once = simplify(expr)
    twice = simplify(once)
    env = {"a": 3, "b": -2, "c": 7}
    try:
        v1 = evaluate_strict(once, env)
        v2 = evaluate_strict(twice, env)
    except (_DivByZero, TypeError):
        return
    assert v1 == v2


@given(int_exprs())
@settings(max_examples=100, deadline=None)
def test_simplify_never_grows_constants(expr):
    """Folded trees have no binary node with two constant children
    (except unfoldable division by zero)."""

    def check(node):
        if isinstance(node, K.KBin):
            both_const = isinstance(node.left, K.KConst) and isinstance(
                node.right, K.KConst
            )
            if both_const and node.op not in ("/", "%"):
                raise AssertionError("unfolded constant pair: {}".format(node))
            check(node.left)
            check(node.right)
        elif isinstance(node, K.KUn):
            check(node.operand)
        elif isinstance(node, K.KSelect):
            check(node.cond)
            check(node.then)
            check(node.otherwise)

    check(simplify(expr))
