"""Lowering tests: kernel structure, memory-plan realization, and
differential correctness of every optimization configuration."""

import numpy as np
import pytest

from repro.backend import kernel_ir as K
from repro.compiler.options import FIGURE8_CONFIGS, OptimizationConfig
from repro.compiler.pipeline import compile_filter
from repro.errors import KernelRejected
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.interp import Interpreter

from tests.conftest import NBODY_SOURCE, nbody_reference


def compile_nbody(config=None, device="gtx580", local_size=32):
    checked = check_program(parse_program(NBODY_SOURCE))
    worker = checked.lookup_method("NBody", "computeForces")
    return compile_filter(
        checked,
        worker,
        device=get_device(device),
        config=config or OptimizationConfig(),
        local_size=local_size,
    )


def test_kernel_has_figure4_shape():
    cf = compile_nbody(config=FIGURE8_CONFIGS["Global"])
    kernel = cf.plan.kernel
    names = [p.name for p in kernel.params]
    assert "_in" in names and "_out" in names and "_n" in names
    # Barrier-free kernels use the strided robust loop.
    loops = [s for s in kernel.body if isinstance(s, K.KFor)]
    assert loops and loops[0].var == "_i"


def test_tiled_kernel_uses_uniform_trip_count():
    cf = compile_nbody(config=FIGURE8_CONFIGS["Local"])
    kernel = cf.plan.kernel
    loops = [s for s in kernel.body if isinstance(s, K.KFor)]
    assert loops[0].var == "_it"
    barriers = [
        s for s in K.walk_stmts(kernel.body) if isinstance(s, K.KBarrier)
    ]
    assert barriers


def test_local_array_declared_for_tiles():
    cf = compile_nbody(config=FIGURE8_CONFIGS["Local+NoConflicts"])
    locals_ = [a for a in cf.plan.kernel.arrays if a.space is K.Space.LOCAL]
    assert len(locals_) == 1
    assert locals_[0].pad == 1  # width-4 rows conflict on 32 banks


def test_spill_buffer_param_when_private_off():
    cf = compile_nbody(config=FIGURE8_CONFIGS["Global"])
    spills = [p.name for p in cf.plan.kernel.params if p.name.startswith("_spill_")]
    assert spills == ["_spill_f"]
    assert cf.plan.spill_buffers[0].spill_size == 3


def test_private_array_when_enabled():
    cf = compile_nbody(config=FIGURE8_CONFIGS["Local"])
    privates = [a for a in cf.plan.kernel.arrays if a.space is K.Space.PRIVATE]
    assert len(privates) == 1
    assert privates[0].size == 3


def test_vectorized_elem_load():
    cf = compile_nbody(config=FIGURE8_CONFIGS["Global+Vector"])
    vec_loads = [
        e
        for s in K.walk_stmts(cf.plan.kernel.body)
        for e in K.walk_stmt_exprs(s)
        if isinstance(e, K.KLoad) and isinstance(e.ktype, K.KVector)
    ]
    assert vec_loads


@pytest.mark.parametrize("config_name", sorted(FIGURE8_CONFIGS))
@pytest.mark.parametrize("n", [31, 32, 50])
def test_all_configs_differentially_correct(config_name, n, particles):
    """Every optimization configuration must compute exactly what the
    host interpreter computes, for sizes that do and do not divide the
    work-group size."""
    rng = np.random.RandomState(n)
    data = rng.rand(n, 4).astype(np.float32)
    data.setflags(write=False)
    checked = check_program(parse_program(NBODY_SOURCE))
    interp = Interpreter(checked)
    expected = interp.call_static("NBody", "computeForces", [data])
    cf = compile_nbody(config=FIGURE8_CONFIGS[config_name], local_size=16)
    out = cf(data)
    assert np.allclose(out, expected, rtol=1e-4, atol=1e-5)


def test_output_matches_numpy(particles):
    cf = compile_nbody()
    out = cf(particles)
    assert np.allclose(out, nbody_reference(particles), rtol=1e-3, atol=1e-4)
    assert not out.flags.writeable  # the result is a value array


def test_iota_kernel_has_no_input_buffer():
    source = """
    class A {
        static local int g(int i) { return i * i; }
        static local int[[]] f(int n) { return A.g @ Lime.iota(n); }
    }
    """
    checked = check_program(parse_program(source))
    cf = compile_filter(
        checked,
        checked.lookup_method("A", "f"),
        device=get_device("gtx580"),
    )
    assert all(p.name != "_in" for p in cf.plan.kernel.params)
    out = cf(5)
    assert list(out) == [0, 1, 4, 9, 16]


def test_inlined_helper_with_early_return_in_loop_rejected():
    source = """
    class A {
        static local float h(float x) {
            for (int i = 0; i < 4; i++) { if (x > 0.0f) { return x; } }
            return 0.0f;
        }
        static local float[[]] f(float[[]] xs) { return A.h @ xs; }
    }
    """
    checked = check_program(parse_program(source))
    with pytest.raises(KernelRejected):
        compile_filter(
            checked, checked.lookup_method("A", "f"), device=get_device("gtx580")
        )


def test_recursion_rejected():
    source = """
    class A {
        static local float h(float x) { return A.h(x); }
        static local float[[]] f(float[[]] xs) { return A.h @ xs; }
    }
    """
    checked = check_program(parse_program(source))
    with pytest.raises(KernelRejected):
        compile_filter(
            checked, checked.lookup_method("A", "f"), device=get_device("gtx580")
        )


def test_tail_position_if_return_supported():
    source = """
    class A {
        static local float h(float x) {
            if (x > 0.0f) { return x; } else { return 0.0f - x; }
        }
        static local float[[]] f(float[[]] xs) { return A.h @ xs; }
    }
    """
    checked = check_program(parse_program(source))
    cf = compile_filter(
        checked, checked.lookup_method("A", "f"), device=get_device("gtx580")
    )
    xs = np.array([-1.5, 2.0, -3.0], dtype=np.float32)
    xs.setflags(write=False)
    assert np.allclose(cf(xs), [1.5, 2.0, 3.0])


def test_final_static_constant_inlined():
    source = """
    class A {
        static final float SCALE = 2.5f;
        static local float h(float x) { return x * SCALE; }
        static local float[[]] f(float[[]] xs) { return A.h @ xs; }
    }
    """
    checked = check_program(parse_program(source))
    cf = compile_filter(
        checked, checked.lookup_method("A", "f"), device=get_device("gtx580")
    )
    xs = np.array([1.0, 2.0], dtype=np.float32)
    xs.setflags(write=False)
    assert np.allclose(cf(xs), [2.5, 5.0])


def test_reduce_of_map_end_to_end():
    source = """
    class A {
        static local float sq(float x) { return x * x; }
        static local float f(float[[]] xs) { return +! (A.sq @ xs); }
    }
    """
    checked = check_program(parse_program(source))
    cf = compile_filter(
        checked, checked.lookup_method("A", "f"), device=get_device("gtx580"),
        local_size=16,
    )
    xs = np.arange(10, dtype=np.float32)
    xs.setflags(write=False)
    assert cf(xs) == pytest.approx(float((xs.astype(np.float64) ** 2).sum()), rel=1e-5)


def test_pure_reduce_end_to_end():
    source = """
    class A {
        static local float f(float[[]] xs) { return +! xs; }
    }
    """
    checked = check_program(parse_program(source))
    cf = compile_filter(
        checked, checked.lookup_method("A", "f"), device=get_device("gtx580"),
        local_size=16,
    )
    xs = np.arange(33, dtype=np.float32)
    xs.setflags(write=False)
    assert cf(xs) == pytest.approx(float(xs.sum()), rel=1e-5)


def test_min_reduce_on_device():
    source = """
    class A {
        static local float f(float[[]] xs) { return Math.min ! xs; }
    }
    """
    checked = check_program(parse_program(source))
    cf = compile_filter(
        checked, checked.lookup_method("A", "f"), device=get_device("gtx580"),
        local_size=8,
    )
    xs = np.array([3.0, -1.0, 2.0, 7.5], dtype=np.float32)
    xs.setflags(write=False)
    assert cf(xs) == -1.0
