"""Memory optimizer tests: space assignment per Figure 5."""

from repro.backend.kernel_ir import Space
from repro.compiler.memopt import plan_memory
from repro.compiler.options import FIGURE8_CONFIGS, OptimizationConfig, global_only
from repro.frontend import check_program, parse_program
from repro.ir.patterns import analyze_worker
from repro.opencl import get_device

NBODY = """
class N {
    static local float[[3]] forceOne(float[[4]] p, float[[][4]] all) {
        float[] f = new float[3];
        for (int j = 0; j < all.length; j++) {
            f[0] = f[0] + all[j][0] * p[0];
        }
        return (float[[3]]) f;
    }
}
"""


def plan_for(source, class_name, method, config, device="gtx8800"):
    checked = check_program(parse_program(source))
    patterns = analyze_worker(checked.lookup_method(class_name, method))
    return plan_memory(patterns, config, get_device(device)), patterns


def test_default_config_tiles_scanned_array():
    plan, _ = plan_for(NBODY, "N", "forceOne", OptimizationConfig())
    binding = plan.binding("all")
    assert binding.space is Space.LOCAL
    assert binding.tiled
    assert "j" in plan.tiled_loops


def test_global_only_puts_everything_global():
    plan, _ = plan_for(NBODY, "N", "forceOne", global_only())
    assert plan.binding("all").space is Space.GLOBAL
    assert plan.binding("f").space is Space.GLOBAL
    assert plan.binding("f").spilled
    assert not plan.tiled_loops


def test_private_allocation():
    plan, _ = plan_for(NBODY, "N", "forceOne", OptimizationConfig())
    binding = plan.binding("f")
    assert binding.space is Space.PRIVATE
    assert not binding.spilled


def test_large_allocation_spills_even_with_private_on():
    source = """
    class B {
        static local float f(float x) {
            float[] big = new float[4096];
            big[0] = x;
            return big[0];
        }
    }
    """
    plan, _ = plan_for(source, "B", "f", OptimizationConfig())
    assert plan.binding("big").spilled


def test_constant_config_places_uniform_array():
    plan, _ = plan_for(NBODY, "N", "forceOne", FIGURE8_CONFIGS["Constant"])
    assert plan.binding("all").space is Space.CONSTANT


def test_bounded_array_exceeding_constant_capacity_stays_global():
    # 3000 x 8 float rows = 96KB > the 64KB constant space.
    source = """
    class C {
        static local float f(float[[8]] p, float[[3000][8]] table) {
            float s = 0.0f;
            for (int j = 0; j < table.length; j++) { s = s + table[j][0]; }
            return s;
        }
    }
    """
    plan, _ = plan_for(source, "C", "f", FIGURE8_CONFIGS["Constant"])
    assert plan.binding("table").space is Space.GLOBAL


def test_image_eligibility_requires_width_2_or_4():
    plan, _ = plan_for(NBODY, "N", "forceOne", FIGURE8_CONFIGS["Texture"])
    assert plan.binding("all").space is Space.IMAGE

    wide = NBODY.replace("[[][4]]", "[[][16]]").replace("float[[4]] p", "float[[16]] p")
    plan, _ = plan_for(wide, "N", "forceOne", FIGURE8_CONFIGS["Texture"])
    assert plan.binding("all").space is not Space.IMAGE


def test_vector_width_from_bounded_row():
    plan, _ = plan_for(
        NBODY, "N", "forceOne", FIGURE8_CONFIGS["Local+NoConflicts+Vector"]
    )
    assert plan.binding("all").vector_width == 4


def test_vectorization_disabled():
    plan, _ = plan_for(NBODY, "N", "forceOne", FIGURE8_CONFIGS["Local"])
    assert plan.binding("all").vector_width == 1


def test_conflict_padding_depends_on_banks():
    # Width 4 rows share a factor with both 16 and 32 banks: padded.
    plan, _ = plan_for(
        NBODY, "N", "forceOne", FIGURE8_CONFIGS["Local+NoConflicts"], "gtx8800"
    )
    assert plan.binding("all").pad == 1

    # Width 3 rows are coprime with 16 banks: no padding needed.
    odd = NBODY.replace("[[][4]]", "[[][3]]").replace("float[[4]] p", "float[[3]] p")
    plan, _ = plan_for(
        odd, "N", "forceOne", FIGURE8_CONFIGS["Local+NoConflicts"], "gtx8800"
    )
    assert plan.binding("all").pad == 0


def test_no_padding_without_conflict_removal():
    plan, _ = plan_for(NBODY, "N", "forceOne", FIGURE8_CONFIGS["Local"])
    assert plan.binding("all").pad == 0


def test_written_arrays_never_leave_global():
    # Output-like arrays (mutable, written) stay in global memory.
    source = """
    class W {
        static local float f(float x) {
            float[] tmp = new float[128];
            for (int j = 0; j < 128; j++) { tmp[j] = x; }
            return tmp[0];
        }
    }
    """
    plan, _ = plan_for(source, "W", "f", OptimizationConfig())
    assert plan.binding("tmp").spilled  # too large for private


def test_figure8_configs_complete():
    assert set(FIGURE8_CONFIGS) == {
        "Global",
        "Global+Vector",
        "Local",
        "Local+NoConflicts",
        "Local+NoConflicts+Vector",
        "Constant",
        "Constant+Vector",
        "Texture",
    }
