"""Map-fusion tests: nested maps compile to a single kernel."""

import numpy as np
import pytest

from repro.compiler.kernels import recognize_filter
from repro.compiler.pipeline import compile_filter
from repro.errors import KernelRejected
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.interp import Interpreter

SOURCE = """
class F {
    static local float g(float x) { return x * x + 1.0f; }
    static local float h(float y, float a) { return Math.sqrt(y) * a; }
    static local float k(float z) { return z - 0.25f; }

    static local float[[]] two(float[[]] xs) {
        return F.h(0.5f) @ (F.g @ xs);
    }

    static local float[[]] three(float[[]] xs) {
        return F.k @ (F.h(2.0f) @ (F.g @ xs));
    }

    static local float sumOfChain(float[[]] xs) {
        return +! (F.h(1.0f) @ (F.g @ xs));
    }

    static local float[[]] overIota(int n) {
        return F.k @ (F.g @ Lime.iota(n));
    }
}
"""


@pytest.fixture(scope="module")
def checked():
    return check_program(parse_program(SOURCE))


@pytest.fixture(scope="module")
def interp(checked):
    return Interpreter(checked)


def xs_input(n=17):
    xs = np.linspace(0.0, 2.0, n).astype(np.float32)
    xs.setflags(write=False)
    return xs


def compile_method(checked, name):
    return compile_filter(
        checked,
        checked.lookup_method("F", name),
        device=get_device("gtx580"),
        local_size=8,
    )


def test_recognizer_marks_fused_source(checked):
    shape = recognize_filter(checked, checked.lookup_method("F", "two"))
    assert shape.map.source.kind == "fused"
    assert shape.map.source.inner.mapped_method.name == "g"


def test_two_stage_fusion_matches_interpreter(checked, interp):
    xs = xs_input()
    cf = compile_method(checked, "two")
    out = cf(xs)
    ref = interp.call_static("F", "two", [xs])
    assert np.allclose(out, ref, rtol=1e-5)
    assert cf.plan.kernel.meta["fused"] == ["F.g"]


def test_three_stage_fusion(checked, interp):
    xs = xs_input(29)
    cf = compile_method(checked, "three")
    out = cf(xs)
    ref = interp.call_static("F", "three", [xs])
    assert np.allclose(out, ref, rtol=1e-5)
    assert cf.plan.kernel.meta["fused"] == ["F.g", "F.h"]


def test_fused_map_then_reduce(checked, interp):
    xs = xs_input(21)
    cf = compile_method(checked, "sumOfChain")
    ref = interp.call_static("F", "sumOfChain", [xs])
    assert cf(xs) == pytest.approx(ref, rel=1e-5)


def test_fusion_over_iota(checked, interp):
    cf = compile_method(checked, "overIota")
    out = cf(9)
    ref = interp.call_static("F", "overIota", [9])
    assert np.allclose(out, ref, rtol=1e-6)


def test_fused_kernel_has_no_intermediate_buffer(checked):
    cf = compile_method(checked, "two")
    buffer_names = [p.name for p in cf.plan.kernel.buffer_params()]
    assert buffer_names == ["_in", "_out"]


def test_array_intermediate_rejected():
    source = """
    class A {
        static local float[[2]] g(float x) {
            float[] p = new float[2];
            p[0] = x;
            return (float[[2]]) p;
        }
        static local float h(float[[2]] p) { return p[0]; }
        static local float[[]] f(float[[]] xs) { return A.h @ (A.g @ xs); }
    }
    """
    checked = check_program(parse_program(source))
    with pytest.raises(KernelRejected):
        compile_filter(
            checked, checked.lookup_method("A", "f"), device=get_device("gtx580")
        )


def test_bound_arg_name_collision_across_levels():
    # Both functions call their parameter `a`: kernel params must dedup.
    source = """
    class C {
        static local float g(float x, float a) { return x + a; }
        static local float h(float y, float a) { return y * a; }
        static local float[[]] f(float[[]] xs) {
            return C.h(3.0f) @ (C.g(1.0f) @ xs);
        }
    }
    """
    checked = check_program(parse_program(source))
    cf = compile_filter(
        checked, checked.lookup_method("C", "f"), device=get_device("gtx580"),
        local_size=8,
    )
    xs = xs_input(11)
    interp = Interpreter(checked)
    ref = interp.call_static("C", "f", [xs])
    assert np.allclose(cf(xs), ref, rtol=1e-6)
    names = [p.name for p in cf.plan.kernel.params]
    assert len(names) == len(set(names))
