"""Auto-tuner tests."""

import numpy as np
import pytest

from repro.compiler.autotune import DEFAULT_LOCAL_SIZES, autotune_filter
from repro.compiler.options import FIGURE8_CONFIGS
from repro.errors import KernelRejected
from repro.frontend import check_program, parse_program
from repro.opencl import get_device

from tests.conftest import NBODY_SOURCE, nbody_reference


@pytest.fixture(scope="module")
def nbody():
    checked = check_program(parse_program(NBODY_SOURCE))
    return checked, checked.lookup_method("NBody", "computeForces")


@pytest.fixture(scope="module")
def sample():
    rng = np.random.RandomState(5)
    data = rng.rand(64, 4).astype(np.float32)
    data.setflags(write=False)
    return data


def test_autotune_explores_the_space(nbody, sample):
    checked, worker = nbody
    result = autotune_filter(
        checked, worker, get_device("gtx8800"), sample,
        local_sizes=(32, 64),
    )
    # 8 configs x 2 work-group sizes.
    assert len(result.candidates) == 16
    assert result.best.kernel_ns == min(c.kernel_ns for c in result.candidates)


def test_autotuned_filter_is_correct(nbody, sample):
    checked, worker = nbody
    result = autotune_filter(
        checked, worker, get_device("gtx580"), sample, local_sizes=(32,)
    )
    out = result.compiled(sample)
    assert np.allclose(out, nbody_reference(sample), rtol=1e-3, atol=1e-4)


def test_autotune_beats_or_matches_global_only(nbody, sample):
    checked, worker = nbody
    result = autotune_filter(
        checked, worker, get_device("gtx8800"), sample, local_sizes=(32, 64)
    )
    global_candidates = [
        c for c in result.candidates if c.config_name == "Global"
    ]
    assert result.best.kernel_ns <= min(c.kernel_ns for c in global_candidates)


def test_partial_warp_sizes_skipped_on_gpu(nbody, sample):
    checked, worker = nbody
    result = autotune_filter(
        checked, worker, get_device("gtx580"), sample,
        configs={"Global": FIGURE8_CONFIGS["Global"]},
        local_sizes=(16, 32),  # 16 is a partial warp on NVIDIA
    )
    assert all(c.local_size == 32 for c in result.candidates)


def test_cpu_allows_small_work_groups(nbody, sample):
    checked, worker = nbody
    result = autotune_filter(
        checked, worker, get_device("core-i7"), sample,
        configs={"Global": FIGURE8_CONFIGS["Global"]},
        local_sizes=(16,),
    )
    assert result.candidates


def test_report_renders(nbody, sample):
    checked, worker = nbody
    result = autotune_filter(
        checked, worker, get_device("gtx580"), sample, local_sizes=(32,)
    )
    text = result.report()
    assert "<- best" in text
    assert "kernel_ns" in text


def test_unoffloadable_worker_raises():
    source = "class A { static float f(float x) { return x; } }"
    checked = check_program(parse_program(source))
    with pytest.raises(KernelRejected):
        autotune_filter(
            checked,
            checked.lookup_method("A", "f"),
            get_device("gtx580"),
            1.0,
        )


def test_default_local_sizes_are_warp_multiples():
    assert all(size % 32 == 0 for size in DEFAULT_LOCAL_SIZES)
