"""Filter-shape recognizer tests (kernel identification, Section 4.1)."""

import pytest

from repro.compiler.kernels import recognize_filter
from repro.errors import KernelRejected
from repro.frontend import check_program, parse_program


def recognize(source, class_name, method):
    checked = check_program(parse_program(source))
    return recognize_filter(checked, checked.lookup_method(class_name, method))


def test_plain_map_recognized():
    shape = recognize(
        "class A { static local float sq(float x) { return x * x; }"
        " static local float[[]] f(float[[]] xs) { return A.sq @ xs; } }",
        "A",
        "f",
    )
    assert shape.map is not None
    assert shape.map.source.kind == "param"
    assert shape.map.source.param_name == "xs"
    assert shape.reduce is None


def test_map_over_iota_literal():
    shape = recognize(
        "class A { static local int g(int i) { return i; }"
        " static local int[[]] f(int n) { return A.g @ Lime.iota(64); } }",
        "A",
        "f",
    )
    assert shape.map.source.kind == "iota"
    assert shape.map.source.literal == 64


def test_map_over_iota_param():
    shape = recognize(
        "class A { static local int g(int i) { return i; }"
        " static local int[[]] f(int n) { return A.g @ Lime.iota(n); } }",
        "A",
        "f",
    )
    assert shape.map.source.param_name == "n"


def test_bound_args_classified():
    shape = recognize(
        "class A { static local float g(float x, float a, float[[]] ys) { return x * a + ys[0]; }"
        " static local float[[]] f(float[[]] xs) { return A.g(0.5f, xs) @ xs; } }",
        "A",
        "f",
    )
    kinds = [b.kind for b in shape.map.bound_args]
    assert kinds == ["literal", "param"]


def test_reduce_of_map():
    shape = recognize(
        "class A { static local float sq(float x) { return x * x; }"
        " static local float f(float[[]] xs) { return +! (A.sq @ xs); } }",
        "A",
        "f",
    )
    assert shape.reduce is not None
    assert shape.reduce.op == "+"
    assert shape.reduce.inner_map is not None


def test_pure_reduce():
    shape = recognize(
        "class A { static local float f(float[[]] xs) { return +! xs; } }",
        "A",
        "f",
    )
    assert shape.reduce.inner_map is None
    assert shape.reduce.source.param_name == "xs"


def test_minmax_reduce():
    shape = recognize(
        "class A { static local float f(float[[]] xs) { return Math.max ! xs; } }",
        "A",
        "f",
    )
    assert shape.reduce.op == "max"


def test_multi_statement_worker_rejected():
    with pytest.raises(KernelRejected):
        recognize(
            "class A { static local float sq(float x) { return x; }"
            " static local float[[]] f(float[[]] xs) {"
            " float y = xs[0]; return A.sq @ xs; } }",
            "A",
            "f",
        )


def test_non_local_worker_rejected():
    with pytest.raises(KernelRejected):
        recognize(
            "class A { static float[[]] f(float[[]] xs) { return xs; } }",
            "A",
            "f",
        )


def test_freeze_cast_stripped():
    shape = recognize(
        "class A { static local float sq(float x) { return x; }"
        " static local float[[]] f(float[[]] xs) {"
        " return (float[[]]) (A.sq @ xs); } }",
        "A",
        "f",
    )
    assert shape.map is not None


def test_complex_bound_expression_rejected():
    with pytest.raises(KernelRejected):
        recognize(
            "class A { static local float g(float x, float a) { return x * a; }"
            " static local float[[]] f(float[[]] xs) {"
            " return A.g(xs[0] + 1.0f) @ xs; } }",
            "A",
            "f",
        )


def test_method_combinator_reduce_rejected_for_device():
    with pytest.raises(KernelRejected):
        recognize(
            "class A { static local float c(float a, float b) { return a + b; }"
            " static local float f(float[[]] xs) { return A.c ! xs; } }",
            "A",
            "f",
        )
