"""Cross-task fusion pass tests: typed decline reasons, chain
planning, and bit-exact equivalence of the composite path.

Complements tests/compiler/test_fusion.py (within-filter nested-map
fusion): these tests exercise the *graph-level* planner — the seams
between ``=>``-connected offloaded tasks — and the legality predicates
documented in docs/FUSION.md.
"""

import numpy as np
import pytest

from repro.compiler import Offloader
from repro.compiler.fusion import (
    FusionCtx,
    FusionPlanner,
    build_fused_spec,
    resolve_fuse_mode,
)
from repro.errors import KernelRejected, RuntimeFault
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.engine import Engine
from repro.runtime.profiler import ExecutionProfile
from repro.runtime.taskgraph import Task, TaskGraph

SOURCE = """
class P {
    float[[]] data;
    int remaining;
    static float result = 0.0f;

    P(float[[]] xs, int steps) { data = xs; remaining = steps; }

    float[[]] gen() {
        if (remaining <= 0) { throw new UnderflowException(); }
        remaining = remaining - 1;
        return data;
    }

    static local float scaleOne(float x) { return x * 2.0f + 1.0f; }
    static local float[[]] scale(float[[]] xs) {
        return P.scaleOne @ xs;
    }

    static local float dampOne(float x) { return x / (1.0f + x * x); }
    static local float[[]] damp(float[[]] xs) {
        return P.dampOne @ xs;
    }

    static local float total(float[[]] xs) { return +! xs; }

    static local float h(float y, float a) { return y * a; }
    static local float[[]] withBound(float[[]] xs, float a) {
        return P.h(a) @ xs;
    }
    static local float[[]] withB(float[[]] ys, float a) {
        return P.h(a) @ ys;
    }

    static local float[[]] overIota(float[[]] xs) {
        return P.scaleOne @ Lime.iota(8);
    }

    static local float g2(float x, float[[]] all) { return x + all[0]; }
    static local float[[]] gathered(float[[]] xs) {
        return P.g2(xs) @ xs;
    }

    static local float[[]] twoFree(float[[]] xs, float k) {
        return P.h(k) @ xs;
    }

    static void consume(float[[]] xs) {
        int last = xs.length - 1;
        result = result + xs[0] + xs[last];
    }

    static void consumeScalar(float s) { result = result + s; }

    static float runMaps(float[[]] xs, int steps) {
        result = 0.0f;
        var g = task P(xs, steps).gen
             => task P.scale
             => task P.damp
             => task P.consume;
        g.finish();
        return result;
    }

    static float runReduce(float[[]] xs, int steps) {
        result = 0.0f;
        var g = task P(xs, steps).gen
             => task P.scale
             => task P.total
             => task P.consumeScalar;
        g.finish();
        return result;
    }
}
"""


@pytest.fixture(scope="module")
def checked():
    return check_program(parse_program(SOURCE))


def method(checked, name):
    return checked.lookup_method("P", name)


def xs_input(n=33):
    rng = np.random.default_rng(7)
    xs = rng.uniform(-1.0, 1.0, size=n).astype(np.float32)
    xs.setflags(write=False)
    return xs


# -- mode resolution ---------------------------------------------------------


def test_resolve_fuse_mode(monkeypatch):
    monkeypatch.delenv("REPRO_FUSE", raising=False)
    assert resolve_fuse_mode(None) == "off"
    assert resolve_fuse_mode("kernel") == "kernel"
    monkeypatch.setenv("REPRO_FUSE", "resident")
    assert resolve_fuse_mode(None) == "resident"
    assert resolve_fuse_mode("off") == "off"
    with pytest.raises(RuntimeFault):
        resolve_fuse_mode("sideways")


# -- build_fused_spec: typed structural declines ----------------------------


def test_spec_merges_a_legal_chain(checked):
    spec = build_fused_spec(
        checked, [(method(checked, "scale"), {}), (method(checked, "damp"), {})]
    )
    assert spec.worker.qualified_name == "P.scale+P.damp"
    assert spec.fused_names == ["P.scale", "P.damp"]
    assert spec.mapped_method.name == "dampOne"
    # One chained entry, flagged as a cross-task seam (rounded to the
    # declared element type so the fused path reproduces the staged
    # intermediate store bit-exactly).
    assert len(spec.fused_inner) == 1
    entry = spec.fused_inner[0]
    assert entry[0].name == "scaleOne"
    assert entry[2] is True


def test_spec_rejects_reduce_member(checked):
    with pytest.raises(KernelRejected, match="^consumer_reduce"):
        build_fused_spec(
            checked,
            [(method(checked, "scale"), {}), (method(checked, "total"), {})],
        )


def test_spec_rejects_two_free_params(checked):
    with pytest.raises(KernelRejected, match="^no_stream_param"):
        build_fused_spec(
            checked,
            [(method(checked, "scale"), {}), (method(checked, "twoFree"), {})],
        )


def test_spec_rejects_rate_mismatch(checked):
    with pytest.raises(KernelRejected, match="^rate_mismatch"):
        build_fused_spec(
            checked,
            [(method(checked, "scale"), {}), (method(checked, "overIota"), {})],
        )


def test_spec_rejects_gather(checked):
    with pytest.raises(KernelRejected, match="^gather"):
        build_fused_spec(
            checked,
            [(method(checked, "scale"), {}), (method(checked, "gathered"), {})],
        )


def test_spec_rejects_param_collision(checked):
    with pytest.raises(KernelRejected, match="^param_collision"):
        build_fused_spec(
            checked,
            [
                (method(checked, "withBound"), {"a": 2.0}),
                (method(checked, "withB"), {"a": 3.0}),
            ],
        )


# -- planner legality predicates --------------------------------------------


class _StubKernel:
    def __init__(self, supported=True, reason=None):
        self.batch_supported = supported
        self.batch_reason = reason


class _StubFilter:
    def __init__(self, stream_param=None, reduce_kernel=None, compiled=None):
        self.stream_param = stream_param
        self.plan = object()
        self.reduce_kernel = reduce_kernel
        self.compiled_kernel = compiled or _StubKernel()
        self.emit_resident = False
        self.accept_resident = False


def ctx(planner, meth, filt, name="t"):
    return FusionCtx(
        planner=planner,
        name=name,
        method=meth,
        bound_values={},
        device_worker=filt,
        host_factory=None,
        wrap=None,
    )


@pytest.fixture()
def planner(checked):
    return FusionPlanner("kernel", checked, None, ExecutionProfile())


def test_resident_scalar_boundary(planner, checked):
    prod = ctx(planner, method(checked, "total"), _StubFilter())
    cons = ctx(
        planner,
        method(checked, "damp"),
        _StubFilter(stream_param=method(checked, "damp").params[0]),
    )
    assert planner._resident_reason(prod, cons) == "scalar_boundary"


def test_resident_type_mismatch(planner, checked):
    prod = ctx(planner, method(checked, "scale"), _StubFilter())
    # The consumer's stream port is a scalar float, not float[[]].
    cons = ctx(
        planner,
        method(checked, "damp"),
        _StubFilter(stream_param=method(checked, "scaleOne").params[0]),
    )
    assert planner._resident_reason(prod, cons) == "type_mismatch"


def test_resident_legal_seam(planner, checked):
    prod = ctx(planner, method(checked, "scale"), _StubFilter())
    cons = ctx(
        planner,
        method(checked, "damp"),
        _StubFilter(stream_param=method(checked, "damp").params[0]),
    )
    assert planner._resident_reason(prod, cons) is None


def test_kernel_barrier_decline(planner, checked):
    good = ctx(planner, method(checked, "scale"), _StubFilter())
    tiled = ctx(
        planner,
        method(checked, "damp"),
        _StubFilter(
            compiled=_StubKernel(False, "uses local-memory tiling")
        ),
    )
    assert planner._kernel_reason(good, tiled) == "barrier"


def test_kernel_divergence_decline(planner, checked):
    good = ctx(planner, method(checked, "scale"), _StubFilter())
    divergent = ctx(
        planner,
        method(checked, "damp"),
        _StubFilter(compiled=_StubKernel(False, "divergent branch")),
    )
    assert planner._kernel_reason(good, divergent) == "divergence"


def test_kernel_reduce_decline(planner, checked):
    good = ctx(planner, method(checked, "scale"), _StubFilter())
    red = ctx(
        planner,
        method(checked, "total"),
        _StubFilter(reduce_kernel=object()),
    )
    assert planner._kernel_reason(good, red) == "consumer_reduce"


# -- multi-consumer revocation ----------------------------------------------


def _fusion_task(planner, name, meth, filt):
    t = Task(
        worker=lambda v: v, name=name, is_source=False, produces=True,
        isolated=True,
    )
    t.fusion = ctx(planner, meth, filt, name=name)
    return t


def test_multi_consumer_revokes_resident_marks(checked):
    planner = FusionPlanner("resident", checked, None, ExecutionProfile())
    prod_filt = _StubFilter()
    cons_filt = _StubFilter(stream_param=method(checked, "damp").params[0])
    prod = _fusion_task(planner, "P.scale", method(checked, "scale"), prod_filt)
    cons = _fusion_task(planner, "P.damp", method(checked, "damp"), cons_filt)

    planner.apply(TaskGraph([prod, cons]))
    assert prod_filt.emit_resident is True
    assert cons_filt.accept_resident is True
    assert planner.chains and planner.chains[0]["kind"] == "resident"

    # A second finished graph reuses the consumer task: its input can no
    # longer be pinned to one device, so the seam's marks are revoked.
    planner.apply(TaskGraph([cons]))
    assert prod_filt.emit_resident is False
    assert cons_filt.accept_resident is False
    assert ("P.damp", "multi_consumer") in planner.declines
    assert planner.summary()["declined"]["multi_consumer"] == 1


# -- end-to-end equivalence --------------------------------------------------


def run_engine(checked, run_method, fuse, steps=3):
    offloader = Offloader(device=get_device("gtx580"))
    engine = Engine(checked, offloader=offloader, fuse=fuse)
    result = engine.run_static("P", run_method, [xs_input(), steps])
    return result, engine


def test_three_mode_bit_exact_equivalence(checked):
    baseline, base_engine = run_engine(checked, "runMaps", None)
    resident, res_engine = run_engine(checked, "runMaps", "resident")
    fused, fuse_engine = run_engine(checked, "runMaps", "kernel")
    # Bit-exact, not approximate: residency and composition must not
    # change a single ulp.
    assert resident == baseline
    assert fused == baseline
    assert base_engine.fusion_summary() == {}

    res = res_engine.fusion_summary()
    assert res["mode"] == "resident"
    assert [c["chain"] for c in res["chains"]] == ["P.scale+P.damp"]
    assert res["chains"][0]["kind"] == "resident"
    assert res["elisions"] > 0
    assert res["bytes_saved"] > 0
    assert res["fused_kernels"] == 0

    fus = fuse_engine.fusion_summary()
    assert fus["mode"] == "kernel"
    assert fus["fused_kernels"] == 1
    assert fus["chains"][0]["kind"] == "kernel"
    assert "P.scale+P.damp" in fuse_engine.offloaded_tasks


def test_composite_launches_once_per_item(checked):
    _, base_engine = run_engine(checked, "runMaps", None)
    _, fuse_engine = run_engine(checked, "runMaps", "kernel")
    # Two kernels per item staged, one fused kernel per item composed.
    assert (
        fuse_engine.profile.kernel_launches
        < base_engine.profile.kernel_launches
    )


def test_reduce_consumer_declines_kernel_but_keeps_residency(checked):
    baseline, _ = run_engine(checked, "runReduce", None)
    fused, engine = run_engine(checked, "runReduce", "kernel")
    assert fused == baseline
    summary = engine.fusion_summary()
    assert summary["fused_kernels"] == 0
    assert summary["declined"]["consumer_reduce"] >= 1
    # The seam is still resident-legal: the intermediate stays on-device.
    assert summary["elisions"] > 0
    assert summary["chains"][0]["kind"] == "resident"
