"""Cross-cutting integration tests."""

import numpy as np
import pytest

from repro.apps.registry import BENCHMARKS
from repro.compiler import Offloader
from repro.compiler.options import FIGURE8_CONFIGS
from repro.compiler.pipeline import compile_filter
from repro.opencl import get_device
from repro.runtime import marshal
from repro.runtime.engine import Engine
from repro.runtime.profiler import CommCostModel

SCALE = 0.15


@pytest.mark.parametrize("device", ["gtx8800", "gtx580", "hd5970", "core-i7"])
def test_same_results_on_every_device(device):
    bench = BENCHMARKS["nbody-single"]
    checked = bench.checked()
    inputs = bench.make_input(scale=SCALE)
    cf = compile_filter(
        checked,
        bench.filter_worker(),
        device=get_device(device),
        local_size=16,
    )
    out = cf(inputs[0])
    assert np.allclose(out, bench.reference(*inputs), rtol=1e-3, atol=1e-4)


@pytest.mark.parametrize("config_name", sorted(FIGURE8_CONFIGS))
def test_mosaic_all_configs_correct(config_name):
    bench = BENCHMARKS["mosaic"]
    checked = bench.checked()
    inputs = bench.make_input(scale=SCALE)
    cf = compile_filter(
        checked,
        bench.filter_worker(),
        device=get_device("gtx8800"),
        config=FIGURE8_CONFIGS[config_name],
        local_size=16,
    )
    assert np.array_equal(cf(inputs[0]), bench.reference(*inputs))


def test_generic_marshaller_same_results_higher_cost():
    bench = BENCHMARKS["nbody-single"]
    checked = bench.checked()
    # Larger input: the per-element cost must dominate the fixed
    # allocation overhead for the paper's ">90% marshalling" effect.
    inputs = bench.make_input(scale=0.7)

    def run(marshaller):
        offloader = Offloader(
            device=get_device("gtx580"), marshaller=marshaller, local_size=16
        )
        engine = Engine(checked, offloader=offloader)
        checksum = engine.run_static(
            bench.main_class, bench.run_method, inputs + [1]
        )
        return checksum, engine.profile.stages.java_marshal

    cs_fast, marshal_fast = run(marshal.SPECIALIZED)
    cs_slow, marshal_slow = run(marshal.GENERIC)
    assert cs_fast == pytest.approx(cs_slow)
    # The paper: the generic marshaller was so slow that >90% of time went
    # to marshalling; specialized must be dramatically cheaper.
    assert marshal_slow > 5 * marshal_fast


def test_cpu_offload_uses_shared_memory_costs():
    bench = BENCHMARKS["nbody-single"]
    checked = bench.checked()
    inputs = bench.make_input(scale=SCALE)

    def run(comm, device):
        offloader = Offloader(device=device, comm=comm, local_size=16)
        engine = Engine(checked, offloader=offloader)
        engine.run_static(bench.main_class, bench.run_method, inputs + [1])
        return engine.profile.stages.transfer

    gpu_transfer = run(CommCostModel(), get_device("gtx580"))
    cpu_transfer = run(CommCostModel.for_cpu(), get_device("core-i7"))
    assert cpu_transfer < gpu_transfer / 3


def test_compiled_and_hand_tuned_agree_bit_for_bit_on_integers():
    bench = BENCHMARKS["mosaic"]
    checked = bench.checked()
    inputs = bench.make_input(scale=SCALE)
    cf = compile_filter(
        checked, bench.filter_worker(), device=get_device("gtx580"), local_size=16
    )
    compiled = np.asarray(cf(inputs[0]))
    hand, _ = bench.run_baseline("gtx580", *inputs, local_size=16)
    assert np.array_equal(compiled, hand)


def test_stream_of_multiple_items_reuses_compiled_kernel():
    bench = BENCHMARKS["nbody-single"]
    checked = bench.checked()
    inputs = bench.make_input(scale=SCALE)
    offloader = Offloader(device=get_device("gtx580"), local_size=16)
    engine = Engine(checked, offloader=offloader)
    engine.run_static(bench.main_class, bench.run_method, inputs + [3])
    assert engine.profile.kernel_launches == 3
    # One compiled entry, three launches.
    assert len(offloader.compiled) == 1


def test_profile_stage_names_are_figure9_stages():
    bench = BENCHMARKS["nbody-single"]
    checked = bench.checked()
    inputs = bench.make_input(scale=SCALE)
    offloader = Offloader(device=get_device("gtx580"), local_size=16)
    engine = Engine(checked, offloader=offloader)
    engine.run_static(bench.main_class, bench.run_method, inputs + [1])
    stages = engine.profile.stages.as_dict()
    assert set(stages) == {
        "java_marshal",
        "c_marshal",
        "opencl_setup",
        "transfer",
        "kernel",
        "host_compute",
    }
    assert stages["kernel"] > 0
    assert stages["java_marshal"] > 0
