"""Whole-stack determinism: identical runs produce identical simulated
times and results — the property that makes the regenerated figures
reproducible run to run."""

import numpy as np

from repro.apps.registry import BENCHMARKS
from repro.compiler import Offloader
from repro.compiler.pipeline import compile_filter
from repro.opencl import get_device
from repro.runtime.engine import Engine


def run_once():
    bench = BENCHMARKS["nbody-single"]
    checked = bench.checked()
    inputs = bench.make_input(scale=0.15)
    offloader = Offloader(device=get_device("gtx8800"), local_size=16)
    engine = Engine(checked, offloader=offloader)
    checksum = engine.run_static(bench.main_class, bench.run_method, inputs + [2])
    return checksum, engine.total_ns(), engine.profile.stages.as_dict()


def test_end_to_end_determinism():
    a = run_once()
    b = run_once()
    assert a[0] == b[0]
    assert a[1] == b[1]
    assert a[2] == b[2]


def test_kernel_timing_determinism():
    bench = BENCHMARKS["mosaic"]
    checked = bench.checked()
    inputs = bench.make_input(scale=0.15)
    times = []
    for _ in range(2):
        cf = compile_filter(
            checked,
            bench.filter_worker(),
            device=get_device("hd5970"),
            local_size=16,
        )
        cf(inputs[0])
        times.append(cf.last_timing.kernel_ns)
    assert times[0] == times[1]


def test_inputs_are_deterministic():
    for name, bench in BENCHMARKS.items():
        a = bench.make_input(scale=0.2)
        b = bench.make_input(scale=0.2)
        for x, y in zip(a, b):
            if isinstance(x, np.ndarray):
                assert np.array_equal(x, y), name
            else:
                assert x == y, name
