"""Acceptance tests for guarded execution: a *mutated* kernel (the
simulated analogue of a miscompiled or corrupted device binary) must be
detected by the sanitizer, trip the circuit breaker, and still leave the
run with the correct host-computed result.

The device kernel is mutated post-compilation by rewriting its store
site in the kernel IR (out-of-bounds offset, racy constant index, NaN
payload) and recompiling — the host interpreter path is untouched and
stays the ground truth.
"""

import numpy as np
import pytest

from repro.backend import kernel_ir as K
from repro.compiler.pipeline import compile_filter
from repro.errors import BoundsFault, NaNPoisonFault, RaceFault
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.opencl.executor import compile_kernel
from repro.runtime.profiler import ExecutionProfile
from repro.runtime.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    ResilientWorker,
    RetryPolicy,
)
from repro.runtime.sanitizer import SanitizerConfig
from repro.apps.registry import BENCHMARKS
from repro.evaluation.harness import run_configuration

from tests.conftest import SAXPY_SOURCE


def saxpy_filter(sanitizer=None):
    checked = check_program(parse_program(SAXPY_SOURCE))
    return compile_filter(
        checked,
        checked.lookup_method("Saxpy", "apply"),
        device=get_device("gtx580"),
        local_size=8,
        sanitizer=sanitizer,
    )


def mutate_store(cf, mutation):
    """Rewrite the kernel's output store and recompile the device code."""
    kernel = cf.compiled_kernel.kernel
    stores = [
        s for s in K.walk_stmts(kernel.body) if isinstance(s, K.KStore)
    ]
    assert stores, "saxpy kernel has no store?"
    mutation(stores[-1])
    cf.compiled_kernel = compile_kernel(kernel)
    return cf


def oob_write(store):
    store.index = K.KBin("+", store.index, K.KConst(100, K.K_INT), K.K_INT)


def racy_write(store):
    store.index = K.KConst(0, K.K_INT)


def nan_write(store):
    store.value = K.KConst(float("nan"), K.K_FLOAT)


def frozen(n=16):
    xs = np.arange(n, dtype=np.float32)
    xs.setflags(write=False)
    return xs


def guarded_worker(cf, expected, threshold=2):
    """Wrap ``cf`` exactly the way the engine does under resilience."""
    profile = ExecutionProfile()
    worker = ResilientWorker(
        name="Saxpy.apply",
        device_worker=cf,
        host_factory=lambda: (lambda v: expected.copy()),
        retry=RetryPolicy(max_retries=1),
        breaker=CircuitBreaker(threshold),
        profile=profile,
    )
    return worker, profile


@pytest.mark.parametrize(
    "mutation, kind, fault_cls",
    [
        (oob_write, "bounds", BoundsFault),
        (racy_write, "race", RaceFault),
        (nan_write, "nan", NaNPoisonFault),
    ],
)
def test_mutated_kernel_is_detected_and_host_result_wins(
    mutation, kind, fault_cls
):
    xs = frozen()
    expected = saxpy_filter()(xs)  # the clean kernel's answer

    cf = mutate_store(saxpy_filter(sanitizer=SanitizerConfig()), mutation)
    # Unwrapped, the mutated kernel raises the matching SanitizerFault.
    with pytest.raises(fault_cls):
        cf(xs)

    cf = mutate_store(saxpy_filter(sanitizer=SanitizerConfig()), mutation)
    worker, profile = guarded_worker(cf, expected, threshold=2)

    # Item 1: fault + retry-fault -> host fallback; breaker at 2 opens.
    out = worker(xs)
    assert np.array_equal(out, expected)
    assert worker.demoted

    # The run keeps going on the host with correct results.
    out2 = worker(xs)
    assert np.array_equal(out2, expected)

    ledger = profile.faults
    rec = ledger.tasks["Saxpy.apply"]
    assert rec.by_stage.get(kind, 0) >= 1
    assert rec.trips.get(kind, 0) >= 1
    assert ledger.demotions == ["Saxpy.apply"]
    assert profile.stages.recovery > 0  # lost time was accounted


def test_unsanitized_mutation_corrupts_silently_where_possible():
    """The NaN mutation passes undetected without guards — that is the
    gap the sanitizer closes."""
    xs = frozen()
    cf = mutate_store(saxpy_filter(), nan_write)
    out = cf(xs)
    assert np.isnan(out).all()  # garbage flowed straight through


def test_silent_corruption_end_to_end_validated_run_is_correct():
    """A full engine run with silently-corrupting hardware: every device
    output is perturbed, sampled validation catches each, the breaker
    demotes the task, and the final checksum equals the clean run's."""
    bench = BENCHMARKS["jg-series-single"]
    clean = run_configuration(
        bench, "gtx580", scale=0.05, steps=6, max_sim_items=128
    )
    policy = ResiliencePolicy.from_flags(
        silent_rate=1.0, seed=11, validate_every=1
    )
    faulty = run_configuration(
        bench,
        "gtx580",
        scale=0.05,
        steps=6,
        resilience=policy,
        max_sim_items=128,
    )
    assert faulty.checksum == clean.checksum
    faults = faulty.faults
    assert faults["guards.mismatches"] >= 1
    assert faults["per_task"]
    (rec,) = faults["per_task"].values()
    assert rec["trips"].get("validate", 0) >= 1
    # threshold=3 consecutive mismatches opened the breaker mid-stream.
    assert faults["demoted_tasks"], faults


def test_half_open_breaker_repromotes_in_engine_run():
    """With a cooloff, a transiently-bad device is probed and the task
    returns to it; the ledger records the promotion."""
    bench = BENCHMARKS["jg-series-single"]
    policy = ResiliencePolicy.from_flags(
        fault_rate=0.2,
        seed=2,
        breaker_threshold=1,
        cooloff=1,
        retry=RetryPolicy(max_retries=0),
    )
    clean = run_configuration(
        bench, "gtx580", scale=0.05, steps=10, max_sim_items=128
    )
    faulty = run_configuration(
        bench,
        "gtx580",
        scale=0.05,
        steps=10,
        resilience=policy,
        max_sim_items=128,
    )
    assert faulty.checksum == clean.checksum
    faults = faulty.faults
    assert faults["demoted_tasks"]
    assert faults["recovery.promotions"] >= 1, faults
