"""Launch-time constant-memory capacity fallback.

The memory optimizer places unbounded read-only broadcast arrays into
constant memory optimistically; when an actual input exceeds the 64KB
capacity, the glue transparently recompiles with a global-memory plan
and re-runs — results never change, only the placement.
"""

import numpy as np
import pytest

from repro.backend.kernel_ir import Space
from repro.compiler.options import FIGURE8_CONFIGS
from repro.compiler.pipeline import compile_filter
from repro.frontend import check_program, parse_program
from repro.opencl import get_device

SOURCE = """
class B {
    static local float one(float x, float[[]] table) {
        float s = 0.0f;
        for (int j = 0; j < table.length; j++) { s = s + table[j]; }
        return x + s;
    }
    static local float[[]] f(float[[]] table, float[[]] xs) {
        return B.one(table) @ xs;
    }
}
"""


@pytest.fixture(scope="module")
def compiled():
    checked = check_program(parse_program(SOURCE))
    return checked, checked.lookup_method("B", "f")


def make_filter(checked, worker, table):
    return compile_filter(
        checked,
        worker,
        device=get_device("gtx580"),
        config=FIGURE8_CONFIGS["Constant"],
        bound_values={"table": table},
        local_size=16,
    )


def expected(xs, table):
    return xs + np.float32(table.astype(np.float64).sum())


def frozen(arr):
    arr.setflags(write=False)
    return arr


def test_small_table_uses_constant_memory(compiled):
    checked, worker = compiled
    table = frozen(np.ones(32, dtype=np.float32))
    cf = make_filter(checked, worker, table)
    params = {p.name: p for p in cf.plan.kernel.params}
    assert any(
        p.space is Space.CONSTANT for p in params.values() if p.is_pointer
    )
    xs = frozen(np.arange(8, dtype=np.float32))
    out = cf(xs)
    assert np.allclose(out, expected(xs, table), rtol=1e-4)
    assert cf._fallback_filter is None  # no fallback engaged


def test_oversized_table_falls_back_to_global(compiled):
    checked, worker = compiled
    # 64KB of float32 is 16384 elements; exceed it.
    table = frozen(np.full(20000, 0.001, dtype=np.float32))
    cf = make_filter(checked, worker, table)
    xs = frozen(np.arange(8, dtype=np.float32))
    out = cf(xs)
    assert np.allclose(out, expected(xs, table), rtol=1e-3)
    assert cf._fallback_filter is not None
    fallback_params = cf._fallback_filter.plan.kernel.params
    assert all(
        p.space is not Space.CONSTANT for p in fallback_params if p.is_pointer
    )


def test_fallback_compiled_once(compiled):
    checked, worker = compiled
    table = frozen(np.full(20000, 0.001, dtype=np.float32))
    cf = make_filter(checked, worker, table)
    xs = frozen(np.arange(8, dtype=np.float32))
    cf(xs)
    first = cf._fallback_filter
    cf(xs)
    assert cf._fallback_filter is first
    # Both launches were recorded into the shared profile.
    assert cf.profile.kernel_launches == 2
