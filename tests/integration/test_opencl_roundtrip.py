"""Text round-trip: compiled kernels re-parse and re-execute.

For every benchmark, emit the compiled kernel as OpenCL C, parse that
text back through the OpenCL-C frontend, execute the re-parsed kernel on
the simulator, and compare against the NumPy reference. This closes the
loop between the two producers of kernel IR: whatever the Lime compiler
emits is real, compilable, *runnable* OpenCL under this repository's own
semantics.
"""

import numpy as np
import pytest

from repro.apps.registry import BENCHMARKS
from repro.backend.glue import np_dtype
from repro.backend.opencl_gen import emit_opencl
from repro.compiler.options import FIGURE8_CONFIGS
from repro.compiler.pipeline import compile_filter
from repro.evaluation.figure8 import _BOUND_PARAMS
from repro.opencl import get_device
from repro.opencl.clc import compile_opencl_source
from repro.opencl.executor import compile_kernel

SCALE = 0.15
LOCAL_SIZE = 16


def roundtrip_launch(bench, config_name):
    checked = bench.checked()
    inputs = bench.make_input(scale=SCALE)
    bound = {
        p: inputs[i] for p, i in _BOUND_PARAMS.get(bench.name, {}).items()
    }
    cf = compile_filter(
        checked,
        bench.filter_worker(),
        device=get_device("gtx580"),
        config=FIGURE8_CONFIGS[config_name],
        bound_values=bound or None,
        local_size=LOCAL_SIZE,
    )
    if cf.plan is None:
        pytest.skip("pure reduction: no map kernel to round-trip")

    # Emit, re-parse, re-compile.
    text = emit_opencl(cf.plan.kernel, local_size_hint=LOCAL_SIZE)
    reparsed = compile_opencl_source(text)[cf.plan.kernel.name]
    rekernel = compile_kernel(reparsed)

    # Build the same buffers the glue would.
    device_values = dict(bound)
    stream = cf.stream_param.name
    device_values[stream] = inputs[0]
    n = cf._index_space(device_values)
    buffers = {}
    scalars = {"_n": n}
    if cf.plan.input_binding is not None:
        source_param = cf.plan.kernel.meta.get("source_param", stream)
        buffers["_in"] = np.ascontiguousarray(
            device_values[source_param]
        ).reshape(-1)
    out = np.zeros(n * cf.plan.output_row, dtype=np_dtype(cf.plan.output_elem))
    buffers["_out"] = out
    for entry in cf.plan.arg_bindings:
        if entry[0] == "scalar":
            spec = entry[1]
            scalars[spec.param_name] = (
                spec.literal
                if spec.kind == "literal"
                else device_values[spec.worker_param]
            )
        else:
            spec, binding = entry[1], entry[2]
            buffers[binding.buffer] = np.ascontiguousarray(
                device_values[spec.worker_param]
            ).reshape(-1)
            scalars[binding.length_param] = int(
                np.asarray(device_values[spec.worker_param]).shape[0]
            )
    global_size = ((min(n, 2048) + LOCAL_SIZE - 1) // LOCAL_SIZE) * LOCAL_SIZE
    for spill in cf.plan.spill_buffers:
        buffers[spill.buffer] = np.zeros(
            global_size * spill.spill_size, dtype=np_dtype(spill.elem)
        )
    rekernel.launch(buffers, scalars, global_size, LOCAL_SIZE)

    result = out.reshape(-1, cf.plan.output_row) if cf.plan.output_row > 1 else out
    reference = bench.reference(*inputs)
    return result, np.asarray(reference)


ROUNDTRIP_BENCHMARKS = [
    name
    for name in sorted(BENCHMARKS)
    if name not in ("jg-crypt",)  # char pointers round-trip below
]


@pytest.mark.parametrize("name", ROUNDTRIP_BENCHMARKS)
def test_emitted_opencl_reexecutes(name):
    bench = BENCHMARKS[name]
    result, reference = roundtrip_launch(bench, "Global")
    if result.dtype.kind == "f":
        assert np.allclose(result, reference, rtol=2e-3, atol=1e-4)
    else:
        assert np.array_equal(result, reference)


@pytest.mark.parametrize(
    "config_name", ["Local+NoConflicts+Vector", "Constant+Vector"]
)
def test_optimized_nbody_roundtrips(config_name):
    bench = BENCHMARKS["nbody-single"]
    result, reference = roundtrip_launch(bench, config_name)
    assert np.allclose(result, reference, rtol=2e-3, atol=1e-4)


def test_crypt_roundtrip():
    bench = BENCHMARKS["jg-crypt"]
    result, reference = roundtrip_launch(bench, "Global")
    assert np.array_equal(result, reference)
