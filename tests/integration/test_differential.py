"""Property-based differential testing: the device executor must agree
with the host interpreter on generated element-wise programs.

Hypothesis builds random arithmetic expressions over the map element and
a couple of constants; the resulting Lime program is run both through
the interpreter and through the full GPU compilation pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.options import FIGURE8_CONFIGS, OptimizationConfig
from repro.compiler.pipeline import compile_filter
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.interp import Interpreter


@st.composite
def float_expressions(draw, depth=0):
    """A Lime expression over float variable `x` (safe: no div by zero)."""
    if depth >= 3 or draw(st.booleans()):
        return draw(
            st.sampled_from(
                ["x", "0.5f", "2.0f", "x * x", "(x + 1.5f)", "Math.abs(x)"]
            )
        )
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(float_expressions(depth=depth + 1))
    right = draw(float_expressions(depth=depth + 1))
    return "({} {} {})".format(left, op, right)


def build_program(expr):
    return check_program(
        parse_program(
            "class G {{"
            " static local float f(float x) {{ return {}; }}"
            " static local float[[]] m(float[[]] xs) {{ return G.f @ xs; }}"
            " }}".format(expr)
        )
    )


@given(float_expressions(), st.integers(1, 30))
@settings(max_examples=40, deadline=None)
def test_device_matches_interpreter_on_random_expressions(expr, n):
    checked = build_program(expr)
    rng = np.random.RandomState(abs(hash(expr)) % 2 ** 31)
    xs = (rng.rand(n).astype(np.float32) * 4 - 2).astype(np.float32)
    xs.setflags(write=False)
    interp = Interpreter(checked)
    expected = interp.call_static("G", "m", [xs])
    cf = compile_filter(
        checked,
        checked.lookup_method("G", "m"),
        device=get_device("gtx580"),
        local_size=8,
    )
    out = cf(xs)
    assert np.allclose(out, expected, rtol=1e-5, atol=1e-6, equal_nan=True)


@st.composite
def int_expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from(["x", "3", "7", "(x & 255)", "(x >> 2)"]))
    op = draw(st.sampled_from(["+", "-", "*", "^", "|", "&"]))
    left = draw(int_expressions(depth=depth + 1))
    right = draw(int_expressions(depth=depth + 1))
    return "({} {} {})".format(left, op, right)


@given(int_expressions(), st.integers(1, 20))
@settings(max_examples=40, deadline=None)
def test_integer_semantics_match_including_wrapping(expr, n):
    checked = check_program(
        parse_program(
            "class G {{"
            " static local int f(int x) {{ return {}; }}"
            " static local int[[]] m(int[[]] xs) {{ return G.f @ xs; }}"
            " }}".format(expr)
        )
    )
    rng = np.random.RandomState(abs(hash(expr)) % 2 ** 31)
    xs = rng.randint(-(2 ** 30), 2 ** 30, size=n).astype(np.int32)
    xs.setflags(write=False)
    interp = Interpreter(checked)
    expected = interp.call_static("G", "m", [xs])
    cf = compile_filter(
        checked,
        checked.lookup_method("G", "m"),
        device=get_device("gtx580"),
        local_size=8,
    )
    out = cf(xs)
    assert np.array_equal(np.asarray(out), np.asarray(expected))


@given(st.sampled_from(sorted(FIGURE8_CONFIGS)), st.integers(3, 40))
@settings(max_examples=24, deadline=None)
def test_every_config_preserves_scan_semantics(config_name, n):
    """A scan-with-accumulate worker under every optimization config."""
    source = """
    class S {
        static local float acc(float[[4]] p, float[[][4]] all) {
            float s = 0.0f;
            for (int j = 0; j < all.length; j++) {
                s = s + all[j][0] * p[1] - all[j][3];
            }
            return s;
        }
        static local float[[]] m(float[[][4]] all) { return S.acc(all) @ all; }
    }
    """
    checked = check_program(parse_program(source))
    rng = np.random.RandomState(n * 13)
    data = rng.rand(n, 4).astype(np.float32)
    data.setflags(write=False)
    interp = Interpreter(checked)
    expected = interp.call_static("S", "m", [data])
    cf = compile_filter(
        checked,
        checked.lookup_method("S", "m"),
        device=get_device("gtx8800"),
        config=FIGURE8_CONFIGS[config_name],
        local_size=8,
    )
    out = cf(data)
    assert np.allclose(out, expected, rtol=1e-4, atol=1e-5)
