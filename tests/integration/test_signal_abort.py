"""Graceful SIGTERM/SIGINT for ``repro run`` (ISSUE 7 satellite).

Operators stop runs with signals, not REPRO_* test hooks. A signalled
``repro run --journal`` must append an ``aborted`` record (a clean
resume boundary) and exit with the conventional ``128 + signum``
status — mirroring the wall-deadline watchdog's 124 — and a later
``--resume`` must finish the stream bit-exactly.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
BENCH = "mosaic"
ARGS = ["--target", "gtx580", "--scale", "0.4", "--steps", "10",
        "--max-sim-items", "64"]


def start_run(journal, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "run", BENCH, *ARGS,
         "--journal", os.fspath(journal), *extra],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def wait_for_journal_items(journal, timeout_s=120):
    """Block until the WAL holds at least one durable *item* record
    (not just the meta header or an in-flight payload)."""
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        try:
            if "item" in journal_record_types(journal):
                return
        except FileNotFoundError:
            pass
        time.sleep(0.05)
    raise AssertionError("journal never accumulated items")


def journal_record_types(journal):
    import struct

    wal = os.path.join(os.fspath(journal), "journal.wal")
    data = open(wal, "rb").read()
    types, off = [], 0
    while off + 8 <= len(data):
        length, _crc = struct.unpack_from("<II", data, off)
        if off + 8 + length > len(data):
            break
        types.append(
            json.loads(data[off + 8:off + 8 + length]).get("type")
        )
        off += 8 + length
    return types


@pytest.mark.parametrize(
    "signum,expected_rc",
    [(signal.SIGTERM, 143), (signal.SIGINT, 130)],
    ids=["sigterm", "sigint"],
)
def test_signal_aborts_are_journaled_with_conventional_exit(
    tmp_path, signum, expected_rc
):
    journal = tmp_path / "journal"
    proc = start_run(journal)
    try:
        wait_for_journal_items(journal)
        proc.send_signal(signum)
        rc = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert rc == expected_rc, proc.stderr.read()
    types = journal_record_types(journal)
    assert types[-1] == "aborted"
    assert "item" in types  # real progress happened before the signal
    if signum == signal.SIGINT:
        return  # the resume round-trip below is covered once, by sigterm

    # The signalled run resumes to the same checksum as an
    # uninterrupted one.
    out = tmp_path / "resumed.json"
    resumed = start_run(journal, "--resume", "--json", os.fspath(out))
    assert resumed.wait(timeout=300) == 0, resumed.stderr.read()
    clean_out = tmp_path / "clean.json"
    clean = start_run(tmp_path / "clean-journal", "--json",
                      os.fspath(clean_out))
    assert clean.wait(timeout=300) == 0, clean.stderr.read()
    got = json.loads(out.read_text())
    want = json.loads(clean_out.read_text())
    assert got["checksum"] == want["checksum"]
    assert got["journal"]["resumed"] is True
    assert got["journal"]["items_skipped"] >= 1
