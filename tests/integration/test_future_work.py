"""Tests for the Section 5.3 future-work optimizations."""

import numpy as np
import pytest

from repro.apps.registry import BENCHMARKS
from repro.compiler import Offloader
from repro.opencl import get_device
from repro.runtime.engine import Engine

SCALE = 0.3


def run_nbody(**offloader_kwargs):
    bench = BENCHMARKS["nbody-single"]
    checked = bench.checked()
    inputs = bench.make_input(scale=SCALE)
    offloader = Offloader(device=get_device("gtx580"), **offloader_kwargs)
    engine = Engine(checked, offloader=offloader)
    checksum = engine.run_static(bench.main_class, bench.run_method, inputs + [3])
    return checksum, engine


def test_direct_marshal_removes_c_stage_and_preserves_results():
    cs_base, base = run_nbody()
    cs_direct, direct = run_nbody(direct_marshal=True)
    assert cs_direct == pytest.approx(cs_base)
    assert direct.profile.stages.c_marshal == 0.0
    assert base.profile.stages.c_marshal > 0.0
    assert direct.total_ns() < base.total_ns()


def test_direct_marshal_roughly_halves_marshalling():
    _, base = run_nbody()
    _, direct = run_nbody(direct_marshal=True)
    base_marshal = base.profile.stages.java_marshal + base.profile.stages.c_marshal
    direct_marshal_ns = (
        direct.profile.stages.java_marshal + direct.profile.stages.c_marshal
    )
    # "approximately halve the marshaling overhead"
    assert 0.4 < direct_marshal_ns / base_marshal < 0.85


def test_overlap_hides_communication_behind_kernels():
    cs_base, base = run_nbody()
    cs_overlap, overlap = run_nbody(overlap=True)
    assert cs_overlap == pytest.approx(cs_base)
    assert overlap.profile.communication_ns() < base.profile.communication_ns()
    assert overlap.total_ns() < base.total_ns()
    # Kernel time itself is untouched.
    assert overlap.profile.stages.kernel == pytest.approx(
        base.profile.stages.kernel
    )


def test_overlap_does_not_hide_first_item():
    # With a single stream item nothing can overlap: identical totals.
    bench = BENCHMARKS["nbody-single"]
    checked = bench.checked()
    inputs = bench.make_input(scale=SCALE)

    def run(overlap):
        offloader = Offloader(device=get_device("gtx580"), overlap=overlap)
        engine = Engine(checked, offloader=offloader)
        engine.run_static(bench.main_class, bench.run_method, inputs + [1])
        return engine.total_ns()

    assert run(True) == pytest.approx(run(False))


def test_both_optimizations_compose():
    cs_base, base = run_nbody()
    cs_all, combined = run_nbody(direct_marshal=True, overlap=True)
    assert cs_all == pytest.approx(cs_base)
    assert combined.total_ns() < base.total_ns()
