"""Differential property tests for the execution tiers.

The batch tier (vectorized whole-NDRange execution) must be
*bit-identical* to the per-item tier — and both must agree with the
host interpreter — on every app. Two layers of evidence:

- **End to end**: each Table 3 benchmark runs under ``per-item`` and
  ``batch`` with the same config; checksums, total simulated time, and
  the full stage breakdown must match exactly (timing equality means
  the tiers produced identical instruction traces, segment counts, and
  memory-access sites — not just identical output buffers). The
  bytecode target supplies the interpreter's checksum.
- **Kernel level, randomized inputs**: every launch of a run is
  captured and replayed under both tiers on seeded-random buffer
  contents; every output buffer must be NaN-safe bit-equal
  (:func:`repro.runtime.sanitizer.values_equal`) and the simulated
  op-cycle counts identical.

Local-memory staging is compiled off (``use_local=False``) so the
batch tier is eligible for every app's map kernel; the tiling variants
are covered by the decline tests in
``tests/opencl/test_batch_executor.py``.
"""

import numpy as np
import pytest

from repro.apps.registry import BENCHMARKS
from repro.evaluation.harness import run_configuration
from repro.evaluation.perfbench import capture_launches, nolocal_config
from repro.runtime.sanitizer import values_equal

APPS = sorted(BENCHMARKS)

SCALE = 0.1
MAX_ITEMS = 128


def _run(name, tier, config):
    return run_configuration(
        BENCHMARKS[name],
        "gtx580",
        scale=SCALE,
        steps=1,
        config=config,
        max_sim_items=MAX_ITEMS,
        exec_tier=tier,
    )


@pytest.mark.parametrize("name", APPS)
def test_end_to_end_tiers_and_interpreter_agree(name):
    config = nolocal_config()
    per_item = _run(name, "per-item", config)
    batch = _run(name, "batch", config)

    assert values_equal(per_item.checksum, batch.checksum)
    # Timing equality is the strong check: identical simulated time
    # means identical instruction segments and memory-access traces.
    assert per_item.total_ns == batch.total_ns
    assert per_item.stages == batch.stages

    # The tier request was honored, not silently ignored.
    assert per_item.executor["executor.launches"] == {
        "per-item": sum(per_item.executor["executor.launches"].values())
    }
    assert batch.executor["executor.launches"].get("batch", 0) > 0

    host = run_configuration(
        BENCHMARKS[name], "bytecode", scale=SCALE, steps=1
    )
    assert values_equal(per_item.checksum, host.checksum)


def _randomize(buffers, rng):
    """Seeded-random float contents (positive, away from zero, so no
    tier hits a math-domain fault); integer buffers keep their captured
    values — they may index memory."""
    out = {}
    for name, buf in buffers.items():
        if buf.dtype.kind == "f":
            out[name] = (rng.rand(buf.size) + 0.5).astype(buf.dtype)
        else:
            out[name] = buf.copy()
    return out


@pytest.mark.parametrize("name", APPS)
def test_kernel_level_bit_equal_on_random_inputs(name):
    config = nolocal_config()
    with capture_launches() as captured:
        run_configuration(
            BENCHMARKS[name],
            "gtx580",
            scale=SCALE,
            steps=1,
            config=config,
            max_sim_items=MAX_ITEMS,
            exec_tier="per-item",
        )
    rng = np.random.RandomState(abs(hash(name)) % 2**31)
    compared = 0
    for kname, rec in sorted(captured.items()):
        compiled = rec["kernel"]
        if not compiled.batch_supported or compiled._batch_callable() is None:
            continue
        for bufs, scalars, gsz, lsz in rec["launches"][:2]:
            seed_bufs = _randomize(bufs, rng)
            item_bufs = {n: b.copy() for n, b in seed_bufs.items()}
            batch_bufs = {n: b.copy() for n, b in seed_bufs.items()}
            item_trace = compiled.launch(
                item_bufs, dict(scalars), gsz, lsz, tier="per-item"
            )
            batch_trace = compiled.launch(
                batch_bufs, dict(scalars), gsz, lsz, tier="batch"
            )
            assert item_trace.tier == "per-item"
            assert batch_trace.tier == "batch"
            assert item_trace.op_cycles == batch_trace.op_cycles, kname
            for pname in item_bufs:
                assert values_equal(item_bufs[pname], batch_bufs[pname]), (
                    "buffer {!r} of kernel {} diverged between tiers".format(
                        pname, kname
                    )
                )
            compared += 1
    assert compared > 0, "no batch-eligible kernel captured for " + name
