"""End-to-end fleet chaos tests: transparent failover and
OOM-partitioned relaunch.

The acceptance bar for the fleet layer: a two-device run with one
device killed mid-stream must produce the *bit-exact* single-device
result with zero host fallbacks — every item is recovered inside the
fleet — and the Chrome trace must show the scheduling on per-device
tracks. A device memory ceiling must likewise be absorbed by splitting
the NDRange, never by dropping to the host interpreter.
"""

import pytest

from repro.apps.registry import BENCHMARKS
from repro.evaluation.harness import run_configuration
from repro.runtime.resilience import FleetPolicy, ResiliencePolicy
from repro.runtime.tracing import Tracer

SCALE = 0.2
STEPS = 4
MAX_ITEMS = 128


def run(devices=None, resilience=None, tracer=None, steps=STEPS,
        fleet_policy=None, bench="jg-series-single"):
    return run_configuration(
        BENCHMARKS[bench],
        "gtx580",
        scale=SCALE,
        steps=steps,
        max_sim_items=MAX_ITEMS,
        devices=devices,
        resilience=resilience,
        tracer=tracer,
        fleet_policy=fleet_policy,
    )


# -- transparent failover ----------------------------------------------------


@pytest.mark.parametrize("bench", ["jg-series-single", "mosaic"])
def test_killed_device_fails_over_bit_exact(bench):
    clean = run(bench=bench)
    policy = ResiliencePolicy.from_flags(kill_devices={"gtx580": 0})
    tracer = Tracer(wallclock=lambda: 0)
    chaos = run(
        bench=bench, devices=["gtx580", "hd5970"], resilience=policy,
        tracer=tracer,
    )

    # Bit-exact output, recovered entirely inside the fleet: every item
    # failed over to the surviving device, none fell back to the host.
    assert chaos.checksum == clean.checksum
    assert chaos.faults["recovery.failovers"] > 0
    assert chaos.faults["recovery.fallbacks"] == 0
    assert chaos.metrics["recovery.failovers.from.gtx580"] == \
        chaos.faults["recovery.failovers"]
    assert chaos.offloaded == clean.offloaded

    # The dead device was demoted by its breaker; the survivor did all
    # the real work.
    assert chaos.fleet["gtx580"]["state"] == "demoted"
    assert chaos.fleet["gtx580"]["launches"] == 0
    assert chaos.fleet["gtx580"]["faults"] > 0
    assert chaos.fleet["hd5970"]["state"] == "healthy"
    assert chaos.fleet["hd5970"]["launches"] > 0

    # The Chrome trace shows both device tracks plus the main track.
    events = tracer.chrome_events()
    thread_names = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert "device:gtx580" in thread_names
    assert "device:hd5970" in thread_names
    tids = {e["tid"] for e in events if e["ph"] != "M"}
    assert len(tids) >= 3  # main simulated-time track + 2 device tracks
    failover_instants = [
        e for e in events if e["ph"] == "i" and e["name"] == "failover"
    ]
    assert failover_instants
    assert all(
        e["args"]["device"] == "gtx580" and e["args"]["to"] == "hd5970"
        for e in failover_instants
    )


def test_single_device_trace_has_no_device_tracks():
    tracer = Tracer(wallclock=lambda: 0)
    run(tracer=tracer)
    events = tracer.chrome_events()
    assert {e["tid"] for e in events} == {1}
    thread_names = [
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert thread_names == ["simulated-time"]


def test_fleet_run_without_faults_matches_single_device_checksum():
    clean = run()
    fleet = run(devices=["gtx580", "hd5970"])
    assert fleet.checksum == clean.checksum
    assert fleet.faults == {}
    assert fleet.target == "fleet:gtx580+hd5970"
    # Health placement explored both devices.
    total = sum(rec["launches"] for rec in fleet.fleet.values())
    assert total > 0
    assert all(rec["launches"] > 0 for rec in fleet.fleet.values())


def test_fleet_runs_are_deterministic():
    policy = ResiliencePolicy.from_flags(kill_devices={"gtx580": 1})
    a = run(devices=["gtx580", "hd5970"], resilience=policy)
    policy = ResiliencePolicy.from_flags(kill_devices={"gtx580": 1})
    b = run(devices=["gtx580", "hd5970"], resilience=policy)
    assert a.checksum == b.checksum
    assert a.total_ns == b.total_ns
    assert a.faults == b.faults
    assert a.fleet == b.fleet


def test_round_robin_policy_spreads_items():
    fleet = run(
        devices=["gtx580", "hd5970"],
        fleet_policy=FleetPolicy(policy="round-robin"),
        steps=6,
    )
    clean = run(steps=6)
    assert fleet.checksum == clean.checksum
    launches = {k: rec["launches"] for k, rec in fleet.fleet.items()}
    assert launches["gtx580"] > 0 and launches["hd5970"] > 0


# -- OOM-partitioned relaunch ------------------------------------------------


def test_oom_is_absorbed_by_partitioned_relaunch():
    clean = run(steps=2)
    policy = ResiliencePolicy.from_flags(oom_bytes=256)
    squeezed = run(steps=2, resilience=policy)

    assert squeezed.checksum == clean.checksum
    assert squeezed.faults["recovery.partitioned_launches"] > 0
    # The OOM never reached the host-fallback tier.
    assert squeezed.faults["recovery.fallbacks"] == 0
    assert squeezed.faults.get("demoted_tasks", []) == []
    assert squeezed.metrics.get("recovery.partitioned_launches") == \
        squeezed.faults["recovery.partitioned_launches"]
    # Partitioning costs extra launches, which the run accounts for.
    assert squeezed.total_ns >= clean.total_ns


def test_tighter_ceiling_means_more_chunks():
    loose_policy = ResiliencePolicy.from_flags(oom_bytes=256)
    tight_policy = ResiliencePolicy.from_flags(oom_bytes=64)
    loose = run(steps=2, resilience=loose_policy)
    tight = run(steps=2, resilience=tight_policy)
    assert tight.checksum == loose.checksum
    assert (
        tight.faults["recovery.partitioned_launches"]
        > loose.faults["recovery.partitioned_launches"]
    )


def test_partitioned_relaunch_emits_trace_instants():
    policy = ResiliencePolicy.from_flags(oom_bytes=256)
    tracer = Tracer(wallclock=lambda: 0)
    run(steps=2, resilience=policy, tracer=tracer)
    instants = [
        s for s in tracer.events if s.name == "partitioned_relaunch"
    ]
    assert instants
    for span in instants:
        assert span.cat == "recovery"
        assert span.args["chunks"] >= 2


def test_oom_in_a_fleet_partitions_on_the_placed_device():
    clean = run(steps=2)
    policy = ResiliencePolicy.from_flags(oom_bytes=256)
    squeezed = run(
        steps=2, devices=["gtx580", "hd5970"], resilience=policy
    )
    assert squeezed.checksum == clean.checksum
    assert squeezed.faults["recovery.partitioned_launches"] > 0
    assert squeezed.faults["recovery.fallbacks"] == 0
