"""Differential stress tests for the tiling/vectorization machinery:
random row widths, awkward sizes, every device, every configuration."""

import numpy as np
import pytest

from repro.compiler.options import FIGURE8_CONFIGS
from repro.compiler.pipeline import compile_filter
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.interp import Interpreter


def scan_program(width):
    """A worker that scans a width-``width`` row array with per-lane
    coefficients — exercises flattening, hoisting, tiling and padding
    for that row width."""
    terms = " + ".join(
        "arr[j][{k}] * p[{k}]".format(k=k) for k in range(width)
    )
    return """
    class S {{
        static local float one(float[[{w}]] p, float[[][{w}]] arr) {{
            float s = 0.0f;
            for (int j = 0; j < arr.length; j++) {{
                s = s + {terms};
            }}
            return s;
        }}
        static local float[[]] f(float[[][{w}]] arr) {{
            return S.one(arr) @ arr;
        }}
    }}
    """.format(w=width, terms=terms)


WIDTHS = [2, 3, 4, 5, 8, 16]


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize(
    "config_name", ["Global", "Local+NoConflicts+Vector", "Constant+Vector", "Texture"]
)
def test_row_widths_across_configs(width, config_name):
    checked = check_program(parse_program(scan_program(width)))
    rng = np.random.RandomState(width * 101)
    n = 23  # deliberately not a multiple of the work-group size
    data = (rng.rand(n, width).astype(np.float32) - 0.5).astype(np.float32)
    data.setflags(write=False)
    interp = Interpreter(checked)
    expected = interp.call_static("S", "f", [data])
    cf = compile_filter(
        checked,
        checked.lookup_method("S", "f"),
        device=get_device("gtx8800"),
        config=FIGURE8_CONFIGS[config_name],
        local_size=16,
    )
    out = cf(data)
    assert np.allclose(out, expected, rtol=1e-4, atol=1e-5), (
        width,
        config_name,
    )


@pytest.mark.parametrize("device", ["gtx8800", "gtx580", "hd5970", "core-i7"])
def test_width3_tiled_on_every_device(device):
    # Width 3 (the paper's force tuples) with padding logic per device
    # bank count.
    checked = check_program(parse_program(scan_program(3)))
    rng = np.random.RandomState(3)
    data = rng.rand(19, 3).astype(np.float32)
    data.setflags(write=False)
    interp = Interpreter(checked)
    expected = interp.call_static("S", "f", [data])
    cf = compile_filter(
        checked,
        checked.lookup_method("S", "f"),
        device=get_device(device),
        config=FIGURE8_CONFIGS["Local+NoConflicts"],
        local_size=8,
    )
    assert np.allclose(cf(data), expected, rtol=1e-4, atol=1e-5)


@pytest.mark.parametrize("n", [1, 7, 16, 17, 64, 65])
def test_sizes_around_workgroup_boundaries(n):
    checked = check_program(parse_program(scan_program(4)))
    rng = np.random.RandomState(n)
    data = rng.rand(n, 4).astype(np.float32)
    data.setflags(write=False)
    interp = Interpreter(checked)
    expected = interp.call_static("S", "f", [data])
    cf = compile_filter(
        checked,
        checked.lookup_method("S", "f"),
        device=get_device("gtx580"),
        config=FIGURE8_CONFIGS["Local+NoConflicts+Vector"],
        local_size=16,
    )
    assert np.allclose(cf(data), expected, rtol=1e-4, atol=1e-5)
