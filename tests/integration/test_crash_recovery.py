"""Process-level crash-recovery chaos tests.

The acceptance bar for the journal layer: SIGKILL a *real* ``repro
run --journal`` subprocess at a deterministic item boundary (the
``REPRO_JOURNAL_CRASH_AFTER_ITEMS`` hook fires after the record is
fsync-durable), resume in a fresh process, and the final checksum must
be bit-exact against an uninterrupted run — with every journaled item
skipped and every kernel served from the on-disk store (zero
recompiles). The ``--wall-deadline-ms`` watchdog must likewise convert
a wall-clock overrun into a clean, journaled abort with a dedicated
exit code rather than a hung or half-written run.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SCALE = "0.2"
STEPS = "4"
MAX_ITEMS = "128"
WALL_DEADLINE_EXIT = 124


def repro_run(bench, *extra, journal=None, json_out=None, env_extra=None):
    cmd = [
        sys.executable, "-m", "repro", "run", bench,
        "--target", "gtx580",
        "--scale", SCALE,
        "--steps", STEPS,
        "--max-sim-items", MAX_ITEMS,
    ]
    if journal is not None:
        cmd += ["--journal", os.fspath(journal)]
    if json_out is not None:
        cmd += ["--json", os.fspath(json_out)]
    cmd += list(extra)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env.pop("REPRO_JOURNAL_CRASH_AFTER_ITEMS", None)
    env.pop("REPRO_KERNEL_CACHE_DIR", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        cmd, cwd=REPO, env=env, capture_output=True, text=True, timeout=300
    )


def load(path):
    with open(path) as fh:
        return json.load(fh)


@pytest.mark.parametrize("bench", ["jg-series-single", "mosaic"])
@pytest.mark.parametrize("kill_after", [1, 2, 3])
def test_sigkill_then_resume_is_bit_exact(tmp_path, bench, kill_after):
    clean_json = tmp_path / "clean.json"
    proc = repro_run(bench, json_out=clean_json)
    assert proc.returncode == 0, proc.stderr
    clean = load(clean_json)

    journal = tmp_path / "journal"
    crashed = repro_run(
        bench,
        journal=journal,
        env_extra={"REPRO_JOURNAL_CRASH_AFTER_ITEMS": str(kill_after)},
    )
    # The hook SIGKILLs the process itself after the Nth durable item.
    assert crashed.returncode == -signal.SIGKILL
    assert (journal / "journal.wal").exists()

    resumed_json = tmp_path / "resumed.json"
    proc = repro_run(
        bench, "--resume", journal=journal, json_out=resumed_json
    )
    assert proc.returncode == 0, proc.stderr
    resumed = load(resumed_json)

    # Bit-exact recovery: checksum, simulated total, and per-stage
    # breakdown all match the uninterrupted run.
    assert resumed["checksum"] == clean["checksum"]
    assert resumed["total_ns"] == clean["total_ns"]
    assert resumed["stages"] == clean["stages"]
    # Every durable item was skipped, none recomputed.
    assert resumed["journal"]["resumed"] is True
    assert resumed["journal"]["items_skipped"] == kill_after
    assert resumed["journal"]["digest_mismatches"] == 0
    # Zero recompiles: the on-disk store (defaulting to
    # <journal>/kernels) served every kernel.
    assert resumed["metrics"]["cache.disk_hits"] > 0
    assert "cache.misses" not in resumed["metrics"]


def test_sigkill_mid_fleet_run_recovers_health_state(tmp_path):
    fleet = ["--devices", "gtx580,hd5970", "--kill-device", "gtx580:0"]
    clean_json = tmp_path / "clean.json"
    proc = repro_run("jg-series-single", *fleet, json_out=clean_json)
    assert proc.returncode == 0, proc.stderr
    clean = load(clean_json)

    journal = tmp_path / "journal"
    crashed = repro_run(
        "jg-series-single",
        *fleet,
        journal=journal,
        env_extra={"REPRO_JOURNAL_CRASH_AFTER_ITEMS": "2"},
    )
    assert crashed.returncode == -signal.SIGKILL

    resumed_json = tmp_path / "resumed.json"
    proc = repro_run(
        "jg-series-single",
        *fleet,
        "--resume",
        journal=journal,
        json_out=resumed_json,
    )
    assert proc.returncode == 0, proc.stderr
    resumed = load(resumed_json)
    assert resumed["checksum"] == clean["checksum"]
    assert resumed["total_ns"] == clean["total_ns"]
    assert resumed["faults"] == clean["faults"]
    # The journal replay reconstructed the fleet's health bookkeeping.
    assert resumed["fleet"] == clean["fleet"]


def test_torn_tail_in_subprocess_journal_is_recovered(tmp_path):
    journal = tmp_path / "journal"
    clean_json = tmp_path / "clean.json"
    proc = repro_run("jg-series-single", journal=journal, json_out=clean_json)
    assert proc.returncode == 0, proc.stderr
    clean = load(clean_json)

    with open(journal / "journal.wal", "ab") as fh:
        fh.write(b"\x00\x00garbage: a frame the crash never finished")

    resumed_json = tmp_path / "resumed.json"
    proc = repro_run(
        "jg-series-single", "--resume", journal=journal,
        json_out=resumed_json,
    )
    assert proc.returncode == 0, proc.stderr
    resumed = load(resumed_json)
    assert resumed["checksum"] == clean["checksum"]
    assert resumed["journal"]["torn_tail_truncated"] == 1


def test_wall_deadline_exits_with_dedicated_code(tmp_path):
    # A 1ms deadline cannot be met; the watchdog must fire and exit
    # with the dedicated code. (At this deadline the timer may beat
    # the journal's open, so the `aborted` record is asserted in
    # test_wall_deadline_aborts_into_an_open_journal below.)
    journal = tmp_path / "journal"
    proc = repro_run(
        "jg-series-single", "--wall-deadline-ms", "1", journal=journal
    )
    assert proc.returncode == WALL_DEADLINE_EXIT


def test_wall_deadline_aborts_into_an_open_journal(tmp_path):
    # Deterministic watchdog-x-journal interaction: the journal is
    # already open when the timer expires, so the abort must land as a
    # durable `aborted` record before the process exits 124.
    journal = tmp_path / "journal"
    script = (
        "import sys, time\n"
        "from repro.cli import _start_wall_watchdog\n"
        "from repro.runtime.journal import RunJournal\n"
        "j = RunJournal.open({!r}, {{'bench': 'hang'}})\n"
        "_start_wall_watchdog(50)\n"
        "time.sleep(60)\n"
    ).format(os.fspath(journal))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        cwd=REPO, env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == WALL_DEADLINE_EXIT
    assert "wall deadline" in proc.stderr

    from repro.runtime.journal import scan_frames

    records, _, torn = scan_frames((journal / "journal.wal").read_bytes())
    assert not torn
    assert records[-1]["type"] == "aborted"
    assert "50 ms" in records[-1]["reason"]


def test_generous_wall_deadline_does_not_fire(tmp_path):
    out = tmp_path / "out.json"
    proc = repro_run(
        "jg-series-single", "--wall-deadline-ms", "300000", json_out=out
    )
    assert proc.returncode == 0, proc.stderr
    assert load(out)["checksum"]
