"""CLI tests (in-process invocation of repro.cli.main)."""

import pytest

from repro.cli import main

SAXPY = """
class Saxpy {
    static local float[[]] apply(float[[]] xs) {
        return Saxpy.one(2.5f) @ xs;
    }
    static local float one(float x, float a) {
        return a * x + 1.0f;
    }
}
"""


@pytest.fixture
def saxpy_file(tmp_path):
    path = tmp_path / "saxpy.lime"
    path.write_text(SAXPY)
    return str(path)


def test_devices(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "GTX 580" in out and "Core i7" in out


def test_compile_emits_opencl(saxpy_file, capsys):
    assert main(["compile", saxpy_file]) == 0
    out = capsys.readouterr().out
    assert "__kernel void Saxpy_apply_kernel" in out
    assert "__global const float* _in" in out


def test_compile_with_config(saxpy_file, capsys):
    assert main(["compile", saxpy_file, "--config", "Global"]) == 0
    out = capsys.readouterr().out
    assert "global-only" in out


def test_compile_no_filters(tmp_path, capsys):
    path = tmp_path / "plain.lime"
    path.write_text("class A { static int f() { return 1; } }")
    assert main(["compile", str(path)]) == 1
    assert "no offloadable filters" in capsys.readouterr().out


def test_format_roundtrips(saxpy_file, capsys):
    assert main(["format", saxpy_file]) == 0
    out = capsys.readouterr().out
    assert "static local float[[]] apply" in out


def test_tune(saxpy_file, capsys):
    assert main(["tune", saxpy_file, "Saxpy.apply", "--n", "32"]) == 0
    out = capsys.readouterr().out
    assert "<- best" in out


def test_tune_unknown_method(saxpy_file, capsys):
    assert main(["tune", saxpy_file, "Saxpy.missing"]) == 1


def test_missing_file(capsys):
    assert main(["compile", "/nonexistent.lime"]) == 1
    assert "error" in capsys.readouterr().err


def test_parse_error_reported(tmp_path, capsys):
    path = tmp_path / "bad.lime"
    path.write_text("class {")
    assert main(["compile", str(path)]) == 1
    assert "error" in capsys.readouterr().err


def test_figures_tables(capsys):
    assert main(["figures", "tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 3" in out


def test_run_clean(capsys):
    assert main(
        ["run", "jg-series-single", "--target", "gtx580", "--scale", "0.2"]
    ) == 0
    out = capsys.readouterr().out
    assert "checksum:" in out
    assert "kernel" in out
    assert "no device faults" in out
    assert "recovery" not in out


def test_run_with_faults_matches_clean_checksum(capsys):
    assert main(
        ["run", "jg-series-single", "--target", "gtx580", "--scale", "0.2"]
    ) == 0
    clean = capsys.readouterr().out
    assert main(
        ["run", "jg-series-single", "--target", "gtx580", "--scale", "0.2",
         "--faults", "0.3", "--fault-seed", "7"]
    ) == 0
    faulted = capsys.readouterr().out

    def checksum(text):
        return [l for l in text.splitlines() if l.startswith("checksum:")][0]

    assert checksum(faulted) == checksum(clean)
    assert "failure ledger:" in faulted
    assert "faults=" in faulted
    assert "recovery" in faulted


def test_run_unknown_benchmark(capsys):
    assert main(["run", "no-such-benchmark"]) == 1
    assert "unknown benchmark" in capsys.readouterr().err


def test_run_unknown_target(capsys):
    assert main(["run", "jg-series-single", "--target", "vaporware"]) == 1
    assert "unknown target" in capsys.readouterr().err


def test_run_max_sim_items_flag(capsys):
    assert main(
        ["run", "jg-series-single", "--target", "gtx580", "--scale", "0.2",
         "--max-sim-items", "64"]
    ) == 0
    assert "checksum:" in capsys.readouterr().out


def test_run_sanitize_clean(capsys):
    assert main(
        ["run", "jg-series-single", "--target", "gtx580", "--scale", "0.1",
         "--max-sim-items", "128", "--sanitize", "--validate-every", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "guards:" in out
    assert "bounds/races/divergence/nan" in out
    assert "validate-every=4" in out
    assert "mismatches=0" in out
    # No trip kind fired on a correct kernel.
    for kind in ("bounds=", "race=", "divergence=", "nan="):
        assert kind not in out, out


def test_run_deadline_flag(capsys):
    assert main(
        ["run", "jg-series-single", "--target", "gtx580", "--scale", "0.1",
         "--max-sim-items", "128", "--deadline-ns", "1e12"]
    ) == 0
    out = capsys.readouterr().out
    assert "deadline=1000000000000ns" in out


def test_run_silent_faults_caught_by_validation(capsys):
    assert main(
        ["run", "jg-series-single", "--target", "gtx580", "--scale", "0.1",
         "--max-sim-items", "128"]
    ) == 0
    clean = capsys.readouterr().out
    assert main(
        ["run", "jg-series-single", "--target", "gtx580", "--scale", "0.1",
         "--max-sim-items", "128", "--silent-faults", "1.0",
         "--validate-every", "1", "--fault-seed", "3"]
    ) == 0
    faulted = capsys.readouterr().out

    def checksum(text):
        return [l for l in text.splitlines() if l.startswith("checksum:")][0]

    # Validation replaced every corrupted answer with the host's.
    assert checksum(faulted) == checksum(clean)
    assert "validate=" in faulted
    assert "mismatches=0" not in faulted


def test_run_breaker_cooloff_flag(capsys):
    assert main(
        ["run", "jg-series-single", "--target", "gtx580", "--scale", "0.1",
         "--max-sim-items", "128", "--faults", "0.2", "--fault-seed", "2",
         "--breaker-cooloff", "1"]
    ) == 0
    assert "checksum:" in capsys.readouterr().out


def test_run_trace_out_chrome_and_flame(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.json"
    assert main(
        ["run", "jg-series-single", "--target", "gtx580", "--scale", "0.1",
         "--max-sim-items", "128", "--trace-out", str(trace)]
    ) == 0
    out = capsys.readouterr().out
    assert "trace:" in out and str(trace) in out
    # The acceptance bar: spans cover >= 95% of reported wall time.
    pct_line = [l for l in out.splitlines() if "time covered" in l][0]
    pct = float(pct_line.split("(")[1].split("spans,")[1].split("%")[0])
    assert pct >= 95.0
    payload = json.loads(trace.read_text())
    assert payload["traceEvents"]

    assert main(["trace", str(trace)]) == 0
    flame = capsys.readouterr().out
    assert "flame summary" in flame
    assert "kernel" in flame


def test_run_trace_out_jsonl_and_diff(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    for path, extra in ((a, []), (b, ["--faults", "0.3",
                                      "--fault-seed", "7"])):
        assert main(
            ["run", "jg-series-single", "--target", "gtx580",
             "--scale", "0.1", "--max-sim-items", "128",
             "--trace-out", str(path)] + extra
        ) == 0
        capsys.readouterr()
    assert main(["trace", str(a), str(b), "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "trace diff" in out
    assert "retry_backoff" in out


def test_trace_missing_or_empty_file(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["trace", str(empty)]) == 1
    assert "no trace events" in capsys.readouterr().err
