__kernel void NBody_computeForces_kernel(__global const float* _in, __global float* _out, __global const float* particles, int _len_particles, int _n) {
    __private float p_f_2[3];
    __local float tile_particles_6[640];
    int _gid = get_global_id(0);
    int _nthreads = get_global_size(0);
    int _iters = (((_n + _nthreads) - 1) / _nthreads);
    for (int _it = 0; _it < _iters; _it += 1) {
        int _i = (_gid + (_it * _nthreads));
        int _active = (_i < _n);
        int _ix = (_active ? _i : 0);
        float4 elemv_1 = vload4(_ix, _in);
        p_f_2[0] = 0.0f;
        p_f_2[1] = 0.0f;
        p_f_2[2] = 0.0f;
        int tile_n_3 = _len_particles;
        int lid_4 = get_local_id(0);
        int lsz_5 = get_local_size(0);
        for (int jj_7 = 0; jj_7 < tile_n_3; jj_7 += lsz_5) {
            barrier(CLK_LOCAL_MEM_FENCE);
            if (((jj_7 + lid_4) < tile_n_3)) {
                float4 stg_8 = vload4((jj_7 + lid_4), particles);
                tile_particles_6[(lid_4 * 5)] = stg_8.s0;
                tile_particles_6[((lid_4 * 5) + 1)] = stg_8.s1;
                tile_particles_6[((lid_4 * 5) + 2)] = stg_8.s2;
                tile_particles_6[((lid_4 * 5) + 3)] = stg_8.s3;
            }
            barrier(CLK_LOCAL_MEM_FENCE);
            int limit_9 = min(lsz_5, (tile_n_3 - jj_7));
            for (int j2_10 = 0; j2_10 < limit_9; j2_10 += 1) {
                int v_j_11 = (jj_7 + j2_10);
                float v_dx_12 = (tile_particles_6[(j2_10 * 5)] - elemv_1.s0);
                float v_dy_13 = (tile_particles_6[((j2_10 * 5) + 1)] - elemv_1.s1);
                float v_dz_14 = (tile_particles_6[((j2_10 * 5) + 2)] - elemv_1.s2);
                float v_r2_15 = ((((v_dx_12 * v_dx_12) + (v_dy_13 * v_dy_13)) + (v_dz_14 * v_dz_14)) + 0.0125f);
                float v_inv_16 = (1.0f / sqrt(v_r2_15));
                float v_s_17 = (((tile_particles_6[((j2_10 * 5) + 3)] * v_inv_16) * v_inv_16) * v_inv_16);
                p_f_2[0] = (p_f_2[0] + (v_dx_12 * v_s_17));
                p_f_2[1] = (p_f_2[1] + (v_dy_13 * v_s_17));
                p_f_2[2] = (p_f_2[2] + (v_dz_14 * v_s_17));
            }
        }
        if (_active) {
            _out[(_i * 3)] = p_f_2[0];
            _out[((_i * 3) + 1)] = p_f_2[1];
            _out[((_i * 3) + 2)] = p_f_2[2];
        }
    }
}