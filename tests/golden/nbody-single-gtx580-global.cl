__kernel void NBody_computeForces_kernel(__global const float* _in, __global float* _out, __global const float* particles, int _len_particles, int _n, __global float* _spill_f) {
    int _gid = get_global_id(0);
    int _nthreads = get_global_size(0);
    for (int _i = _gid; _i < _n; _i += _nthreads) {
        float elem0_1 = _in[(_i * 4)];
        float elem1_2 = _in[((_i * 4) + 1)];
        float elem2_3 = _in[((_i * 4) + 2)];
        float elem3_4 = _in[((_i * 4) + 3)];
        _spill_f[(get_global_id(0) * 3)] = 0.0f;
        _spill_f[((get_global_id(0) * 3) + 1)] = 0.0f;
        _spill_f[((get_global_id(0) * 3) + 2)] = 0.0f;
        for (int v_j_5 = 0; v_j_5 < _len_particles; v_j_5 += 1) {
            float v_dx_6 = (particles[(v_j_5 * 4)] - elem0_1);
            float v_dy_7 = (particles[((v_j_5 * 4) + 1)] - elem1_2);
            float v_dz_8 = (particles[((v_j_5 * 4) + 2)] - elem2_3);
            float v_r2_9 = ((((v_dx_6 * v_dx_6) + (v_dy_7 * v_dy_7)) + (v_dz_8 * v_dz_8)) + 0.0125f);
            float v_inv_10 = (1.0f / sqrt(v_r2_9));
            float v_s_11 = (((particles[((v_j_5 * 4) + 3)] * v_inv_10) * v_inv_10) * v_inv_10);
            _spill_f[(get_global_id(0) * 3)] = (_spill_f[(get_global_id(0) * 3)] + (v_dx_6 * v_s_11));
            _spill_f[((get_global_id(0) * 3) + 1)] = (_spill_f[((get_global_id(0) * 3) + 1)] + (v_dy_7 * v_s_11));
            _spill_f[((get_global_id(0) * 3) + 2)] = (_spill_f[((get_global_id(0) * 3) + 2)] + (v_dz_8 * v_s_11));
        }
        _out[(_i * 3)] = _spill_f[(get_global_id(0) * 3)];
        _out[((_i * 3) + 1)] = _spill_f[((get_global_id(0) * 3) + 1)];
        _out[((_i * 3) + 2)] = _spill_f[((get_global_id(0) * 3) + 2)];
    }
}