__kernel void MRIQ_computeQ_kernel(__global const float* _in, __global float* _out, __global const float* kspace, int _len_kspace, int _n) {
    __local float tile_kspace_7[640];
    __private float p_q_15[2];
    int _gid = get_global_id(0);
    int _nthreads = get_global_size(0);
    int _iters = (((_n + _nthreads) - 1) / _nthreads);
    for (int _it = 0; _it < _iters; _it += 1) {
        int _i = (_gid + (_it * _nthreads));
        int _active = (_i < _n);
        int _ix = (_active ? _i : 0);
        float4 elemv_1 = vload4(_ix, _in);
        float v_qr_2 = 0.0f;
        float v_qi_3 = 0.0f;
        int tile_n_4 = _len_kspace;
        int lid_5 = get_local_id(0);
        int lsz_6 = get_local_size(0);
        for (int jj_8 = 0; jj_8 < tile_n_4; jj_8 += lsz_6) {
            barrier(CLK_LOCAL_MEM_FENCE);
            if (((jj_8 + lid_5) < tile_n_4)) {
                float4 stg_9 = vload4((jj_8 + lid_5), kspace);
                tile_kspace_7[(lid_5 * 5)] = stg_9.s0;
                tile_kspace_7[((lid_5 * 5) + 1)] = stg_9.s1;
                tile_kspace_7[((lid_5 * 5) + 2)] = stg_9.s2;
                tile_kspace_7[((lid_5 * 5) + 3)] = stg_9.s3;
            }
            barrier(CLK_LOCAL_MEM_FENCE);
            int limit_10 = min(lsz_6, (tile_n_4 - jj_8));
            for (int j2_11 = 0; j2_11 < limit_10; j2_11 += 1) {
                int v_j_12 = (jj_8 + j2_11);
                float v_arg_13 = (6.2831853f * (((tile_kspace_7[(j2_11 * 5)] * elemv_1.s0) + (tile_kspace_7[((j2_11 * 5) + 1)] * elemv_1.s1)) + (tile_kspace_7[((j2_11 * 5) + 2)] * elemv_1.s2)));
                float v_phi_14 = tile_kspace_7[((j2_11 * 5) + 3)];
                v_qr_2 = (v_qr_2 + (v_phi_14 * cos(v_arg_13)));
                v_qi_3 = (v_qi_3 + (v_phi_14 * sin(v_arg_13)));
            }
        }
        p_q_15[0] = 0.0f;
        p_q_15[1] = 0.0f;
        p_q_15[0] = v_qr_2;
        p_q_15[1] = v_qi_3;
        if (_active) {
            _out[(_i * 2)] = p_q_15[0];
            _out[((_i * 2) + 1)] = p_q_15[1];
        }
    }
}