__kernel void Series_coefficients_kernel(__global double* _out, int _n) {
    __private double p_ab_9[2];
    int _gid = get_global_id(0);
    int _nthreads = get_global_size(0);
    for (int _i = _gid; _i < _n; _i += _nthreads) {
        int v_i_1 = _i;
        double v_dx_2 = 0.0125;
        double v_omega_3 = (3.1415926 * ((double)v_i_1));
        double v_a_4 = 0.0;
        double v_b_5 = 0.0;
        for (int v_j_6 = 0; v_j_6 < 160; v_j_6 += 1) {
            double v_x_7 = ((((double)v_j_6) + 0.5) * v_dx_2);
            double v_fx_8 = pow((v_x_7 + 1.0), v_x_7);
            v_a_4 = (v_a_4 + (((v_fx_8 * cos((v_omega_3 * v_x_7))) * v_dx_2) * 0.5));
            v_b_5 = (v_b_5 + (((v_fx_8 * sin((v_omega_3 * v_x_7))) * v_dx_2) * 0.5));
        }
        p_ab_9[0] = 0.0;
        p_ab_9[1] = 0.0;
        p_ab_9[0] = v_a_4;
        p_ab_9[1] = v_b_5;
        _out[(_i * 2)] = p_ab_9[0];
        _out[((_i * 2) + 1)] = p_ab_9[1];
    }
}