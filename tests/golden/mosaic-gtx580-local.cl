__kernel void Mosaic_bestMatches_kernel(__global const int* _in, __global int* _out, __global const int* tiles, int _len_tiles, int _n) {
    __local int tile_tiles_22[2048];
    int _gid = get_global_id(0);
    int _nthreads = get_global_size(0);
    int _iters = (((_n + _nthreads) - 1) / _nthreads);
    for (int _it = 0; _it < _iters; _it += 1) {
        int _i = (_gid + (_it * _nthreads));
        int _active = (_i < _n);
        int _ix = (_active ? _i : 0);
        int elem0_1 = _in[(_ix * 16)];
        int elem1_2 = _in[((_ix * 16) + 1)];
        int elem2_3 = _in[((_ix * 16) + 2)];
        int elem3_4 = _in[((_ix * 16) + 3)];
        int elem4_5 = _in[((_ix * 16) + 4)];
        int elem5_6 = _in[((_ix * 16) + 5)];
        int elem6_7 = _in[((_ix * 16) + 6)];
        int elem7_8 = _in[((_ix * 16) + 7)];
        int elem8_9 = _in[((_ix * 16) + 8)];
        int elem9_10 = _in[((_ix * 16) + 9)];
        int elem10_11 = _in[((_ix * 16) + 10)];
        int elem11_12 = _in[((_ix * 16) + 11)];
        int elem12_13 = _in[((_ix * 16) + 12)];
        int elem13_14 = _in[((_ix * 16) + 13)];
        int elem14_15 = _in[((_ix * 16) + 14)];
        int elem15_16 = _in[((_ix * 16) + 15)];
        int v_best_17 = 2147483647;
        int v_bestIdx_18 = 0;
        int tile_n_19 = 96;
        int lid_20 = get_local_id(0);
        int lsz_21 = get_local_size(0);
        for (int jj_23 = 0; jj_23 < tile_n_19; jj_23 += lsz_21) {
            barrier(CLK_LOCAL_MEM_FENCE);
            if (((jj_23 + lid_20) < tile_n_19)) {
                tile_tiles_22[(lid_20 * 16)] = tiles[((jj_23 + lid_20) * 16)];
                tile_tiles_22[((lid_20 * 16) + 1)] = tiles[(((jj_23 + lid_20) * 16) + 1)];
                tile_tiles_22[((lid_20 * 16) + 2)] = tiles[(((jj_23 + lid_20) * 16) + 2)];
                tile_tiles_22[((lid_20 * 16) + 3)] = tiles[(((jj_23 + lid_20) * 16) + 3)];
                tile_tiles_22[((lid_20 * 16) + 4)] = tiles[(((jj_23 + lid_20) * 16) + 4)];
                tile_tiles_22[((lid_20 * 16) + 5)] = tiles[(((jj_23 + lid_20) * 16) + 5)];
                tile_tiles_22[((lid_20 * 16) + 6)] = tiles[(((jj_23 + lid_20) * 16) + 6)];
                tile_tiles_22[((lid_20 * 16) + 7)] = tiles[(((jj_23 + lid_20) * 16) + 7)];
                tile_tiles_22[((lid_20 * 16) + 8)] = tiles[(((jj_23 + lid_20) * 16) + 8)];
                tile_tiles_22[((lid_20 * 16) + 9)] = tiles[(((jj_23 + lid_20) * 16) + 9)];
                tile_tiles_22[((lid_20 * 16) + 10)] = tiles[(((jj_23 + lid_20) * 16) + 10)];
                tile_tiles_22[((lid_20 * 16) + 11)] = tiles[(((jj_23 + lid_20) * 16) + 11)];
                tile_tiles_22[((lid_20 * 16) + 12)] = tiles[(((jj_23 + lid_20) * 16) + 12)];
                tile_tiles_22[((lid_20 * 16) + 13)] = tiles[(((jj_23 + lid_20) * 16) + 13)];
                tile_tiles_22[((lid_20 * 16) + 14)] = tiles[(((jj_23 + lid_20) * 16) + 14)];
                tile_tiles_22[((lid_20 * 16) + 15)] = tiles[(((jj_23 + lid_20) * 16) + 15)];
            }
            barrier(CLK_LOCAL_MEM_FENCE);
            int limit_24 = min(lsz_21, (tile_n_19 - jj_23));
            for (int j2_25 = 0; j2_25 < limit_24; j2_25 += 1) {
                int v_j_26 = (jj_23 + j2_25);
                int v_score_27 = 0;
                v_score_27 = (v_score_27 + abs((elem0_1 - tile_tiles_22[(j2_25 * 16)])));
                v_score_27 = (v_score_27 + abs((elem1_2 - tile_tiles_22[((j2_25 * 16) + 1)])));
                v_score_27 = (v_score_27 + abs((elem2_3 - tile_tiles_22[((j2_25 * 16) + 2)])));
                v_score_27 = (v_score_27 + abs((elem3_4 - tile_tiles_22[((j2_25 * 16) + 3)])));
                v_score_27 = (v_score_27 + abs((elem4_5 - tile_tiles_22[((j2_25 * 16) + 4)])));
                v_score_27 = (v_score_27 + abs((elem5_6 - tile_tiles_22[((j2_25 * 16) + 5)])));
                v_score_27 = (v_score_27 + abs((elem6_7 - tile_tiles_22[((j2_25 * 16) + 6)])));
                v_score_27 = (v_score_27 + abs((elem7_8 - tile_tiles_22[((j2_25 * 16) + 7)])));
                v_score_27 = (v_score_27 + abs((elem8_9 - tile_tiles_22[((j2_25 * 16) + 8)])));
                v_score_27 = (v_score_27 + abs((elem9_10 - tile_tiles_22[((j2_25 * 16) + 9)])));
                v_score_27 = (v_score_27 + abs((elem10_11 - tile_tiles_22[((j2_25 * 16) + 10)])));
                v_score_27 = (v_score_27 + abs((elem11_12 - tile_tiles_22[((j2_25 * 16) + 11)])));
                v_score_27 = (v_score_27 + abs((elem12_13 - tile_tiles_22[((j2_25 * 16) + 12)])));
                v_score_27 = (v_score_27 + abs((elem13_14 - tile_tiles_22[((j2_25 * 16) + 13)])));
                v_score_27 = (v_score_27 + abs((elem14_15 - tile_tiles_22[((j2_25 * 16) + 14)])));
                v_score_27 = (v_score_27 + abs((elem15_16 - tile_tiles_22[((j2_25 * 16) + 15)])));
                v_bestIdx_18 = ((v_score_27 < v_best_17) ? v_j_26 : v_bestIdx_18);
                v_best_17 = ((v_score_27 < v_best_17) ? v_score_27 : v_best_17);
            }
        }
        if (_active) {
            _out[_i] = v_bestIdx_18;
        }
    }
}