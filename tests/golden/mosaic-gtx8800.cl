__kernel void Mosaic_bestMatches_kernel(__global const int* _in, __global int* _out, __global const int* tiles, int _len_tiles, int _n) {
    __local int tile_tiles_7[2176];
    int _gid = get_global_id(0);
    int _nthreads = get_global_size(0);
    int _iters = (((_n + _nthreads) - 1) / _nthreads);
    for (int _it = 0; _it < _iters; _it += 1) {
        int _i = (_gid + (_it * _nthreads));
        int _active = (_i < _n);
        int _ix = (_active ? _i : 0);
        int16 elemv_1 = vload16(_ix, _in);
        int v_best_2 = 2147483647;
        int v_bestIdx_3 = 0;
        int tile_n_4 = 96;
        int lid_5 = get_local_id(0);
        int lsz_6 = get_local_size(0);
        for (int jj_8 = 0; jj_8 < tile_n_4; jj_8 += lsz_6) {
            barrier(CLK_LOCAL_MEM_FENCE);
            if (((jj_8 + lid_5) < tile_n_4)) {
                int16 stg_9 = vload16((jj_8 + lid_5), tiles);
                tile_tiles_7[(lid_5 * 17)] = stg_9.s0;
                tile_tiles_7[((lid_5 * 17) + 1)] = stg_9.s1;
                tile_tiles_7[((lid_5 * 17) + 2)] = stg_9.s2;
                tile_tiles_7[((lid_5 * 17) + 3)] = stg_9.s3;
                tile_tiles_7[((lid_5 * 17) + 4)] = stg_9.s4;
                tile_tiles_7[((lid_5 * 17) + 5)] = stg_9.s5;
                tile_tiles_7[((lid_5 * 17) + 6)] = stg_9.s6;
                tile_tiles_7[((lid_5 * 17) + 7)] = stg_9.s7;
                tile_tiles_7[((lid_5 * 17) + 8)] = stg_9.s8;
                tile_tiles_7[((lid_5 * 17) + 9)] = stg_9.s9;
                tile_tiles_7[((lid_5 * 17) + 10)] = stg_9.sa;
                tile_tiles_7[((lid_5 * 17) + 11)] = stg_9.sb;
                tile_tiles_7[((lid_5 * 17) + 12)] = stg_9.sc;
                tile_tiles_7[((lid_5 * 17) + 13)] = stg_9.sd;
                tile_tiles_7[((lid_5 * 17) + 14)] = stg_9.se;
                tile_tiles_7[((lid_5 * 17) + 15)] = stg_9.sf;
            }
            barrier(CLK_LOCAL_MEM_FENCE);
            int limit_10 = min(lsz_6, (tile_n_4 - jj_8));
            for (int j2_11 = 0; j2_11 < limit_10; j2_11 += 1) {
                int v_j_12 = (jj_8 + j2_11);
                int v_score_13 = 0;
                v_score_13 = (v_score_13 + abs((elemv_1.s0 - tile_tiles_7[(j2_11 * 17)])));
                v_score_13 = (v_score_13 + abs((elemv_1.s1 - tile_tiles_7[((j2_11 * 17) + 1)])));
                v_score_13 = (v_score_13 + abs((elemv_1.s2 - tile_tiles_7[((j2_11 * 17) + 2)])));
                v_score_13 = (v_score_13 + abs((elemv_1.s3 - tile_tiles_7[((j2_11 * 17) + 3)])));
                v_score_13 = (v_score_13 + abs((elemv_1.s4 - tile_tiles_7[((j2_11 * 17) + 4)])));
                v_score_13 = (v_score_13 + abs((elemv_1.s5 - tile_tiles_7[((j2_11 * 17) + 5)])));
                v_score_13 = (v_score_13 + abs((elemv_1.s6 - tile_tiles_7[((j2_11 * 17) + 6)])));
                v_score_13 = (v_score_13 + abs((elemv_1.s7 - tile_tiles_7[((j2_11 * 17) + 7)])));
                v_score_13 = (v_score_13 + abs((elemv_1.s8 - tile_tiles_7[((j2_11 * 17) + 8)])));
                v_score_13 = (v_score_13 + abs((elemv_1.s9 - tile_tiles_7[((j2_11 * 17) + 9)])));
                v_score_13 = (v_score_13 + abs((elemv_1.sa - tile_tiles_7[((j2_11 * 17) + 10)])));
                v_score_13 = (v_score_13 + abs((elemv_1.sb - tile_tiles_7[((j2_11 * 17) + 11)])));
                v_score_13 = (v_score_13 + abs((elemv_1.sc - tile_tiles_7[((j2_11 * 17) + 12)])));
                v_score_13 = (v_score_13 + abs((elemv_1.sd - tile_tiles_7[((j2_11 * 17) + 13)])));
                v_score_13 = (v_score_13 + abs((elemv_1.se - tile_tiles_7[((j2_11 * 17) + 14)])));
                v_score_13 = (v_score_13 + abs((elemv_1.sf - tile_tiles_7[((j2_11 * 17) + 15)])));
                v_bestIdx_3 = ((v_score_13 < v_best_2) ? v_j_12 : v_bestIdx_3);
                v_best_2 = ((v_score_13 < v_best_2) ? v_score_13 : v_best_2);
            }
        }
        if (_active) {
            _out[_i] = v_bestIdx_3;
        }
    }
}