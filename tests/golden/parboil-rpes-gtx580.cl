__kernel void RPES_integrals_kernel(__global const float* _in, __global float* _out, __global const float* table, int _len_table, int _n) {
    int _gid = get_global_id(0);
    int _nthreads = get_global_size(0);
    for (int _i = _gid; _i < _n; _i += _nthreads) {
        float4 elemv_1 = vload4(_i, _in);
        float v_alpha_2 = ((elemv_1.s0 * elemv_1.s0) + 0.25f);
        float v_beta_3 = (elemv_1.s1 + 1.5f);
        float v_acc_4 = 0.0f;
        int v_base_5 = ((int)(elemv_1.s3 * 0.25f));
        for (int v_k_6 = 0; v_k_6 < 48; v_k_6 += 1) {
            float v_t0_7 = vload4((v_base_5 + v_k_6), table).s0;
            float v_t1_8 = vload4((v_base_5 + v_k_6), table).s1;
            float v_t2_9 = vload4((v_base_5 + v_k_6), table).s2;
            float v_weight_10 = exp((0.0f - (v_alpha_2 * ((v_t0_7 * v_t0_7) + 0.1f))));
            float v_root_11 = sqrt(((v_beta_3 + (v_t1_8 * v_t1_8)) + ((float)v_k_6)));
            v_acc_4 = (v_acc_4 + ((v_weight_10 * v_t2_9) / v_root_11));
        }
        _out[_i] = v_acc_4;
    }
}