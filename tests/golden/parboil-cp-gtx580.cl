__kernel void CP_potentials_kernel(__global float* _out, __global const float* atoms, int _len_atoms, int _n) {
    __local float tile_atoms_8[640];
    int _gid = get_global_id(0);
    int _nthreads = get_global_size(0);
    int _iters = (((_n + _nthreads) - 1) / _nthreads);
    for (int _it = 0; _it < _iters; _it += 1) {
        int _i = (_gid + (_it * _nthreads));
        int _active = (_i < _n);
        int _ix = (_active ? _i : 0);
        int v_idx_1 = _ix;
        float v_gx_2 = (((float)(v_idx_1 % 48)) * 0.1f);
        float v_gy_3 = (((float)(v_idx_1 / 48)) * 0.1f);
        float v_v_4 = 0.0f;
        int tile_n_5 = _len_atoms;
        int lid_6 = get_local_id(0);
        int lsz_7 = get_local_size(0);
        for (int jj_9 = 0; jj_9 < tile_n_5; jj_9 += lsz_7) {
            barrier(CLK_LOCAL_MEM_FENCE);
            if (((jj_9 + lid_6) < tile_n_5)) {
                float4 stg_10 = vload4((jj_9 + lid_6), atoms);
                tile_atoms_8[(lid_6 * 5)] = stg_10.s0;
                tile_atoms_8[((lid_6 * 5) + 1)] = stg_10.s1;
                tile_atoms_8[((lid_6 * 5) + 2)] = stg_10.s2;
                tile_atoms_8[((lid_6 * 5) + 3)] = stg_10.s3;
            }
            barrier(CLK_LOCAL_MEM_FENCE);
            int limit_11 = min(lsz_7, (tile_n_5 - jj_9));
            for (int j2_12 = 0; j2_12 < limit_11; j2_12 += 1) {
                int v_j_13 = (jj_9 + j2_12);
                float v_dx_14 = (v_gx_2 - tile_atoms_8[(j2_12 * 5)]);
                float v_dy_15 = (v_gy_3 - tile_atoms_8[((j2_12 * 5) + 1)]);
                float v_dz_16 = tile_atoms_8[((j2_12 * 5) + 2)];
                float v_r_17 = sqrt((((v_dx_14 * v_dx_14) + (v_dy_15 * v_dy_15)) + (v_dz_16 * v_dz_16)));
                v_v_4 = (v_v_4 + (tile_atoms_8[((j2_12 * 5) + 3)] / v_r_17));
            }
        }
        if (_active) {
            _out[_i] = v_v_4;
        }
    }
}