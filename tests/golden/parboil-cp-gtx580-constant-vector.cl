__kernel void CP_potentials_kernel(__global float* _out, __constant float* atoms, int _len_atoms, int _n) {
    int _gid = get_global_id(0);
    int _nthreads = get_global_size(0);
    for (int _i = _gid; _i < _n; _i += _nthreads) {
        int v_idx_1 = _i;
        float v_gx_2 = (((float)(v_idx_1 % 48)) * 0.1f);
        float v_gy_3 = (((float)(v_idx_1 / 48)) * 0.1f);
        float v_v_4 = 0.0f;
        for (int v_j_5 = 0; v_j_5 < _len_atoms; v_j_5 += 1) {
            float v_dx_6 = (v_gx_2 - vload4(v_j_5, atoms).s0);
            float v_dy_7 = (v_gy_3 - vload4(v_j_5, atoms).s1);
            float v_dz_8 = vload4(v_j_5, atoms).s2;
            float v_r_9 = sqrt((((v_dx_6 * v_dx_6) + (v_dy_7 * v_dy_7)) + (v_dz_8 * v_dz_8)));
            v_v_4 = (v_v_4 + (vload4(v_j_5, atoms).s3 / v_r_9));
        }
        _out[_i] = v_v_4;
    }
}