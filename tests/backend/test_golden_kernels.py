"""Golden snapshots of the generated OpenCL C.

Every app's map kernel is compiled through the full pipeline and the
emitted OpenCL C compared byte-for-byte against a checked-in snapshot
under ``tests/golden/``. Two axes:

- the **default** configuration on the GTX 580 for all nine apps, and
- **device-varied** memory plans (GTX 8800 and HD 5970) for the
  local-memory-tiling apps, where the plan's shape depends on the
  device's shared-memory size and bank count.

The snapshots exist to catch *unintentional* codegen drift — a change
that shows up here but was not meant to alter generated code is a bug.
Intentional changes re-bless with::

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/backend/test_golden_kernels.py
"""

import os
import pathlib

import pytest

from repro.apps.registry import BENCHMARKS
from repro.backend.opencl_gen import emit_opencl
from repro.compiler.options import FIGURE8_CONFIGS
from repro.compiler.pipeline import compile_filter
from repro.opencl import get_device

GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "golden"

DEFAULT_DEVICE = "gtx580"

# Apps whose memory plans are device-shaped (local-memory staging):
# snapshot them on every device in the catalog. (On the current
# catalog the plans happen to coincide — bank-conflict padding has the
# same parity on 16 and 32 banks and the constant capacities are
# equal — but the snapshots pin that fact down.)
DEVICE_VARIED = ["nbody-single", "mosaic", "parboil-cp"]
OTHER_DEVICES = ["gtx8800", "hd5970"]

# Memory-plan variation along the Figure 8 configuration axis, where
# the generated code genuinely differs (global vs local staging vs
# constant, with and without vectorized accesses).
CONFIG_VARIED = [
    ("nbody-single", "Global"),
    ("nbody-single", "Local+NoConflicts+Vector"),
    ("parboil-cp", "Constant+Vector"),
    ("mosaic", "Local"),
]

CASES = (
    [(name, DEFAULT_DEVICE, None) for name in sorted(BENCHMARKS)]
    + [
        (name, device, None)
        for name in DEVICE_VARIED
        for device in OTHER_DEVICES
    ]
    + [(name, DEFAULT_DEVICE, config) for name, config in CONFIG_VARIED]
)


def _emit(name, device_name, config_name):
    bench = BENCHMARKS[name]
    checked = bench.checked()
    worker = checked.lookup_method(bench.main_class, bench.filter_method)
    compiled = compile_filter(
        checked,
        worker,
        device=get_device(device_name),
        config=FIGURE8_CONFIGS[config_name] if config_name else None,
        bound_values={p.name: 4 for p in worker.params[:-1]},
    )
    return emit_opencl(compiled.plan.kernel, local_size_hint=128)


def _snapshot_name(name, device, config):
    stem = "{}-{}".format(name, device)
    if config:
        stem += "-" + config.lower().replace("+", "-")
    return stem + ".cl"


@pytest.mark.parametrize("name,device,config", CASES)
def test_golden_opencl(name, device, config):
    source = _emit(name, device, config)
    path = GOLDEN_DIR / _snapshot_name(name, device, config)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(source)
        return
    assert path.exists(), (
        "missing golden snapshot {} — run with REPRO_UPDATE_GOLDEN=1 "
        "to create it".format(path)
    )
    expected = path.read_text()
    assert source == expected, (
        "generated OpenCL C for {} on {} drifted from {} — if the "
        "change is intentional, re-bless with REPRO_UPDATE_GOLDEN=1".format(
            name, device, path.name
        )
    )
