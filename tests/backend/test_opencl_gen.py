"""OpenCL C emission tests, including a golden kernel."""

import numpy as np

from repro.backend import kernel_ir as K
from repro.backend.opencl_gen import emit_opencl
from repro.compiler.options import FIGURE8_CONFIGS
from repro.compiler.pipeline import compile_filter
from repro.frontend import check_program, parse_program
from repro.opencl import get_device

from tests.conftest import NBODY_SOURCE, SAXPY_SOURCE


def compile_kernel_text(source, cls, method, config, device="gtx8800"):
    checked = check_program(parse_program(source))
    cf = compile_filter(
        checked,
        checked.lookup_method(cls, method),
        device=get_device(device),
        config=config,
    )
    return emit_opencl(cf.plan.kernel, local_size_hint=64)


def test_saxpy_global_golden():
    text = compile_kernel_text(
        SAXPY_SOURCE, "Saxpy", "apply", FIGURE8_CONFIGS["Global"]
    )
    assert "__kernel void Saxpy_apply_kernel" in text
    assert "__global const float* _in" in text
    assert "__global float* _out" in text
    assert "get_global_id(0)" in text
    assert "for (int _i = _gid; _i < _n; _i += _nthreads)" in text


def test_nbody_tiled_emits_barriers_and_vloads():
    text = compile_kernel_text(
        NBODY_SOURCE, "NBody", "computeForces",
        FIGURE8_CONFIGS["Local+NoConflicts+Vector"],
    )
    assert "barrier(CLK_LOCAL_MEM_FENCE);" in text
    assert "__local float" in text
    assert "vload4" in text
    # Padding: rows of 5 = 4 + 1 pad.
    assert "* 5)" in text


def test_constant_qualifier_emitted():
    text = compile_kernel_text(
        NBODY_SOURCE, "NBody", "computeForces", FIGURE8_CONFIGS["Constant"]
    )
    assert "__constant" in text


def test_image_kernel_emits_sampler_and_read_imagef():
    source = """
    class A {
        static local float f(float[[4]] p, float[[][4]] table) {
            return table[(int) p[0]][2];
        }
        static local float[[]] g(float[[][4]] table) {
            return A.f(table) @ table;
        }
    }
    """
    text = compile_kernel_text(source, "A", "g", FIGURE8_CONFIGS["Texture"])
    assert "image2d_t" in text
    assert "read_imagef" in text
    assert "sampler_t" in text


def test_private_array_declared():
    text = compile_kernel_text(
        NBODY_SOURCE, "NBody", "computeForces", FIGURE8_CONFIGS["Local"]
    )
    assert "__private float" in text


def test_emitted_text_is_reparseable_by_clc():
    """The printer and the OpenCL-C frontend agree: compiled kernels
    round-trip through text back into executable kernel IR."""
    from repro.opencl.clc import compile_opencl_source
    from repro.opencl.executor import compile_kernel

    text = compile_kernel_text(
        SAXPY_SOURCE, "Saxpy", "apply", FIGURE8_CONFIGS["Global"]
    )
    kernels = compile_opencl_source(text)
    assert "Saxpy_apply_kernel" in kernels
    compiled = compile_kernel(kernels["Saxpy_apply_kernel"])
    xs = np.arange(8, dtype=np.float32)
    out = np.zeros(8, dtype=np.float32)
    compiled.launch(
        {"_in": xs, "_out": out}, {"a": 2.5, "_n": 8}, global_size=8, local_size=4
    )
    assert np.allclose(out, 2.5 * xs + 1.0)


def test_float_literal_suffix():
    kernel = K.Kernel(
        name="k",
        params=[K.KParam("out", K.K_FLOAT, K.Space.GLOBAL, is_pointer=True)],
        arrays=[],
        body=[
            K.KStore(
                "out",
                K.KConst(0, K.K_INT),
                K.KConst(1.5, K.K_FLOAT),
                K.Space.GLOBAL,
                K.K_FLOAT,
            )
        ],
    )
    text = emit_opencl(kernel)
    assert "1.5f" in text


def test_vector_literal_and_extract_syntax():
    vec = K.KVector(K.K_FLOAT, 4)
    kernel = K.Kernel(
        name="k",
        params=[K.KParam("out", K.K_FLOAT, K.Space.GLOBAL, is_pointer=True)],
        arrays=[],
        body=[
            K.KDecl("v", vec, K.KVecBuild([K.KConst(float(i), K.K_FLOAT) for i in range(4)], vec)),
            K.KStore(
                "out",
                K.KConst(0, K.K_INT),
                K.KVecExtract(K.KVar("v", vec), 2, K.K_FLOAT),
                K.Space.GLOBAL,
                K.K_FLOAT,
            ),
        ],
    )
    text = emit_opencl(kernel)
    assert "float4 v = ((float4) (0.0f, 1.0f, 2.0f, 3.0f));" in text
    assert "v.s2" in text
