"""Glue-layer tests: the generated host coordination code."""

import numpy as np
import pytest

from repro.backend import glue
from repro.compiler.pipeline import compile_filter
from repro.errors import RuntimeFault
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.profiler import ExecutionProfile

from tests.conftest import SAXPY_SOURCE


@pytest.fixture
def saxpy_filter():
    checked = check_program(parse_program(SAXPY_SOURCE))
    return compile_filter(
        checked,
        checked.lookup_method("Saxpy", "apply"),
        device=get_device("gtx580"),
        local_size=8,
    )


def test_every_invocation_records_stages(saxpy_filter):
    xs = np.arange(8, dtype=np.float32)
    xs.setflags(write=False)
    saxpy_filter(xs)
    saxpy_filter(xs)
    assert saxpy_filter.launches == 2
    stages = saxpy_filter.profile.stages
    for field in ("java_marshal", "c_marshal", "opencl_setup", "transfer", "kernel"):
        assert getattr(stages, field) > 0, field


def test_bytes_accounted_both_directions(saxpy_filter):
    xs = np.arange(8, dtype=np.float32)
    xs.setflags(write=False)
    saxpy_filter(xs)
    profile = saxpy_filter.profile
    assert profile.bytes_to_device == 8 * 4
    assert profile.bytes_from_device == 8 * 4


def test_result_is_frozen_value_array(saxpy_filter):
    xs = np.arange(4, dtype=np.float32)
    xs.setflags(write=False)
    out = saxpy_filter(xs)
    assert not out.flags.writeable


def test_launch_config_respects_cap(saxpy_filter, monkeypatch):
    monkeypatch.setattr(glue, "MAX_SIMULATED_ITEMS", 8)
    global_size, local = saxpy_filter._launch_config(1000)
    assert global_size == 8
    # Results stay correct because of the strided loop.
    xs = np.arange(20, dtype=np.float32)
    xs.setflags(write=False)
    out = saxpy_filter(xs)
    assert np.allclose(out, 2.5 * xs + 1.0)


def test_bound_values_flow_to_kernel():
    source = """
    class Scale {
        static local float[[]] apply(float a, float[[]] xs) {
            return Scale.one(a) @ xs;
        }
        static local float one(float x, float a) { return a * x; }
    }
    """
    checked = check_program(parse_program(source))
    cf = compile_filter(
        checked,
        checked.lookup_method("Scale", "apply"),
        device=get_device("gtx580"),
        bound_values={"a": 10.0},
        local_size=8,
    )
    xs = np.arange(4, dtype=np.float32)
    xs.setflags(write=False)
    assert np.allclose(cf(xs), 10.0 * xs)


def test_too_many_unbound_params_rejected():
    source = """
    class Two {
        static local float[[]] apply(float a, float[[]] xs) {
            return Two.one(a) @ xs;
        }
        static local float one(float x, float a) { return a * x; }
    }
    """
    checked = check_program(parse_program(source))
    with pytest.raises(RuntimeFault):
        compile_filter(
            checked,
            checked.lookup_method("Two", "apply"),
            device=get_device("gtx580"),
            bound_values=None,  # leaves two free parameters
        )


def test_np_dtype_mapping():
    from repro.backend.kernel_ir import K_CHAR, K_DOUBLE, K_FLOAT, K_INT

    assert glue.np_dtype(K_FLOAT) == np.float32
    assert glue.np_dtype(K_DOUBLE) == np.float64
    assert glue.np_dtype(K_INT) == np.int32
    assert glue.np_dtype(K_CHAR) == np.int8


def test_profile_shared_across_invocations():
    checked = check_program(parse_program(SAXPY_SOURCE))
    profile = ExecutionProfile()
    cf = compile_filter(
        checked,
        checked.lookup_method("Saxpy", "apply"),
        device=get_device("gtx580"),
        profile=profile,
        local_size=8,
    )
    xs = np.arange(4, dtype=np.float32)
    xs.setflags(write=False)
    cf(xs)
    assert profile.kernel_launches == 1
    assert "Saxpy.apply" in profile.per_task


def test_resolve_max_sim_items_precedence(monkeypatch):
    # explicit > environment > module constant
    monkeypatch.delenv(glue.MAX_SIM_ITEMS_ENV, raising=False)
    assert glue.resolve_max_sim_items() == glue.MAX_SIMULATED_ITEMS
    monkeypatch.setenv(glue.MAX_SIM_ITEMS_ENV, "128")
    assert glue.resolve_max_sim_items() == 128
    assert glue.resolve_max_sim_items(16) == 16


def test_resolve_max_sim_items_rejects_garbage(monkeypatch):
    monkeypatch.setenv(glue.MAX_SIM_ITEMS_ENV, "not-a-number")
    with pytest.raises(RuntimeFault):
        glue.resolve_max_sim_items()
    monkeypatch.setenv(glue.MAX_SIM_ITEMS_ENV, "0")
    with pytest.raises(RuntimeFault):
        glue.resolve_max_sim_items()


def test_env_cap_applies_at_launch_time(saxpy_filter, monkeypatch):
    monkeypatch.setenv(glue.MAX_SIM_ITEMS_ENV, "8")
    global_size, _local = saxpy_filter._launch_config(1000)
    assert global_size == 8
    xs = np.arange(20, dtype=np.float32)
    xs.setflags(write=False)
    assert np.allclose(saxpy_filter(xs), 2.5 * xs + 1.0)


def test_explicit_cap_wins_over_env(monkeypatch):
    monkeypatch.setenv(glue.MAX_SIM_ITEMS_ENV, "512")
    checked = check_program(parse_program(SAXPY_SOURCE))
    cf = compile_filter(
        checked,
        checked.lookup_method("Saxpy", "apply"),
        device=get_device("gtx580"),
        local_size=8,
        max_sim_items=16,
    )
    global_size, _local = cf._launch_config(1000)
    assert global_size == 16
