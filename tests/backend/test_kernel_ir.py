"""Kernel IR structural tests: walkers and site assignment."""

from repro.backend import kernel_ir as K

I = K.K_INT
F = K.K_FLOAT


def make_kernel():
    load_a = K.KLoad("a", K.KVar("i", I), K.Space.GLOBAL, F)
    load_b = K.KLoad("b", K.KVar("i", I), K.Space.LOCAL, F)
    body = [
        K.KDecl("x", F, K.KBin("+", load_a, load_b, F)),
        K.KIf(
            K.KBin("<", K.KVar("i", I), K.KConst(10, I), K.K_BOOL),
            [K.KStore("out", K.KVar("i", I), K.KVar("x", F), K.Space.GLOBAL, F)],
        ),
        K.KFor(
            "j",
            K.KConst(0, I),
            K.KConst(4, I),
            K.KConst(1, I),
            [K.KStore("out", K.KVar("j", I), K.KConst(0.0, F), K.Space.GLOBAL, F)],
        ),
    ]
    return K.Kernel(
        name="k",
        params=[
            K.KParam("a", F, K.Space.GLOBAL, is_pointer=True, read_only=True),
            K.KParam("b", F, K.Space.LOCAL, is_pointer=True),
            K.KParam("out", F, K.Space.GLOBAL, is_pointer=True),
            K.KParam("i", I),
        ],
        arrays=[],
        body=body,
    )


def test_walk_stmts_covers_nesting():
    kernel = make_kernel()
    stmts = list(K.walk_stmts(kernel.body))
    stores = [s for s in stmts if isinstance(s, K.KStore)]
    assert len(stores) == 2


def test_assign_sites_unique_and_complete():
    kernel = make_kernel()
    sites = K.assign_sites(kernel)
    # 2 loads + 2 stores.
    assert len(sites) == 4
    ids = [node.site for node in sites]
    assert ids == sorted(set(ids))


def test_assign_sites_no_double_count():
    kernel = make_kernel()
    K.assign_sites(kernel)
    all_access = [
        node
        for stmt in K.walk_stmts(kernel.body)
        for node in ([stmt] if isinstance(stmt, K.KStore) else [])
    ] + [
        e
        for stmt in K.walk_stmts(kernel.body)
        for e in K.walk_stmt_exprs(stmt)
        if isinstance(e, (K.KLoad, K.KImageLoad))
    ]
    assert len(all_access) == 4


def test_param_queries():
    kernel = make_kernel()
    assert kernel.param("a").read_only
    assert len(kernel.buffer_params()) == 3
    assert [p.name for p in kernel.scalar_params()] == ["i"]


def test_vector_type_properties():
    vec = K.KVector(F, 4)
    assert str(vec) == "float4"
    assert vec.size == 16
    assert vec.is_float
    assert K.is_vector(vec)
    assert not K.is_vector(F)


def test_scalar_sizes():
    assert K.K_CHAR.size == 1
    assert K.K_INT.size == 4
    assert K.K_DOUBLE.size == 8
