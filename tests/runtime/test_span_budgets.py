"""Span-level budget regression tests.

:func:`repro.runtime.tracing.span_shares` exists so runtime-overhead
budgets can be asserted against real traces: each stage's share of
total *self* simulated time is pinned within a band, and any structural
shift (setup ballooning, kernels vanishing from the trace) fails here
before it shows up as a benchmark regression.

The overlap tests close the old observability gap: with communication
overlap enabled, trace charges are deferred and emitted *post-rescale*,
so the trace agrees with the profile instead of over-reporting the
hidden communication time.
"""

import pytest

from repro.apps.registry import BENCHMARKS
from repro.compiler import Offloader
from repro.evaluation.harness import run_configuration
from repro.opencl import get_device
from repro.runtime.engine import Engine
from repro.runtime.tracing import Tracer, read_trace, span_shares

SCALE = 0.2
MAX_ITEMS = 128

COMM_STAGES = ("java_marshal", "c_marshal", "opencl_setup", "transfer")


def traced_shares(tmp_path, name, **kwargs):
    tracer = Tracer(wallclock=lambda: 0)
    result = run_configuration(
        BENCHMARKS[name],
        "gtx580",
        scale=SCALE,
        steps=1,
        max_sim_items=MAX_ITEMS,
        tracer=tracer,
        **kwargs,
    )
    path = tmp_path / "{}.json".format(name)
    tracer.write_chrome(str(path))
    return span_shares(read_trace(str(path))), result


# Per-app ceilings for the launch-bookkeeping share at this scale.
# Simulated time is deterministic, so these are regression pins, not
# statistical bounds: growth past the band means setup cost structure
# changed (an extra launch per item, a lost batch, ...).
SETUP_BUDGET = {"jg-series-single": 0.36, "mosaic": 0.15}


@pytest.mark.parametrize("name", sorted(SETUP_BUDGET))
def test_stage_budgets_hold(tmp_path, name):
    shares, result = traced_shares(tmp_path, name)
    assert shares.get("opencl_setup", 0.0) <= SETUP_BUDGET[name], shares
    # Offloaded kernels actually show up on the timeline, and carry a
    # substantial share of the run.
    assert shares.get("kernel", 0.0) >= 0.25
    # Shares are a partition of self time.
    assert sum(shares.values()) == pytest.approx(1.0)


def test_budget_totals_match_profile(tmp_path):
    shares, result = traced_shares(tmp_path, "jg-series-single")
    total = result.total_ns
    for stage in ("kernel",) + COMM_STAGES:
        have = result.stages.get(stage, 0.0)
        if have <= 0:
            continue
        assert shares[stage] * total == pytest.approx(have, rel=1e-6), stage


# -- overlap-aware tracing ---------------------------------------------------


def run_overlap_trace(overlap):
    bench = BENCHMARKS["nbody-single"]
    checked = bench.checked()
    inputs = bench.make_input(scale=0.3)
    tracer = Tracer(wallclock=lambda: 0)
    offloader = Offloader(device=get_device("gtx580"), overlap=overlap)
    engine = Engine(checked, offloader=offloader, tracer=tracer)
    engine.run_static(bench.main_class, bench.run_method, inputs + [3])
    return tracer, engine


def charged_by_stage(tracer):
    totals = {}
    for span in tracer.events:
        if span.kind == "span":
            totals[span.name] = totals.get(span.name, 0.0) + span.dur_ns
    return totals


@pytest.mark.parametrize("overlap", [False, True])
def test_trace_charges_match_profile_stages(overlap):
    """With or without overlap, per-stage trace totals equal the
    profile's (rescaled) stage totals — the trace never over-reports
    communication that overlap hid."""
    tracer, engine = run_overlap_trace(overlap)
    totals = charged_by_stage(tracer)
    stages = engine.profile.stages.as_dict()
    for stage in ("kernel",) + COMM_STAGES:
        assert totals.get(stage, 0.0) == pytest.approx(
            stages.get(stage, 0.0)
        ), stage


def test_overlap_trace_shows_reduced_communication():
    base, _ = run_overlap_trace(False)
    hidden, _ = run_overlap_trace(True)
    base_comm = sum(charged_by_stage(base).get(s, 0.0) for s in COMM_STAGES)
    over_comm = sum(charged_by_stage(hidden).get(s, 0.0) for s in COMM_STAGES)
    assert over_comm < base_comm
    # Kernel time itself is not rescaled by overlap.
    assert charged_by_stage(hidden)["kernel"] == pytest.approx(
        charged_by_stage(base)["kernel"]
    )
