"""Task graph semantics tests."""

import pytest

from repro.errors import RuntimeFault, UnderflowException
from repro.runtime.taskgraph import Task, TaskGraph


def counter_source(limit):
    state = {"n": 0}

    def worker():
        if state["n"] >= limit:
            raise UnderflowException()
        state["n"] += 1
        return state["n"]

    return Task(worker, name="source", is_source=True, produces=True)


def test_source_runs_until_underflow():
    graph = TaskGraph([counter_source(3)])
    assert graph.finish() == [1, 2, 3]


def test_pipeline_applies_stages_in_order():
    double = Task(lambda v: v * 2, "double", is_source=False, produces=True)
    inc = Task(lambda v: v + 1, "inc", is_source=False, produces=True)
    graph = counter_source(3).connect(double).connect(inc)
    assert graph.finish() == [3, 5, 7]


def test_sink_collects_nothing_for_void():
    seen = []
    sink = Task(lambda v: seen.append(v), "sink", is_source=False, produces=False)
    graph = counter_source(2).connect(sink)
    assert graph.finish() == []
    assert seen == [1, 2]


def test_connect_graph_to_graph():
    a = counter_source(2).connect(
        Task(lambda v: v * 10, "x10", is_source=False, produces=True)
    )
    b = TaskGraph(
        [Task(lambda v: v + 1, "inc", is_source=False, produces=True)]
    )
    combined = a.connect(b)
    assert combined.finish() == [11, 21]


def test_finish_requires_source():
    stage = Task(lambda v: v, "id", is_source=False, produces=True)
    with pytest.raises(RuntimeFault):
        TaskGraph([stage]).finish()


def test_max_items_bounds_the_stream():
    graph = TaskGraph([counter_source(100)])
    assert graph.finish(max_items=4) == [1, 2, 3, 4]


def test_downstream_underflow_stops_graph():
    def fussy(value):
        if value >= 2:
            raise UnderflowException()
        return value

    stage = Task(fussy, "fussy", is_source=False, produces=True)
    graph = counter_source(10).connect(stage)
    assert graph.finish() == [1]


def test_empty_graph_rejected():
    with pytest.raises(RuntimeFault):
        TaskGraph([])


def test_connect_rejects_non_task():
    with pytest.raises(RuntimeFault):
        counter_source(1).connect(42)


def test_worker_fault_is_wrapped_with_task_name_and_stage():
    from repro.errors import LaunchFault, TaskFault

    def exploding(v):
        raise LaunchFault("device gave up")

    graph = counter_source(3).connect(
        Task(exploding, "Boom.apply", is_source=False, produces=True)
    )
    with pytest.raises(TaskFault) as exc:
        graph.finish()
    err = exc.value
    assert err.task_name == "Boom.apply"
    assert err.stage == "launch"  # inherited from the wrapped LaunchFault
    assert "Boom.apply" in str(err)
    assert isinstance(err.__cause__, LaunchFault)


def test_source_fault_is_wrapped():
    from repro.errors import DeviceOOM, TaskFault

    def bad_source():
        raise DeviceOOM("no memory")

    graph = TaskGraph(
        [Task(bad_source, "src", is_source=True, produces=True)]
    )
    with pytest.raises(TaskFault) as exc:
        graph.finish()
    assert exc.value.task_name == "src"
    assert exc.value.stage == "oom"


def test_task_fault_not_double_wrapped():
    from repro.errors import TaskFault

    original = TaskFault("already wrapped", task_name="inner", stage="kernel")

    def reraising(v):
        raise original

    graph = counter_source(1).connect(
        Task(reraising, "outer", is_source=False, produces=True)
    )
    with pytest.raises(TaskFault) as exc:
        graph.finish()
    assert exc.value is original  # still attributed to the inner task
    assert exc.value.task_name == "inner"


def test_underflow_not_swallowed_by_fault_wrapping():
    # UnderflowException is stream control flow, not a RuntimeFault; the
    # wrapping except clauses must let it terminate the stream normally.
    graph = counter_source(2)
    assert graph.finish() == [1, 2]
