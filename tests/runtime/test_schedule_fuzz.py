"""Schedule-exploration fuzz: the determinism contract under fire.

Randomized sweep over (app x device count x fault seed x dispatch
permutation) asserting the three clauses of docs/CONCURRENCY.md:

1. values are schedule-INVARIANT — every combo's checksum and journal
   item value bits equal the 1-device sequential baseline bit-exactly,
   including under killed devices and recovered injected faults;
2. timing is schedule-DETERMINISTIC — re-running a combo reproduces
   the metrics registry, the queue snapshots, the makespan, and the
   journal WAL byte-for-byte;
3. conservation — every stream item completes on exactly one queue
   unless it fell back to the host, and submissions never undercount
   completions.

``REPRO_SCHED_FUZZ_SEEDS`` sizes the sweep (default 12 combos; CI's
fleet-concurrency job runs >= 20).
"""

import os
import random

import pytest

from tests.runtime.schedutil import (
    ALL_DEVICES,
    FUZZ_APPS,
    item_value_bits,
    journal_items,
    metric_counts,
    run_workload,
)

N_COMBOS = int(os.environ.get("REPRO_SCHED_FUZZ_SEEDS", "12"))

_SPACE = [
    (app, ndev, dispatch_seed, fault)
    for app in FUZZ_APPS
    for ndev in (2, 3, 4)
    for dispatch_seed in (0, 7, 13)
    for fault in ("clean", "kill", "faults")
]
random.Random(20260808).shuffle(_SPACE)
COMBOS = _SPACE[:N_COMBOS]


def _fault_flags(fault, devices, dispatch_seed):
    if fault == "kill":
        # Kill the second-ranked device after one launch: mid-stream
        # failover re-enqueues onto the surviving queues.
        return {"kill_devices": {devices[1]: 1}}
    if fault == "faults":
        return {"fault_rate": 0.15, "fault_seed": dispatch_seed + 1}
    return {}


_BASELINES = {}


def _baseline(app, tmp_path_factory, steps=None):
    """The 1-device sequential run: checksum + journal value bits."""
    key = (app, steps)
    if key not in _BASELINES:
        jdir = tmp_path_factory.mktemp("base-{}-{}".format(app, steps))
        extra = {} if steps is None else {"steps": steps}
        result, _ = run_workload(
            app, devices=["gtx580"], schedule="sequential", journal=jdir,
            **extra,
        )
        _BASELINES[key] = (
            result.checksum,
            item_value_bits(journal_items(jdir)),
        )
    return _BASELINES[key]


@pytest.mark.parametrize(
    "app,ndev,dispatch_seed,fault",
    COMBOS,
    ids=[
        "{}-{}dev-seed{}-{}".format(*combo) for combo in COMBOS
    ],
)
def test_fuzz_combo(app, ndev, dispatch_seed, fault, tmp_path,
                    tmp_path_factory):
    devices = list(ALL_DEVICES[:ndev])
    flags = _fault_flags(fault, devices, dispatch_seed)
    base_checksum, base_bits = _baseline(app, tmp_path_factory)

    jdir = tmp_path / "run"
    result, _ = run_workload(
        app,
        devices=devices,
        schedule="concurrent",
        dispatch_seed=dispatch_seed,
        journal=jdir,
        **flags,
    )

    # (1) value bits are schedule-invariant, fault or no fault.
    assert result.checksum == base_checksum
    assert item_value_bits(journal_items(jdir)) == base_bits

    # (3) conservation across the fleet's queues.
    items = len(base_bits)
    counts = metric_counts(result)
    fallbacks = int(result.metrics.get("recovery.fallbacks", 0))
    assert counts["queue.completed."] + fallbacks == items
    assert counts["queue.submitted."] >= counts["queue.completed."]
    queue_completed = sum(
        q["completed"] for q in result.queues.values()
    )
    assert queue_completed == counts["queue.completed."]
    assert result.makespan_ns <= result.total_ns + 1e-6

    # (2) the combo is fully deterministic: same config + seeds give
    # the same metrics, queue cursors, makespan, and journal bytes.
    jdir2 = tmp_path / "repeat"
    repeat, _ = run_workload(
        app,
        devices=devices,
        schedule="concurrent",
        dispatch_seed=dispatch_seed,
        journal=jdir2,
        **flags,
    )
    assert repeat.checksum == result.checksum
    assert repeat.metrics == result.metrics
    assert repeat.queues == result.queues
    assert repeat.makespan_ns == result.makespan_ns
    assert repeat.fleet == result.fleet
    wal = (jdir / "journal.wal").read_bytes()
    wal2 = (jdir2 / "journal.wal").read_bytes()
    assert wal == wal2


# -- hedged launches under fuzz ----------------------------------------------
#
# Hedging moves *time* (duplicates, cancellations, rolled-back
# cursors) but never values: every hedged combo must stay bit-exact
# against the same 1-device sequential baseline, and every submission
# must retire as exactly one of completed/faulted/cancelled. The
# straggler lives on a homogeneous GPU trio so the budget gate
# actually opens (core-i7's legitimate slowness would widen the
# fleet-wide quantile past any injected straggle).

N_HEDGE_COMBOS = int(os.environ.get("REPRO_HEDGE_FUZZ_SEEDS", "20"))

HEDGE_DEVICES = ("gtx580", "hd5970", "gtx8800")

_HEDGE_SPACE = [
    (app, ndev, dispatch_seed, slow_idx)
    for app in FUZZ_APPS
    for ndev in (2, 3)
    for dispatch_seed in (0, 3, 7, 11, 13, 17)
    for slow_idx in (0, 1)
]
random.Random(20260809).shuffle(_HEDGE_SPACE)
HEDGE_COMBOS = _HEDGE_SPACE[:N_HEDGE_COMBOS]


@pytest.mark.parametrize(
    "app,ndev,dispatch_seed,slow_idx",
    HEDGE_COMBOS,
    ids=[
        "{}-{}dev-seed{}-slow{}".format(*combo) for combo in HEDGE_COMBOS
    ],
)
def test_hedged_combo_values_bit_exact(app, ndev, dispatch_seed,
                                       slow_idx, tmp_path,
                                       tmp_path_factory):
    devices = list(HEDGE_DEVICES[:ndev])
    base_checksum, base_bits = _baseline(app, tmp_path_factory, steps=12)

    jdir = tmp_path / "run"
    result, _ = run_workload(
        app,
        devices=devices,
        schedule="concurrent",
        dispatch_seed=dispatch_seed,
        slow_devices={devices[slow_idx]: (10.0, 2)},
        hedge="on",
        hedge_min_samples=4,
        hedge_factor=2.0,
        steps=12,
        journal=jdir,
    )

    # (1) hedging never moves values.
    assert result.checksum == base_checksum
    bits = item_value_bits(journal_items(jdir))
    assert bits == base_bits

    # (3) conservation with cancellations in the ledger.
    fallbacks = int(result.metrics.get("recovery.fallbacks", 0))
    completed = sum(q["completed"] for q in result.queues.values())
    cancelled = sum(q["cancelled"] for q in result.queues.values())
    assert completed + fallbacks == len(bits)
    assert cancelled == int(result.metrics.get("hedge.launched", 0))
    for snap in result.queues.values():
        assert snap["submitted"] == (
            snap["completed"] + snap["faulted"] + snap["cancelled"]
        )


def test_hedged_resume_replays_queues_and_winners(tmp_path):
    """A journaled hedged run resumes bit-exactly: identical queue
    snapshots (cancelled counters and rolled-back cursors included),
    identical hedge metrics, and the journal's attempt rows preserve
    the winner set (hedge-lost / hedge-won / hedge-cancelled kinds)."""
    kwargs = dict(
        devices=list(HEDGE_DEVICES),
        schedule="concurrent",
        slow_devices={"gtx580": (10.0, 2)},
        hedge="on",
        hedge_min_samples=4,
        hedge_factor=2.0,
        steps=12,
    )
    jdir = tmp_path / "journal"
    live, _ = run_workload("jg-series-single", journal=jdir, **kwargs)
    assert live.metrics["hedge.launched"] >= 1

    hedge_rows = [
        row
        for rec in journal_items(jdir)
        for row in rec.get("queue") or []
        if len(row) > 5
    ]
    kinds = {row[5] for row in hedge_rows}
    assert kinds & {"hedge-lost", "hedge-won", "hedge-cancelled"}
    # A winning duplicate implies a losing primary and vice versa.
    if "hedge-won" in kinds:
        assert "hedge-lost" in kinds

    resumed, _ = run_workload(
        "jg-series-single", journal=jdir, resume=True, **kwargs
    )
    assert resumed.journal["items_skipped"] > 0
    assert resumed.checksum == live.checksum
    assert resumed.queues == live.queues
    hedge_metrics = {
        k: v for k, v in live.metrics.items() if k.startswith("hedge.")
    }
    for key, value in hedge_metrics.items():
        assert resumed.metrics.get(key, 0) == value


@pytest.mark.parametrize("app", FUZZ_APPS)
def test_schedules_agree_on_everything_but_time(app):
    """Concurrent vs sequential on the full fleet: same values, same
    fleet.* health counters, same per-queue conservation totals — only
    the makespan (and placement) may differ."""
    devices = list(ALL_DEVICES)
    conc, _ = run_workload(app, devices=devices, schedule="concurrent")
    seq, _ = run_workload(app, devices=devices, schedule="sequential")
    assert conc.checksum == seq.checksum
    assert conc.total_ns == pytest.approx(seq.total_ns)
    assert metric_counts(conc) == metric_counts(seq)
    for key in ("fleet.demotions", "fleet.promotions"):
        assert conc.metrics.get(key, 0) == seq.metrics.get(key, 0)
    # The sequential schedule keeps one item in flight, so its
    # makespan is the whole offload time; concurrent can only shrink.
    seq_offload = seq.makespan_ns - seq.host_compute_ns
    conc_offload = conc.makespan_ns - conc.host_compute_ns
    assert conc_offload <= seq_offload + 1e-6


def test_dispatch_seed_permutes_placement_not_values():
    """Two dispatch seeds produce different placements (that is the
    knob's purpose) yet identical values and conservation totals."""
    devices = list(ALL_DEVICES)
    runs = {}
    for seed in (0, 5, 9):
        result, _ = run_workload(
            "jg-series-single",
            devices=devices,
            schedule="concurrent",
            dispatch_seed=seed,
        )
        runs[seed] = result
    checksums = {r.checksum for r in runs.values()}
    assert len(checksums) == 1
    counts = {
        tuple(sorted(metric_counts(r).items())) for r in runs.values()
    }
    assert len(counts) == 1
    # The knob actually permutes: at least two seeds place the items
    # differently across queues (timing is placement-dependent, which
    # is exactly why values being identical above is the theorem).
    placements = {
        tuple(
            (dev, q["submitted"]) for dev, q in r.queues.items()
        )
        for r in runs.values()
    }
    assert len(placements) > 1
