"""Tail-tolerant execution: hedged launches and redundant voting.

A hedge is a *backdated duplicate*: simulated time is only known after
a launch completes, so the fleet decides at completion whether the
attempt exceeded the latency budget quoted before it ran, and if so
submits a duplicate at ``start + budget`` on the next-best queue.
Whichever side finishes first wins; the loser is cancelled and its
burned device time stays billed. The contract tested here
(docs/HEDGING.md):

- the budget is quoted from the *pre-launch* histogram — a straggler
  never judges itself against a distribution its own outlier sample
  already widened;
- values are hedge-invariant: the primary's result object is returned
  whichever side wins, so checksums equal the un-hedged run bit-exactly;
- a cancelled duplicate that never started rolls its queue cursor back
  to the pre-hedge value (the conservation tests in
  test_fleet_queues.py lean on this);
- ``--redundancy vote`` re-runs each item on a second device and turns
  a digest disagreement into a typed :class:`VoteMismatchFault` through
  the normal retry/breaker machinery — catching silent corruption that
  sampled checksums miss.
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_filter
from repro.errors import VoteMismatchFault
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.fleet import DeviceFleet, FleetWorker
from repro.runtime.profiler import ExecutionProfile
from repro.runtime.resilience import FaultInjector, FaultSpec, FleetPolicy
from repro.runtime.tracing import Histogram

from tests.conftest import SAXPY_SOURCE
from tests.runtime.schedutil import run_workload


def fleet_worker(devices=("gtx580", "hd5970"), **policy_kw):
    """A real two-device FleetWorker over the saxpy filter: per-device
    compiled filters sharing one profile, exactly as
    FleetOffloader.compile_filter builds them."""
    checked = check_program(parse_program(SAXPY_SOURCE))
    method = checked.lookup_method("Saxpy", "apply")
    profile = ExecutionProfile()
    fleet = DeviceFleet(list(devices), policy=FleetPolicy(**policy_kw))
    filters = {
        key: compile_filter(
            checked,
            method,
            device=get_device(key),
            local_size=8,
            profile=profile,
            device_key=key,
        )
        for key in devices
    }
    return FleetWorker("Saxpy.apply", filters, fleet, profile)


def frozen(n=8):
    xs = np.arange(n, dtype=np.float32)
    xs.setflags(write=False)
    return xs


def warm(worker, value=50.0, n=8):
    """Seed the fleet-wide launch histogram so the budget gate opens."""
    hist = worker.profile.metrics.histogram("kernel.launch_ns")
    for _ in range(n):
        hist.observe(value)
    return hist


def straggling_worker(factor=50.0):
    """Hedge-armed worker whose first-ranked device (gtx580) straggles
    by ``factor`` on every launch."""
    worker = fleet_worker(hedge="on", hedge_min_samples=4, hedge_factor=2.0)
    warm(worker)
    worker.injector = FaultInjector(
        FaultSpec(), device_specs={"gtx580": FaultSpec(slow=factor)}
    )
    return worker


# -- Histogram.quantile ------------------------------------------------------


def test_quantile_empty_is_zero():
    assert Histogram("h").quantile(0.95) == 0.0


def test_quantile_single_sample_is_that_sample():
    h = Histogram("h")
    h.observe(1234.0)
    for q in (0.0, 0.5, 0.95, 1.0):
        assert h.quantile(q) == 1234.0


def test_quantile_clamped_to_observed_range():
    h = Histogram("h")
    for v in (10.0, 20.0, 30.0):
        h.observe(v)
    assert h.quantile(0.0) >= 10.0
    assert h.quantile(1.0) <= 30.0


def test_quantile_monotone_in_q():
    h = Histogram("h")
    for v in (100.0, 1000.0, 10000.0, 100000.0):
        h.observe(v)
    qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
    assert qs == sorted(qs)


# -- _hedge_budget gating ----------------------------------------------------


def test_budget_none_while_hedging_off():
    worker = fleet_worker()
    warm(worker)
    assert worker._hedge_budget() is None


def test_budget_requires_concurrent_schedule():
    worker = fleet_worker(
        schedule="sequential", hedge="on", hedge_min_samples=4
    )
    warm(worker)
    assert worker._hedge_budget() is None


def test_budget_waits_for_min_samples():
    worker = fleet_worker(hedge="on", hedge_min_samples=4, hedge_factor=2.0)
    hist = worker.profile.metrics.histogram("kernel.launch_ns")
    for _ in range(3):
        hist.observe(100.0)
    assert worker._hedge_budget() is None
    hist.observe(100.0)
    assert worker._hedge_budget() == pytest.approx(200.0)


def test_budget_is_quantile_times_factor():
    worker = fleet_worker(
        hedge="on",
        hedge_min_samples=4,
        hedge_quantile=0.95,
        hedge_factor=3.0,
    )
    hist = warm(worker, value=100.0)
    assert worker._hedge_budget() == pytest.approx(
        hist.quantile(0.95) * 3.0
    )


def test_budget_shrinks_with_deadline_urgency():
    """Serving installs a deadline-fraction callback: a session at
    fraction u of its deadline scales the budget by (1 - u), floored
    at 10% — near-deadline sessions hedge eagerly, but the budget
    never collapses to hedge-everything."""
    worker = fleet_worker(hedge="on", hedge_min_samples=4, hedge_factor=2.0)
    warm(worker, value=100.0)
    base = worker._hedge_budget()
    worker.hedge_urgency = lambda: 0.5
    assert worker._hedge_budget() == pytest.approx(base * 0.5)
    worker.hedge_urgency = lambda: 1.0
    assert worker._hedge_budget() == pytest.approx(base * 0.1)
    worker.hedge_urgency = lambda: 0.0
    assert worker._hedge_budget() == pytest.approx(base)


# -- hedged launches: the three settlement paths -----------------------------


def test_duplicate_wins_and_primary_is_cancelled():
    worker = straggling_worker()
    out = worker(frozen())
    np.testing.assert_array_equal(out, fleet_worker()(frozen()))
    m = worker.profile.metrics.as_dict()
    assert m["hedge.launched"] == 1
    assert m["hedge.won"] == 1
    assert "hedge.cancelled" not in m
    # The straggling primary retires as a cancellation where it ran;
    # its full attempt is the hedge's wasted time.
    prim = worker.fleet.queues["gtx580"].snapshot()
    assert prim["submitted"] == 1
    assert prim["completed"] == 0
    assert prim["cancelled"] == 1
    assert m["hedge.wasted_ns"] == pytest.approx(prim["busy_ns"])
    # The duplicate completed on the candidate queue.
    dup = worker.fleet.queues["hd5970"].snapshot()
    assert dup["submitted"] == 1
    assert dup["completed"] == 1
    assert dup["cancelled"] == 0
    assert m["queue.cancelled.gtx580"] == 1
    assert m["queue.completed.hd5970"] == 1


def test_straggler_sample_still_scores_its_device():
    """A hedge-lost primary still feeds its kernel time to the health
    monitor: the straggler sample is exactly what drives demotion."""
    worker = straggling_worker()
    worker(frozen())
    snap = worker.fleet.snapshot()
    assert snap["gtx580"]["launches"] == 1
    assert snap["gtx580"]["median_launch_ns"] > 0


def test_primary_wins_unstarted_duplicate_rolls_back():
    """When the candidate queue is busy past the straggler's finish,
    the duplicate never starts: the cancel rolls the cursor back to
    the pre-hedge value and no hedge time is wasted."""
    worker = straggling_worker()
    queue = worker.fleet.queues["hd5970"]
    busy_until = 10_000_000.0
    queue.finish(queue.submit(0.0), busy_until, True)
    out = worker(frozen())
    np.testing.assert_array_equal(out, fleet_worker()(frozen()))
    m = worker.profile.metrics.as_dict()
    assert m["hedge.launched"] == 1
    assert m["hedge.cancelled"] == 1
    assert "hedge.won" not in m
    assert m["hedge.wasted_ns"] == 0.0
    snap = queue.snapshot()
    assert snap["cancelled"] == 1
    assert snap["cursor_ns"] == busy_until  # rolled back, not advanced
    assert snap["busy_ns"] == busy_until  # nothing burned
    # The primary completed normally on its own queue.
    prim = worker.fleet.queues["gtx580"].snapshot()
    assert prim["completed"] == 1
    assert prim["cancelled"] == 0


def test_primary_wins_started_duplicate_bills_burned_time():
    """A duplicate cancelled mid-flight keeps its burned device time
    billed to the candidate queue (no rollback: the queue really was
    occupied)."""
    # Learn the straggler's deterministic finish time first.
    probe = straggling_worker()
    probe(frozen())
    end_p = probe.fleet.queues["gtx580"].snapshot()["cursor_ns"]

    worker = straggling_worker()
    queue = worker.fleet.queues["hd5970"]
    # Busy until just before the primary finishes: the duplicate
    # starts, but cannot beat the primary (margin << its estimate).
    margin = 100.0
    queue.finish(queue.submit(0.0), end_p - margin, True)
    worker(frozen())
    m = worker.profile.metrics.as_dict()
    assert m["hedge.launched"] == 1
    assert m["hedge.cancelled"] == 1
    assert m["hedge.wasted_ns"] == pytest.approx(margin)
    snap = queue.snapshot()
    assert snap["cancelled"] == 1
    assert snap["cursor_ns"] == pytest.approx(end_p)
    assert snap["busy_ns"] == pytest.approx(end_p)


def test_no_candidate_queue_means_no_hedge():
    worker = straggling_worker()
    # Strip the fleet down to the straggler alone: nothing to hedge onto.
    del worker.filters["hd5970"]
    worker(frozen())
    assert "hedge.launched" not in worker.profile.metrics.as_dict()


# -- hedging end-to-end ------------------------------------------------------

GPU_TRIO = ["gtx580", "hd5970", "gtx8800"]


def test_straggler_hedge_end_to_end():
    """A mid-run 10x straggler on a homogeneous GPU trio triggers one
    hedge whose duplicate wins; the checksum equals the un-hedged run
    bit-exactly and the loser retires as a cancellation."""
    base, _ = run_workload(
        "jg-series-single",
        devices=GPU_TRIO,
        slow_devices={"gtx580": (10.0, 2)},
        steps=12,
    )
    hedged, _ = run_workload(
        "jg-series-single",
        devices=GPU_TRIO,
        slow_devices={"gtx580": (10.0, 2)},
        hedge="on",
        hedge_min_samples=4,
        hedge_factor=2.0,
        steps=12,
    )
    assert hedged.checksum == base.checksum
    m = hedged.metrics
    assert m["hedge.launched"] == 1
    assert m["hedge.won"] == 1
    assert m["hedge.wasted_ns"] > 0
    assert m["queue.cancelled.gtx580"] == 1
    snap = hedged.queues["gtx580"]
    assert snap["cancelled"] == 1
    assert snap["submitted"] == snap["completed"] + snap["cancelled"]


def test_hedging_off_by_default():
    result, _ = run_workload(
        "jg-series-single",
        devices=GPU_TRIO,
        slow_devices={"gtx580": (10.0, 2)},
        steps=12,
    )
    assert not any(k.startswith("hedge.") for k in result.metrics)
    assert all(q["cancelled"] == 0 for q in result.queues.values())


def test_hedged_run_is_deterministic():
    kwargs = dict(
        devices=GPU_TRIO,
        slow_devices={"gtx580": (10.0, 2)},
        hedge="on",
        hedge_min_samples=4,
        hedge_factor=2.0,
        steps=12,
    )
    a, _ = run_workload("jg-series-single", **kwargs)
    b, _ = run_workload("jg-series-single", **kwargs)
    assert a.checksum == b.checksum
    assert a.metrics == b.metrics
    assert a.queues == b.queues
    assert a.makespan_ns == b.makespan_ns


# -- redundant cross-device voting -------------------------------------------


def test_vote_agreement_on_clean_devices():
    worker = fleet_worker(redundancy="vote")
    out = worker(frozen())
    np.testing.assert_array_equal(out, fleet_worker()(frozen()))
    m = worker.profile.metrics.as_dict()
    assert m["vote.launched"] == 1
    assert m["vote.agreed"] == 1
    # The replica is a real launch on its own queue.
    assert worker.fleet.queues["hd5970"].snapshot()["completed"] == 1


def test_vote_mismatch_raises_and_blames_both_devices():
    """Silent corruption on the primary alone: the digests disagree,
    the item raises a typed VoteMismatchFault, and *both* participants
    take the health fault — neither side is trusted."""
    worker = fleet_worker(redundancy="vote")
    worker.injector = FaultInjector(
        FaultSpec(), device_specs={"gtx580": FaultSpec(silent=1.0, seed=3)}
    )
    with pytest.raises(VoteMismatchFault) as err:
        worker(frozen())
    assert err.value.stage == "vote"
    m = worker.profile.metrics.as_dict()
    assert m["vote.mismatch"] == 1
    assert "vote.agreed" not in m
    snap = worker.fleet.snapshot()
    assert snap["gtx580"]["faults"] == 1
    assert snap["hd5970"]["faults"] == 1


def test_vote_end_to_end_checksum_invariant():
    base, _ = run_workload(
        "jg-series-single", devices=["gtx580", "hd5970"]
    )
    voted, _ = run_workload(
        "jg-series-single",
        devices=["gtx580", "hd5970"],
        redundancy="vote",
    )
    assert voted.checksum == base.checksum
    m = voted.metrics
    assert m["vote.launched"] > 0
    assert m["vote.agreed"] == m["vote.launched"]
    assert "vote.mismatch" not in m


def test_vote_catches_silent_corruption_deterministically():
    """The tentpole's reason to exist: jg-series' sampled checksum
    reads two elements of a large buffer, so a single-element silent
    corruption usually escapes it. The vote digests the full
    marshalled wire, trips on every corrupted launch, and the breaker
    demotes the task to the host — final checksum equals the clean
    run."""
    clean, _ = run_workload(
        "jg-series-single", devices=["gtx580", "hd5970"]
    )
    caught, _ = run_workload(
        "jg-series-single",
        devices=["gtx580", "hd5970"],
        redundancy="vote",
        silent_rate=1.0,
        fault_seed=7,
    )
    assert caught.checksum == clean.checksum
    assert caught.metrics["vote.mismatch"] >= 1
    assert caught.faults["guards.trips"].get("vote", 0) >= 1
    assert caught.faults["recovery.faults"] >= 1
    # Deterministic: the same seed catches the same corruptions.
    again, _ = run_workload(
        "jg-series-single",
        devices=["gtx580", "hd5970"],
        redundancy="vote",
        silent_rate=1.0,
        fault_seed=7,
    )
    assert again.metrics == caught.metrics
    assert again.faults == caught.faults
