"""Cost-model unit tests."""

import pytest

from repro.runtime.cost import CostCounter, JavaCostModel, StageTimes
from repro.runtime.profiler import CommCostModel, ExecutionProfile
from repro.runtime.marshal import MarshalStats


def test_counter_accumulates():
    counter = CostCounter()
    counter.charge("fp_op", 3)
    counter.charge("fp_op")
    assert counter.get("fp_op") == 4
    assert counter.total_ops() == 4


def test_counter_merge():
    a, b = CostCounter(), CostCounter()
    a.charge("fp_op", 2)
    b.charge("fp_op", 3)
    b.charge("branch", 1)
    a.merge(b)
    assert a.get("fp_op") == 5
    assert a.get("branch") == 1


def test_java_model_weighting():
    model = JavaCostModel()
    counter = CostCounter()
    counter.charge("fp_op", 10)
    counter.charge("transcendental", 2)
    expected = 10 * model.fp_op + 2 * model.transcendental
    assert model.nanos(counter) == pytest.approx(expected)


def test_java_model_unknown_kind_raises():
    counter = CostCounter()
    counter.charge("made_up_op")
    with pytest.raises(KeyError):
        JavaCostModel().nanos(counter)


def test_transcendental_much_more_expensive_than_sqrt():
    model = JavaCostModel()
    assert model.transcendental > 5 * model.sqrt_op


def test_stage_times_total_and_communication():
    stages = StageTimes(java_marshal=10, c_marshal=5, kernel=100, transfer=5)
    assert stages.total() == 120
    assert stages.communication() == 20


def test_stage_times_add():
    a = StageTimes(kernel=10)
    a.add(StageTimes(kernel=5, transfer=2))
    assert a.kernel == 15
    assert a.transfer == 2


def test_comm_model_marshal_costs():
    comm = CommCostModel()
    stats = MarshalStats(elements=10, bulk_bytes=100, allocations=1)
    java = comm.java_marshal_ns(stats)
    c = comm.c_marshal_ns(stats)
    assert java > c  # Java marshalling is the expensive side (Figure 9)


def test_cpu_comm_model_has_no_real_pcie():
    gpu = CommCostModel()
    cpu = CommCostModel.for_cpu()
    assert cpu.transfer_ns(1_000_000) < gpu.transfer_ns(1_000_000) / 5


def test_profile_breakdown_fractions_sum_to_one():
    profile = ExecutionProfile()
    profile.record("t", StageTimes(kernel=60, java_marshal=30, transfer=10))
    breakdown = profile.breakdown()
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert breakdown["kernel"] == pytest.approx(0.6)


def test_profile_per_task_accounting():
    profile = ExecutionProfile()
    profile.record("a", StageTimes(kernel=10))
    profile.record("a", StageTimes(kernel=5))
    profile.record("b", StageTimes(kernel=1))
    assert profile.per_task["a"].kernel == 15
    assert profile.per_task["b"].kernel == 1
    assert profile.total_ns() == 16
