"""Marshal-boundary elision round-trip tests (--fuse).

The risky part of keeping a ``=>`` intermediate on-device is every path
that needs the host bytes back: a device death mid-chain, a host
fallback, a journal replay. These tests pin the contract from
docs/FUSION.md — an elided boundary is re-materialized bit-exactly,
charged honestly (``fusion.rematerialized``), and ``--fuse off`` stays
byte-identical to a run that never heard of the planner.
"""

import numpy as np
import pytest

from repro.apps.registry import ALL_BENCHMARKS
from repro.evaluation.harness import run_configuration
from repro.opencl import kernel_cache as kc
from repro.runtime.resilience import ResiliencePolicy

SCALE = 0.3
BENCH = ALL_BENCHMARKS["pipeline3"]


@pytest.fixture(autouse=True)
def fresh_kernel_cache():
    yield
    kc.configure_disk_store(None)
    kc.reset_global_cache()


def run(fuse=None, **kw):
    return run_configuration(
        BENCH, "gtx580", scale=SCALE, fuse=fuse, **kw
    )


def transfer_bytes(result):
    m = result.metrics
    return (
        m.get("transfer.bytes_to_device", 0)
        + m.get("transfer.bytes_from_device", 0)
    )


# -- off is byte-identical ---------------------------------------------------


def test_fuse_off_is_byte_identical_to_no_fuse():
    kc.reset_global_cache()
    baseline = run(fuse=None)
    kc.reset_global_cache()
    off = run(fuse="off")
    assert off.checksum == baseline.checksum
    assert off.metrics == baseline.metrics
    assert off.stages == baseline.stages
    assert off.fusion == {} and baseline.fusion == {}


# -- elision round trip ------------------------------------------------------


def test_resident_elides_interior_boundaries_bit_exactly():
    baseline = run(fuse=None)
    resident = run(fuse="resident")
    assert resident.checksum == baseline.checksum
    m = resident.metrics
    assert m["fusion.elisions"] > 0
    assert m["transfer.bytes_saved"] > 0
    # Interior seams crossed the bus in the baseline; now they don't.
    assert transfer_bytes(resident) < transfer_bytes(baseline)
    assert resident.fusion["chains"][0]["tasks"] == [
        "Pipe.scale", "Pipe.smooth", "Pipe.sharpen",
    ]


def test_kernel_mode_composes_the_whole_chain():
    baseline = run(fuse=None)
    fused = run(fuse="kernel")
    assert fused.checksum == baseline.checksum
    assert fused.fusion["fused_kernels"] == 1
    assert "Pipe.scale+Pipe.smooth+Pipe.sharpen" in fused.offloaded
    # The composite runs one launch per item where the staged pipeline
    # ran three, and only the pipeline endpoints touch the bus.
    assert transfer_bytes(fused) < transfer_bytes(baseline)


# -- failover re-materialization ---------------------------------------------


def test_device_death_rematerializes_from_last_host_boundary():
    devices = ["gtx580", "hd5970"]
    baseline = run(fuse=None, devices=devices)
    dead = run(
        fuse="resident",
        devices=devices,
        resilience=ResiliencePolicy.from_flags(
            kill_devices={"gtx580": 2}
        ),
    )
    assert dead.checksum == baseline.checksum
    m = dead.metrics
    assert m["fusion.elisions"] > 0
    # At least one consumer found its resident input stranded on the
    # dead device and re-marshalled it from the last host-resident
    # boundary — charged, not free.
    assert m["fusion.rematerialized"] >= 1
    assert m["transfer.bytes_from_device"] > 0


# -- journal resume mid-chain ------------------------------------------------


class _Stop(Exception):
    pass


def _abort_after(n):
    state = {"count": 0}

    def guard(task_name):
        state["count"] += 1
        if state["count"] > n:
            raise _Stop("deliberate mid-chain abort")

    return guard


def test_journal_resume_re_elides_after_mid_chain_abort(tmp_path):
    journal = tmp_path / "journal"
    baseline = run(fuse=None)
    with pytest.raises(_Stop):
        run(fuse="resident", journal=str(journal),
            item_guard=_abort_after(10))
    kc.configure_disk_store(None)
    kc.reset_global_cache()
    resumed = run(fuse="resident", journal=str(journal), resume=True)
    assert resumed.checksum == baseline.checksum
    assert resumed.journal["items_skipped"] > 0
    # Replayed items re-enter from the journal's host-resident wire
    # bytes; live items re-elide their interior seams.
    assert resumed.metrics["fusion.elisions"] > 0


def test_resume_refuses_a_different_fuse_mode(tmp_path):
    from repro.runtime.journal import JournalError

    journal = tmp_path / "journal"
    run(fuse="resident", journal=str(journal))
    kc.configure_disk_store(None)
    kc.reset_global_cache()
    with pytest.raises(JournalError):
        run(fuse="kernel", journal=str(journal), resume=True)


# -- resident values never leak host-writable aliases ------------------------


def test_resident_checksum_matches_reference():
    resident = run(fuse="resident")
    xs = BENCH.make_input(SCALE)[0]
    ref = BENCH.reference(xs)
    # The host accumulator is evaluated at interpreter (double)
    # precision; only the device-side array elements round to float32.
    expected = 0.0
    for _ in range(BENCH.steps):
        expected = expected + np.float64(ref[0]) + np.float64(ref[-1])
    assert resident.checksum == pytest.approx(expected, abs=0.0)


# -- hedging and voting against resident intermediates -----------------------


def test_hedged_consumer_settles_resident_intermediate_exactly_once():
    """A chain consumer whose resident input lives on the straggling
    device hedges onto the other device: the duplicate cannot elide
    the transfer, so the producer's deferred d2h settles — exactly one
    ``fusion.rematerialized`` charge per hedge won, and the checksum
    stays bit-identical to the un-hedged fused run."""
    from repro.runtime.resilience import FleetPolicy

    kc.reset_global_cache()
    baseline = run(fuse="resident", steps=12, devices=["gtx580", "hd5970"])
    kc.reset_global_cache()
    hedged = run(
        fuse="resident",
        steps=12,
        devices=["gtx580", "hd5970"],
        fleet_policy=FleetPolicy(
            hedge="on", hedge_min_samples=4, hedge_factor=2.0
        ),
        resilience=ResiliencePolicy.from_flags(
            slow_devices={"gtx580": (30.0, 4)}
        ),
    )
    assert hedged.checksum == baseline.checksum
    m = hedged.metrics
    assert m["hedge.launched"] == 1
    assert m["hedge.won"] == 1
    # Exactly one settle, attributable to the hedge alone: no device
    # death or host fallback re-materialized anything else.
    assert m["fusion.rematerialized"] == 1
    assert m.get("recovery.failovers", 0) == 0
    assert m.get("recovery.fallbacks", 0) == 0
    assert m["fusion.elisions"] > 0


def test_vote_skips_resident_consumers():
    """--redundancy vote re-runs items on a second device — but a chain
    consumer's input is device-resident, and re-materializing it just
    to vote would defeat the elision. Those items skip the vote;
    host-resident items (the chain producers) still vote."""
    from repro.runtime.resilience import FleetPolicy

    kc.reset_global_cache()
    baseline = run(fuse="resident", devices=["gtx580", "hd5970"])
    kc.reset_global_cache()
    voted = run(
        fuse="resident",
        devices=["gtx580", "hd5970"],
        fleet_policy=FleetPolicy(redundancy="vote"),
    )
    assert voted.checksum == baseline.checksum
    m = voted.metrics
    assert m["vote.skipped"] == m["fusion.elisions"]
    assert m["vote.launched"] > 0
    assert m["vote.agreed"] == m["vote.launched"]
