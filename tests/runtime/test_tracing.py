"""The tracing & metrics subsystem: span recording, the null tracer's
zero-overhead contract, the typed metrics registry, both exporters
(golden files), the readers, and the flame/diff renderers."""

import json
import time
from pathlib import Path

import pytest

from repro.apps.registry import BENCHMARKS
from repro.evaluation.harness import run_configuration
from repro.runtime.profiler import (
    ExecutionProfile,
    FailureLedger,
    render_executor_summary,
    render_failure_summary,
)
from repro.runtime.tracing import (
    DEFAULT_BUCKETS,
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    SimClock,
    Tracer,
    diff_traces,
    flame_summary,
    read_trace,
)

GOLDEN = Path(__file__).parent.parent / "golden"


# -- the clock ---------------------------------------------------------------


def test_sim_clock_only_moves_forward():
    clock = SimClock()
    clock.advance(100.0)
    clock.advance(-50.0)
    clock.advance(0.0)
    assert clock.now() == 100.0


# -- span recording ----------------------------------------------------------


def test_charge_records_closed_span_and_advances_clock():
    tracer = Tracer(wallclock=lambda: 0)
    span = tracer.charge("kernel", 500.0, cat="stage", tier="batch")
    assert tracer.now_ns() == 500.0
    assert span.ts_ns == 0.0 and span.dur_ns == 500.0
    assert span.args == {"tier": "batch"}
    assert span.parent is None and span.depth == 0


def test_span_duration_is_clock_delta_and_nesting_is_recorded():
    tracer = Tracer(wallclock=lambda: 0)
    with tracer.span("item", cat="task", task="A.f") as handle:
        tracer.charge("java_marshal", 100.0, cat="stage")
        with tracer.span("inner"):
            tracer.advance(40.0)
        handle.set(seq=3)
    spans = {s.name: s for s in tracer.events}
    item = spans["item"]
    assert item.dur_ns == 140.0
    assert item.args == {"task": "A.f", "seq": 3}
    assert spans["java_marshal"].parent == item.id
    assert spans["java_marshal"].depth == 1
    assert spans["inner"].parent == item.id
    assert spans["inner"].dur_ns == 40.0
    assert tracer._stack == []


def test_span_exception_recorded_and_reraised():
    tracer = Tracer(wallclock=lambda: 0)
    with pytest.raises(ValueError):
        with tracer.span("item"):
            raise ValueError("boom")
    (span,) = tracer.events
    assert span.args["error"] == "ValueError"
    assert tracer._stack == []


def test_instant_records_point_event_under_current_span():
    tracer = Tracer(wallclock=lambda: 0)
    with tracer.span("item"):
        tracer.instant("fault", cat="recovery", stage="transfer")
    instants = [e for e in tracer.events if e.kind == "instant"]
    assert len(instants) == 1
    assert instants[0].dur_ns == 0.0
    assert instants[0].parent is not None


def test_coverage_counts_top_level_spans_only():
    tracer = Tracer(wallclock=lambda: 0)
    with tracer.span("item"):
        tracer.charge("kernel", 80.0)
    tracer.charge("host_compute", 20.0)
    assert tracer.coverage() == pytest.approx(1.0)
    assert tracer.coverage(200.0) == pytest.approx(0.5)
    assert Tracer().coverage() == 1.0  # empty trace, zero total


# -- the null tracer ---------------------------------------------------------


def test_null_tracer_is_inert_shared_singleton():
    assert isinstance(NULL_TRACER, NullTracer)
    assert NULL_TRACER.enabled is False
    handle_a = NULL_TRACER.span("item", cat="task", task="A.f")
    handle_b = NULL_TRACER.span("other")
    assert handle_a is handle_b  # one shared handle, no allocation
    with handle_a as h:
        assert h.set(x=1) is h
    assert NULL_TRACER.charge("kernel", 100.0) is None
    assert NULL_TRACER.instant("fault") is None
    assert NULL_TRACER.advance(100.0) is None
    assert NULL_TRACER.now_ns() == 0.0


def test_fresh_profile_uses_null_tracer():
    assert ExecutionProfile().tracer is NULL_TRACER


def test_tracing_off_overhead_under_two_percent():
    """With tracing off the instrumentation must cost < 2% of a
    jg-series run: (tracer calls the run makes) x (null per-call cost)
    bounded against the run's wall time."""
    bench = BENCHMARKS["jg-series-single"]
    run_configuration(bench, "gtx580", scale=0.2)  # warm caches
    start = time.perf_counter()
    run_configuration(bench, "gtx580", scale=0.2)
    run_s = time.perf_counter() - start

    tracer = Tracer()
    run_configuration(bench, "gtx580", scale=0.2, tracer=tracer)
    n_calls = len(tracer.events)  # every event is one tracer call site

    reps = 20000
    start = time.perf_counter()
    for _ in range(reps):
        with NULL_TRACER.span("item", cat="task", task="A.f", seq=0):
            NULL_TRACER.charge("kernel", 100.0, cat="stage", tier="batch")
    per_pair = (time.perf_counter() - start) / reps
    overhead_s = n_calls * per_pair  # pair cost over-counts: safe bound
    assert overhead_s < 0.02 * run_s, (
        "null-tracer overhead {:.6f}s vs run {:.3f}s "
        "({} call sites)".format(overhead_s, run_s, n_calls)
    )


# -- metrics registry --------------------------------------------------------


def test_counter_gauge_histogram():
    reg = MetricsRegistry()
    assert reg.inc("cache.hits") == 1
    assert reg.inc("cache.hits", 4) == 5
    assert reg.get("cache.hits") == 5
    assert reg.get("cache.misses") == 0  # absent -> default
    reg.gauge("executor.active").set(3)
    assert reg.get("executor.active") == 3
    hist = reg.histogram("task.invoke_ns")
    hist.observe(50.0)
    hist.observe(5e3)
    hist.observe(5e8)  # overflow bucket
    assert hist.summary() == {
        "count": 3,
        "sum": 50.0 + 5e3 + 5e8,
        "min": 50.0,
        "max": 5e8,
    }
    assert hist.bucket_counts[0] == 1
    assert hist.bucket_counts[-1] == 1
    assert len(hist.bounds) == len(DEFAULT_BUCKETS)


def test_registry_returns_same_instrument_and_rejects_kind_clash():
    reg = MetricsRegistry()
    assert reg.counter("recovery.faults") is reg.counter("recovery.faults")
    with pytest.raises(TypeError):
        reg.gauge("recovery.faults")
    with pytest.raises(TypeError):
        reg.histogram("recovery.faults")


def test_registry_as_dict_flattens_histograms():
    reg = MetricsRegistry()
    reg.inc("cache.hits", 2)
    reg.histogram("task.invoke_ns").observe(100.0)
    flat = reg.as_dict()
    assert flat["cache.hits"] == 2
    assert flat["task.invoke_ns.count"] == 1
    assert flat["task.invoke_ns.sum"] == 100.0
    assert "cache.hits = 2" in reg.render()
    assert reg.names() == ["cache.hits", "task.invoke_ns"]


def test_instrument_kinds():
    assert Counter.kind == "counter"
    assert Gauge.kind == "gauge"
    assert Histogram.kind == "histogram"


# -- ledger/profile -> canonical metrics -------------------------------------


def test_ledger_publishes_canonical_metrics():
    reg = MetricsRegistry()
    ledger = FailureLedger(metrics=reg)
    ledger.record_fault("A.f", "transfer")
    ledger.record_fault("A.f", "launch")
    ledger.record_retry("A.f")
    ledger.record_fallback("A.f")
    ledger.record_demotion("A.f")
    ledger.record_demotion("A.f")  # second demotion of same task: no-op
    ledger.record_promotion("A.f")
    ledger.record_trip("A.f", "bounds", 3)
    ledger.record_validation("A.f", ok=False)
    ledger.add_time_lost("A.f", 500.0)
    assert reg.get("recovery.faults") == 2
    assert reg.get("recovery.faults.transfer") == 1
    assert reg.get("recovery.faults.launch") == 1
    assert reg.get("recovery.retries") == 1
    assert reg.get("recovery.fallbacks") == 1
    assert reg.get("recovery.demotions") == 1
    assert reg.get("recovery.promotions") == 1
    assert reg.get("guards.trips.bounds") == 3
    assert reg.get("guards.validations") == 1
    assert reg.get("guards.mismatches") == 1
    assert reg.get("recovery.time_lost_ns") == 500.0


def test_profile_publishes_tier_and_cache_metrics():
    profile = ExecutionProfile()
    profile.record_tier("batch")
    profile.record_tier("batch")
    profile.record_tier("per-item")
    profile.record_cache(hit=True)
    profile.record_cache(hit=False)
    assert profile.metrics.get("executor.launches.batch") == 2
    assert profile.metrics.get("executor.launches.per-item") == 1
    assert profile.metrics.get("cache.hits") == 1
    assert profile.metrics.get("cache.misses") == 1
    summary = profile.executor_summary()
    # Canonical dotted keys only — the legacy aliases are gone.
    assert summary["cache.hits"] == 1
    assert summary["executor.launches"] == {"batch": 2, "per-item": 1}
    assert "cache_hits" not in summary
    assert "tiers" not in summary


def test_render_failure_summary_canonical_keys():
    ledger = FailureLedger()
    ledger.record_fault("A.f", "transfer")
    ledger.record_retry("A.f")
    text = render_failure_summary(ledger.summary())
    assert "failure ledger: faults=1 retries=1" in text
    assert "fallbacks=0" in text and "demotions=0" in text
    ledger.record_failover("A.f", "gtx580", "hd5970")
    ledger.record_partition("A.f", 4)
    ledger.record_demotion("A.f")
    text = render_failure_summary(ledger.summary())
    assert "fleet: failovers=1 partitioned_launches=4" in text
    assert "DEMOTED-TO-HOST" in text


def test_render_executor_summary():
    assert render_executor_summary({}) == ""
    text = render_executor_summary(
        {
            "executor.launches": {"batch": 2, "per-item": 1},
            "cache.hits": 1,
            "cache.misses": 1,
        }
    )
    assert "launches.batch=2" in text
    assert "launches.per-item=1" in text
    assert "cache.hits=1" in text and "cache.misses=1" in text
    # Legacy alias keys no longer render — canonical names only.
    assert render_executor_summary({"tiers": {"batch": 5}}) == ""


# -- exporters: golden files -------------------------------------------------


def _golden_tracer():
    """A small fixed trace exercising nesting, charges, instants, args,
    and an exception — deterministic because wall time is pinned."""
    tracer = Tracer(wallclock=lambda: 0)
    with tracer.span("item", cat="task", task="A.f", seq=0):
        tracer.charge("java_marshal", 100.0, cat="stage", param="x")
        tracer.charge(
            "transfer", 50.0, cat="stage", bytes=4096, direction="h2d"
        )
        with tracer.span("device", cat="executor", kernel="k"):
            pass
        tracer.charge(
            "kernel", 200.0, cat="stage", kernel="k", tier="batch"
        )
        tracer.instant("cache_hit", cat="compile", kernel="k")
    with tracer.span("item", cat="task", task="A.f", seq=1):
        tracer.instant("fault", cat="recovery", stage="launch", attempt=1)
        tracer.charge("retry_backoff", 1000.0, cat="recovery", attempt=1)
    tracer.charge("host_compute", 25.0, cat="host", benchmark="demo")

    metrics = MetricsRegistry()
    metrics.inc("cache.hits")
    metrics.counter("recovery.faults").inc(1)
    metrics.histogram("task.invoke_ns").observe(350.0)
    return tracer, metrics


def test_chrome_export_matches_golden(tmp_path):
    tracer, metrics = _golden_tracer()
    path = tmp_path / "trace.json"
    tracer.write_chrome(path, metrics=metrics)
    assert path.read_text() == (GOLDEN / "trace_chrome.json").read_text()


def test_jsonl_export_matches_golden(tmp_path):
    tracer, metrics = _golden_tracer()
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(path, metrics=metrics)
    assert path.read_text() == (GOLDEN / "trace_events.jsonl").read_text()


def test_chrome_export_is_loadable_and_well_formed(tmp_path):
    tracer, metrics = _golden_tracer()
    path = tmp_path / "trace.json"
    tracer.write_chrome(path, metrics=metrics)
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ns"
    phases = {ev["ph"] for ev in payload["traceEvents"]}
    assert phases == {"M", "X", "i"}
    complete = [ev for ev in payload["traceEvents"] if ev["ph"] == "X"]
    assert all({"name", "cat", "ts", "dur", "pid", "tid"} <= set(ev)
               for ev in complete)
    meta = [ev for ev in payload["traceEvents"] if ev["ph"] == "M"]
    assert meta[-1]["name"] == "metrics"
    assert meta[-1]["args"]["cache.hits"] == 1


# -- readers -----------------------------------------------------------------


def test_read_trace_roundtrip_both_formats(tmp_path):
    tracer, metrics = _golden_tracer()
    chrome = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    tracer.write_chrome(chrome, metrics=metrics)
    tracer.write_jsonl(jsonl, metrics=metrics)
    from_chrome = read_trace(chrome)
    from_jsonl = read_trace(jsonl)
    key = lambda e: (e["ts_ns"], e["name"], e["kind"], e["dur_ns"])  # noqa: E731
    assert sorted(map(key, from_chrome)) == sorted(map(key, from_jsonl))
    spans = [e for e in from_jsonl if e["kind"] == "span"]
    items = [e for e in spans if e["name"] == "item"]
    assert len(items) == 2
    kernel = next(e for e in spans if e["name"] == "kernel")
    assert kernel["parent"] == items[0]["id"]
    assert kernel["args"]["tier"] == "batch"


# -- flame summary & diff ----------------------------------------------------


def test_flame_summary_self_time_and_ordering():
    tracer, _metrics = _golden_tracer()
    events = [
        {
            "kind": s.kind,
            "name": s.name,
            "cat": s.cat,
            "ts_ns": s.ts_ns,
            "dur_ns": s.dur_ns,
            "id": s.id,
            "parent": s.parent,
            "depth": s.depth,
            "wall_ns": s.wall_ns,
            "args": s.args,
        }
        for s in tracer.events
    ]
    text = flame_summary(events)
    lines = text.splitlines()
    assert "flame summary" in lines[0]
    # retry_backoff (1000 self ns) must rank first; item's self time is
    # ~0 because its children account for its whole duration.
    assert lines[1].startswith("retry_backoff")
    item_line = next(line for line in lines if line.startswith("item"))
    assert "self              0 ns" in item_line
    assert flame_summary([]) == "trace: no spans"
    assert len(flame_summary(events, top=2).splitlines()) == 3


def test_diff_traces_marks_new_gone_and_equal(tmp_path):
    tracer_a, _m = _golden_tracer()
    tracer_b = Tracer(wallclock=lambda: 0)
    tracer_b.charge("kernel", 400.0, cat="stage")
    tracer_b.charge("brand_new", 10.0)
    a = read_events(tracer_a, tmp_path / "a.jsonl")
    b = read_events(tracer_b, tmp_path / "b.jsonl")
    text = diff_traces(a, b, label_a="a", label_b="b")
    assert "a -> b" in text
    kernel_line = next(
        line for line in text.splitlines() if line.startswith("kernel")
    )
    assert "+100.0%" in kernel_line
    new_line = next(
        line for line in text.splitlines() if line.startswith("brand_new")
    )
    assert "new" in new_line


def read_events(tracer, path):
    tracer.write_jsonl(path)
    return read_trace(path)


# -- end to end --------------------------------------------------------------


def test_mosaic_trace_end_to_end(tmp_path):
    tracer = Tracer()
    result = run_configuration(
        BENCHMARKS["mosaic"],
        "gtx580",
        scale=0.2,
        max_sim_items=256,
        tracer=tracer,
    )
    # The clock model guarantees near-total coverage (the acceptance
    # bar is 95%).
    assert tracer.coverage(result.total_ns) >= 0.95

    path = tmp_path / "trace.json"
    tracer.write_chrome(path, metrics=result.metrics)
    events = read_trace(path)
    spans = {e["id"]: e for e in events if e["kind"] == "span"}
    names = {e["name"] for e in events}
    assert {"compile", "item", "kernel", "java_marshal", "transfer",
            "host_compute"} <= names
    # Causality: every kernel charge is nested under a glue item span.
    kernels = [e for e in events if e["name"] == "kernel"]
    assert kernels
    for charge in kernels:
        assert spans[charge["parent"]]["name"] == "item"
    # The run's metrics ride along in RunResult. (The compile cache is
    # process-global, so an earlier test may have warmed it: hits and
    # misses both count as cache activity.)
    assert (
        result.metrics.get("cache.hits", 0)
        + result.metrics.get("cache.misses", 0)
    ) >= 1
    assert any(k.startswith("executor.launches.") for k in result.metrics)
    assert result.metrics["transfer.bytes_to_device"] > 0


def test_faulted_run_trace_accounts_recovery_time():
    from repro.runtime.resilience import ResiliencePolicy

    tracer = Tracer()
    policy = ResiliencePolicy.from_flags(fault_rate=0.3, seed=7)
    result = run_configuration(
        BENCHMARKS["jg-series-single"],
        "gtx580",
        scale=0.2,
        resilience=policy,
        tracer=tracer,
    )
    names = {e.name for e in tracer.events}
    assert "fault" in names
    assert "retry_backoff" in names
    # Recovery charges keep the clock aligned with the profile total.
    assert tracer.coverage(result.total_ns) >= 0.95
