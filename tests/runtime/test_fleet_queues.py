"""Unit tests for the per-device command queues and the concurrent
dispatcher's placement: queue arithmetic, earliest-finish ranking,
failover re-enqueue accounting, and the canonical sorting of every
fleet-facing snapshot."""

import pytest

from repro.runtime.fleet import DeviceFleet, FleetWorker
from repro.runtime.queues import CommandQueue
from repro.runtime.resilience import FleetPolicy, HealthMonitor

DEVS = ["gtx8800", "gtx580", "hd5970"]


# -- CommandQueue ------------------------------------------------------------


class TestCommandQueue:
    def test_submit_to_idle_queue_starts_immediately(self):
        q = CommandQueue("d")
        start = q.submit(0.0)
        assert start == 0.0
        assert q.wait_ns == 0.0
        assert q.inflight == 1
        end = q.finish(start, 100.0, True)
        assert end == 100.0
        assert q.cursor_ns == 100.0
        assert q.inflight == 0
        assert (q.submitted, q.completed, q.faulted) == (1, 1, 0)

    def test_submit_behind_busy_queue_waits(self):
        q = CommandQueue("d")
        q.finish(q.submit(0.0), 100.0, True)
        start = q.submit(30.0)
        assert start == 100.0
        assert q.wait_ns == 70.0
        q.finish(start, 50.0, True)
        assert q.cursor_ns == 150.0

    def test_submit_after_cursor_starts_at_submit(self):
        q = CommandQueue("d")
        q.finish(q.submit(0.0), 10.0, True)
        start = q.submit(500.0)
        assert start == 500.0
        assert q.wait_ns == 0.0

    def test_failed_attempt_counts_faulted_and_advances(self):
        q = CommandQueue("d")
        q.finish(q.submit(0.0), 40.0, False)
        assert (q.completed, q.faulted) == (0, 1)
        assert q.cursor_ns == 40.0
        assert q.busy_ns == 40.0

    def test_finish_never_moves_cursor_backward(self):
        # Two serving sessions share a queue: B finishing an earlier
        # interval after A must not rewind A's cursor.
        q = CommandQueue("d")
        s1 = q.submit(0.0)
        s2 = q.submit(0.0)
        q.finish(s2, 200.0, True)
        assert q.cursor_ns == 200.0
        q.finish(s1, 10.0, True)
        assert q.cursor_ns == 200.0

    def test_restore_reproduces_cursor_trajectory(self):
        live = CommandQueue("d")
        attempts = []
        for submit, busy, ok in [(0.0, 50.0, True), (0.0, 30.0, False),
                                 (60.0, 25.0, True)]:
            start = live.submit(submit)
            live.finish(start, busy, ok)
            attempts.append((submit, start, busy, ok))
        replayed = CommandQueue("d")
        for submit, start, busy, ok in attempts:
            replayed.restore(submit, start, busy, ok)
        assert replayed.snapshot() == live.snapshot()

    def test_cancel_unstarted_rolls_cursor_back(self):
        # The losing side of a hedge that never started: the cursor
        # returns to the pre-hedge value, so a cancelled hedge never
        # advances the shared serving cursor.
        q = CommandQueue("d")
        q.finish(q.submit(0.0), 100.0, True)
        prior = q.cursor_ns
        start = q.submit(150.0)
        assert start == 150.0
        end = q.cancel(prior, start, 0.0)
        assert end == prior
        assert q.cursor_ns == prior
        assert q.cancelled == 1
        assert q.inflight == 0
        assert q.busy_ns == 100.0  # nothing burned

    def test_cancel_started_bills_burned_time(self):
        q = CommandQueue("d")
        start = q.submit(0.0)
        end = q.cancel(0.0, start, 40.0)
        assert end == 40.0
        assert q.cursor_ns == 40.0
        assert q.busy_ns == 40.0
        assert (q.completed, q.faulted, q.cancelled) == (0, 0, 1)

    def test_cancel_rollback_skipped_when_cursor_moved(self):
        # Another serving session already advanced the cursor past the
        # attempt's start: rolling back would rewind *their* work.
        q = CommandQueue("d")
        start = q.submit(50.0)
        q.submit(50.0)  # a second session's attempt holds the cursor
        q.finish(start, 200.0, True)
        assert q.cursor_ns == 250.0
        q.cancel(0.0, 50.0, 0.0)
        assert q.cursor_ns == 250.0  # no rollback
        assert q.cancelled == 1

    def test_restore_cancelled_reproduces_snapshot(self):
        # Replay a live trajectory containing both cancel flavors:
        # rolled-back (burned == 0) and billed (burned > 0).
        live = CommandQueue("d")
        live.finish(live.submit(0.0), 100.0, True)
        prior = live.cursor_ns
        s = live.submit(120.0)
        live.cancel(prior, s, 0.0)  # rolled back
        s = live.submit(100.0)
        live.cancel(prior, s, 30.0)  # billed
        live.finish(live.submit(0.0), 10.0, True)

        replayed = CommandQueue("d")
        replayed.restore(0.0, 0.0, 100.0, True)
        replayed.restore_cancelled(120.0, 120.0, 0.0)
        replayed.restore_cancelled(100.0, 100.0, 30.0)
        replayed.restore(0.0, 130.0, 10.0, True)
        assert replayed.snapshot() == live.snapshot()

    def test_snapshot_fields(self):
        q = CommandQueue("d")
        q.finish(q.submit(0.0), 10.0, True)
        snap = q.snapshot()
        assert snap == {
            "submitted": 1,
            "completed": 1,
            "faulted": 0,
            "cancelled": 0,
            "busy_ns": 10.0,
            "wait_ns": 0.0,
            "cursor_ns": 10.0,
        }


# -- fleet-level accessors ---------------------------------------------------


def make_fleet(schedule="concurrent", dispatch_seed=0, min_samples=1,
               keys=DEVS):
    return DeviceFleet(
        keys,
        policy=FleetPolicy(
            schedule=schedule,
            dispatch_seed=dispatch_seed,
            min_samples=min_samples,
        ),
    )


def make_worker(fleet):
    # _dispatch_order only consults filter *membership*, never the
    # compiled filters themselves.
    filters = {key: object() for key in fleet.keys}
    return FleetWorker("t", filters, fleet, profile=None)


class TestFleetAccessors:
    def test_makespan_is_furthest_cursor(self):
        fleet = make_fleet()
        assert fleet.makespan_ns() == 0.0
        fleet.queues["gtx580"].finish(
            fleet.queues["gtx580"].submit(0.0), 120.0, True
        )
        fleet.queues["hd5970"].finish(
            fleet.queues["hd5970"].submit(0.0), 80.0, True
        )
        assert fleet.makespan_ns() == 120.0

    def test_queues_snapshot_sorted_even_if_registered_unsorted(self):
        fleet = DeviceFleet(["hd5970", "gtx8800", "gtx580"])
        assert list(fleet.queues_snapshot()) == sorted(fleet.keys)

    def test_health_snapshot_sorted_even_if_registered_unsorted(self):
        monitor = HealthMonitor(["hd5970", "gtx8800", "gtx580"])
        assert list(monitor.snapshot()) == ["gtx580", "gtx8800", "hd5970"]


# -- earliest-finish placement -----------------------------------------------


class TestDispatchOrder:
    def _score(self, fleet, medians):
        for key, ns in medians.items():
            fleet.monitor.observe_success(key, ns)

    def test_concurrent_ranks_by_estimated_finish(self):
        fleet = make_fleet()
        # Medians within the slow-factor band so nobody gets demoted.
        self._score(
            fleet, {"gtx8800": 10.0, "gtx580": 20.0, "hd5970": 30.0}
        )
        # gtx8800 is fastest but its queue is deep; the idle queues
        # win on earliest finish despite slower medians.
        q = fleet.queues["gtx8800"]
        q.finish(q.submit(0.0), 200.0, True)
        worker = make_worker(fleet)
        order = worker._dispatch_order(0.0, seq=0)
        assert order == ["gtx580", "hd5970", "gtx8800"]

    def test_sequential_keeps_health_order(self):
        fleet = make_fleet(schedule="sequential")
        self._score(
            fleet, {"gtx8800": 10.0, "gtx580": 20.0, "hd5970": 30.0}
        )
        q = fleet.queues["gtx8800"]
        q.finish(q.submit(0.0), 200.0, True)
        worker = make_worker(fleet)
        # Health order ignores cursors: fastest median first.
        assert worker._dispatch_order(0.0, seq=0) == [
            "gtx8800",
            "gtx580",
            "hd5970",
        ]

    def test_submit_time_caps_idle_advantage(self):
        # An item submitted late sees max(cursor, submit): a queue
        # busy until before the submit time is as good as idle.
        fleet = make_fleet()
        self._score(
            fleet, {"gtx8800": 10.0, "gtx580": 10.0, "hd5970": 10.0}
        )
        q = fleet.queues["gtx580"]
        q.finish(q.submit(0.0), 40.0, True)
        worker = make_worker(fleet)
        # Submitting at 100: every queue starts at 100, ties break on
        # health rank — gtx8800 (registration order on equal medians).
        assert worker._dispatch_order(100.0, seq=0)[0] == "gtx8800"

    def test_dispatch_seed_permutes_deterministically(self):
        orders = {}
        for seed in (3, 4):
            fleet = make_fleet(dispatch_seed=seed)
            self._score(
                fleet, {"gtx8800": 10.0, "gtx580": 20.0, "hd5970": 30.0}
            )
            worker = make_worker(fleet)
            orders[seed] = [
                worker._dispatch_order(0.0, seq=i) for i in range(6)
            ]
            fleet2 = make_fleet(dispatch_seed=seed)
            self._score(
                fleet2, {"gtx8800": 10.0, "gtx580": 20.0, "hd5970": 30.0}
            )
            worker2 = make_worker(fleet2)
            repeat = [
                worker2._dispatch_order(0.0, seq=i) for i in range(6)
            ]
            assert repeat == orders[seed]
        assert orders[3] != orders[4]

    def test_benched_devices_stay_last(self):
        fleet = make_fleet()
        self._score(
            fleet, {"gtx8800": 10.0, "gtx580": 20.0, "hd5970": 30.0}
        )
        for _ in range(3):  # trip the breaker -> demotion
            fleet.monitor.observe_fault("gtx8800", "device")
        worker = make_worker(fleet)
        order = worker._dispatch_order(0.0, seq=0)
        assert order[-1] == "gtx8800"
        assert set(order) == set(DEVS)


# -- failover accounting through real runs -----------------------------------


class TestFailoverQueues:
    def test_killed_device_keeps_its_lost_time(self):
        from tests.runtime.schedutil import run_workload

        result, _ = run_workload(
            "jg-series-single",
            devices=["gtx580", "hd5970"],
            kill_devices={"gtx580": 1},
        )
        killed = result.queues["gtx580"]
        survivor = result.queues["hd5970"]
        assert killed["faulted"] >= 1
        # The failed attempts' time stays on the killed queue.
        assert killed["busy_ns"] > 0.0
        assert survivor["faulted"] == 0
        assert (
            result.metrics["recovery.failovers.from.gtx580"]
            == killed["faulted"]
        )
        # Conservation: every item completed somewhere.
        completed = killed["completed"] + survivor["completed"]
        submitted = killed["submitted"] + survivor["submitted"]
        assert submitted == completed + killed["faulted"]

    def test_failover_resubmits_at_failed_cursor(self):
        """The re-enqueued attempt cannot start before the fault was
        observed on the failed queue."""
        from tests.runtime.schedutil import run_workload

        result, tracer = run_workload(
            "jg-series-single",
            devices=["gtx580", "hd5970"],
            kill_devices={"gtx580": 0},
            traced=True,
        )
        spans = [
            e
            for e in tracer.events
            if e.kind == "span" and e.name == "queue"
        ]
        by_item = {}
        for s in spans:
            key = (s.args["task"], s.args["seq"])
            by_item.setdefault(key, []).append(s)
        resubmitted = 0
        for attempts in by_item.values():
            attempts.sort(key=lambda s: s.args["attempt"])
            for prev, nxt in zip(attempts, attempts[1:]):
                assert nxt.args["submit_ns"] >= prev.end_ns() - 1e-6
                resubmitted += 1
        assert resubmitted > 0


class TestHedgedConservation:
    """The hedged-run conservation law: every submission retires as
    exactly one of completed / faulted / cancelled, and every hedge
    launched accounts for exactly one cancellation fleet-wide (the
    losing side, wherever it ran)."""

    KWARGS = dict(
        devices=["gtx580", "hd5970", "gtx8800"],
        slow_devices={"gtx580": (10.0, 2)},
        hedge="on",
        hedge_min_samples=4,
        hedge_factor=2.0,
        steps=12,
    )

    def test_every_submission_retires_exactly_once(self):
        from tests.runtime.schedutil import run_workload

        result, _ = run_workload("jg-series-single", **self.KWARGS)
        assert result.metrics["hedge.launched"] >= 1
        for snap in result.queues.values():
            assert snap["submitted"] == (
                snap["completed"] + snap["faulted"] + snap["cancelled"]
            )

    def test_cancellations_equal_hedges_launched(self):
        from tests.runtime.schedutil import run_workload

        result, _ = run_workload("jg-series-single", **self.KWARGS)
        cancelled = sum(q["cancelled"] for q in result.queues.values())
        assert cancelled == result.metrics["hedge.launched"]
        # ... split between the two losing flavors.
        assert result.metrics["hedge.launched"] == (
            result.metrics.get("hedge.won", 0)
            + result.metrics.get("hedge.cancelled", 0)
        )

    def test_items_complete_exactly_once_despite_hedges(self):
        from tests.runtime.schedutil import (
            item_value_bits,
            journal_items,
            run_workload,
        )

        def completions(tmpdir):
            result, _ = run_workload(
                "jg-series-single", journal=tmpdir, **self.KWARGS
            )
            items = len(item_value_bits(journal_items(tmpdir)))
            completed = sum(
                q["completed"] for q in result.queues.values()
            )
            return items, completed, result

        import tempfile

        with tempfile.TemporaryDirectory() as tmpdir:
            items, completed, result = completions(tmpdir)
        assert result.metrics["hedge.launched"] >= 1
        fallbacks = int(result.metrics.get("recovery.fallbacks", 0))
        assert completed + fallbacks == items


class TestServingReport:
    def test_report_exposes_sorted_queue_snapshot(self):
        from repro.serving.server import ServeConfig, ServeDaemon

        daemon = ServeDaemon(
            ServeConfig(devices=["hd5970", "gtx580"], target="gtx580")
        )
        assert daemon.fleet.policy.schedule == "concurrent"
        report = daemon.report()
        assert list(report["queues"]) == ["gtx580", "hd5970"]
        assert list(report["fleet"]) == ["gtx580", "hd5970"]
        for snap in report["queues"].values():
            assert snap["submitted"] == 0

    def test_sequential_schedule_propagates(self):
        from repro.serving.server import ServeConfig, ServeDaemon

        daemon = ServeDaemon(
            ServeConfig(
                devices=["gtx580"], fleet_schedule="sequential"
            )
        )
        assert daemon.fleet.policy.schedule == "sequential"


def test_run_result_single_device_makespan_equals_total():
    from tests.runtime.schedutil import run_workload

    result, _ = run_workload("jg-series-single")
    assert result.queues == {}
    assert result.makespan_ns == pytest.approx(result.total_ns)
