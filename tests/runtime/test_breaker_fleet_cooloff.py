"""The breaker-cooloff x fleet-demotion corner.

Two half-open machines exist in the runtime: the per-task
:class:`CircuitBreaker` inside a :class:`ResilientWorker` (cooloff
counted in *host* successes) and the per-device breaker/probe cycle
inside a fleet's :class:`HealthMonitor` (cooloff counted in
*placements elsewhere*). These tests pin down each machine's restart
semantics and the previously untested corner where the same device is
both fleet-demoted and behind a task breaker that is mid-cooloff.
"""

import pytest

from repro.errors import LaunchFault
from repro.runtime.profiler import ExecutionProfile
from repro.runtime.resilience import (
    CircuitBreaker,
    FleetPolicy,
    HealthMonitor,
    ResilientWorker,
    RetryPolicy,
)

# -- CircuitBreaker half-open lifecycle --------------------------------------


class TestCircuitBreakerCooloff:
    def test_opens_after_threshold_and_half_opens_after_cooloff(self):
        b = CircuitBreaker(threshold=2, cooloff=3)
        assert not b.record_fault()
        assert b.record_fault()
        assert b.open
        # Host successes below the cooloff keep it open.
        assert not b.record_host_success()
        assert not b.record_host_success()
        assert b.open
        # The cooloff-th host success transitions to half-open.
        assert b.record_host_success()
        assert b.half_open
        assert b.host_successes == 0

    def test_probe_success_closes(self):
        b = CircuitBreaker(threshold=1, cooloff=1)
        b.record_fault()
        b.record_host_success()
        assert b.half_open
        b.record_success()
        assert b.state == "closed"
        assert b.consecutive == 0

    def test_probe_fault_reopens_and_restarts_cooloff(self):
        b = CircuitBreaker(threshold=1, cooloff=2)
        b.record_fault()
        b.record_host_success()
        b.record_host_success()
        assert b.half_open
        # The probe faults: straight back to open, and the cooloff
        # count restarts from zero — one host success is no longer
        # enough.
        b.record_fault()
        assert b.open
        assert b.host_successes == 0
        assert not b.record_host_success()
        assert b.open
        assert b.record_host_success()
        assert b.half_open

    def test_no_cooloff_means_open_forever(self):
        b = CircuitBreaker(threshold=1, cooloff=None)
        b.record_fault()
        for _ in range(100):
            assert not b.record_host_success()
        assert b.open

    def test_host_success_while_closed_is_ignored(self):
        b = CircuitBreaker(threshold=3, cooloff=1)
        assert not b.record_host_success()
        assert b.host_successes == 0
        assert b.state == "closed"


# -- HealthMonitor demotion + probe cycle ------------------------------------


def make_monitor(cooloff=2, threshold=2, **kw):
    policy = FleetPolicy(
        cooloff=cooloff, breaker_threshold=threshold, min_samples=2, **kw
    )
    return HealthMonitor(["a", "b"], policy=policy)


class TestFleetDemotionCooloff:
    def test_breaker_trip_demotes_device(self):
        m = make_monitor()
        m.observe_fault("a")
        assert m.devices["a"].healthy
        m.observe_fault("a")
        assert m.devices["a"].state == "demoted"
        assert m.devices["a"].reason == "faults"
        # A demoted device drops to failover-of-last-resort.
        assert m.placement_order()[-1] == "a" or not m.devices["a"].probing

    def test_cooloff_placements_arm_the_probe(self):
        m = make_monitor(cooloff=2)
        m.observe_fault("a")
        m.observe_fault("a")
        # First placement elsewhere: still benched.
        order = m.placement_order()
        assert order == ["b", "a"]
        assert not m.devices["a"].probing
        # Second placement reaches the cooloff: the next item probes
        # the demoted device first — it gets the real workload.
        order = m.placement_order()
        assert m.devices["a"].probing
        assert order[0] == "a"

    def test_probe_success_repromotes_with_fresh_breaker(self):
        m = make_monitor(cooloff=1)
        m.observe_success("b", 100.0)
        m.observe_success("b", 100.0)
        m.observe_fault("a")
        m.observe_fault("a")
        m.placement_order()  # arms the probe
        assert m.devices["a"].probing
        m.observe_success("a", 100.0)  # clean, fast probe
        h = m.devices["a"]
        assert h.healthy
        assert h.promotions == 1
        # The breaker and sample window restart from the probe.
        assert h.breaker.state == "closed"
        assert h.breaker.consecutive == 0
        assert h.samples == [100.0]

    def test_probe_fault_restarts_the_cooloff(self):
        m = make_monitor(cooloff=2)
        m.observe_fault("a")
        m.observe_fault("a")
        m.placement_order()
        m.placement_order()  # probe armed
        assert m.devices["a"].probing
        m.observe_fault("a")  # the probe itself faults
        h = m.devices["a"]
        assert h.state == "demoted"
        assert not h.probing
        assert h.idle == 0
        # A full cooloff is required again before the next probe.
        m.placement_order()
        assert not h.probing
        m.placement_order()
        assert h.probing

    def test_slow_probe_is_a_failed_probe(self):
        m = make_monitor(cooloff=1, slow_factor=2.0)
        for _ in range(3):
            m.observe_success("b", 100.0)
        m.observe_fault("a")
        m.observe_fault("a")
        m.placement_order()
        assert m.devices["a"].probing
        # The probe completes without faulting but 4x slower than the
        # fleet: still demoted, reason recorded, cooloff restarted.
        m.observe_success("a", 400.0)
        h = m.devices["a"]
        assert h.state == "demoted"
        assert h.reason == "slow"
        assert h.promotions == 0


# -- the corner: fleet demotion x task breaker mid-cooloff -------------------


class FlakyDevice:
    """Stub device worker: faults for the first ``faults`` calls, then
    succeeds by echoing the value."""

    def __init__(self, faults):
        self.remaining = faults
        self.calls = 0

    def __call__(self, value=None):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise LaunchFault("injected launch fault")
        return value


def make_worker(faults, threshold=2, cooloff=2):
    profile = ExecutionProfile()
    device = FlakyDevice(faults)
    worker = ResilientWorker(
        name="t",
        device_worker=device,
        host_factory=lambda: (lambda value=None: ("host", value)),
        retry=RetryPolicy(max_retries=0),
        breaker=CircuitBreaker(threshold, cooloff=cooloff),
        profile=profile,
    )
    return worker, device, profile


class TestWorkerFleetCorner:
    def test_open_breaker_serves_host_through_cooloff_then_probes(self):
        worker, device, profile = make_worker(faults=2, threshold=2,
                                              cooloff=2)
        # Two faulted items trip the breaker (each falls back to host).
        assert worker(1) == ("host", 1)
        assert worker(2) == ("host", 2)
        assert worker.breaker.open
        assert worker.demoted
        demotions_at_trip = profile.faults.summary()["recovery.demotions"]
        # Two host items complete the cooloff; the breaker half-opens.
        assert worker(3) == ("host", 3)
        assert worker(4) == ("host", 4)
        assert worker.breaker.half_open
        device_calls = device.calls
        # The next item probes the (now healthy) device and re-promotes.
        assert worker(5) == 5
        assert worker.breaker.state == "closed"
        assert device.calls == device_calls + 1
        summary = profile.faults.summary()
        assert summary["recovery.promotions"] == 1
        assert summary["recovery.demotions"] == demotions_at_trip

    def test_failed_probe_restarts_worker_cooloff_without_redemotion(self):
        worker, device, profile = make_worker(faults=3, threshold=2,
                                              cooloff=1)
        worker(1)
        worker(2)
        assert worker.breaker.open
        worker(3)  # cooloff reached
        assert worker.breaker.half_open
        # The probe faults (3rd injected fault): back to open — but it
        # is NOT ledgered as a second demotion, the task never left the
        # host.
        assert worker(4) == ("host", 4)
        assert worker.breaker.open
        summary = profile.faults.summary()
        assert summary["recovery.demotions"] == 1
        assert summary.get("recovery.promotions", 0) == 0
        # Cooloff restarts; the next host success re-arms the probe and
        # the now-stable device wins it.
        worker(5)
        assert worker.breaker.half_open
        assert worker(6) == 6
        assert worker.breaker.state == "closed"

    def test_demoted_device_and_mid_cooloff_breaker_stay_consistent(self):
        # The same "device" is fleet-demoted AND behind a task breaker
        # mid-cooloff. The fleet's probe arming and the task breaker's
        # half-open transition are independent counters; neither may
        # reset the other, and their probes can disagree about when to
        # retry the device.
        monitor = make_monitor(cooloff=3, threshold=2)
        worker, device, _ = make_worker(faults=2, threshold=2, cooloff=2)

        # Both machines observe the same two faults.
        for _ in range(2):
            monitor.observe_fault("a")
            worker(0)
        assert monitor.devices["a"].state == "demoted"
        assert worker.breaker.open

        # One item placed elsewhere + one host item: fleet idle=1,
        # breaker host_successes=1 — mid-cooloff on both, no probe yet.
        monitor.placement_order()
        worker(1)
        assert not monitor.devices["a"].probing
        assert worker.breaker.open
        assert worker.breaker.host_successes == 1

        # The task breaker reaches its cooloff first (2 < 3) and
        # half-opens while the fleet still benches the device.
        worker(2)
        assert worker.breaker.half_open
        monitor.placement_order()
        assert not monitor.devices["a"].probing

        # The fleet's third placement arms its probe; the task probe
        # succeeding closes the breaker without touching fleet state.
        monitor.placement_order()
        assert monitor.devices["a"].probing
        assert worker(3) == 3
        assert worker.breaker.state == "closed"
        assert monitor.devices["a"].probing  # fleet probe still pending
        monitor.observe_success("a", 100.0)
        assert monitor.devices["a"].healthy


# -- snapshot/restore keeps cooloff position ---------------------------------


def test_worker_state_round_trips_mid_cooloff():
    worker, _, _ = make_worker(faults=2, threshold=2, cooloff=3)
    worker(1)
    worker(2)
    worker(3)  # one host success into the cooloff
    state = worker.snapshot_state()
    assert state["breaker"] == {
        "state": "open",
        "consecutive": 2,
        "host_successes": 1,
    }
    fresh, _, _ = make_worker(faults=0, threshold=2, cooloff=3)
    fresh.restore_state(state)
    assert fresh.breaker.open
    assert fresh.breaker.host_successes == 1
    # Two more host items complete the restored cooloff.
    fresh(4)
    assert not fresh.breaker.half_open
    fresh(5)
    assert fresh.breaker.half_open
