"""Runtime value representation tests."""

import numpy as np
import pytest

from repro.errors import RuntimeFault
from repro.frontend.types import BYTE, DOUBLE, FLOAT, INT, LONG, mutable_array
from repro.runtime import values as rv


def test_dtype_mapping():
    assert rv.dtype_for(FLOAT) == np.float32
    assert rv.dtype_for(DOUBLE) == np.float64
    assert rv.dtype_for(INT) == np.int32
    assert rv.dtype_for(BYTE) == np.int8


def test_elem_sizes():
    assert rv.elem_size_bytes(FLOAT) == 4
    assert rv.elem_size_bytes(LONG) == 8
    assert rv.elem_size_bytes(BYTE) == 1


def test_new_array_shape_and_zeroing():
    arr = rv.new_array(mutable_array(FLOAT, None, None), [3, 4])
    assert arr.shape == (3, 4)
    assert arr.dtype == np.float32
    assert (arr == 0).all()


def test_new_array_rank_mismatch():
    with pytest.raises(RuntimeFault):
        rv.new_array(mutable_array(FLOAT, None, None), [3])


def test_new_array_negative_size():
    with pytest.raises(RuntimeFault):
        rv.new_array(mutable_array(FLOAT, None), [-1])


def test_freeze_copies_and_locks():
    arr = np.ones(4, dtype=np.float32)
    frozen = rv.freeze_array(arr)
    arr[0] = 5.0
    assert frozen[0] == 1.0
    assert not frozen.flags.writeable
    with pytest.raises(ValueError):
        frozen[0] = 2.0


def test_thaw_copies_and_unlocks():
    frozen = rv.freeze_array(np.ones(4, dtype=np.float32))
    thawed = rv.thaw_array(frozen)
    thawed[0] = 9.0
    assert frozen[0] == 1.0


def test_iota():
    arr = rv.iota(5)
    assert list(arr) == [0, 1, 2, 3, 4]
    assert not arr.flags.writeable


def test_int32_wrapping():
    assert rv.to_int32(2 ** 31) == -(2 ** 31)
    assert rv.to_int32(-(2 ** 31) - 1) == 2 ** 31 - 1
    assert rv.to_int32(42) == 42


def test_int8_wrapping():
    assert rv.to_int8(128) == -128
    assert rv.to_int8(255) == -1


def test_int64_wrapping():
    assert rv.to_int64(2 ** 63) == -(2 ** 63)


def test_java_division_truncates_toward_zero():
    assert rv.java_div(7, 2) == 3
    assert rv.java_div(-7, 2) == -3
    assert rv.java_div(7, -2) == -3


def test_java_remainder_sign_follows_dividend():
    assert rv.java_rem(-7, 2) == -1
    assert rv.java_rem(7, -2) == 1


def test_division_by_zero():
    with pytest.raises(RuntimeFault):
        rv.java_div(1, 0)


def test_float32_rounding():
    # 0.1 is not representable; float32 rounding must change the value.
    assert rv.float32_round(0.1) != 0.1
    assert abs(rv.float32_round(0.1) - 0.1) < 1e-7
