"""Wire-format tests, including hypothesis round-trip properties and the
generic-vs-specialized equivalence the paper's optimization relies on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.frontend.types import (
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    mutable_array,
    value_array,
)
from repro.runtime import marshal


def roundtrip(value, lime_type, marshaller=marshal.SPECIALIZED):
    data, _ = marshal.serialize(value, lime_type, marshaller)
    result, _ = marshal.deserialize(data, lime_type, marshaller)
    return result


def test_scalar_int_roundtrip():
    assert roundtrip(42, INT) == 42


def test_scalar_float_roundtrip_is_float32():
    out = roundtrip(0.1, FLOAT)
    assert out == np.float32(0.1)


def test_scalar_double_roundtrip_exact():
    assert roundtrip(0.1, DOUBLE) == 0.1


def test_1d_array_roundtrip():
    arr = np.arange(10, dtype=np.float32)
    out = roundtrip(arr, value_array(FLOAT, None))
    assert np.array_equal(out, arr)
    assert not out.flags.writeable  # value arrays come back frozen


def test_mutable_array_comes_back_writeable():
    arr = np.arange(10, dtype=np.int32)
    out = roundtrip(arr, mutable_array(INT, None))
    assert out.flags.writeable


def test_2d_array_roundtrip():
    arr = np.arange(24, dtype=np.float32).reshape(6, 4)
    out = roundtrip(arr, value_array(FLOAT, None, 4))
    assert np.array_equal(out, arr)


def test_bound_checked_on_deserialize():
    arr = np.arange(24, dtype=np.float32).reshape(6, 4)
    with pytest.raises(MarshalError):
        roundtrip(arr, value_array(FLOAT, None, 3))


def test_rank_mismatch_rejected():
    arr = np.arange(4, dtype=np.float32)
    with pytest.raises(MarshalError):
        marshal.serialize(arr, value_array(FLOAT, None, 4))


def test_wrong_tag_rejected():
    data, _ = marshal.serialize(1, INT)
    with pytest.raises(MarshalError):
        marshal.deserialize(data, FLOAT)


def test_generic_and_specialized_produce_identical_bytes():
    arr = np.arange(30, dtype=np.int8).reshape(5, 6)
    t = value_array(BYTE, None, 6)
    fast, _ = marshal.serialize(arr, t, marshal.SPECIALIZED)
    slow, _ = marshal.serialize(arr, t, marshal.GENERIC)
    assert fast == slow


def test_generic_charges_per_element():
    arr = np.arange(100, dtype=np.float32)
    t = value_array(FLOAT, None)
    _, fast_stats = marshal.serialize(arr, t, marshal.SPECIALIZED)
    _, slow_stats = marshal.serialize(arr, t, marshal.GENERIC)
    assert slow_stats.elements == 100
    assert fast_stats.elements == 0
    assert fast_stats.bulk_bytes == 400


@given(st.lists(st.integers(-(2 ** 31), 2 ** 31 - 1), min_size=1, max_size=64))
@settings(max_examples=50, deadline=None)
def test_int_array_roundtrip_property(values):
    arr = np.array(values, dtype=np.int32)
    out = roundtrip(arr, value_array(INT, None))
    assert np.array_equal(out, arr)


@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=1,
        max_size=64,
    )
)
@settings(max_examples=50, deadline=None)
def test_float_array_roundtrip_property(values):
    arr = np.array(values, dtype=np.float32)
    out = roundtrip(arr, value_array(FLOAT, None))
    assert np.array_equal(out, arr)


@given(
    st.integers(1, 8),
    st.integers(1, 8),
    st.sampled_from(["generic", "specialized"]),
)
@settings(max_examples=40, deadline=None)
def test_2d_long_roundtrip_property(rows, cols, which):
    rng = np.random.RandomState(rows * 31 + cols)
    arr = rng.randint(-(2 ** 62), 2 ** 62, size=(rows, cols)).astype(np.int64)
    m = marshal.GENERIC if which == "generic" else marshal.SPECIALIZED
    out = roundtrip(arr, value_array(LONG, None, cols), m)
    assert np.array_equal(out, arr)


@given(st.integers(1, 40), st.integers(2, 6))
@settings(max_examples=30, deadline=None)
def test_cross_marshaller_roundtrip(rows, cols):
    """Bytes written by one implementation decode with the other."""
    rng = np.random.RandomState(rows + cols)
    arr = (rng.rand(rows, cols) * 100).astype(np.float32)
    t = value_array(FLOAT, None, cols)
    data, _ = marshal.serialize(arr, t, marshal.GENERIC)
    out, _ = marshal.deserialize(data, t, marshal.SPECIALIZED)
    assert np.array_equal(out, arr)


def test_payload_bytes_accounting():
    arr = np.zeros((8, 4), dtype=np.float32)
    _, stats = marshal.serialize(arr, value_array(FLOAT, None, 4))
    assert stats.payload_bytes == 8 * 4 * 4


# -- malformed wire bytes ----------------------------------------------------
#
# Truncated or garbage wire data must surface as MarshalError, never as a
# bare struct.error / ValueError / IndexError from the codec internals.


@pytest.fixture(params=[marshal.SPECIALIZED, marshal.GENERIC],
                ids=["specialized", "generic"])
def any_marshaller(request):
    return request.param


def test_empty_bytes_rejected_for_scalar(any_marshaller):
    with pytest.raises(MarshalError):
        marshal.deserialize(b"", INT, any_marshaller)


def test_empty_bytes_rejected_for_array(any_marshaller):
    with pytest.raises(MarshalError):
        marshal.deserialize(b"", value_array(FLOAT, None), any_marshaller)


def test_truncated_scalar_payload_rejected(any_marshaller):
    data, _ = marshal.serialize(7, LONG)
    with pytest.raises(MarshalError):
        marshal.deserialize(data[:3], LONG, any_marshaller)


def test_tag_only_array_header_rejected(any_marshaller):
    data, _ = marshal.serialize(
        np.arange(4, dtype=np.float32), value_array(FLOAT, None)
    )
    with pytest.raises(MarshalError):
        marshal.deserialize(data[:1], value_array(FLOAT, None), any_marshaller)


def test_truncated_shape_rejected(any_marshaller):
    arr = np.arange(24, dtype=np.float32).reshape(6, 4)
    t = value_array(FLOAT, None, 4)
    data, _ = marshal.serialize(arr, t)
    # tag + rank survive, the second dimension word is cut short
    with pytest.raises(MarshalError):
        marshal.deserialize(data[:5], t, any_marshaller)


def test_truncated_payload_rejected(any_marshaller):
    arr = np.arange(16, dtype=np.int32)
    t = value_array(INT, None)
    data, _ = marshal.serialize(arr, t)
    with pytest.raises(MarshalError):
        marshal.deserialize(data[:-5], t, any_marshaller)


def test_garbage_bytes_rejected(any_marshaller):
    with pytest.raises(MarshalError):
        marshal.deserialize(b"\xff" * 16, value_array(INT, None),
                            any_marshaller)


def test_unpackable_scalar_value_rejected_on_serialize():
    with pytest.raises(MarshalError):
        marshal.serialize("not a number", INT)


def test_unconvertible_array_value_rejected_on_serialize():
    ragged = [[1, 2], [3]]
    with pytest.raises(MarshalError):
        marshal.serialize(ragged, value_array(INT, None, 2))


# -- IEEE-754 specials and extreme integers ---------------------------------


@pytest.mark.parametrize("marshaller", [marshal.SPECIALIZED, marshal.GENERIC])
@pytest.mark.parametrize("lime_type", [FLOAT, DOUBLE])
def test_nan_scalar_roundtrips(marshaller, lime_type):
    out = roundtrip(float("nan"), lime_type, marshaller)
    assert isinstance(out, float)
    assert out != out  # still NaN


@pytest.mark.parametrize("marshaller", [marshal.SPECIALIZED, marshal.GENERIC])
@pytest.mark.parametrize("special", [float("inf"), float("-inf")])
def test_inf_scalar_roundtrips(marshaller, special):
    assert roundtrip(special, FLOAT, marshaller) == special
    assert roundtrip(special, DOUBLE, marshaller) == special


@pytest.mark.parametrize("marshaller", [marshal.SPECIALIZED, marshal.GENERIC])
def test_special_float_array_roundtrips(marshaller):
    arr = np.array(
        [np.nan, np.inf, -np.inf, 0.0, -0.0, 1.5], dtype=np.float32
    )
    out = roundtrip(arr, value_array(FLOAT, None), marshaller)
    assert np.array_equal(out, arr, equal_nan=True)
    # -0.0 keeps its sign bit through the wire.
    assert np.signbit(out[4])


@pytest.mark.parametrize("marshaller", [marshal.SPECIALIZED, marshal.GENERIC])
def test_extreme_int_scalars_roundtrip(marshaller):
    for v in (-(2**31), 2**31 - 1):
        assert roundtrip(v, INT, marshaller) == v
    for v in (-(2**63), 2**63 - 1):
        assert roundtrip(v, LONG, marshaller) == v


@pytest.mark.parametrize("marshaller", [marshal.SPECIALIZED, marshal.GENERIC])
def test_extreme_int_array_roundtrips(marshaller):
    arr = np.array([-(2**63), 2**63 - 1, 0, -1], dtype=np.int64)
    out = roundtrip(arr, value_array(LONG, None), marshaller)
    assert np.array_equal(out, arr)


def test_float32_overflow_is_a_marshal_error_not_overflow_error():
    # struct raises OverflowError (not struct.error) for doubles outside
    # float32 range; it must surface as MarshalError like every other
    # serialization failure.
    with pytest.raises(MarshalError):
        marshal.serialize(1e40, FLOAT)


def test_int_overflow_is_a_marshal_error():
    with pytest.raises(MarshalError):
        marshal.serialize(2**31, INT)
    with pytest.raises(MarshalError):
        marshal.serialize(2**63, LONG)
