"""Unit tests for guarded kernel execution (repro.runtime.sanitizer).

Each guard is exercised directly against the simulated executor with a
hand-built kernel-IR mutation: out-of-bounds accesses, write-write and
read-write races, barrier divergence, watchdog deadlines, and NaN
poisoning. A clean kernel must trip nothing and produce the same trace
as an unguarded launch.
"""

import numpy as np
import pytest

from repro.backend import kernel_ir as K
from repro.errors import (
    BoundsFault,
    DeadlineFault,
    DivergenceFault,
    NaNPoisonFault,
    RaceFault,
    SanitizerFault,
)
from repro.opencl.executor import compile_kernel
from repro.runtime.sanitizer import (
    WATCHDOG_NS_PER_TICK,
    LaunchGuard,
    SanitizerConfig,
    values_equal,
)

I, F = K.K_INT, K.K_FLOAT


def saxpy_kernel(store_index=None, store_value=None, load_index=None):
    """The executor test saxpy, with optional mutated store/load sites."""
    gid = K.KCall("get_global_id", [], I)
    gsz = K.KCall("get_global_size", [], I)
    i = K.KVar("i", I)
    value = store_value or K.KBin(
        "+",
        K.KBin("*", K.KVar("a", F), K.KLoad("x", load_index or i, K.Space.GLOBAL, F), F),
        K.KLoad("y", i, K.Space.GLOBAL, F),
        F,
    )
    body = [
        K.KFor(
            "i",
            gid,
            K.KVar("n", I),
            gsz,
            [K.KStore("out", store_index or i, value, K.Space.GLOBAL, F)],
        )
    ]
    return K.Kernel(
        name="saxpy",
        params=[
            K.KParam("x", F, K.Space.GLOBAL, is_pointer=True, read_only=True),
            K.KParam("y", F, K.Space.GLOBAL, is_pointer=True, read_only=True),
            K.KParam("out", F, K.Space.GLOBAL, is_pointer=True),
            K.KParam("a", F),
            K.KParam("n", I),
        ],
        arrays=[],
        body=body,
    )


def guard(**overrides):
    config = SanitizerConfig(**overrides)
    return LaunchGuard(config, "saxpy")


def launch(kernel, guard=None, n=8, global_size=8, local_size=4):
    ck = compile_kernel(kernel)
    x = np.arange(n, dtype=np.float32)
    y = np.ones(n, dtype=np.float32)
    out = np.zeros(n, dtype=np.float32)
    trace = ck.launch(
        {"x": x, "y": y, "out": out},
        {"a": 3.0, "n": n},
        global_size,
        local_size,
        guard=guard,
    )
    return trace, out, x


# -- SanitizerConfig -------------------------------------------------------


def test_from_flags_all_off_is_none():
    assert SanitizerConfig.from_flags() is None
    assert SanitizerConfig.from_flags(False, None, 0) is None


def test_from_flags_sanitize_enables_guards():
    config = SanitizerConfig.from_flags(sanitize=True)
    assert config.bounds and config.races
    assert config.divergence and config.nan_poison
    assert config.deadline_ns is None
    assert config.instruments_launch()


def test_from_flags_validation_only_does_not_instrument():
    config = SanitizerConfig.from_flags(validate_every=4)
    assert config is not None
    assert config.validate_every == 4
    assert not config.instruments_launch()


def test_from_flags_deadline_only_instruments():
    config = SanitizerConfig.from_flags(deadline_ns=1e6)
    assert not config.bounds and not config.races
    assert config.instruments_launch()


# -- clean kernels ---------------------------------------------------------


def test_clean_kernel_trips_nothing():
    g = guard()
    trace, out, x = launch(saxpy_kernel(), g)
    assert g.trips == {}
    assert np.allclose(out, 3.0 * x + 1.0)
    assert trace is not None


def test_guarded_trace_matches_unguarded():
    """Instrumentation must not perturb the timing model's inputs."""
    plain, out_plain, _ = launch(saxpy_kernel())
    guarded, out_guarded, _ = launch(saxpy_kernel(), guard())
    assert plain.op_cycles == guarded.op_cycles
    assert sorted(plain.sites) == sorted(guarded.sites)
    assert np.array_equal(out_plain, out_guarded)


def test_unguarded_launch_has_no_sanitized_code():
    ck = compile_kernel(saxpy_kernel())
    launch(saxpy_kernel())
    assert ck.sanitized_source is None


# -- bounds ----------------------------------------------------------------


def test_oob_store_trips_bounds():
    kernel = saxpy_kernel(
        store_index=K.KBin("+", K.KVar("i", I), K.KConst(100, I), I)
    )
    g = guard()
    with pytest.raises(BoundsFault) as exc:
        launch(kernel, g)
    assert g.trips.get("bounds") == 1
    assert "out" in str(exc.value)


def test_oob_load_trips_bounds():
    kernel = saxpy_kernel(
        load_index=K.KBin("-", K.KVar("i", I), K.KConst(100, I), I)
    )
    with pytest.raises(BoundsFault):
        launch(kernel, guard())


def test_oob_without_guard_bounds_disabled_not_raised_by_checker():
    kernel = saxpy_kernel(
        store_index=K.KBin("+", K.KVar("i", I), K.KConst(100, I), I)
    )
    # numpy itself raises for far-OOB stores; the point here is that the
    # *guard* with bounds off does not intercept — the raw error differs.
    g = guard(bounds=False, races=False, nan_poison=False)
    with pytest.raises(Exception) as exc:
        launch(kernel, g)
    assert not isinstance(exc.value, SanitizerFault)


# -- races -----------------------------------------------------------------


def test_write_write_race_detected():
    kernel = saxpy_kernel(store_index=K.KConst(0, I))
    g = guard()
    with pytest.raises(RaceFault) as exc:
        launch(kernel, g)
    assert "write-write" in str(exc.value)
    assert g.trips.get("race", 0) >= 1
    assert exc.value.trips >= 1


def test_read_write_race_detected():
    # Every lane reads out[0]; lane 0 also writes it.
    kernel = saxpy_kernel(
        store_value=K.KBin(
            "+",
            K.KLoad("out", K.KConst(0, I), K.Space.GLOBAL, F),
            K.KLoad("y", K.KVar("i", I), K.Space.GLOBAL, F),
            F,
        )
    )
    with pytest.raises(RaceFault) as exc:
        launch(kernel, guard())
    assert "read-write" in str(exc.value)


def test_disjoint_access_is_not_a_race():
    g = guard()
    launch(saxpy_kernel(), g)
    assert "race" not in g.trips


def test_same_lane_read_modify_write_is_not_a_race():
    # out[i] = out[i] + y[i]: each lane touches only its own slot.
    kernel = saxpy_kernel(
        store_value=K.KBin(
            "+",
            K.KLoad("out", K.KVar("i", I), K.Space.GLOBAL, F),
            K.KLoad("y", K.KVar("i", I), K.Space.GLOBAL, F),
            F,
        )
    )
    g = guard()
    launch(kernel, g)
    assert g.trips == {}


# -- NaN poisoning ---------------------------------------------------------


def test_nan_store_trips():
    kernel = saxpy_kernel(store_value=K.KConst(float("nan"), F))
    g = guard()
    with pytest.raises(NaNPoisonFault):
        launch(kernel, g)
    assert g.trips.get("nan") == 1


def test_nan_store_allowed_when_poison_guard_off():
    kernel = saxpy_kernel(store_value=K.KConst(float("nan"), F))
    g = guard(nan_poison=False, races=False)
    _trace, out, _x = launch(kernel, g)
    assert np.isnan(out).all()


# -- watchdog --------------------------------------------------------------


def test_deadline_trips_on_long_kernel():
    g = guard(deadline_ns=WATCHDOG_NS_PER_TICK)  # budget: one iteration
    with pytest.raises(DeadlineFault):
        launch(saxpy_kernel(), g, n=64, global_size=8)
    assert g.trips.get("deadline") == 1


def test_generous_deadline_does_not_trip():
    g = guard(deadline_ns=1e9)
    launch(saxpy_kernel(), g)
    assert g.trips == {}
    assert 0 < g.elapsed_ns() < 1e9


# -- barrier divergence ----------------------------------------------------


def divergent_kernel():
    lid = K.KCall("get_local_id", [], I)
    body = [
        K.KIf(
            K.KBin("==", lid, K.KConst(0, I), K.K_BOOL),
            [K.KBarrier()],
        ),
        K.KStore(
            "out",
            K.KCall("get_global_id", [], I),
            K.KConst(1.0, F),
            K.Space.GLOBAL,
            F,
        ),
    ]
    return K.Kernel(
        name="saxpy",
        params=[
            K.KParam("x", F, K.Space.GLOBAL, is_pointer=True, read_only=True),
            K.KParam("y", F, K.Space.GLOBAL, is_pointer=True, read_only=True),
            K.KParam("out", F, K.Space.GLOBAL, is_pointer=True),
            K.KParam("a", F),
            K.KParam("n", I),
        ],
        arrays=[],
        body=body,
    )


def test_barrier_divergence_detected():
    g = guard()
    with pytest.raises(DivergenceFault) as exc:
        launch(divergent_kernel(), g)
    assert g.trips.get("divergence") == 1
    assert "work-group" in str(exc.value)


# -- values_equal ----------------------------------------------------------


def test_values_equal_nan_arrays():
    a = np.array([1.0, np.nan, 3.0], dtype=np.float32)
    b = np.array([1.0, np.nan, 3.0], dtype=np.float32)
    assert values_equal(a, b)
    assert not values_equal(a, np.array([1.0, 2.0, 3.0], dtype=np.float32))


def test_values_equal_nan_scalars():
    assert values_equal(float("nan"), float("nan"))
    assert values_equal(float("inf"), float("inf"))
    assert not values_equal(float("inf"), float("-inf"))
    assert not values_equal(float("nan"), 1.0)


def test_values_equal_shape_dtype_mismatch():
    a = np.zeros(3, dtype=np.float32)
    assert not values_equal(a, np.zeros(4, dtype=np.float32))
    assert not values_equal(a, np.zeros(3, dtype=np.float64))
    assert values_equal(np.zeros((2, 2), dtype=np.int32), np.zeros((2, 2), dtype=np.int32))


def test_values_equal_scalars_and_type_strictness():
    assert values_equal(3, 3)
    assert not values_equal(3, 4)
    assert not values_equal(3, 3.0)
    assert values_equal(True, True)
