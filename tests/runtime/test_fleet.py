"""Unit tests for fleet health scoring and placement.

The :class:`~repro.runtime.resilience.HealthMonitor` must demote a
device that is *slow for this workload* before its circuit breaker ever
sees a fault, probe it again after the cooloff, and re-promote it on a
clean, fast probe — all as pure functions of the observed simulated
launch times, so a seeded run schedules identically every time.
"""

import pytest

from repro.runtime.fleet import DeviceFleet
from repro.runtime.resilience import FleetPolicy, HealthMonitor

FAST_NS = 100.0
SLOW_NS = 1000.0  # 10x the fast device — far past slow_factor=4.0


def make_monitor(**kwargs):
    policy = FleetPolicy(**kwargs)
    return HealthMonitor(["fast", "slow"], policy=policy), policy


def warm_up(monitor, policy, slow_ns=SLOW_NS):
    """Feed ``min_samples`` alternating successes to both devices."""
    for _ in range(policy.min_samples):
        monitor.placement_order()
        monitor.observe_success("fast", FAST_NS)
        monitor.observe_success("slow", slow_ns)


# -- slow-device demotion ----------------------------------------------------


def test_slow_device_demoted_before_breaker_trips():
    monitor, policy = make_monitor()
    warm_up(monitor, policy)
    slow = monitor.devices["slow"]
    assert slow.state == "demoted"
    assert slow.reason == "slow"
    # The health signal fired with zero faults: the breaker never saw
    # anything and is still closed.
    assert slow.faults == 0
    assert not slow.breaker.open
    assert monitor.devices["fast"].state == "healthy"
    assert monitor.metrics.get("fleet.demotions") == 1


def test_demotion_needs_min_samples():
    monitor, policy = make_monitor(min_samples=3)
    for _ in range(2):
        monitor.observe_success("fast", FAST_NS)
        monitor.observe_success("slow", SLOW_NS)
    # Two samples each: not enough evidence yet.
    assert monitor.devices["slow"].state == "healthy"
    monitor.observe_success("fast", FAST_NS)
    monitor.observe_success("slow", SLOW_NS)
    assert monitor.devices["slow"].state == "demoted"


def test_comparable_devices_stay_healthy():
    monitor, policy = make_monitor()
    warm_up(monitor, policy, slow_ns=FAST_NS * 2)  # 2x < slow_factor 4x
    assert monitor.devices["slow"].state == "healthy"
    assert monitor.metrics.get("fleet.demotions", 0) in (0, None)


# -- fault-driven demotion ---------------------------------------------------


def test_breaker_threshold_faults_demote():
    monitor, policy = make_monitor(breaker_threshold=3)
    monitor.observe_fault("slow", "launch")
    monitor.observe_fault("slow", "launch")
    assert monitor.devices["slow"].state == "healthy"
    monitor.observe_fault("slow", "launch")
    slow = monitor.devices["slow"]
    assert slow.state == "demoted"
    assert slow.reason == "faults"
    assert slow.faults == 3


# -- cooloff probe and re-promotion ------------------------------------------


def test_clean_probe_repromotes_after_cooloff():
    monitor, policy = make_monitor(cooloff=2)
    warm_up(monitor, policy)
    assert monitor.devices["slow"].state == "demoted"
    # Two placements elsewhere: the cooloff elapses and the demoted
    # device is offered first as the probe.
    monitor.placement_order()
    order = monitor.placement_order()
    assert order[0] == "slow"
    assert monitor.devices["slow"].probing
    # The probe comes back fast: the device earns its place back.
    monitor.observe_success("slow", FAST_NS)
    slow = monitor.devices["slow"]
    assert slow.state == "healthy"
    assert slow.promotions == 1
    # Fresh window: the stale slow samples are gone.
    assert slow.samples == [FAST_NS]
    assert monitor.metrics.get("fleet.promotions") == 1


def test_still_slow_probe_stays_demoted():
    monitor, policy = make_monitor(cooloff=1)
    warm_up(monitor, policy)
    order = monitor.placement_order()
    assert order[0] == "slow"
    # The probe is judged on its own launch time — still 10x slow.
    monitor.observe_success("slow", SLOW_NS)
    slow = monitor.devices["slow"]
    assert slow.state == "demoted"
    assert slow.promotions == 0
    assert slow.reason == "slow"


def test_faulted_probe_stays_demoted():
    monitor, policy = make_monitor(cooloff=1)
    warm_up(monitor, policy)
    order = monitor.placement_order()
    assert order[0] == "slow"
    monitor.observe_fault("slow", "launch")
    assert monitor.devices["slow"].state == "demoted"
    assert not monitor.devices["slow"].probing


# -- placement order ---------------------------------------------------------


def test_unexplored_devices_are_tried_first():
    policy = FleetPolicy()
    monitor = HealthMonitor(["a", "b", "c"], policy=policy)
    for _ in range(policy.min_samples):
        monitor.observe_success("a", FAST_NS)
    # "a" is scored; "b" and "c" are unexplored and go first.
    assert monitor.placement_order()[:2] == ["b", "c"]


def test_scored_devices_rank_fastest_first():
    policy = FleetPolicy()
    monitor = HealthMonitor(["a", "b"], policy=policy)
    for _ in range(policy.min_samples):
        monitor.observe_success("a", 300.0)
        monitor.observe_success("b", 200.0)
    assert monitor.placement_order() == ["b", "a"]


def test_demoted_devices_are_failover_targets_of_last_resort():
    monitor, policy = make_monitor()
    warm_up(monitor, policy)
    order = monitor.placement_order()
    # Demoted but not yet probing: last in the preference list.
    assert order == ["fast", "slow"]


def test_round_robin_rotates_across_healthy_devices():
    policy = FleetPolicy(policy="round-robin")
    monitor = HealthMonitor(["a", "b", "c"], policy=policy)
    first = [monitor.placement_order()[0] for _ in range(6)]
    assert first == ["a", "b", "c", "a", "b", "c"]


def test_placement_is_deterministic():
    def run():
        monitor, policy = make_monitor(cooloff=2)
        orders = []
        for step in range(12):
            orders.append(tuple(monitor.placement_order()))
            key = orders[-1][0]
            ns = FAST_NS if key == "fast" else SLOW_NS
            monitor.observe_success(key, ns)
        return orders

    assert run() == run()


# -- construction and snapshot -----------------------------------------------


def test_duplicate_device_rejected():
    with pytest.raises(ValueError):
        HealthMonitor(["gtx580", "gtx580"])


def test_empty_fleet_rejected():
    with pytest.raises(ValueError):
        HealthMonitor([])


def test_device_fleet_resolves_keys_and_snapshots():
    fleet = DeviceFleet(["gtx580", "hd5970"])
    assert set(fleet.devices) == {"gtx580", "hd5970"}
    snap = fleet.snapshot()
    assert set(snap) == {"gtx580", "hd5970"}
    for rec in snap.values():
        assert rec["state"] == "healthy"
        assert rec["launches"] == 0


def test_snapshot_reflects_health_history():
    monitor, policy = make_monitor(cooloff=1)
    warm_up(monitor, policy)
    monitor.placement_order()
    monitor.observe_success("slow", FAST_NS)  # probe succeeds
    snap = monitor.snapshot()
    assert snap["slow"]["demotions"] == 1
    assert snap["slow"]["promotions"] == 1
    assert snap["slow"]["state"] == "healthy"
    assert snap["fast"]["median_launch_ns"] == FAST_NS
