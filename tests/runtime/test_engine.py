"""Engine tests: host execution, offload fallback, cost accounting."""

import numpy as np
import pytest

from repro.compiler import Offloader
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.engine import Engine, run_baseline

PIPELINE = """
class Pipe {
    int n;
    int produced;
    static float result = 0.0f;

    Pipe(int size) { n = size; produced = 0; }

    float[[]] gen() {
        if (produced >= 3) { throw new UnderflowException(); }
        produced = produced + 1;
        float[] xs = new float[n];
        for (int i = 0; i < n; i++) { xs[i] = (float) i; }
        return (float[[]]) xs;
    }

    static local float[[]] square(float[[]] xs) {
        return Pipe.sq @ xs;
    }

    static local float sq(float x) { return x * x; }

    static void consume(float[[]] xs) {
        result = result + (+! xs);
    }

    static float run(int n) {
        result = 0.0f;
        var g = task Pipe(n).gen => task Pipe.square => task Pipe.consume;
        g.finish();
        return result;
    }
}
"""


@pytest.fixture(scope="module")
def pipeline_checked():
    return check_program(parse_program(PIPELINE))


def test_host_pipeline(pipeline_checked):
    result, ns, engine = run_baseline(pipeline_checked, "Pipe", "run", [4])
    # 3 stream items, each summing 0+1+4+9 = 14.
    assert result == pytest.approx(42.0)
    assert ns > 0
    assert engine.offloaded_tasks == []


def test_offloaded_pipeline_matches_host(pipeline_checked):
    offloader = Offloader(device=get_device("gtx580"))
    engine = Engine(pipeline_checked, offloader=offloader)
    result = engine.run_static("Pipe", "run", [4])
    assert result == pytest.approx(42.0)
    assert engine.offloaded_tasks == ["Pipe.square"]
    assert engine.profile.kernel_launches == 3
    assert engine.profile.stages.kernel > 0
    assert engine.profile.stages.java_marshal > 0


def test_non_isolated_tasks_stay_on_host(pipeline_checked):
    offloader = Offloader(device=get_device("gtx580"))
    engine = Engine(pipeline_checked, offloader=offloader)
    engine.run_static("Pipe", "run", [4])
    assert "Pipe.gen" in engine.host_tasks
    assert "Pipe.consume" in engine.host_tasks


def test_unoffloadable_filter_falls_back():
    source = """
    class Odd {
        int produced;
        Odd(int x) { produced = 0; }
        float[[]] gen() {
            if (produced >= 1) { throw new UnderflowException(); }
            produced = produced + 1;
            float[] xs = new float[4];
            return (float[[]]) xs;
        }
        static local float[[]] weird(float[[]] xs) {
            float s = +! xs;
            float[] out = new float[2];
            out[0] = s;
            return (float[[]]) out;
        }
        static void consume(float[[]] xs) { }
        static int run() {
            var g = task Odd(0).gen => task Odd.weird => task Odd.consume;
            g.finish();
            return 1;
        }
    }
    """
    checked = check_program(parse_program(source))
    offloader = Offloader(device=get_device("gtx580"))
    engine = Engine(checked, offloader=offloader)
    assert engine.run_static("Odd", "run", []) == 1
    # The filter body is not a single map/reduce return: rejected, ran on host.
    assert engine.offloaded_tasks == []
    assert offloader.rejections


def test_total_time_includes_host_and_stages(pipeline_checked):
    offloader = Offloader(device=get_device("gtx580"))
    engine = Engine(pipeline_checked, offloader=offloader)
    engine.run_static("Pipe", "run", [4])
    assert engine.total_ns() == pytest.approx(
        engine.host_compute_ns() + engine.profile.stages.total()
    )
