"""Unit tests for the crash-consistent run journal.

Frame codec, torn-tail detection and truncation (with a deliberate
corrupted-CRC fixture), run-key verification, digest-mismatch
recompute, the watchdog ``aborted`` record, and bit-exact in-process
warm restarts — plain, fleet, and resilience-wrapped.
"""

import json
import os
import struct
import zlib

import pytest

from repro.apps.registry import BENCHMARKS
from repro.evaluation.harness import run_configuration
from repro.opencl import kernel_cache as kc
from repro.runtime.journal import (
    JOURNAL_FILENAME,
    JournalError,
    RunJournal,
    encode_frame,
    run_key_for,
    scan_frames,
)
from repro.runtime.resilience import ResiliencePolicy

SCALE = 0.2
STEPS = 4
MAX_ITEMS = 128


def run(journal=None, resume=False, devices=None, resilience=None,
        bench="jg-series-single", steps=STEPS):
    return run_configuration(
        BENCHMARKS[bench],
        "gtx580",
        scale=SCALE,
        steps=steps,
        max_sim_items=MAX_ITEMS,
        devices=devices,
        resilience=resilience,
        journal=os.fspath(journal) if journal is not None else None,
        resume=resume,
    )


@pytest.fixture(autouse=True)
def fresh_kernel_cache():
    yield
    kc.configure_disk_store(None)
    kc.reset_global_cache()


# -- frame codec -------------------------------------------------------------


class TestFrameCodec:
    def test_round_trip(self):
        records = [
            {"type": "meta", "run_key": "a" * 64},
            {"type": "item", "key": "t#0", "seq": 0},
            {"type": "complete", "checksum": 1.5},
        ]
        blob = b"".join(encode_frame(r) for r in records)
        decoded, valid, torn = scan_frames(blob)
        assert decoded == records
        assert valid == len(blob)
        assert not torn

    def test_empty(self):
        assert scan_frames(b"") == ([], 0, False)

    def test_partial_header_is_torn(self):
        frame = encode_frame({"a": 1})
        decoded, valid, torn = scan_frames(frame + b"\x07")
        assert decoded == [{"a": 1}]
        assert valid == len(frame)
        assert torn

    def test_truncated_payload_is_torn(self):
        good = encode_frame({"a": 1})
        cut = encode_frame({"b": 2})[:-3]
        decoded, valid, torn = scan_frames(good + cut)
        assert decoded == [{"a": 1}]
        assert valid == len(good)
        assert torn

    def test_corrupted_crc_is_torn(self):
        # The deliberate corrupted-CRC fixture: flip one payload byte in
        # the second frame, leaving its header (and length) intact.
        good = encode_frame({"a": 1})
        bad = bytearray(encode_frame({"b": 2}))
        bad[-1] ^= 0xFF
        decoded, valid, torn = scan_frames(good + bytes(bad))
        assert decoded == [{"a": 1}]
        assert valid == len(good)
        assert torn

    def test_crc_matching_garbage_json_is_torn(self):
        payload = b"not json"
        frame = struct.pack(
            "<II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF
        ) + payload
        decoded, valid, torn = scan_frames(frame)
        assert decoded == []
        assert valid == 0
        assert torn

    def test_run_key_is_order_insensitive(self):
        assert run_key_for({"a": 1, "b": 2}) == run_key_for({"b": 2, "a": 1})
        assert run_key_for({"a": 1}) != run_key_for({"a": 2})


# -- journal lifecycle -------------------------------------------------------


class TestRunJournal:
    def test_fresh_open_writes_meta(self, tmp_path):
        j = RunJournal.open(tmp_path, {"bench": "x"})
        j.close()
        with open(tmp_path / JOURNAL_FILENAME, "rb") as fh:
            records, _, torn = scan_frames(fh.read())
        assert not torn
        assert records[0]["type"] == "meta"
        assert records[0]["run_key"] == run_key_for({"bench": "x"})
        assert records[0]["descriptor"] == {"bench": "x"}

    def test_resume_recovers_items(self, tmp_path):
        j = RunJournal.open(tmp_path, {"bench": "x"})
        j.record_item({"key": "t#0", "seq": 0, "input_sha": "s"})
        j.close()
        j2 = RunJournal.open(tmp_path, {"bench": "x"}, resume=True)
        assert j2.resumed
        assert j2.completed("t#0", 0)["input_sha"] == "s"
        assert j2.completed("t#0", 1) is None
        j2.close()

    def test_resume_refuses_different_run_key(self, tmp_path):
        j = RunJournal.open(tmp_path, {"bench": "x"})
        j.close()
        with pytest.raises(JournalError, match="different run"):
            RunJournal.open(tmp_path, {"bench": "y"}, resume=True)

    def test_resume_without_resume_flag_truncates(self, tmp_path):
        j = RunJournal.open(tmp_path, {"bench": "x"})
        j.record_item({"key": "t#0", "seq": 0, "input_sha": "s"})
        j.close()
        j2 = RunJournal.open(tmp_path, {"bench": "x"})  # no resume
        assert not j2.resumed
        assert j2.completed("t#0", 0) is None
        j2.close()

    def test_torn_tail_is_truncated_atomically(self, tmp_path):
        j = RunJournal.open(tmp_path, {"bench": "x"})
        j.record_item({"key": "t#0", "seq": 0, "input_sha": "s"})
        j.close()
        path = tmp_path / JOURNAL_FILENAME
        intact = path.read_bytes()
        with open(path, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef torn tail")
        j2 = RunJournal.open(tmp_path, {"bench": "x"}, resume=True)
        assert j2.torn_tail_truncated == 1
        assert j2.completed("t#0", 0) is not None
        j2.close()
        # The file was rewritten back to exactly the valid prefix.
        assert path.read_bytes() == intact

    def test_aborted_record_round_trips(self, tmp_path):
        # The wall-deadline watchdog path, deterministically: the abort
        # record must be durable and must survive a resume (the items
        # stay skippable; the abort is counted, not fatal).
        j = RunJournal.open(tmp_path, {"bench": "x"})
        j.record_item({"key": "t#0", "seq": 0, "input_sha": "s"})
        j.record_aborted("wall-deadline 50ms exceeded")
        j.close()
        with open(tmp_path / JOURNAL_FILENAME, "rb") as fh:
            records, _, torn = scan_frames(fh.read())
        assert not torn
        assert records[-1] == {
            "type": "aborted",
            "reason": "wall-deadline 50ms exceeded",
        }
        j2 = RunJournal.open(tmp_path, {"bench": "x"}, resume=True)
        assert j2.prior_aborts == 1
        assert j2.completed("t#0", 0) is not None
        j2.close()

    def test_stats_keys_are_json_stable(self, tmp_path):
        j = RunJournal.open(tmp_path, {"bench": "x"})
        stats = j.stats()
        j.close()
        assert json.dumps(stats, sort_keys=True)
        assert stats["resumed"] is False
        assert stats["items_recovered"] == 0


# -- end-to-end warm restart -------------------------------------------------


def assert_bit_exact(cold, warm):
    assert warm.checksum == cold.checksum
    assert warm.total_ns == cold.total_ns
    assert warm.stages == cold.stages
    assert warm.offloaded == cold.offloaded


class TestWarmRestart:
    def test_plain_resume_is_bit_exact_and_skips_everything(self, tmp_path):
        kc.configure_disk_store(os.fspath(tmp_path / "kernels"))
        cold = run(journal=tmp_path)
        kc.reset_global_cache()  # a process restart loses the LRU
        warm = run(journal=tmp_path, resume=True)

        assert_bit_exact(cold, warm)
        assert warm.journal["resumed"] is True
        assert warm.journal["items_skipped"] == cold.journal["items_journaled"]
        assert warm.journal["items_skipped"] > 0
        assert warm.journal["items_journaled"] == 0
        # Zero recompiles: every kernel came back from the disk store.
        assert warm.metrics["cache.disk_hits"] > 0
        assert "cache.misses" not in warm.metrics
        assert warm.metrics["journal.items_skipped"] == \
            warm.journal["items_skipped"]

    def test_mosaic_resume_is_bit_exact(self, tmp_path):
        cold = run(journal=tmp_path, bench="mosaic")
        warm = run(journal=tmp_path, resume=True, bench="mosaic")
        assert_bit_exact(cold, warm)
        assert warm.journal["items_skipped"] > 0

    def test_fleet_resume_restores_health_state(self, tmp_path):
        policy = ResiliencePolicy.from_flags(kill_devices={"gtx580": 0})
        cold = run(
            journal=tmp_path,
            devices=["gtx580", "hd5970"],
            resilience=policy,
        )
        policy = ResiliencePolicy.from_flags(kill_devices={"gtx580": 0})
        warm = run(
            journal=tmp_path,
            resume=True,
            devices=["gtx580", "hd5970"],
            resilience=policy,
        )
        assert_bit_exact(cold, warm)
        assert warm.faults == cold.faults
        assert warm.fleet == cold.fleet
        assert warm.fleet["gtx580"]["state"] == "demoted"

    def test_resume_after_partial_run_completes_the_rest(self, tmp_path):
        cold = run(journal=tmp_path)
        path = tmp_path / JOURNAL_FILENAME
        with open(path, "rb") as fh:
            records, _, _ = scan_frames(fh.read())
        # Keep the meta frame and the first two item records — exactly
        # what a crash after the second fsync would have left behind.
        kept, items = [], 0
        for rec in records:
            if rec.get("type") == "item":
                items += 1
                if items > 2:
                    continue
            elif rec.get("type") != "meta":
                continue
            kept.append(rec)
        assert items > 2, "need more than two journaled items to truncate"
        with open(path, "wb") as fh:
            for rec in kept:
                fh.write(encode_frame(rec))
        resumed = run(journal=tmp_path, resume=True)

        assert resumed.checksum == cold.checksum
        assert resumed.total_ns == cold.total_ns
        assert resumed.journal["items_skipped"] == 2
        # The remaining items were computed and journaled this run.
        assert resumed.journal["items_journaled"] == items - 2

    def test_digest_mismatch_forces_recompute(self, tmp_path):
        cold = run(journal=tmp_path)
        path = tmp_path / JOURNAL_FILENAME
        with open(path, "rb") as fh:
            records, _, _ = scan_frames(fh.read())
        # Tamper with the first item's recorded input digest, keeping
        # the frame CRC-valid: the record must be distrusted on resume.
        for rec in records:
            if rec.get("type") == "item":
                rec["input_sha"] = "0" * 64
                break
        with open(path, "wb") as fh:
            for rec in records:
                fh.write(encode_frame(rec))
        warm = run(journal=tmp_path, resume=True)
        assert warm.checksum == cold.checksum
        assert warm.journal["digest_mismatches"] == 1
        assert warm.metrics["journal.digest_mismatches"] == 1
        # The distrusted item was recomputed (journaled afresh), the
        # rest were skipped.
        assert warm.journal["items_journaled"] >= 1
        assert warm.journal["items_skipped"] == \
            cold.journal["items_journaled"] - 1

    def test_torn_tail_end_to_end(self, tmp_path):
        cold = run(journal=tmp_path)
        with open(tmp_path / JOURNAL_FILENAME, "ab") as fh:
            fh.write(b"\x00garbage from a crash mid-write")
        warm = run(journal=tmp_path, resume=True)
        assert_bit_exact(cold, warm)
        assert warm.journal["torn_tail_truncated"] == 1
        assert warm.metrics["journal.torn_tail_truncated"] == 1

    def test_completed_journal_resume_skips_all_items(self, tmp_path):
        cold = run(journal=tmp_path)
        warm = run(journal=tmp_path, resume=True)
        assert_bit_exact(cold, warm)
        assert warm.journal["items_journaled"] == 0
