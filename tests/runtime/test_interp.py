"""Host interpreter tests: Lime semantics on the 'JVM' path."""

import numpy as np
import pytest

from repro.errors import RuntimeFault, UnderflowException
from repro.frontend import check_program, parse_program
from repro.runtime.cost import CostCounter
from repro.runtime.interp import Interpreter


def run(source, class_name, method, args=(), cost=None):
    checked = check_program(parse_program(source))
    interp = Interpreter(checked, cost=cost)
    return interp.call_static(class_name, method, list(args))


def test_arithmetic():
    assert run("class A { static int f() { return 2 + 3 * 4; } }", "A", "f") == 14


def test_int_division_truncates():
    assert run("class A { static int f() { return -7 / 2; } }", "A", "f") == -3


def test_int_overflow_wraps():
    source = "class A { static int f() { return 2147483647 + 1; } }"
    assert run(source, "A", "f") == -(2 ** 31)


def test_long_multiplication_no_32bit_wrap():
    source = (
        "class A { static long f() { long a = 65536L;"
        " return a * a; } }"
    )
    assert run(source, "A", "f") == 65536 * 65536


def test_byte_cast_wraps():
    assert run("class A { static byte f() { return (byte) 200; } }", "A", "f") == -56


def test_float_cast_rounds():
    out = run("class A { static float f(double x) { return (float) x; } }", "A", "f", [0.1])
    assert out == float(np.float32(0.1))


def test_loops_and_arrays():
    source = (
        "class A { static int f(int n) { int[] xs = new int[n];"
        " for (int i = 0; i < n; i++) { xs[i] = i * i; }"
        " int s = 0;"
        " for (int i = 0; i < n; i++) { s += xs[i]; }"
        " return s; } }"
    )
    assert run(source, "A", "f", [5]) == 0 + 1 + 4 + 9 + 16


def test_while_break_continue():
    source = (
        "class A { static int f() { int s = 0; int i = 0;"
        " while (true) { i++; if (i > 10) { break; }"
        " if (i % 2 == 0) { continue; } s += i; } return s; } }"
    )
    assert run(source, "A", "f") == 1 + 3 + 5 + 7 + 9


def test_bounds_check():
    source = "class A { static int f(int[] xs) { return xs[5]; } }"
    with pytest.raises(RuntimeFault):
        run(source, "A", "f", [np.zeros(3, dtype=np.int32)])


def test_value_array_store_rejected_at_runtime_too():
    # Reaching a frozen array through a mutable-typed alias is impossible
    # in checked programs, but the runtime guards anyway.
    source = "class A { static void f(float[] xs) { xs[0] = 1.0f; } }"
    frozen = np.zeros(3, dtype=np.float32)
    frozen.setflags(write=False)
    with pytest.raises(RuntimeFault):
        run(source, "A", "f", [frozen])


def test_freeze_cast_copies():
    source = (
        "class A { static float[[]] f() { float[] xs = new float[2];"
        " xs[0] = 1.0f; float[[]] v = (float[[]]) xs; xs[1] = 9.0f;"
        " return v; } }"
    )
    out = run(source, "A", "f")
    assert out[1] == 0.0
    assert not out.flags.writeable


def test_map_over_array():
    source = (
        "class A { static local float sq(float x) { return x * x; }"
        " static local float[[]] f(float[[]] xs) { return A.sq @ xs; } }"
    )
    xs = np.array([1, 2, 3], dtype=np.float32)
    xs.setflags(write=False)
    out = run(source, "A", "f", [xs])
    assert np.allclose(out, [1, 4, 9])
    assert not out.flags.writeable


def test_map_over_iota():
    source = (
        "class A { static local int dbl(int i) { return i * 2; }"
        " static local int[[]] f(int n) { return A.dbl @ Lime.iota(n); } }"
    )
    out = run(source, "A", "f", [4])
    assert list(out) == [0, 2, 4, 6]


def test_reduce_sum():
    source = "class A { static local float f(float[[]] xs) { return +! xs; } }"
    xs = np.array([1.5, 2.5, 3.0], dtype=np.float32)
    xs.setflags(write=False)
    assert run(source, "A", "f", [xs]) == pytest.approx(7.0)


def test_reduce_product():
    source = "class A { static local int f(int[[]] xs) { return *! xs; } }"
    xs = np.array([2, 3, 4], dtype=np.int32)
    xs.setflags(write=False)
    assert run(source, "A", "f", [xs]) == 24


def test_reduce_max():
    source = "class A { static local float f(float[[]] xs) { return Math.max ! xs; } }"
    xs = np.array([1.0, 9.0, 3.0], dtype=np.float32)
    xs.setflags(write=False)
    assert run(source, "A", "f", [xs]) == 9.0


def test_reduce_with_combinator_method():
    source = (
        "class A { static local float both(float a, float b) { return a + 2.0f * b; }"
        " static local float f(float[[]] xs) { return A.both ! xs; } }"
    )
    xs = np.array([1.0, 2.0, 3.0], dtype=np.float32)
    xs.setflags(write=False)
    # ((1 + 2*2) + 2*3) = 11
    assert run(source, "A", "f", [xs]) == pytest.approx(11.0)


def test_instance_fields_and_constructor():
    source = (
        "class A { int n; A(int m) { n = m * 2; }"
        " int get() { return n; }"
        " static int f() { A a = new A(21); return a.get(); } }"
    )
    assert run(source, "A", "f") == 42


def test_static_field_initialization_and_mutation():
    source = (
        "class A { static int c = 5;"
        " static int f() { c = c + 1; return c; } }"
    )
    assert run(source, "A", "f") == 6


def test_underflow_exception_propagates():
    source = "class A { static void f() { throw new UnderflowException(); } }"
    with pytest.raises(UnderflowException):
        run(source, "A", "f")


def test_math_functions():
    source = "class A { static double f(double x) { return Math.exp(Math.log(x)); } }"
    assert run(source, "A", "f", [2.5]) == pytest.approx(2.5)


def test_cost_counter_charges():
    cost = CostCounter()
    run(
        "class A { static float f() { float s = 0.0f;"
        " for (int i = 0; i < 10; i++) { s = s + Math.sin(s); } return s; } }",
        "A",
        "f",
        cost=cost,
    )
    assert cost.get("transcendental") == 10
    assert cost.get("branch") >= 10


def test_ternary():
    source = "class A { static int f(int x) { return x > 0 ? 1 : -1; } }"
    assert run(source, "A", "f", [5]) == 1
    assert run(source, "A", "f", [-5]) == -1


def test_logical_short_circuit():
    # The right operand would divide by zero; && must not evaluate it.
    source = (
        "class A { static boolean f(int x) {"
        " return x != 0 && 10 / x > 1; } }"
    )
    assert run(source, "A", "f", [0]) is False


def test_array_init_literal():
    source = (
        "class A { static int f() { int[] k = new int[] { 5, 6, 7 };"
        " return k[0] + k[2]; } }"
    )
    assert run(source, "A", "f") == 12
