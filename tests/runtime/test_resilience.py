"""Resilience-layer tests: fault injection, retry/backoff, circuit
breaking, transparent host fallback, and the failure ledger."""

import numpy as np
import pytest

from repro.apps.registry import BENCHMARKS
from repro.compiler.pipeline import compile_filter
from repro.errors import (
    ControlFlowSignal,
    DeviceError,
    DeviceOOM,
    LaunchFault,
    ReproError,
    RuntimeFault,
    TaskFault,
    TransferFault,
    UnderflowException,
)
from repro.evaluation.harness import run_configuration
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.profiler import ExecutionProfile, FailureLedger
from repro.runtime.resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    ResiliencePolicy,
    ResilientWorker,
    RetryPolicy,
)

from tests.conftest import SAXPY_SOURCE


def saxpy_filter(**kwargs):
    checked = check_program(parse_program(SAXPY_SOURCE))
    return compile_filter(
        checked,
        checked.lookup_method("Saxpy", "apply"),
        device=get_device("gtx580"),
        local_size=8,
        **kwargs,
    )


def frozen(n=8):
    xs = np.arange(n, dtype=np.float32)
    xs.setflags(write=False)
    return xs


# -- FaultSpec / FaultInjector ---------------------------------------------


def test_fault_spec_disabled_by_default():
    assert not FaultSpec().enabled()
    assert FaultSpec.uniform(0.1).enabled()


def test_injector_is_deterministic_per_seed():
    def decisions(seed):
        inj = FaultInjector(FaultSpec.uniform(0.5, seed=seed))
        out = []
        for _ in range(32):
            try:
                inj.maybe_fail_launch("k")
                out.append(0)
            except LaunchFault:
                out.append(1)
        return out

    assert decisions(7) == decisions(7)
    assert decisions(7) != decisions(8)


def test_injector_transmit_flips_exactly_one_bit():
    inj = FaultInjector(FaultSpec(transfer=1.0, seed=1))
    data = bytes(range(64))
    wire = inj.transmit(data, "h2d", "t")
    assert wire != data
    diff = [a ^ b for a, b in zip(wire, data)]
    assert sum(1 for d in diff if d) == 1
    assert bin(max(diff)).count("1") == 1
    assert inj.injected["transfer"] == 1


def test_injector_zero_rate_passes_data_through_unchanged():
    inj = FaultInjector(FaultSpec())
    data = b"abc"
    assert inj.transmit(data, "h2d", "t") is data
    inj.maybe_fail_launch("k")
    inj.maybe_oom("t", 1 << 30)
    assert inj.injected == {
        "transfer": 0, "launch": 0, "oom": 0, "silent": 0, "latency": 0,
    }


# -- RetryPolicy / CircuitBreaker ------------------------------------------


def test_retry_backoff_is_deterministic_exponential():
    policy = RetryPolicy(max_retries=3, base_backoff_ns=100.0, multiplier=2.0)
    assert [policy.backoff_ns(a) for a in range(3)] == [100.0, 200.0, 400.0]


def test_circuit_breaker_opens_after_consecutive_faults():
    breaker = CircuitBreaker(threshold=3)
    assert not breaker.record_fault()
    assert not breaker.record_fault()
    breaker.record_success()  # success resets the streak
    assert not breaker.record_fault()
    assert not breaker.record_fault()
    assert breaker.record_fault()
    assert breaker.open


# -- glue / executor injection points --------------------------------------


def test_corrupted_transfer_raises_transfer_fault_with_partial_stages():
    cf = saxpy_filter()
    cf.injector = FaultInjector(FaultSpec(transfer=1.0, seed=0))
    with pytest.raises(TransferFault) as exc:
        cf(frozen())
    assert exc.value.stage == "transfer"
    assert exc.value.partial_stages.total() > 0  # java marshal already done
    assert cf.profile.stages.total() == 0  # failed attempt not recorded


def test_injected_launch_fault_comes_from_executor():
    cf = saxpy_filter()
    cf.injector = FaultInjector(FaultSpec(launch=1.0, seed=0))
    with pytest.raises(LaunchFault) as exc:
        cf(frozen())
    assert exc.value.stage == "launch"


def test_injected_oom():
    cf = saxpy_filter()
    cf.injector = FaultInjector(FaultSpec(oom=1.0, seed=0))
    with pytest.raises(DeviceOOM) as exc:
        cf(frozen())
    assert exc.value.stage == "oom"


def test_clean_injector_changes_nothing():
    plain = saxpy_filter()
    hooked = saxpy_filter()
    hooked.injector = FaultInjector(FaultSpec(seed=0))
    xs = frozen()
    assert np.array_equal(plain(xs), hooked(xs))
    assert plain.profile.stages.total() == hooked.profile.stages.total()


# -- ResilientWorker --------------------------------------------------------


class FlakyWorker:
    """Device stand-in failing the first ``failures`` calls."""

    def __init__(self, failures, exc=None):
        self.failures = failures
        self.calls = 0
        self.exc = exc or LaunchFault("boom")

    def __call__(self, value):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return value * 2


def make_resilient(
    device, retry=None, threshold=3, cooloff=None, validate_every=0, host=None
):
    profile = ExecutionProfile()
    worker = ResilientWorker(
        name="t",
        device_worker=device,
        host_factory=lambda: host or (lambda v: v * 2),
        retry=retry or RetryPolicy(max_retries=2),
        breaker=CircuitBreaker(threshold, cooloff=cooloff),
        profile=profile,
        validate_every=validate_every,
    )
    return worker, profile


def test_retry_then_success_records_ledger_and_recovery():
    device = FlakyWorker(failures=2)
    worker, profile = make_resilient(device, threshold=5)
    assert worker(21) == 42
    ledger = profile.faults
    assert ledger.total_faults == 2
    assert ledger.total_retries == 2
    assert ledger.total_fallbacks == 0
    assert ledger.tasks["t"].by_stage == {"launch": 2}
    assert profile.stages.recovery > 0
    assert profile.stages.total() == profile.stages.recovery
    assert not worker.demoted


def test_exhausted_retries_fall_back_to_host_for_the_item():
    device = FlakyWorker(failures=100)
    worker, profile = make_resilient(
        device, retry=RetryPolicy(max_retries=1), threshold=10
    )
    assert worker(5) == 10  # computed by the host fallback
    assert device.calls == 2  # initial + 1 retry
    assert profile.faults.total_fallbacks == 1
    assert not worker.demoted


def test_breaker_demotes_to_host_permanently():
    device = FlakyWorker(failures=100)
    worker, profile = make_resilient(
        device, retry=RetryPolicy(max_retries=0), threshold=2
    )
    assert worker(1) == 2  # fault 1 -> item falls back to host
    assert worker(2) == 4  # fault 2 -> breaker opens -> demotion
    calls_before = device.calls
    assert worker(3) == 6  # device never consulted again
    assert device.calls == calls_before
    assert worker.demoted
    assert profile.faults.demotions == ["t"]
    assert profile.faults.tasks["t"].demoted


def test_success_resets_the_breaker_streak():
    device = FlakyWorker(failures=1)
    worker, profile = make_resilient(
        device, retry=RetryPolicy(max_retries=2), threshold=2
    )
    assert worker(1) == 2  # one fault, then device succeeds on retry
    assert worker(2) == 4
    assert not worker.demoted
    assert worker.breaker.consecutive == 0


def test_underflow_passes_through_the_resilience_layer():
    def underflowing(value):
        raise UnderflowException()

    worker, _profile = make_resilient(underflowing)
    with pytest.raises(UnderflowException):
        worker(1)


def test_backoff_charged_per_attempt():
    device = FlakyWorker(failures=2)
    retry = RetryPolicy(max_retries=2, base_backoff_ns=1000.0, multiplier=3.0)
    worker, profile = make_resilient(device, retry=retry, threshold=10)
    worker(1)
    # Two failed attempts: backoff 1000 + 3000 (no partial stage time
    # from FlakyWorker, which raises without a partial_stages attr).
    assert profile.stages.recovery == pytest.approx(4000.0)
    assert profile.faults.time_lost_ns == pytest.approx(4000.0)


# -- engine integration ------------------------------------------------------


def test_faulted_run_produces_identical_results_and_a_ledger():
    bench = BENCHMARKS["jg-series-single"]
    clean = run_configuration(bench, "gtx580", scale=0.2)
    policy = ResiliencePolicy.from_flags(fault_rate=0.3, seed=7)
    faulted = run_configuration(bench, "gtx580", scale=0.2, resilience=policy)
    # Transparent recovery: byte-identical results.
    assert faulted.checksum == clean.checksum
    # The ledger saw the injected faults...
    assert faulted.faults["recovery.faults"] > 0
    # ...and the recovery overhead is visible in the stage totals.
    assert faulted.stages.get("recovery", 0.0) > 0
    assert faulted.total_ns > clean.total_ns
    assert clean.faults == {}
    assert "recovery" not in clean.stages


def test_faulted_runs_are_deterministic_per_seed():
    bench = BENCHMARKS["jg-series-single"]
    policy_a = ResiliencePolicy.from_flags(fault_rate=0.25, seed=11)
    policy_b = ResiliencePolicy.from_flags(fault_rate=0.25, seed=11)
    a = run_configuration(bench, "gtx580", scale=0.2, resilience=policy_a)
    b = run_configuration(bench, "gtx580", scale=0.2, resilience=policy_b)
    assert a.checksum == b.checksum
    assert a.total_ns == b.total_ns
    assert a.faults == b.faults
    assert a.stages == b.stages


def test_resilience_disabled_keeps_seed_profile_shape():
    bench = BENCHMARKS["jg-series-single"]
    result = run_configuration(bench, "gtx580", scale=0.2)
    assert set(result.stages) == {
        "java_marshal",
        "c_marshal",
        "opencl_setup",
        "transfer",
        "kernel",
        "host_compute",
    }


def test_from_flags_zero_rate_disables_resilience():
    assert ResiliencePolicy.from_flags(fault_rate=0.0, seed=1) is None


def test_policy_without_injector_still_recovers_real_faults():
    # ResiliencePolicy(injector=None): no injection, but genuine device
    # faults still retry and fall back.
    device = FlakyWorker(failures=100, exc=DeviceError("real fault"))
    policy = ResiliencePolicy(retry=RetryPolicy(max_retries=1))
    profile = ExecutionProfile()
    worker = policy.wrap("t", device, lambda: (lambda v: v + 1), profile)
    assert worker(1) == 2
    assert profile.faults.total_faults == 2


# -- exception taxonomy ------------------------------------------------------


def test_underflow_is_control_flow_not_an_error():
    assert issubclass(UnderflowException, ControlFlowSignal)
    assert not issubclass(UnderflowException, ReproError)
    assert not issubclass(UnderflowException, RuntimeFault)


def test_injected_fault_taxonomy():
    for cls, stage in (
        (TransferFault, "transfer"),
        (LaunchFault, "launch"),
        (DeviceOOM, "oom"),
    ):
        assert issubclass(cls, DeviceError)
        assert cls.stage == stage
    assert issubclass(TaskFault, RuntimeFault)


# -- failure ledger ----------------------------------------------------------


def test_ledger_report_renders_all_counters():
    ledger = FailureLedger()
    ledger.record_fault("A.f", "transfer")
    ledger.record_fault("A.f", "launch")
    ledger.record_retry("A.f")
    ledger.record_fallback("A.f")
    ledger.record_demotion("B.g")
    ledger.add_time_lost("A.f", 1234.0)
    text = ledger.report()
    assert "faults=2" in text
    assert "transfer=1" in text and "launch=1" in text
    assert "DEMOTED-TO-HOST" in text
    assert "A.f" in text and "B.g" in text
    summary = ledger.summary()
    assert summary["recovery.faults"] == 2
    assert summary["demoted_tasks"] == ["B.g"]
    assert summary["recovery.demotions"] == 1
    assert summary["recovery.time_lost_ns"] == 1234.0
    assert summary["per_task"]["A.f"]["time_lost_ns"] == 1234.0
    # Legacy alias keys are gone — canonical dotted names only.
    assert "faults" not in summary
    assert "demotions" not in summary


def test_empty_ledger_report():
    assert "no device faults" in FailureLedger().report()


# -- half-open circuit breaker ----------------------------------------------


def test_breaker_half_opens_after_cooloff_and_recloses():
    breaker = CircuitBreaker(threshold=2, cooloff=3)
    assert breaker.record_fault() is False
    assert breaker.record_fault() is True
    assert breaker.state == "open"
    assert breaker.record_host_success() is False
    assert breaker.record_host_success() is False
    assert breaker.record_host_success() is True  # open -> half_open
    assert breaker.half_open and not breaker.open
    breaker.record_success()  # probe succeeded
    assert breaker.state == "closed"


def test_breaker_probe_failure_reopens():
    breaker = CircuitBreaker(threshold=1, cooloff=1)
    breaker.record_fault()
    breaker.record_host_success()
    assert breaker.half_open
    breaker.record_fault()  # probe fails: straight back open
    assert breaker.open
    assert breaker.host_successes == 0  # cooloff restarts


def test_breaker_without_cooloff_stays_open_forever():
    breaker = CircuitBreaker(threshold=1)
    breaker.record_fault()
    for _ in range(100):
        assert breaker.record_host_success() is False
    assert breaker.open


def test_worker_repromotes_after_cooloff():
    device = FlakyWorker(failures=2)
    worker, profile = make_resilient(
        device, retry=RetryPolicy(max_retries=0), threshold=2, cooloff=2
    )
    worker(1)  # fault 1: host fallback
    worker(2)  # fault 2: breaker opens, demotion
    assert worker.demoted
    worker(3)  # host, cooloff 1
    worker(4)  # host, cooloff 2 -> half-open
    assert worker.breaker.half_open
    calls_before = device.calls
    assert worker(5) == 10  # probe: device succeeds, re-promoted
    assert device.calls == calls_before + 1
    assert not worker.demoted
    assert worker.breaker.state == "closed"
    assert profile.faults.total_promotions == 1
    assert profile.faults.tasks["t"].promotions == 1


def test_worker_failed_probe_goes_back_to_host():
    device = FlakyWorker(failures=100)
    worker, profile = make_resilient(
        device, retry=RetryPolicy(max_retries=2), threshold=1, cooloff=1
    )
    worker(1)  # breaker opens immediately
    worker(2)  # host success -> half-open
    assert worker.breaker.half_open
    calls_before = device.calls
    assert worker(3) == 6  # probe fails -> host answers the item
    # A half-open probe gets exactly one device attempt (no retries).
    assert device.calls == calls_before + 1
    assert worker.breaker.open
    assert profile.faults.total_promotions == 0


# -- silent corruption + differential validation -----------------------------


def test_silent_corruption_flips_one_element():
    inj = FaultInjector(FaultSpec(silent=1.0, seed=5))
    out = np.ones(16, dtype=np.float32)
    inj.maybe_corrupt_output(out, "t")
    assert inj.injected["silent"] == 1
    assert (out != 1.0).sum() == 1


def test_silent_corruption_int_and_bool_buffers():
    inj = FaultInjector(FaultSpec(silent=1.0, seed=5))
    iout = np.zeros(8, dtype=np.int32)
    inj.maybe_corrupt_output(iout, "t")
    assert (iout != 0).sum() == 1
    bout = np.ones(8, dtype=bool)
    inj.maybe_corrupt_output(bout, "t")
    assert (~bout).sum() == 1


def test_uniform_spec_keeps_silent_opt_in():
    spec = FaultSpec.uniform(0.5, seed=1)
    assert spec.silent == 0.0
    assert FaultSpec.uniform(0.5, seed=1, silent=0.25).silent == 0.25


def test_validation_catches_wrong_device_result():
    worker, profile = make_resilient(
        lambda v: v * 2 + 1,  # silently wrong device
        threshold=10,
        validate_every=1,
    )
    assert worker(5) == 10  # host ground truth wins
    rec = profile.faults.tasks["t"]
    assert rec.validations == 1
    assert rec.mismatches == 1
    assert rec.by_stage == {"validate": 1}
    assert rec.trips == {"validate": 1}


def test_validation_sampling_period():
    seen = []

    def device(v):
        seen.append(v)
        return v * 2

    worker, profile = make_resilient(device, validate_every=3)
    for i in range(9):
        assert worker(i) == i * 2
    rec = profile.faults.tasks["t"]
    assert rec.validations == 3  # items 0, 3, 6
    assert rec.mismatches == 0
    assert len(seen) == 9


def test_validation_mismatches_trip_the_breaker():
    worker, profile = make_resilient(
        lambda v: v * 2 + 1, threshold=2, validate_every=1
    )
    worker(1)
    worker(2)  # second mismatch opens the breaker
    assert worker.demoted
    assert profile.faults.demotions == ["t"]
    calls = profile.faults.tasks["t"].validations
    worker(3)  # host-only now: no further validation
    assert profile.faults.tasks["t"].validations == calls


def test_validation_nan_results_are_not_mismatches():
    nan = float("nan")
    worker, profile = make_resilient(
        lambda v: nan, host=lambda v: nan, validate_every=1
    )
    out = worker(1)
    assert out != out  # NaN propagates
    rec = profile.faults.tasks["t"]
    assert rec.validations == 1 and rec.mismatches == 0


def test_policy_from_flags_validation_only():
    policy = ResiliencePolicy.from_flags(validate_every=4, cooloff=2)
    assert policy is not None
    assert policy.injector is None
    assert policy.validate_every == 4
    assert policy.cooloff == 2


def test_policy_from_flags_sanitize_only():
    policy = ResiliencePolicy.from_flags(sanitize=True)
    assert policy is not None and policy.injector is None


def test_policy_from_flags_silent_rate_builds_injector():
    policy = ResiliencePolicy.from_flags(silent_rate=0.5, seed=9)
    assert policy.injector is not None
    assert policy.injector.spec.silent == 0.5
    assert policy.injector.spec.transfer == 0.0


def test_ledger_guard_counters_render():
    ledger = FailureLedger()
    ledger.record_trip("A.f", "bounds", 2)
    ledger.record_trip("A.f", "race", 3)
    ledger.record_validation("A.f", ok=True)
    ledger.record_validation("A.f", ok=False)
    ledger.record_promotion("A.f")
    text = ledger.report()
    assert "bounds=2" in text and "race=3" in text
    assert "validations=2" in text and "mismatches=1" in text
    assert "promotions=1" in text
    summary = ledger.summary()
    assert summary["guards.trips"] == {"bounds": 2, "race": 3}
    assert summary["guards.validations"] == 2
    assert summary["guards.mismatches"] == 1
    assert summary["per_task"]["A.f"]["promotions"] == 1
    assert ledger.any_activity()
    assert not ledger.any_faults()


def test_any_activity_false_on_empty_ledger():
    assert not FailureLedger().any_activity()
