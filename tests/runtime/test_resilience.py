"""Resilience-layer tests: fault injection, retry/backoff, circuit
breaking, transparent host fallback, and the failure ledger."""

import numpy as np
import pytest

from repro.apps.registry import BENCHMARKS
from repro.compiler.pipeline import compile_filter
from repro.errors import (
    ControlFlowSignal,
    DeviceError,
    DeviceOOM,
    LaunchFault,
    ReproError,
    RuntimeFault,
    TaskFault,
    TransferFault,
    UnderflowException,
)
from repro.evaluation.harness import run_configuration
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.profiler import ExecutionProfile, FailureLedger
from repro.runtime.resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    ResiliencePolicy,
    ResilientWorker,
    RetryPolicy,
)

from tests.conftest import SAXPY_SOURCE


def saxpy_filter(**kwargs):
    checked = check_program(parse_program(SAXPY_SOURCE))
    return compile_filter(
        checked,
        checked.lookup_method("Saxpy", "apply"),
        device=get_device("gtx580"),
        local_size=8,
        **kwargs,
    )


def frozen(n=8):
    xs = np.arange(n, dtype=np.float32)
    xs.setflags(write=False)
    return xs


# -- FaultSpec / FaultInjector ---------------------------------------------


def test_fault_spec_disabled_by_default():
    assert not FaultSpec().enabled()
    assert FaultSpec.uniform(0.1).enabled()


def test_injector_is_deterministic_per_seed():
    def decisions(seed):
        inj = FaultInjector(FaultSpec.uniform(0.5, seed=seed))
        out = []
        for _ in range(32):
            try:
                inj.maybe_fail_launch("k")
                out.append(0)
            except LaunchFault:
                out.append(1)
        return out

    assert decisions(7) == decisions(7)
    assert decisions(7) != decisions(8)


def test_injector_transmit_flips_exactly_one_bit():
    inj = FaultInjector(FaultSpec(transfer=1.0, seed=1))
    data = bytes(range(64))
    wire = inj.transmit(data, "h2d", "t")
    assert wire != data
    diff = [a ^ b for a, b in zip(wire, data)]
    assert sum(1 for d in diff if d) == 1
    assert bin(max(diff)).count("1") == 1
    assert inj.injected["transfer"] == 1


def test_injector_zero_rate_passes_data_through_unchanged():
    inj = FaultInjector(FaultSpec())
    data = b"abc"
    assert inj.transmit(data, "h2d", "t") is data
    inj.maybe_fail_launch("k")
    inj.maybe_oom("t", 1 << 30)
    assert inj.injected == {"transfer": 0, "launch": 0, "oom": 0}


# -- RetryPolicy / CircuitBreaker ------------------------------------------


def test_retry_backoff_is_deterministic_exponential():
    policy = RetryPolicy(max_retries=3, base_backoff_ns=100.0, multiplier=2.0)
    assert [policy.backoff_ns(a) for a in range(3)] == [100.0, 200.0, 400.0]


def test_circuit_breaker_opens_after_consecutive_faults():
    breaker = CircuitBreaker(threshold=3)
    assert not breaker.record_fault()
    assert not breaker.record_fault()
    breaker.record_success()  # success resets the streak
    assert not breaker.record_fault()
    assert not breaker.record_fault()
    assert breaker.record_fault()
    assert breaker.open


# -- glue / executor injection points --------------------------------------


def test_corrupted_transfer_raises_transfer_fault_with_partial_stages():
    cf = saxpy_filter()
    cf.injector = FaultInjector(FaultSpec(transfer=1.0, seed=0))
    with pytest.raises(TransferFault) as exc:
        cf(frozen())
    assert exc.value.stage == "transfer"
    assert exc.value.partial_stages.total() > 0  # java marshal already done
    assert cf.profile.stages.total() == 0  # failed attempt not recorded


def test_injected_launch_fault_comes_from_executor():
    cf = saxpy_filter()
    cf.injector = FaultInjector(FaultSpec(launch=1.0, seed=0))
    with pytest.raises(LaunchFault) as exc:
        cf(frozen())
    assert exc.value.stage == "launch"


def test_injected_oom():
    cf = saxpy_filter()
    cf.injector = FaultInjector(FaultSpec(oom=1.0, seed=0))
    with pytest.raises(DeviceOOM) as exc:
        cf(frozen())
    assert exc.value.stage == "oom"


def test_clean_injector_changes_nothing():
    plain = saxpy_filter()
    hooked = saxpy_filter()
    hooked.injector = FaultInjector(FaultSpec(seed=0))
    xs = frozen()
    assert np.array_equal(plain(xs), hooked(xs))
    assert plain.profile.stages.total() == hooked.profile.stages.total()


# -- ResilientWorker --------------------------------------------------------


class FlakyWorker:
    """Device stand-in failing the first ``failures`` calls."""

    def __init__(self, failures, exc=None):
        self.failures = failures
        self.calls = 0
        self.exc = exc or LaunchFault("boom")

    def __call__(self, value):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return value * 2


def make_resilient(device, retry=None, threshold=3):
    profile = ExecutionProfile()
    worker = ResilientWorker(
        name="t",
        device_worker=device,
        host_factory=lambda: (lambda v: v * 2),
        retry=retry or RetryPolicy(max_retries=2),
        breaker=CircuitBreaker(threshold),
        profile=profile,
    )
    return worker, profile


def test_retry_then_success_records_ledger_and_recovery():
    device = FlakyWorker(failures=2)
    worker, profile = make_resilient(device, threshold=5)
    assert worker(21) == 42
    ledger = profile.faults
    assert ledger.total_faults == 2
    assert ledger.total_retries == 2
    assert ledger.total_fallbacks == 0
    assert ledger.tasks["t"].by_stage == {"launch": 2}
    assert profile.stages.recovery > 0
    assert profile.stages.total() == profile.stages.recovery
    assert not worker.demoted


def test_exhausted_retries_fall_back_to_host_for_the_item():
    device = FlakyWorker(failures=100)
    worker, profile = make_resilient(
        device, retry=RetryPolicy(max_retries=1), threshold=10
    )
    assert worker(5) == 10  # computed by the host fallback
    assert device.calls == 2  # initial + 1 retry
    assert profile.faults.total_fallbacks == 1
    assert not worker.demoted


def test_breaker_demotes_to_host_permanently():
    device = FlakyWorker(failures=100)
    worker, profile = make_resilient(
        device, retry=RetryPolicy(max_retries=0), threshold=2
    )
    assert worker(1) == 2  # fault 1 -> item falls back to host
    assert worker(2) == 4  # fault 2 -> breaker opens -> demotion
    calls_before = device.calls
    assert worker(3) == 6  # device never consulted again
    assert device.calls == calls_before
    assert worker.demoted
    assert profile.faults.demotions == ["t"]
    assert profile.faults.tasks["t"].demoted


def test_success_resets_the_breaker_streak():
    device = FlakyWorker(failures=1)
    worker, profile = make_resilient(
        device, retry=RetryPolicy(max_retries=2), threshold=2
    )
    assert worker(1) == 2  # one fault, then device succeeds on retry
    assert worker(2) == 4
    assert not worker.demoted
    assert worker.breaker.consecutive == 0


def test_underflow_passes_through_the_resilience_layer():
    def underflowing(value):
        raise UnderflowException()

    worker, _profile = make_resilient(underflowing)
    with pytest.raises(UnderflowException):
        worker(1)


def test_backoff_charged_per_attempt():
    device = FlakyWorker(failures=2)
    retry = RetryPolicy(max_retries=2, base_backoff_ns=1000.0, multiplier=3.0)
    worker, profile = make_resilient(device, retry=retry, threshold=10)
    worker(1)
    # Two failed attempts: backoff 1000 + 3000 (no partial stage time
    # from FlakyWorker, which raises without a partial_stages attr).
    assert profile.stages.recovery == pytest.approx(4000.0)
    assert profile.faults.time_lost_ns == pytest.approx(4000.0)


# -- engine integration ------------------------------------------------------


def test_faulted_run_produces_identical_results_and_a_ledger():
    bench = BENCHMARKS["jg-series-single"]
    clean = run_configuration(bench, "gtx580", scale=0.2)
    policy = ResiliencePolicy.from_flags(fault_rate=0.3, seed=7)
    faulted = run_configuration(bench, "gtx580", scale=0.2, resilience=policy)
    # Transparent recovery: byte-identical results.
    assert faulted.checksum == clean.checksum
    # The ledger saw the injected faults...
    assert faulted.faults["faults"] > 0
    # ...and the recovery overhead is visible in the stage totals.
    assert faulted.stages.get("recovery", 0.0) > 0
    assert faulted.total_ns > clean.total_ns
    assert clean.faults == {}
    assert "recovery" not in clean.stages


def test_faulted_runs_are_deterministic_per_seed():
    bench = BENCHMARKS["jg-series-single"]
    policy_a = ResiliencePolicy.from_flags(fault_rate=0.25, seed=11)
    policy_b = ResiliencePolicy.from_flags(fault_rate=0.25, seed=11)
    a = run_configuration(bench, "gtx580", scale=0.2, resilience=policy_a)
    b = run_configuration(bench, "gtx580", scale=0.2, resilience=policy_b)
    assert a.checksum == b.checksum
    assert a.total_ns == b.total_ns
    assert a.faults == b.faults
    assert a.stages == b.stages


def test_resilience_disabled_keeps_seed_profile_shape():
    bench = BENCHMARKS["jg-series-single"]
    result = run_configuration(bench, "gtx580", scale=0.2)
    assert set(result.stages) == {
        "java_marshal",
        "c_marshal",
        "opencl_setup",
        "transfer",
        "kernel",
        "host_compute",
    }


def test_from_flags_zero_rate_disables_resilience():
    assert ResiliencePolicy.from_flags(fault_rate=0.0, seed=1) is None


def test_policy_without_injector_still_recovers_real_faults():
    # ResiliencePolicy(injector=None): no injection, but genuine device
    # faults still retry and fall back.
    device = FlakyWorker(failures=100, exc=DeviceError("real fault"))
    policy = ResiliencePolicy(retry=RetryPolicy(max_retries=1))
    profile = ExecutionProfile()
    worker = policy.wrap("t", device, lambda: (lambda v: v + 1), profile)
    assert worker(1) == 2
    assert profile.faults.total_faults == 2


# -- exception taxonomy ------------------------------------------------------


def test_underflow_is_control_flow_not_an_error():
    assert issubclass(UnderflowException, ControlFlowSignal)
    assert not issubclass(UnderflowException, ReproError)
    assert not issubclass(UnderflowException, RuntimeFault)


def test_injected_fault_taxonomy():
    for cls, stage in (
        (TransferFault, "transfer"),
        (LaunchFault, "launch"),
        (DeviceOOM, "oom"),
    ):
        assert issubclass(cls, DeviceError)
        assert cls.stage == stage
    assert issubclass(TaskFault, RuntimeFault)


# -- failure ledger ----------------------------------------------------------


def test_ledger_report_renders_all_counters():
    ledger = FailureLedger()
    ledger.record_fault("A.f", "transfer")
    ledger.record_fault("A.f", "launch")
    ledger.record_retry("A.f")
    ledger.record_fallback("A.f")
    ledger.record_demotion("B.g")
    ledger.add_time_lost("A.f", 1234.0)
    text = ledger.report()
    assert "2 fault(s)" in text
    assert "transfer=1" in text and "launch=1" in text
    assert "DEMOTED-TO-HOST" in text
    assert "A.f" in text and "B.g" in text
    summary = ledger.summary()
    assert summary["faults"] == 2
    assert summary["demotions"] == ["B.g"]
    assert summary["per_task"]["A.f"]["time_lost_ns"] == 1234.0


def test_empty_ledger_report():
    assert "no device faults" in FailureLedger().report()
