"""Byte-stable snapshots: the report/ledger JSON must not depend on
dict insertion order.

The run journal's digest (``run_key_for``) and CI's baseline diffs
both serialize these structures; an ordering that leaks insertion
history would make bit-identical runs produce different bytes.
"""

import json

from repro.runtime.profiler import ExecutionProfile, FailureLedger
from repro.runtime.tracing import MetricsRegistry


def dump(obj):
    return json.dumps(obj, sort_keys=True)


def test_ledger_summary_is_insertion_order_independent():
    a = FailureLedger()
    a.record_fault("t1", "launch")
    a.record_fault("t2", "transfer")
    a.record_trip("t1", "bounds")
    a.record_trip("t1", "nan")

    b = FailureLedger()
    b.record_trip("t1", "nan")  # reversed discovery order
    b.record_trip("t1", "bounds")
    b.record_fault("t2", "transfer")
    b.record_fault("t1", "launch")

    assert dump(a.summary()) == dump(b.summary())


def test_summary_nested_dicts_are_sorted():
    ledger = FailureLedger()
    ledger.record_fault("t", "zeta")
    ledger.record_fault("t", "alpha")
    ledger.record_trip("t", "zeta")
    ledger.record_trip("t", "alpha")
    summary = ledger.summary()
    per_task = summary["per_task"]["t"]
    assert list(per_task["by_stage"]) == ["alpha", "zeta"]
    assert list(per_task["trips"]) == ["alpha", "zeta"]
    assert list(summary["guards.trips"]) == ["alpha", "zeta"]


def test_ledger_delta_merge_round_trips_summary_bytes():
    # A journaled delta merged into a fresh ledger must reproduce the
    # original summary byte-for-byte: this is what makes a resumed
    # run's ``faults`` block bit-exact.
    src = FailureLedger()
    before = src.snapshot_tasks()
    src.record_fault("t", "launch")
    src.record_retry("t")
    src.record_trip("t", "bounds", 2)
    src.add_time_lost("t", 123.5)
    delta = src.delta(before)

    dst = FailureLedger()
    for task, d in delta.items():
        dst.merge_task(task, d)
    assert dump(dst.summary()) == dump(src.summary())


def test_metrics_as_dict_is_sorted():
    reg = MetricsRegistry()
    reg.inc("zeta.count")
    reg.inc("alpha.count")
    assert list(reg.as_dict()) == sorted(reg.as_dict())


def test_metrics_delta_merge_round_trips():
    src = MetricsRegistry()
    before = src.snapshot()
    src.inc("recovery.failovers", 2)
    src.gauge("fleet.score.a").set(42.0)
    src.histogram("kernel.launch_ns").observe(10.0)
    delta = src.delta(before)
    assert dump(delta)  # JSON-able

    dst = MetricsRegistry()
    dst.merge_delta(delta)
    assert dump(dst.as_dict()) == dump(src.as_dict())


def test_executor_summary_is_json_stable():
    profile = ExecutionProfile()
    profile.record_cache("miss")
    profile.record_cache("disk")
    summary = profile.executor_summary()
    assert dump(summary)
    assert summary["cache.disk_hits"] == 1
    assert summary["cache.misses"] == 1
