"""Schedule-exploration harness for the fleet's command queues.

One place for the machinery the concurrency suites share
(``test_schedule_fuzz.py``, ``test_trace_invariants.py``, the
makespan bench): running one benchmark under an explicit
``FleetPolicy`` schedule, reading the journal's value bits back, and
asserting the structural trace laws. The determinism contract these
helpers check is written down in docs/CONCURRENCY.md:

- *values* are schedule-INVARIANT (bit-exact across device count,
  dispatch order, and recovered faults),
- *timing* is schedule-DETERMINISTIC (same config + seeds -> same
  cursors, metrics, journal bytes),
- a resumed run replays every queue cursor bit-exactly.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.apps.registry import BENCHMARKS
from repro.evaluation.harness import run_configuration
from repro.runtime.journal import JOURNAL_FILENAME, scan_frames
from repro.runtime.resilience import FleetPolicy, ResiliencePolicy
from repro.runtime.tracing import Tracer

# Small-but-real shapes: several stream items, offloadable filters.
SCALE = 0.2
STEPS = 4
MAX_ITEMS = 128

# The four apps the fuzz suite sweeps: two compute-heavy, two
# communication-heavy, all cheap enough for a CI matrix.
FUZZ_APPS = ("jg-series-single", "jg-crypt", "mosaic", "nbody-single")

# The full simulated catalog (repro.opencl.device.DEVICES).
ALL_DEVICES = ("gtx8800", "gtx580", "hd5970", "core-i7")


def run_workload(
    app,
    devices=None,
    schedule="concurrent",
    dispatch_seed=0,
    fault_rate=0.0,
    fault_seed=0,
    kill_devices=None,
    oom_bytes=0,
    slow_devices=None,
    slow_ramp=0,
    jitter=0.0,
    silent_rate=0.0,
    hedge="off",
    hedge_quantile=0.95,
    hedge_factor=3.0,
    hedge_min_samples=8,
    redundancy="off",
    journal=None,
    resume=False,
    traced=False,
    scale=SCALE,
    steps=STEPS,
    max_sim_items=MAX_ITEMS,
):
    """Run one benchmark under an explicit fleet schedule.

    Returns ``(RunResult, Tracer-or-None)``.
    """
    # Fresh kernel cache per run: determinism comparisons (metrics,
    # journal bytes) must not depend on what an earlier in-process run
    # happened to compile.
    from repro.opencl import kernel_cache as kc

    kc.reset_global_cache()
    policy = None
    if devices:
        policy = FleetPolicy(
            schedule=schedule,
            dispatch_seed=dispatch_seed,
            hedge=hedge,
            hedge_quantile=hedge_quantile,
            hedge_factor=hedge_factor,
            hedge_min_samples=hedge_min_samples,
            redundancy=redundancy,
        )
    resilience = ResiliencePolicy.from_flags(
        fault_rate=fault_rate,
        seed=fault_seed,
        kill_devices=dict(kill_devices or {}),
        oom_bytes=oom_bytes,
        slow_devices=dict(slow_devices or {}),
        slow_ramp=slow_ramp,
        jitter=jitter,
        silent_rate=silent_rate,
    )
    tracer = Tracer() if traced else None
    result = run_configuration(
        BENCHMARKS[app],
        "gtx580",
        scale=scale,
        steps=steps,
        max_sim_items=max_sim_items,
        devices=list(devices) if devices else None,
        fleet_policy=policy,
        resilience=resilience,
        tracer=tracer,
        journal=os.fspath(journal) if journal is not None else None,
        resume=resume,
    )
    return result, tracer


# -- journal value bits ------------------------------------------------------


def journal_items(journal_dir):
    """The journal's ``item`` records, in WAL (stream) order."""
    data = (Path(journal_dir) / JOURNAL_FILENAME).read_bytes()
    records, _valid, _torn = scan_frames(data)
    return [r for r in records if r.get("type") == "item"]


def item_value_bits(records):
    """The schedule-INVARIANT projection of journal item records: the
    bits that identify *what* was computed, with every timing and
    placement field (stages, metrics, queue timestamps, device)
    stripped. Two runs of the same workload must agree on this exactly
    whatever the schedule, device count, or dispatch permutation."""
    return [
        (
            r["key"],
            r["seq"],
            r["input_sha"],
            r["output_sha"],
            r["output_wire"],
        )
        for r in records
    ]


def metric_counts(result, prefixes=("queue.submitted.", "queue.completed.")):
    """Summed per-device counters, for conservation checks."""
    totals = {}
    for prefix in prefixes:
        totals[prefix] = sum(
            int(v)
            for k, v in result.metrics.items()
            if k.startswith(prefix)
        )
    return totals


# -- trace structural laws ---------------------------------------------------


def track_spans(events):
    """Top-level spans grouped by device track (``None`` = the main
    simulated-time track)."""
    tracks = {}
    for e in events:
        if e.kind == "span" and e.parent is None:
            tracks.setdefault(e.args.get("device"), []).append(e)
    return tracks


def assert_no_track_overlap(events):
    """No two top-level spans on the same device track may overlap: a
    command queue drains serially, whatever the cross-queue overlap."""
    for device, spans in track_spans(events).items():
        ordered = sorted(spans, key=lambda s: (s.ts_ns, s.end_ns(), s.id))
        for a, b in zip(ordered, ordered[1:]):
            assert a.end_ns() <= b.ts_ns + 1e-6, (
                "track {!r}: span {}#{} [{:.0f}, {:.0f}] overlaps "
                "{}#{} [{:.0f}, {:.0f}]".format(
                    device,
                    a.name,
                    a.id,
                    a.ts_ns,
                    a.end_ns(),
                    b.name,
                    b.id,
                    b.ts_ns,
                    b.end_ns(),
                )
            )


def assert_queue_spans_nest(events):
    """Every ``queue`` span's descendants lie within its interval, and
    its bookkeeping args are self-consistent: the span starts at the
    attempt's queue start (``submit_ns + wait_ns``)."""
    children = {}
    for e in events:
        if e.parent is not None:
            children.setdefault(e.parent, []).append(e)
    queue_spans = [
        e for e in events if e.kind == "span" and e.name == "queue"
    ]
    assert queue_spans, "trace has no queue spans"
    for q in queue_spans:
        assert q.cat == "queue"
        assert q.args.get("device") is not None
        assert abs(
            (q.args["submit_ns"] + q.args["wait_ns"]) - q.ts_ns
        ) < 1e-6, "queue span start != submit + wait"
        assert q.args["wait_ns"] >= 0.0
        stack = list(children.get(q.id, []))
        while stack:
            e = stack.pop()
            assert e.ts_ns >= q.ts_ns - 1e-6, (
                "{} starts before its queue span".format(e.name)
            )
            assert e.end_ns() <= q.end_ns() + 1e-6, (
                "{} ends after its queue span".format(e.name)
            )
            # Descendants inherit the attempt's device tag.
            assert e.args.get("device") == q.args.get("device"), (
                "{} lost its device tag inside a queue span".format(e.name)
            )
            stack.extend(children.get(e.id, []))
