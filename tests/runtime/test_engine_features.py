"""Engine feature tests: printing, instance-task state, graph shapes."""

import numpy as np
import pytest

from repro.frontend import check_program, parse_program
from repro.runtime.engine import Engine


def test_lime_print_reaches_printer():
    source = """
    class P {
        static void main() {
            Lime.print(42);
            Lime.print(1.5f);
        }
    }
    """
    checked = check_program(parse_program(source))
    seen = []
    engine = Engine(checked, printer=seen.append)
    engine.run_static("P", "main", [])
    assert seen == [42, 1.5]


def test_two_instance_tasks_have_independent_state():
    source = """
    class Gen {
        int remaining;
        int step;
        Gen(int count, int stride) { remaining = count; step = stride; }
        int next() {
            if (remaining <= 0) { throw new UnderflowException(); }
            remaining = remaining - 1;
            return remaining * step;
        }
        static int total = 0;
        static void add(int x) { total = total + x; }
        static int run() {
            total = 0;
            var a = task Gen(3, 10).next => task Gen.add;
            a.finish();
            var b = task Gen(2, 100).next => task Gen.add;
            b.finish();
            return total;
        }
    }
    """
    checked = check_program(parse_program(source))
    engine = Engine(checked)
    # First graph: 20 + 10 + 0; second: 100 + 0.
    assert engine.run_static("Gen", "run", []) == 130


def test_source_filter_sink_collects_through_stages():
    source = """
    class Pipe {
        int n;
        Pipe(int limit) { n = limit; }
        int next() {
            if (n <= 0) { throw new UnderflowException(); }
            n = n - 1;
            return n;
        }
        static local int[[]] expand(int x) {
            return Pipe.mk(x) @ Lime.iota(4);
        }
        static local int mk(int i, int x) { return x * 10 + i; }
        static int acc = 0;
        static void sum(int[[]] xs) {
            acc = acc + (+! xs);
        }
        static int run(int limit) {
            acc = 0;
            var g = task Pipe(limit).next => task Pipe.expand => task Pipe.sum;
            g.finish();
            return acc;
        }
    }
    """
    checked = check_program(parse_program(source))
    engine = Engine(checked)
    # limit=2: x values 1, 0 -> rows [10,11,12,13] and [0,1,2,3].
    assert engine.run_static("Pipe", "run", [2]) == 10 + 11 + 12 + 13 + 0 + 1 + 2 + 3


def test_scalar_stream_through_offload():
    from repro.compiler import Offloader
    from repro.opencl import get_device

    source = """
    class S {
        int n;
        S(int count) { n = count; }
        int next() {
            if (n <= 0) { throw new UnderflowException(); }
            n = n - 1;
            return n + 4;
        }
        static local float[[]] roots(int k) {
            return S.root @ Lime.iota(k);
        }
        static local float root(int i) { return Math.sqrt((float) i); }
        static float total = 0.0f;
        static void sum(float[[]] xs) { total = total + (+! xs); }
        static float run(int count) {
            total = 0.0f;
            var g = task S(count).next => task S.roots => task S.sum;
            g.finish();
            return total;
        }
    }
    """
    checked = check_program(parse_program(source))
    host = Engine(checked)
    expected = host.run_static("S", "run", [2])
    offloader = Offloader(device=get_device("gtx580"), local_size=8)
    gpu = Engine(checked, offloader=offloader)
    result = gpu.run_static("S", "run", [2])
    assert offloader.rejections == []
    assert result == pytest.approx(expected, rel=1e-5)
