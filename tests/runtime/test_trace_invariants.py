"""Structural laws of concurrent fleet traces.

A fleet trace is only trustworthy if it obeys three invariants
whatever the dispatch schedule, fault injection, or resume path:

- no two spans on the same device track overlap (a command queue
  drains serially);
- every ``queue`` span brackets exactly its attempt — submit + wait =
  start, and the attempt's stage charges nest inside with the
  device tag intact;
- coverage stays 100%: every simulated nanosecond is on some track,
  including after a warm restart replays journaled cursors.
"""

import pytest

from repro.runtime.tracing import (
    SimClock,
    Tracer,
    diff_traces,
    read_trace,
)
from tests.runtime.schedutil import (
    ALL_DEVICES,
    assert_no_track_overlap,
    assert_queue_spans_nest,
    run_workload,
    track_spans,
)


def _tracks_overlap(events):
    """True if any two top-level spans on *different* device tracks
    overlap in simulated time — the signature of real concurrency."""
    tracks = {
        dev: spans
        for dev, spans in track_spans(events).items()
        if dev is not None
    }
    devs = sorted(tracks)
    for i, a_dev in enumerate(devs):
        for b_dev in devs[i + 1:]:
            for a in tracks[a_dev]:
                for b in tracks[b_dev]:
                    if (
                        a.ts_ns < b.end_ns() - 1e-6
                        and b.ts_ns < a.end_ns() - 1e-6
                    ):
                        return True
    return False


def test_concurrent_trace_obeys_track_laws():
    result, tracer = run_workload(
        "jg-series-single", devices=list(ALL_DEVICES), traced=True
    )
    assert_no_track_overlap(tracer.events)
    assert_queue_spans_nest(tracer.events)
    assert tracer.coverage(result.total_ns) == pytest.approx(1.0)
    # The whole point: device tracks genuinely overlap.
    assert _tracks_overlap(tracer.events)
    # And the makespan really is shorter than the serialized total.
    assert result.makespan_ns < result.total_ns


def test_sequential_trace_obeys_track_laws_without_overlap():
    result, tracer = run_workload(
        "jg-series-single",
        devices=list(ALL_DEVICES),
        schedule="sequential",
        traced=True,
    )
    assert_no_track_overlap(tracer.events)
    assert_queue_spans_nest(tracer.events)
    assert tracer.coverage(result.total_ns) == pytest.approx(1.0)
    # One item in flight fleet-wide: nothing overlaps, ever.
    assert not _tracks_overlap(tracer.events)
    assert result.makespan_ns == pytest.approx(result.total_ns)


def test_failover_trace_stays_lawful():
    """A killed device re-enqueues mid-item; the failed attempt stays
    on the dead device's track, the retry lands on the survivor's, and
    every law still holds."""
    result, tracer = run_workload(
        "jg-series-single",
        devices=["gtx580", "hd5970"],
        kill_devices={"gtx580": 1},
        traced=True,
    )
    assert_no_track_overlap(tracer.events)
    assert_queue_spans_nest(tracer.events)
    assert tracer.coverage(result.total_ns) == pytest.approx(1.0)
    failovers = [
        e
        for e in tracer.events
        if e.kind == "instant" and e.name == "failover"
    ]
    assert failovers
    for ev in failovers:
        assert ev.args["device"] == "gtx580"
        assert ev.args["to"] == "hd5970"
    # Failed attempts are queue spans too, on the failed device's
    # track, so the lost time is visible where it was lost.
    queue_devices = {
        e.args["device"]
        for e in tracer.events
        if e.kind == "span" and e.name == "queue"
    }
    assert queue_devices == {"gtx580", "hd5970"}


def test_resumed_trace_keeps_full_coverage_and_cursors(tmp_path):
    """A warm restart must replay every queue cursor bit-exactly and
    keep the trace complete: journal_replay charges land on the
    per-device tracks at the recorded attempt timestamps."""
    jdir = tmp_path / "wal"
    cold, _ = run_workload(
        "jg-series-single", devices=list(ALL_DEVICES), journal=jdir
    )
    warm, tracer = run_workload(
        "jg-series-single",
        devices=list(ALL_DEVICES),
        journal=jdir,
        resume=True,
        traced=True,
    )
    assert warm.journal["items_skipped"] > 0
    assert warm.checksum == cold.checksum
    assert warm.total_ns == pytest.approx(cold.total_ns)
    # The tentpole acceptance: resumed cursors == cold cursors.
    assert warm.queues == cold.queues
    assert warm.makespan_ns == pytest.approx(cold.makespan_ns)
    assert warm.fleet == cold.fleet
    assert tracer.coverage(warm.total_ns) == pytest.approx(1.0)
    assert_no_track_overlap(tracer.events)
    # Replay charges carry the device tag of the queue they restore.
    replay_devs = {
        e.args.get("device")
        for e in tracer.events
        if e.name == "journal_replay"
    }
    assert replay_devs - {None}


def test_coverage_unions_per_track():
    """Two overlapping tracks each count in full; overlap within one
    track is merged, not double-counted."""
    tracer = Tracer(wallclock=lambda: 0)
    a, b = SimClock(), SimClock()
    with tracer.queue_context(a, "devA"):
        tracer.charge("kernel", 100.0, cat="stage")
    with tracer.queue_context(b, "devB"):
        tracer.charge("kernel", 100.0, cat="stage")
    # Both tracks span [0, 100): the union per track sums to 200.
    assert tracer.coverage(200.0) == pytest.approx(1.0)
    # A second charge on track A continues from its cursor.
    with tracer.queue_context(a, "devA"):
        tracer.charge("kernel", 50.0, cat="stage")
    assert tracer.coverage(250.0) == pytest.approx(1.0)


def test_trace_diff_device_section_sorted_over_union(tmp_path):
    """The per-device diff section lists the union of both traces'
    devices in sorted order — regression for the nondeterministic
    dict-order rendering."""
    tracer_a = Tracer(wallclock=lambda: 0)
    with tracer_a.queue_context(SimClock(), "gtx580"):
        tracer_a.charge("kernel", 100.0, cat="stage")
    with tracer_a.queue_context(SimClock(), "core-i7"):
        tracer_a.charge("kernel", 30.0, cat="stage")
    tracer_b = Tracer(wallclock=lambda: 0)
    with tracer_b.queue_context(SimClock(), "hd5970"):
        tracer_b.charge("kernel", 70.0, cat="stage")
    with tracer_b.queue_context(SimClock(), "gtx580"):
        tracer_b.charge("kernel", 120.0, cat="stage")
    tracer_a.write_jsonl(tmp_path / "a.jsonl")
    tracer_b.write_jsonl(tmp_path / "b.jsonl")
    text = diff_traces(
        read_trace(tmp_path / "a.jsonl"),
        read_trace(tmp_path / "b.jsonl"),
        label_a="a",
        label_b="b",
    )
    assert "per-device self simulated ns:" in text
    section = text.split("per-device self simulated ns:", 1)[1]
    listed = [
        line.split()[1]
        for line in section.splitlines()
        if line.strip().startswith("device ")
    ]
    assert listed == sorted(["core-i7", "gtx580", "hd5970"])


def test_single_device_diff_has_no_device_section(tmp_path):
    tracer_a = Tracer(wallclock=lambda: 0)
    tracer_a.charge("kernel", 100.0, cat="stage")
    tracer_b = Tracer(wallclock=lambda: 0)
    tracer_b.charge("kernel", 130.0, cat="stage")
    tracer_a.write_jsonl(tmp_path / "a.jsonl")
    tracer_b.write_jsonl(tmp_path / "b.jsonl")
    text = diff_traces(
        read_trace(tmp_path / "a.jsonl"),
        read_trace(tmp_path / "b.jsonl"),
    )
    assert "per-device" not in text
