"""Latency (straggler) fault model: seedable slow-device factors,
degradation ramps, and per-device jitter.

Unlike every other injected fault, a straggler raises nothing — the
launch simply takes longer. The contract tested here is that the
extra time is deterministic per seed, isolated per device (slowing
one device must not perturb the shared fault-draw stream the others
consume), and visible to the normal accounting path (the glue adds it
to ``stages.kernel`` *before* the histogram/health observations).
"""

import numpy as np

from repro.compiler.pipeline import compile_filter
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.resilience import (
    FaultInjector,
    FaultSpec,
    ResiliencePolicy,
)

from tests.conftest import SAXPY_SOURCE


def saxpy_filter(**kwargs):
    checked = check_program(parse_program(SAXPY_SOURCE))
    return compile_filter(
        checked,
        checked.lookup_method("Saxpy", "apply"),
        device=get_device("gtx580"),
        local_size=8,
        **kwargs,
    )


def frozen(n=8):
    xs = np.arange(n, dtype=np.float32)
    xs.setflags(write=False)
    return xs


def slow_injector(factor, after=0, ramp=0, jitter=0.0, seed=0,
                  device="gtx580"):
    base = FaultSpec(seed=seed, jitter=jitter)
    slow = FaultSpec(
        seed=seed, jitter=jitter, slow=factor, slow_after=after,
        slow_ramp=ramp,
    )
    return FaultInjector(base, device_specs={device: slow})


# -- FaultSpec surface -------------------------------------------------------


def test_latency_spec_enables_injection():
    assert not FaultSpec().enabled()
    assert FaultSpec(slow=4.0).enabled()
    assert FaultSpec(jitter=0.1).enabled()


def test_from_flags_builds_latency_injector():
    policy = ResiliencePolicy.from_flags(
        slow_devices={"gtx580": (10.0, 2)}, slow_ramp=4, jitter=0.05
    )
    inj = policy.injector
    spec = inj._spec_for("gtx580")
    assert (spec.slow, spec.slow_after, spec.slow_ramp) == (10.0, 2, 4)
    assert spec.jitter == 0.05
    # Other devices keep the base (jitter-only) spec.
    assert inj._spec_for("hd5970").slow == 1.0
    assert inj._spec_for("hd5970").jitter == 0.05


def test_from_flags_all_knobs_off_is_none():
    assert ResiliencePolicy.from_flags() is None
    assert ResiliencePolicy.from_flags(slow_devices={}, jitter=0.0) is None


# -- launch_latency_ns -------------------------------------------------------


def test_slow_factor_scales_kernel_time():
    inj = slow_injector(4.0)
    assert inj.launch_latency_ns(1000.0, device="gtx580") == 3000.0
    assert inj.launch_latency_ns(1000.0, device="hd5970") == 0.0
    assert inj.injected["latency"] == 1


def test_slow_after_delays_the_degradation():
    inj = slow_injector(3.0, after=2)
    extras = [inj.launch_latency_ns(100.0, device="gtx580")
              for _ in range(4)]
    assert extras == [0.0, 0.0, 200.0, 200.0]
    assert inj.injected["latency"] == 2


def test_ramp_degrades_linearly_then_saturates():
    inj = slow_injector(5.0, ramp=4)
    extras = [inj.launch_latency_ns(100.0, device="gtx580")
              for _ in range(6)]
    assert extras == [100.0, 200.0, 300.0, 400.0, 400.0, 400.0]


def test_jitter_is_deterministic_per_seed_and_bounded():
    def draws(seed):
        inj = FaultInjector(FaultSpec(seed=seed, jitter=0.25))
        return [inj.launch_latency_ns(1000.0, device="gtx580")
                for _ in range(16)]

    a, b = draws(7), draws(7)
    assert a == b
    assert draws(7) != draws(8)
    assert all(0.0 <= x <= 250.0 for x in a)
    assert any(x > 0.0 for x in a)


def test_jitter_streams_are_independent_per_device():
    inj = FaultInjector(FaultSpec(seed=3, jitter=0.5))
    a = [inj.launch_latency_ns(1000.0, device="gtx580") for _ in range(8)]
    # A second injector interleaving another device's draws must not
    # change the first device's stream.
    inj2 = FaultInjector(FaultSpec(seed=3, jitter=0.5))
    b = []
    for _ in range(8):
        b.append(inj2.launch_latency_ns(1000.0, device="gtx580"))
        inj2.launch_latency_ns(1000.0, device="hd5970")
    assert a == b


def test_latency_does_not_consume_the_shared_fault_stream():
    """Slowing a device must not reorder transfer/launch/oom draws."""
    def decisions(with_latency):
        spec = FaultSpec(launch=0.5, seed=11)
        inj = FaultInjector(
            spec,
            device_specs=(
                {"gtx580": FaultSpec(launch=0.5, seed=11, slow=8.0)}
                if with_latency else None
            ),
        )
        out = []
        for _ in range(32):
            inj.launch_latency_ns(100.0, device="gtx580")
            try:
                inj.maybe_fail_launch("k", device="gtx580")
                out.append(0)
            except Exception:
                out.append(1)
        return out

    assert decisions(False) == decisions(True)


# -- glue integration --------------------------------------------------------


def test_slow_device_inflates_kernel_stage():
    # A single-device filter has device_key=None, so the straggler
    # lives in the injector's *base* spec here; fleet runs use the
    # per-device override (test_from_flags_builds_latency_injector).
    base = saxpy_filter()
    base(frozen())
    clean_kernel = base.profile.stages.kernel

    slow = saxpy_filter()
    slow.injector = FaultInjector(FaultSpec(slow=4.0))
    slow(frozen())
    assert slow.profile.stages.kernel == 4.0 * clean_kernel
    assert slow.injector.injected["latency"] >= 1


def test_slow_launches_feed_the_launch_histogram():
    slow = saxpy_filter()
    slow.injector = FaultInjector(FaultSpec(slow=10.0))
    slow(frozen())
    hist = slow.profile.metrics.get("kernel.launch_ns")
    clean = saxpy_filter()
    clean(frozen())
    clean_hist = clean.profile.metrics.get("kernel.launch_ns")
    assert hist["max"] == 10.0 * clean_hist["max"]


def test_latency_faults_keep_results_bit_exact():
    clean = saxpy_filter()
    slow = saxpy_filter()
    slow.injector = FaultInjector(FaultSpec(slow=7.0, jitter=0.3, seed=5))
    np.testing.assert_array_equal(clean(frozen()), slow(frozen()))
