"""Journal concurrency guard (ISSUE 7 satellite).

Two writers on one journal directory would interleave CRC frames and
corrupt the WAL. ``RunJournal.open`` therefore takes an exclusive
lockfile (O_CREAT|O_EXCL, pid inside) and raises the typed
:class:`JournalLockedError` while the holder is alive — but a lock
left by a SIGKILLed process (dead pid) is detected as stale and broken
so crash recovery never wedges on its own leftovers.
"""

import os
import subprocess

import pytest

from repro.runtime.journal import (
    LOCK_FILENAME,
    JournalLockedError,
    RunJournal,
)

DESC = {"benchmark": "x", "scale": 1.0}


def test_open_takes_and_close_releases_the_lock(tmp_path):
    journal = RunJournal.open(str(tmp_path), DESC)
    lock = tmp_path / LOCK_FILENAME
    assert lock.exists()
    assert int(lock.read_text().strip()) == os.getpid()
    journal.close()
    assert not lock.exists()


def test_second_open_raises_typed_error_while_held(tmp_path):
    journal = RunJournal.open(str(tmp_path), DESC)
    try:
        with pytest.raises(JournalLockedError) as exc:
            RunJournal.open(str(tmp_path), DESC, resume=True)
        assert str(os.getpid()) in str(exc.value)
    finally:
        journal.close()
    # Released: a resume can now open it.
    journal2 = RunJournal.open(str(tmp_path), DESC, resume=True)
    journal2.close()


def test_stale_lock_from_dead_pid_is_broken(tmp_path):
    proc = subprocess.Popen(["true"])
    proc.wait()
    (tmp_path / LOCK_FILENAME).write_text("{}\n".format(proc.pid))
    journal = RunJournal.open(str(tmp_path), DESC)
    try:
        assert journal.stale_locks_broken == 1
        assert journal.stats()["stale_locks_broken"] == 1
    finally:
        journal.close()


def test_garbage_lock_content_is_treated_as_stale(tmp_path):
    (tmp_path / LOCK_FILENAME).write_text("not-a-pid\n")
    journal = RunJournal.open(str(tmp_path), DESC)
    try:
        assert journal.stale_locks_broken == 1
    finally:
        journal.close()


def test_lock_released_even_when_open_fails(tmp_path):
    journal = RunJournal.open(str(tmp_path), DESC)
    journal.record_complete(1.0)
    journal.close()
    # A resume against a *different* descriptor is refused — but the
    # failed open must not leave the lockfile behind.
    with pytest.raises(Exception):
        RunJournal.open(str(tmp_path), {"benchmark": "y"}, resume=True)
    assert not (tmp_path / LOCK_FILENAME).exists()
    journal2 = RunJournal.open(str(tmp_path), DESC, resume=True)
    journal2.close()
