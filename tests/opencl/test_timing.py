"""Timing-model tests: each modeled effect pinned individually."""

import numpy as np
import pytest

from repro.backend.kernel_ir import Space
from repro.opencl.device import CORE_I7, GTX580, GTX8800, HD5970
from repro.opencl.executor import LaunchTrace, SiteTrace
from repro.opencl.timing import analyze_site, time_launch


def make_site(space, accesses, elem_bytes=4, width=1, is_store=False):
    site = SiteTrace(space, elem_bytes, width, is_store)
    for lane, idx in accesses:
        site.lanes.append(lane)
        site.indices.append(idx)
    return site


def test_coalesced_dense_access_on_strict_device():
    # 32 lanes, one float each, consecutive: dense -> few transactions.
    site = make_site(Space.GLOBAL, [(lane, lane) for lane in range(32)])
    stats = analyze_site(site, GTX8800, local_size=32)
    # 32 floats = 128 bytes = 2 x 64B segments.
    assert stats.transactions == 2


def test_broadcast_serializes_on_strict_device():
    site = make_site(Space.GLOBAL, [(lane, 7) for lane in range(32)])
    stats = analyze_site(site, GTX8800, local_size=32)
    assert stats.transactions == 32  # one per lane: the 10x penalty


def test_broadcast_cheap_on_cached_device():
    site = make_site(Space.GLOBAL, [(lane, 7) for lane in range(32)])
    stats = analyze_site(site, GTX580, local_size=32)
    assert stats.transactions == 1


def test_strided_access_serializes_on_strict_device():
    site = make_site(Space.GLOBAL, [(lane, lane * 64) for lane in range(32)])
    stats = analyze_site(site, GTX8800, local_size=32)
    assert stats.transactions == 32


def test_local_broadcast_costs_one_cycle_per_event():
    site = make_site(Space.LOCAL, [(lane, 5) for lane in range(32)])
    stats = analyze_site(site, GTX8800, local_size=32)
    assert stats.conflict_cycles == 1


def test_local_bank_conflicts_detected():
    # Stride 16 on 16 banks: every lane hits bank 0.
    site = make_site(Space.LOCAL, [(lane, lane * 16) for lane in range(16)])
    stats = analyze_site(site, GTX8800, local_size=32)
    assert stats.conflict_cycles == 16


def test_local_padding_removes_conflicts():
    # Stride 17 on 16 banks: all lanes hit distinct banks.
    site = make_site(Space.LOCAL, [(lane, lane * 17) for lane in range(16)])
    stats = analyze_site(site, GTX8800, local_size=32)
    assert stats.conflict_cycles == 1


def test_constant_broadcast_is_one_word():
    site = make_site(Space.CONSTANT, [(lane, 3) for lane in range(32)])
    stats = analyze_site(site, GTX8800, local_size=32)
    assert stats.serial_words == 1


def test_constant_divergent_reads_serialize():
    site = make_site(Space.CONSTANT, [(lane, lane) for lane in range(32)])
    stats = analyze_site(site, GTX8800, local_size=32)
    assert stats.serial_words == 32


def test_sequence_numbers_group_separate_iterations():
    # Each lane accesses twice: iteration 0 at its own index (dense),
    # iteration 1 all at index 0 (broadcast). Two events.
    accesses = [(lane, lane) for lane in range(16)] + [(lane, 0) for lane in range(16)]
    site = make_site(Space.GLOBAL, accesses)
    stats = analyze_site(site, GTX8800, local_size=16)
    assert stats.events == 2
    assert stats.transactions == 1 + 16


def make_trace(op_cycles=None, sites=None, global_size=64, local_size=64):
    trace = LaunchTrace("k", global_size, local_size)
    if op_cycles:
        trace.op_cycles.update(op_cycles)
    trace.sites = sites or {}
    return trace


def test_compute_bound_kernel_time():
    trace = make_trace({"fp": 1_000_000})
    timing = time_launch(trace, GTX580)
    assert timing.compute_ns > 0
    assert timing.kernel_ns == pytest.approx(
        timing.compute_ns + GTX580.launch_overhead_ns
    )


def test_double_precision_ratio():
    single = time_launch(make_trace({"fp": 10 ** 6}), GTX580).compute_ns
    double = time_launch(make_trace({"dp": 10 ** 6}), GTX580).compute_ns
    assert double / single == pytest.approx(GTX580.dp_throughput_ratio)


def test_double_penalty_larger_on_gtx580_than_hd5970():
    """Paper: doubles 2-3x slower on GTX580, ~1.5x on HD5970."""
    assert GTX580.dp_throughput_ratio > HD5970.dp_throughput_ratio


def test_transcendentals_cheap_on_gpu():
    fp = time_launch(make_trace({"fp": 10 ** 6}), GTX580).compute_ns
    trans = time_launch(make_trace({"trans_f": 10 ** 6}), GTX580).compute_ns
    assert trans == pytest.approx(fp * GTX580.transcendental_cycles)


def test_memory_bound_kernel_uses_roofline():
    site = make_site(
        Space.GLOBAL, [(lane, lane * 1000) for lane in range(64)]
    )
    trace = make_trace({"fp": 10}, {0: site})
    timing = time_launch(trace, GTX8800)
    assert timing.memory_ns > timing.compute_ns
    assert timing.kernel_ns == pytest.approx(
        timing.memory_ns + GTX8800.launch_overhead_ns
    )


def test_launch_overhead_always_charged():
    timing = time_launch(make_trace(), GTX580)
    assert timing.kernel_ns == GTX580.launch_overhead_ns


def test_cpu_device_slower_per_lane_than_gpu():
    trace = make_trace({"fp": 10 ** 6})
    cpu = time_launch(trace, CORE_I7).compute_ns
    gpu = time_launch(trace, GTX580).compute_ns
    assert cpu > gpu


def test_core_scaling_is_linear_in_model():
    trace = make_trace({"fp": 10 ** 6})
    one = time_launch(trace, CORE_I7.with_cores(1)).compute_ns
    six = time_launch(trace, CORE_I7.with_cores(6)).compute_ns
    assert one / six == pytest.approx(6.0)
