"""Device catalog tests: the Table 2 parameters."""

import pytest

from repro.opencl.device import CORE_I7, DEVICES, GTX580, GTX8800, HD5970, get_device


def test_catalog_contents():
    assert set(DEVICES) == {"gtx8800", "gtx580", "hd5970", "core-i7"}


def test_lookup_case_insensitive():
    assert get_device("GTX580") is GTX580


def test_unknown_device():
    with pytest.raises(KeyError):
        get_device("rtx4090")


def test_table2_gtx8800():
    assert GTX8800.compute_units == 16
    assert GTX8800.fp_units_per_unit == 8
    assert GTX8800.constant_memory_bytes == 64 * 1024
    assert GTX8800.local_memory_bytes == 16 * 1024
    assert not GTX8800.has_l1_cache


def test_table2_gtx580():
    assert GTX580.compute_units == 16
    assert GTX580.fp_units_per_unit == 32
    assert GTX580.local_memory_bytes == 48 * 1024
    assert GTX580.has_l1_cache
    assert GTX580.l2_cache_bytes == 768 * 1024


def test_table2_hd5970():
    assert HD5970.compute_units == 20
    assert HD5970.fp_units_per_unit == 80
    assert HD5970.local_memory_bytes == 32 * 1024


def test_table2_core_i7():
    assert CORE_I7.compute_units == 6
    assert CORE_I7.fp_units_per_unit == 4
    assert CORE_I7.smt_threads == 2
    assert CORE_I7.l2_cache_bytes == 12 * 1024 * 1024  # the paper's L3


def test_with_cores():
    one = CORE_I7.with_cores(1)
    assert one.compute_units == 1
    assert one.clock_ghz == CORE_I7.clock_ghz
    assert CORE_I7.compute_units == 6  # original untouched


def test_bank_counts_match_generations():
    assert GTX8800.local_memory_banks == 16
    assert GTX580.local_memory_banks == 32


def test_warp_widths():
    assert GTX8800.warp_width == 32
    assert HD5970.warp_width == 64  # AMD wavefront


def test_peak_flops_ordering():
    assert HD5970.peak_flops > GTX580.peak_flops > GTX8800.peak_flops
