"""Executor tests: NDRange semantics, barriers, traces."""

import numpy as np
import pytest

from repro.backend import kernel_ir as K
from repro.errors import DeviceError
from repro.opencl.executor import compile_kernel

I, F = K.K_INT, K.K_FLOAT


def saxpy_kernel():
    gid = K.KCall("get_global_id", [], I)
    gsz = K.KCall("get_global_size", [], I)
    i = K.KVar("i", I)
    body = [
        K.KFor(
            "i",
            gid,
            K.KVar("n", I),
            gsz,
            [
                K.KStore(
                    "out",
                    i,
                    K.KBin(
                        "+",
                        K.KBin("*", K.KVar("a", F), K.KLoad("x", i, K.Space.GLOBAL, F), F),
                        K.KLoad("y", i, K.Space.GLOBAL, F),
                        F,
                    ),
                    K.Space.GLOBAL,
                    F,
                )
            ],
        )
    ]
    return K.Kernel(
        name="saxpy",
        params=[
            K.KParam("x", F, K.Space.GLOBAL, is_pointer=True, read_only=True),
            K.KParam("y", F, K.Space.GLOBAL, is_pointer=True, read_only=True),
            K.KParam("out", F, K.Space.GLOBAL, is_pointer=True),
            K.KParam("a", F),
            K.KParam("n", I),
        ],
        arrays=[],
        body=body,
    )


def test_saxpy_computes():
    ck = compile_kernel(saxpy_kernel())
    x = np.arange(10, dtype=np.float32)
    y = np.ones(10, dtype=np.float32)
    out = np.zeros(10, dtype=np.float32)
    ck.launch({"x": x, "y": y, "out": out}, {"a": 3.0, "n": 10}, 8, 4)
    assert np.allclose(out, 3.0 * x + 1.0)


def test_robust_loop_covers_any_ndrange():
    """Figure 4's claim: correct independent of the thread count."""
    ck = compile_kernel(saxpy_kernel())
    x = np.arange(13, dtype=np.float32)
    y = np.zeros(13, dtype=np.float32)
    for global_size, local in [(4, 2), (16, 16), (8, 8)]:
        out = np.zeros(13, dtype=np.float32)
        ck.launch({"x": x, "y": y, "out": out}, {"a": 1.0, "n": 13}, global_size, local)
        assert np.allclose(out, x), (global_size, local)


def test_trace_counts_ops_and_sites():
    ck = compile_kernel(saxpy_kernel())
    x = np.zeros(6, dtype=np.float32)
    out = np.zeros(6, dtype=np.float32)
    trace = ck.launch({"x": x, "y": x, "out": out}, {"a": 1.0, "n": 6}, 6, 2)
    assert trace.op_cycles["fp"] == 12  # mul + add per element
    sites = list(trace.sites.values())
    assert len(sites) == 3
    assert all(s.accesses == 6 for s in sites)


def test_missing_buffer_raises():
    ck = compile_kernel(saxpy_kernel())
    with pytest.raises(DeviceError):
        ck.launch({"x": np.zeros(1, np.float32)}, {"a": 1.0, "n": 1}, 2, 2)


def test_bad_ndrange_raises():
    ck = compile_kernel(saxpy_kernel())
    buffers = {
        "x": np.zeros(4, np.float32),
        "y": np.zeros(4, np.float32),
        "out": np.zeros(4, np.float32),
    }
    with pytest.raises(DeviceError):
        ck.launch(buffers, {"a": 1.0, "n": 4}, 6, 4)  # 6 % 4 != 0


def barrier_kernel():
    """Each item writes its lid into local memory; after the barrier it
    reads its neighbor's slot — fails without correct barrier phasing."""
    lid = K.KCall("get_local_id", [], I)
    lsz = K.KCall("get_local_size", [], I)
    gid = K.KCall("get_global_id", [], I)
    neighbor = K.KBin(
        "%", K.KBin("+", lid, K.KConst(1, I), I), lsz, I
    )
    body = [
        K.KDecl("lid", I, lid),
        K.KStore("scratch", K.KVar("lid", I), K.KVar("lid", I), K.Space.LOCAL, I),
        K.KBarrier(),
        K.KStore(
            "out",
            gid,
            K.KLoad("scratch", neighbor, K.Space.LOCAL, I),
            K.Space.GLOBAL,
            I,
        ),
    ]
    return K.Kernel(
        name="nb",
        params=[K.KParam("out", I, K.Space.GLOBAL, is_pointer=True)],
        arrays=[K.KLocalArray("scratch", I, -1, K.Space.LOCAL, row=1)],
        body=body,
    )


def test_barrier_synchronizes_work_group():
    ck = compile_kernel(barrier_kernel())
    out = np.zeros(8, dtype=np.int32)
    trace = ck.launch({"out": out}, {}, 8, 4)
    assert list(out) == [1, 2, 3, 0, 1, 2, 3, 0]
    assert trace.barriers >= 1


def test_local_memory_isolated_between_groups():
    ck = compile_kernel(barrier_kernel())
    out = np.zeros(8, dtype=np.int32)
    ck.launch({"out": out}, {}, 8, 2)
    assert list(out) == [1, 0, 1, 0, 1, 0, 1, 0]


def test_int_wrapping_in_kernel():
    body = [
        K.KStore(
            "out",
            K.KConst(0, I),
            K.KBin("*", K.KConst(65536, I), K.KConst(65536, I), I),
            K.Space.GLOBAL,
            I,
        )
    ]
    kernel = K.Kernel(
        "wrap", [K.KParam("out", I, K.Space.GLOBAL, is_pointer=True)], [], body
    )
    out = np.zeros(1, dtype=np.int32)
    compile_kernel(kernel).launch({"out": out}, {}, 1, 1)
    assert out[0] == 0  # 2^32 wraps to 0


def test_long_arithmetic_not_truncated():
    L = K.K_LONG
    body = [
        K.KStore(
            "out",
            K.KConst(0, I),
            K.KBin("%", K.KBin("*", K.KVar("a", L), K.KVar("a", L), L), K.KConst(65537, L), L),
            K.Space.GLOBAL,
            L,
        )
    ]
    kernel = K.Kernel(
        "lmul",
        [K.KParam("out", L, K.Space.GLOBAL, is_pointer=True), K.KParam("a", L)],
        [],
        body,
    )
    out = np.zeros(1, dtype=np.int64)
    compile_kernel(kernel).launch({"out": out}, {"a": 65536}, 1, 1)
    assert out[0] == (65536 * 65536) % 65537


def test_vector_load_store():
    vec = K.KVector(F, 4)
    gid = K.KCall("get_global_id", [], I)
    body = [
        K.KDecl("v", vec, K.KLoad("x", gid, K.Space.GLOBAL, vec)),
        K.KStore(
            "out",
            gid,
            K.KVecExtract(K.KVar("v", vec), 3, F),
            K.Space.GLOBAL,
            F,
        ),
    ]
    kernel = K.Kernel(
        "v4",
        [
            K.KParam("x", F, K.Space.GLOBAL, is_pointer=True, read_only=True),
            K.KParam("out", F, K.Space.GLOBAL, is_pointer=True),
        ],
        [],
        body,
    )
    x = np.arange(8, dtype=np.float32)
    out = np.zeros(2, dtype=np.float32)
    compile_kernel(kernel).launch({"x": x, "out": out}, {}, 2, 2)
    assert list(out) == [3.0, 7.0]


def test_float_stores_round_to_float32():
    body = [
        K.KStore(
            "out", K.KConst(0, I), K.KConst(0.1, K.K_DOUBLE), K.Space.GLOBAL, F
        )
    ]
    kernel = K.Kernel(
        "rnd", [K.KParam("out", F, K.Space.GLOBAL, is_pointer=True)], [], body
    )
    out = np.zeros(1, dtype=np.float32)
    compile_kernel(kernel).launch({"out": out}, {}, 1, 1)
    assert out[0] == np.float32(0.1)
