"""OpenCL-C frontend tests: parsing, translation, execution."""

import numpy as np
import pytest

from repro.backend import kernel_ir as K
from repro.errors import CompileError, ParseError
from repro.opencl.clc import compile_opencl_source
from repro.opencl.clc.parser import parse_kernels, preprocess
from repro.opencl.executor import compile_kernel


def run_kernel(source, name, buffers, scalars, global_size, local_size):
    kernels = compile_opencl_source(source)
    return compile_kernel(kernels[name]).launch(
        buffers, scalars, global_size, local_size
    )


def test_preprocess_define_substitution():
    text = preprocess("#define TILE 64\nint x = TILE;")
    assert "64" in text and "TILE" not in text


def test_preprocess_drops_sampler_lines():
    text = preprocess("const sampler_t smp = CLK_FOO | CLK_BAR;\nint x;")
    assert "sampler_t" not in text


def test_parse_kernel_signature():
    kernels = parse_kernels(
        "__kernel void f(__global const float* x, __local int* t, int n) {}"
    )
    params = kernels[0].params
    assert [p.space for p in params] == ["global", "local", "private"]
    assert params[0].is_const
    assert params[0].is_pointer and not params[2].is_pointer


def test_parse_rejects_non_kernel():
    with pytest.raises(ParseError):
        parse_kernels("void helper() {}")


def test_constant_array_size_expression():
    kernels = compile_opencl_source(
        "__kernel void f(__global float* o) { __local float t[16 * 4]; }"
    )
    arr = kernels["f"].arrays[0]
    assert arr.size == 64
    assert arr.space is K.Space.LOCAL


def test_simple_kernel_executes():
    source = """
    __kernel void double_it(__global const float* x, __global float* y, int n) {
        int i = get_global_id(0);
        if (i < n) { y[i] = x[i] * 2.0f; }
    }
    """
    x = np.arange(6, dtype=np.float32)
    y = np.zeros(6, dtype=np.float32)
    run_kernel(source, "double_it", {"x": x, "y": y}, {"n": 6}, 8, 4)
    assert np.allclose(y, x * 2)


def test_vload_vstore_and_members():
    source = """
    __kernel void swizzle(__global const float* x, __global float* y) {
        int i = get_global_id(0);
        float4 v = vload4(i, x);
        y[i] = v.x + v.w + v.s1;
    }
    """
    x = np.arange(8, dtype=np.float32)
    y = np.zeros(2, dtype=np.float32)
    run_kernel(source, "swizzle", {"x": x, "y": y}, {}, 2, 2)
    assert list(y) == [0 + 3 + 1, 4 + 7 + 5]


def test_for_loop_and_compound_assign():
    source = """
    __kernel void sum(__global const float* x, __global float* y, int n) {
        int gid = get_global_id(0);
        float acc = 0.0f;
        for (int j = 0; j < n; j++) { acc += x[j]; }
        y[gid] = acc;
    }
    """
    x = np.arange(5, dtype=np.float32)
    y = np.zeros(2, dtype=np.float32)
    run_kernel(source, "sum", {"x": x, "y": y}, {"n": 5}, 2, 2)
    assert np.allclose(y, [10.0, 10.0])


def test_native_math_functions():
    source = """
    __kernel void m(__global float* y) {
        y[get_global_id(0)] = native_exp(0.0f) + native_sqrt(4.0f);
    }
    """
    y = np.zeros(1, dtype=np.float32)
    run_kernel(source, "m", {"y": y}, {}, 1, 1)
    assert y[0] == pytest.approx(3.0)


def test_mad_expands():
    source = """
    __kernel void m(__global float* y) {
        y[0] = mad(2.0f, 3.0f, 4.0f);
    }
    """
    y = np.zeros(1, dtype=np.float32)
    run_kernel(source, "m", {"y": y}, {}, 1, 1)
    assert y[0] == 10.0


def test_read_imagef_translation():
    source = """
    __kernel void img(__read_only image2d_t t, __global float* y) {
        const sampler_t smp = CLK_NORMALIZED_COORDS_FALSE;
        int i = get_global_id(0);
        float4 row = read_imagef(t, smp, (int2)(i, 0));
        y[i] = row.y;
    }
    """
    table = np.arange(8, dtype=np.float32)  # two texels of 4
    y = np.zeros(2, dtype=np.float32)
    run_kernel(source, "img", {"t": table, "y": y}, {}, 2, 2)
    assert list(y) == [1.0, 5.0]


def test_barrier_statement_translated():
    kernels = compile_opencl_source(
        """
        __kernel void b(__global float* y) {
            __local float t[4];
            t[get_local_id(0)] = 1.0f;
            barrier(CLK_LOCAL_MEM_FENCE);
            y[get_global_id(0)] = t[0];
        }
        """
    )
    stmts = list(K.walk_stmts(kernels["b"].body))
    assert any(isinstance(s, K.KBarrier) for s in stmts)


def test_ternary_and_comparison():
    source = """
    __kernel void t(__global const int* x, __global int* y, int n) {
        int i = get_global_id(0);
        y[i] = x[i] > 2 ? 1 : 0;
    }
    """
    x = np.array([1, 5], dtype=np.int32)
    y = np.zeros(2, dtype=np.int32)
    run_kernel(source, "t", {"x": x, "y": y}, {"n": 2}, 2, 2)
    assert list(y) == [0, 1]


def test_unknown_function_rejected():
    with pytest.raises(CompileError):
        compile_opencl_source(
            "__kernel void f(__global float* y) { y[0] = frobnicate(1.0f); }"
        )


def test_unknown_identifier_rejected():
    with pytest.raises(CompileError):
        compile_opencl_source(
            "__kernel void f(__global float* y) { y[0] = mystery; }"
        )


def test_two_kernels_in_one_program():
    kernels = compile_opencl_source(
        """
        __kernel void a(__global float* y) { y[0] = 1.0f; }
        __kernel void b(__global float* y) { y[0] = 2.0f; }
        """
    )
    assert set(kernels) == {"a", "b"}


def test_while_loop():
    source = """
    __kernel void w(__global int* y) {
        int i = 0;
        int s = 0;
        while (i < 5) { s += i; i++; }
        y[0] = s;
    }
    """
    y = np.zeros(1, dtype=np.int32)
    run_kernel(source, "w", {"y": y}, {}, 1, 1)
    assert y[0] == 10


def test_int_literal_suffix_handling():
    source = """
    __kernel void l(__global int* y) {
        long p = 65536L;
        y[0] = (int)((p * p) % 65537L);
    }
    """
    y = np.zeros(1, dtype=np.int32)
    run_kernel(source, "l", {"y": y}, {}, 1, 1)
    assert y[0] == (65536 * 65536) % 65537
