"""OpenCL-like host API tests."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.opencl.api import (
    Buffer,
    CommandQueue,
    Context,
    Platform,
    Program,
    READ_ONLY,
    READ_WRITE,
)

SOURCE = """
__kernel void scale(__global const float* x, __global float* y, float a, int n) {
    int i = get_global_id(0);
    if (i < n) { y[i] = a * x[i]; }
}
"""


def test_platform_lists_table2_devices():
    names = {d.name for d in Platform().get_devices()}
    assert "NVidia GeForce GTX 580" in names
    assert "Intel Core i7-990X" in names
    assert len(names) == 4


def test_context_accepts_device_name():
    ctx = Context("gtx580")
    assert "580" in ctx.device.name


def test_full_host_workflow():
    ctx = Context("gtx580")
    queue = CommandQueue(ctx)
    kern = Program(ctx, SOURCE).build().create_kernel("scale")
    x = np.arange(10, dtype=np.float32)
    xbuf = Buffer(ctx, READ_ONLY, hostbuf=x)
    ybuf = Buffer(ctx, READ_WRITE, nbytes=40, dtype=np.float32)
    queue.enqueue_write_buffer(xbuf, x)
    kern.set_args(xbuf, ybuf, np.float32(3.0), np.int32(10))
    timing = queue.enqueue_nd_range(kern, 16, 8)
    out = np.zeros(10, dtype=np.float32)
    queue.enqueue_read_buffer(ybuf, out)
    assert np.allclose(out, 3.0 * x)
    assert timing.kernel_ns > 0
    assert queue.profile["transfer"] > 0
    assert queue.profile["setup"] > 0
    assert queue.finish() == pytest.approx(sum(queue.profile.values()))


def test_unbuilt_program_rejected():
    ctx = Context("gtx580")
    with pytest.raises(DeviceError):
        Program(ctx, SOURCE).create_kernel("scale")


def test_unknown_kernel_name():
    ctx = Context("gtx580")
    with pytest.raises(DeviceError):
        Program(ctx, SOURCE).build().create_kernel("nope")


def test_unset_argument_rejected():
    ctx = Context("gtx580")
    queue = CommandQueue(ctx)
    kern = Program(ctx, SOURCE).build().create_kernel("scale")
    with pytest.raises(DeviceError):
        queue.enqueue_nd_range(kern, 8, 8)


def test_scalar_argument_must_not_be_buffer():
    ctx = Context("gtx580")
    queue = CommandQueue(ctx)
    kern = Program(ctx, SOURCE).build().create_kernel("scale")
    buf = Buffer(ctx, READ_ONLY, nbytes=16)
    kern.set_args(buf, buf, buf, np.int32(1))  # `a` must be scalar
    with pytest.raises(DeviceError):
        queue.enqueue_nd_range(kern, 8, 8)


def test_buffer_requires_size_or_host_data():
    ctx = Context("gtx580")
    with pytest.raises(DeviceError):
        Buffer(ctx, READ_ONLY)


def test_events_are_recorded_in_order():
    ctx = Context("gtx580")
    queue = CommandQueue(ctx)
    kern = Program(ctx, SOURCE).build().create_kernel("scale")
    x = np.zeros(4, dtype=np.float32)
    xbuf = Buffer(ctx, READ_ONLY, hostbuf=x)
    ybuf = Buffer(ctx, READ_WRITE, nbytes=16, dtype=np.float32)
    queue.enqueue_write_buffer(xbuf, x)
    kern.set_args(xbuf, ybuf, np.float32(1.0), np.int32(4))
    queue.enqueue_nd_range(kern, 4, 4)
    queue.enqueue_read_buffer(ybuf, np.zeros(4, dtype=np.float32))
    kinds = [event[0] for event in queue.events]
    assert kinds == ["write", "ndrange", "read"]
