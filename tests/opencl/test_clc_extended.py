"""Additional OpenCL-C frontend coverage."""

import numpy as np
import pytest

from repro.errors import CompileError
from repro.opencl.clc import compile_opencl_source
from repro.opencl.executor import compile_kernel


def run(source, name, buffers, scalars, global_size=1, local_size=1):
    kernels = compile_opencl_source(source)
    return compile_kernel(kernels[name]).launch(
        buffers, scalars, global_size, local_size
    )


def test_else_if_chain():
    source = """
    __kernel void classify(__global const int* x, __global int* y, int n) {
        int i = get_global_id(0);
        if (i >= n) { return; }
        if (x[i] < 0) { y[i] = -1; }
        else if (x[i] == 0) { y[i] = 0; }
        else { y[i] = 1; }
    }
    """
    x = np.array([-5, 0, 7, 2], dtype=np.int32)
    y = np.zeros(4, dtype=np.int32)
    run(source, "classify", {"x": x, "y": y}, {"n": 4}, 4, 4)
    assert list(y) == [-1, 0, 1, 1]


def test_break_and_continue():
    source = """
    __kernel void f(__global int* y) {
        int s = 0;
        for (int i = 0; i < 100; i++) {
            if (i == 7) { break; }
            if (i % 2 == 0) { continue; }
            s += i;
        }
        y[0] = s;
    }
    """
    y = np.zeros(1, dtype=np.int32)
    run(source, "f", {"y": y}, {})
    assert y[0] == 1 + 3 + 5


def test_uint_maps_to_int():
    source = """
    __kernel void f(__global const uint* x, __global uint* y) {
        uint i = get_global_id(0);
        y[i] = x[i] + 1;
    }
    """
    x = np.array([1, 2], dtype=np.int32)
    y = np.zeros(2, dtype=np.int32)
    run(source, "f", {"x": x, "y": y}, {}, 2, 2)
    assert list(y) == [2, 3]


def test_float2_vector():
    source = """
    __kernel void f(__global const float* x, __global float* y) {
        int i = get_global_id(0);
        float2 v = vload2(i, x);
        y[i] = v.x * v.y;
    }
    """
    x = np.array([2.0, 3.0, 4.0, 5.0], dtype=np.float32)
    y = np.zeros(2, dtype=np.float32)
    run(source, "f", {"x": x, "y": y}, {}, 2, 2)
    assert list(y) == [6.0, 20.0]


def test_vector_splat_literal():
    source = """
    __kernel void f(__global float* y) {
        float4 v = (float4)(2.5f);
        y[0] = v.x + v.w;
    }
    """
    y = np.zeros(1, dtype=np.float32)
    run(source, "f", {"y": y}, {})
    assert y[0] == 5.0


def test_private_array_in_kernel():
    source = """
    __kernel void f(__global float* y) {
        float acc[4];
        for (int i = 0; i < 4; i++) { acc[i] = (float)(i * i); }
        y[0] = acc[3];
    }
    """
    y = np.zeros(1, dtype=np.float32)
    run(source, "f", {"y": y}, {})
    assert y[0] == 9.0


def test_general_for_with_compound_update():
    source = """
    __kernel void f(__global int* y) {
        int s = 0;
        for (int i = 1; i < 100; i *= 2) { s += i; }
        y[0] = s;
    }
    """
    y = np.zeros(1, dtype=np.int32)
    run(source, "f", {"y": y}, {})
    assert y[0] == 1 + 2 + 4 + 8 + 16 + 32 + 64


def test_fmin_fmax():
    source = """
    __kernel void f(__global float* y) {
        y[0] = fmin(2.0f, 3.0f) + fmax(2.0f, 3.0f);
    }
    """
    y = np.zeros(1, dtype=np.float32)
    run(source, "f", {"y": y}, {})
    assert y[0] == 5.0


def test_member_on_scalar_rejected():
    with pytest.raises(CompileError):
        compile_opencl_source(
            "__kernel void f(__global float* y) { float a = 1.0f; y[0] = a.x; }"
        )


def test_lane_out_of_range_rejected():
    with pytest.raises(CompileError):
        compile_opencl_source(
            """
            __kernel void f(__global const float* x, __global float* y) {
                float2 v = vload2(0, x);
                y[0] = v.z;
            }
            """
        )


def test_get_global_id_dim1_rejected():
    with pytest.raises(CompileError):
        compile_opencl_source(
            "__kernel void f(__global float* y) { int i = get_global_id(1); }"
        )
