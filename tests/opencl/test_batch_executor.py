"""The vectorized batch tier: eligibility, fallback, and guards.

The batch tier executes a whole NDRange as NumPy array operations, but
only for kernels whose semantics survive the lowering: no barriers, no
divergent branches, no data-dependent *inner* loops, no local-memory
tiling. These tests pin down both sides of that contract:

- ineligible kernels **decline** with a specific reason and fall back
  to per-item execution even when ``tier="batch"`` is requested;
- eligible kernels run batched, bit-identically to per-item;
- a sanitizer guard always forces the instrumented per-item path —
  bounds faults still fire when the caller asked for ``batch``;
- tier resolution: explicit argument beats the ``REPRO_EXEC_TIER``
  environment variable beats ``auto``; unknown names are structured
  errors.
"""

import numpy as np
import pytest

from repro.errors import BoundsFault, DeviceError
from repro.opencl.clc import compile_opencl_source
from repro.opencl.executor import (
    EXEC_TIER_ENV,
    batch_eligibility,
    compile_kernel,
    resolve_exec_tier,
)
from repro.runtime.sanitizer import LaunchGuard, SanitizerConfig

ELIGIBLE = """
__kernel void saxpy(__global float* out, __global const float* x,
                    float a, int n) {
    int i = get_global_id(0);
    out[i] = a * x[i] + 1.0f;
}
"""

BARRIER_TILED = """
__kernel void tiled(__global float* out, __global const float* in, int n) {
    __local float tile[8];
    int lid = get_local_id(0);
    int gid = get_global_id(0);
    tile[lid] = in[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gid] = tile[7 - lid];
}
"""

DIVERGENT = """
__kernel void branchy(__global float* out, __global const float* x, int n) {
    int i = get_global_id(0);
    if (x[i] > 0.5f) {
        out[i] = x[i] * 2.0f;
    } else {
        out[i] = 0.0f;
    }
}
"""

NESTED_DATA_DEPENDENT = """
__kernel void nested(__global int* out, __global const int* bounds, int n) {
    int i = get_global_id(0);
    int acc = 0;
    for (int j = 0; j < n; j = j + 1) {
        for (int k = 0; k < bounds[i]; k = k + 1) {
            acc = acc + k;
        }
    }
    out[i] = acc;
}
"""

OOB_WRITE = """
__kernel void oob(__global float* out, __global const float* x, int n) {
    int i = get_global_id(0);
    out[i + n] = x[i];
}
"""


def _compile(source, name):
    return compile_kernel(compile_opencl_source(source)[name])


def _saxpy_buffers(n=8):
    return (
        {
            "out": np.zeros(n, dtype=np.float32),
            "x": np.linspace(0.0, 1.0, n).astype(np.float32),
        },
        {"a": 3.0, "n": n},
    )


# -- eligibility ---------------------------------------------------------


def test_eligible_kernel_is_batch_supported():
    ck = _compile(ELIGIBLE, "saxpy")
    assert ck.batch_supported
    assert ck._batch_callable() is not None


@pytest.mark.parametrize(
    "source,name,reason_contains",
    [
        (BARRIER_TILED, "tiled", "local-memory tiling"),
        (DIVERGENT, "branchy", "divergent branch"),
        # (the clc frontend lowers the inner data-dependent for into a
        # while loop; either spelling is the same decline)
        (NESTED_DATA_DEPENDENT, "nested", "data-dependent"),
    ],
)
def test_ineligible_kernels_decline_with_reason(source, name, reason_contains):
    ck = _compile(source, name)
    assert not ck.batch_supported
    assert reason_contains in ck.batch_reason
    assert ck._batch_callable() is None
    # The standalone predicate agrees with the compiled artifact.
    supported, reason = batch_eligibility(ck.kernel)
    assert not supported and reason_contains in reason


# -- fallback semantics --------------------------------------------------


def test_batch_request_on_ineligible_kernel_falls_back_per_item():
    ck = _compile(BARRIER_TILED, "tiled")
    n = 8
    buffers = {
        "out": np.zeros(n, dtype=np.float32),
        "in": np.arange(n, dtype=np.float32),
    }
    trace = ck.launch(buffers, {"n": n}, n, 8, tier="batch")
    assert trace.tier == "per-item"
    assert np.array_equal(buffers["out"], np.arange(n, dtype=np.float32)[::-1])


def test_batch_runs_batched_and_matches_per_item():
    ck = _compile(ELIGIBLE, "saxpy")
    bufs_a, scalars = _saxpy_buffers()
    bufs_b = {k: v.copy() for k, v in bufs_a.items()}
    t_item = ck.launch(bufs_a, scalars, 8, 4, tier="per-item")
    t_batch = ck.launch(bufs_b, scalars, 8, 4, tier="batch")
    assert t_item.tier == "per-item"
    assert t_batch.tier == "batch"
    assert np.array_equal(bufs_a["out"], bufs_b["out"])
    assert t_item.op_cycles == t_batch.op_cycles


# -- sanitizer guards force the instrumented path ------------------------


def test_guard_overrides_batch_request():
    ck = _compile(ELIGIBLE, "saxpy")
    buffers, scalars = _saxpy_buffers()
    guard = LaunchGuard(SanitizerConfig(), "saxpy")
    trace = ck.launch(buffers, scalars, 8, 4, guard=guard, tier="batch")
    assert trace.tier == "sanitized"


def test_bounds_fault_fires_despite_batch_request():
    ck = _compile(OOB_WRITE, "oob")
    buffers, scalars = _saxpy_buffers()
    guard = LaunchGuard(SanitizerConfig(), "oob")
    with pytest.raises(BoundsFault):
        ck.launch(buffers, scalars, 8, 4, guard=guard, tier="batch")
    assert guard.trips.get("bounds")


def test_unguarded_oob_is_a_device_error_on_both_tiers():
    ck = _compile(OOB_WRITE, "oob")
    for tier in ("per-item", "batch"):
        buffers, scalars = _saxpy_buffers()
        with pytest.raises(DeviceError):
            ck.launch(buffers, scalars, 8, 4, tier=tier)


# -- tier resolution -----------------------------------------------------


def test_resolve_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(EXEC_TIER_ENV, "per-item")
    assert resolve_exec_tier("batch") == "batch"


def test_resolve_env_beats_auto(monkeypatch):
    monkeypatch.setenv(EXEC_TIER_ENV, "per-item")
    assert resolve_exec_tier(None) == "per-item"
    monkeypatch.delenv(EXEC_TIER_ENV)
    assert resolve_exec_tier(None) == "auto"


def test_resolve_unknown_tier_raises(monkeypatch):
    with pytest.raises(DeviceError):
        resolve_exec_tier("warp-speed")
    monkeypatch.setenv(EXEC_TIER_ENV, "bogus")
    with pytest.raises(DeviceError):
        resolve_exec_tier(None)


def test_env_var_drives_launch_tier(monkeypatch):
    ck = _compile(ELIGIBLE, "saxpy")
    buffers, scalars = _saxpy_buffers()
    monkeypatch.setenv(EXEC_TIER_ENV, "per-item")
    assert ck.launch(buffers, scalars, 8, 4).tier == "per-item"
    monkeypatch.setenv(EXEC_TIER_ENV, "batch")
    assert ck.launch(buffers, scalars, 8, 4).tier == "batch"
