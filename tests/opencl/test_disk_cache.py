"""The content-addressed on-disk kernel store.

The acceptance bar: a restarted process (simulated by dropping the
in-memory LRU) must recompile *nothing* — every kernel comes back via
``CompiledKernel.from_artifact`` with the codegen counter untouched —
and a corrupt or mismatched artifact is a counted cache miss, never an
error or a silently wrong kernel.
"""

import os
import pickle

import numpy as np
import pytest

from repro.opencl import kernel_cache as kc
from repro.opencl.executor import (
    DISK_ARTIFACT_VERSION,
    CompiledKernel,
    codegen_compiles,
)
from repro.opencl.kernel_cache import (
    DiskKernelStore,
    KernelCache,
    configure_disk_store,
    kernel_fingerprint,
)

from tests.opencl.test_kernel_cache import make_kernel


@pytest.fixture(autouse=True)
def clean_store():
    yield
    configure_disk_store(None)
    kc.reset_global_cache()


def key_for(kernel, device="gtx580"):
    return (kernel_fingerprint(kernel), "", "none", device)


def launch_sum(compiled, n=8):
    out = np.zeros(n, dtype=np.int32)
    compiled.launch({"out": out}, {}, n, n)
    return out


# -- artifact round-trip -----------------------------------------------------


def test_artifact_round_trip_runs_without_codegen():
    compiled = CompiledKernel(make_kernel())
    expected = launch_sum(compiled)
    artifact = compiled.artifact()
    before = codegen_compiles()
    restored = CompiledKernel.from_artifact(artifact)
    assert codegen_compiles() == before  # no codegen on restore
    assert np.array_equal(launch_sum(restored), expected)
    assert restored.batch_supported == compiled.batch_supported


def test_artifact_is_picklable():
    compiled = CompiledKernel(make_kernel())
    blob = pickle.dumps(compiled.artifact())
    restored = CompiledKernel.from_artifact(pickle.loads(blob))
    assert np.array_equal(launch_sum(restored), launch_sum(compiled))


def test_artifact_version_mismatch_is_rejected():
    artifact = CompiledKernel(make_kernel()).artifact()
    artifact["version"] = DISK_ARTIFACT_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        CompiledKernel.from_artifact(artifact)


# -- DiskKernelStore ---------------------------------------------------------


class TestDiskKernelStore:
    def test_store_then_load(self, tmp_path):
        store = DiskKernelStore(tmp_path)
        kernel = make_kernel()
        compiled = CompiledKernel(kernel)
        store.store(key_for(kernel), compiled)
        assert store.stores == 1
        loaded = store.load(key_for(kernel))
        assert loaded is not None
        assert store.loads == 1
        assert np.array_equal(launch_sum(loaded), launch_sum(compiled))

    def test_missing_key_is_none_not_corrupt(self, tmp_path):
        store = DiskKernelStore(tmp_path)
        assert store.load(key_for(make_kernel())) is None
        assert store.corrupt == 0

    def test_torn_artifact_is_a_counted_miss(self, tmp_path):
        store = DiskKernelStore(tmp_path)
        kernel = make_kernel()
        store.store(key_for(kernel), CompiledKernel(kernel))
        path = store._path(key_for(kernel))
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])  # torn mid-pickle
        assert store.load(key_for(kernel)) is None
        assert store.corrupt == 1

    def test_key_mismatch_inside_payload_is_corrupt(self, tmp_path):
        # A payload whose embedded key disagrees with its filename
        # (e.g. a hand-copied artifact) must never be served.
        store = DiskKernelStore(tmp_path)
        kernel = make_kernel()
        store.store(key_for(kernel), CompiledKernel(kernel))
        src = store._path(key_for(kernel))
        other = make_kernel(const=2)
        os.rename(src, store._path(key_for(other)))
        assert store.load(key_for(other)) is None
        assert store.corrupt == 1

    def test_same_directory_separates_device_variants(self, tmp_path):
        store = DiskKernelStore(tmp_path)
        kernel = make_kernel()
        store.store(key_for(kernel, device="gtx580"), CompiledKernel(kernel))
        assert store.load(key_for(kernel, device="hd5970")) is None
        assert store.load(key_for(kernel, device="gtx580")) is not None


# -- KernelCache x disk store ------------------------------------------------


class TestCacheWithStore:
    def test_disk_hit_is_not_a_miss(self, tmp_path):
        store = DiskKernelStore(tmp_path)
        warm = KernelCache()
        warm.lookup(make_kernel(), store=store)
        assert warm.stats()["misses"] == 1

        # A "restarted process": fresh LRU, same store.
        cold = KernelCache()
        before = codegen_compiles()
        _, kind = cold.lookup(make_kernel(), store=store)
        assert kind == "disk"
        assert codegen_compiles() == before
        assert cold.stats() == {
            "hits": 0,
            "disk_hits": 1,
            "misses": 0,
            "evictions": 0,
            "entries": 1,
        }
        # Second lookup is an ordinary in-memory hit.
        _, kind = cold.lookup(make_kernel(), store=store)
        assert kind == "hit"

    def test_miss_populates_the_store(self, tmp_path):
        store = DiskKernelStore(tmp_path)
        cache = KernelCache()
        _, kind = cache.lookup(make_kernel(), store=store)
        assert kind == "miss"
        assert store.stores == 1
        assert os.listdir(tmp_path)

    def test_no_store_means_plain_miss(self):
        cache = KernelCache()
        _, kind = cache.lookup(make_kernel())
        assert kind == "miss"
        assert cache.stats()["disk_hits"] == 0


# -- configuration -----------------------------------------------------------


class TestConfiguration:
    def test_configure_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(kc.KERNEL_CACHE_DIR_ENV, os.fspath(tmp_path / "env"))
        store = configure_disk_store(tmp_path / "explicit")
        assert kc.active_disk_store() is store
        assert os.fspath(store.root) == os.fspath(tmp_path / "explicit")

    def test_configure_none_reverts_to_env_resolution(self, tmp_path,
                                                      monkeypatch):
        # configure(None) clears the explicit override; the env var
        # (the process default) applies again.
        configure_disk_store(tmp_path / "explicit")
        configure_disk_store(None)
        monkeypatch.delenv(kc.KERNEL_CACHE_DIR_ENV, raising=False)
        assert kc.active_disk_store() is None
        monkeypatch.setenv(kc.KERNEL_CACHE_DIR_ENV, os.fspath(tmp_path))
        store = kc.active_disk_store()
        assert store is not None
        assert os.fspath(store.root) == os.fspath(tmp_path)
