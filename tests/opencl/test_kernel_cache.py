"""The content-addressed kernel-compilation cache.

Includes the regression test for the cache-key bug class this PR
guards against: the key must incorporate the **sanitizer config** and
the **compiler options** — toggling ``--sanitize`` or a memory-plan
flag after a warm cache must *never* hand back an artifact compiled
under the other setting. (An uninstrumented artifact reused for a
sanitized run would silently skip every bounds/race check.)
"""

import pytest

from repro.apps.registry import BENCHMARKS
from repro.backend import kernel_ir as K
from repro.compiler.options import OptimizationConfig
from repro.evaluation.harness import run_configuration
from repro.opencl.executor import codegen_compiles
from repro.opencl.kernel_cache import (
    KernelCache,
    kernel_fingerprint,
    reset_global_cache,
    sanitizer_key,
)
from repro.runtime.sanitizer import SanitizerConfig

I32 = K.KScalar("int")


def make_kernel(name="k", const=1):
    out = K.KParam("out", I32, K.Space.GLOBAL, is_pointer=True)
    gid = K.KCall("get_global_id", [K.KConst(0, I32)], I32)
    return K.Kernel(
        name=name,
        params=[out],
        arrays=[],
        body=[
            K.KDecl("i", I32, gid),
            K.KStore(
                "out",
                K.KVar("i", I32),
                K.KBin("+", K.KVar("i", I32), K.KConst(const, I32), I32),
                K.Space.GLOBAL,
                I32,
            ),
        ],
        meta={},
    )


class TestFingerprint:
    def test_deterministic(self):
        assert kernel_fingerprint(make_kernel()) == kernel_fingerprint(
            make_kernel()
        )

    def test_body_change_changes_fingerprint(self):
        assert kernel_fingerprint(make_kernel(const=1)) != kernel_fingerprint(
            make_kernel(const=2)
        )

    def test_name_change_changes_fingerprint(self):
        assert kernel_fingerprint(make_kernel("a")) != kernel_fingerprint(
            make_kernel("b")
        )

    def test_meta_and_sites_excluded(self):
        plain = make_kernel()
        decorated = make_kernel()
        decorated.meta["source_param"] = "xs"
        K.assign_sites(decorated)
        assert kernel_fingerprint(plain) == kernel_fingerprint(decorated)


class TestCacheBehavior:
    def test_second_compile_is_a_hit_without_codegen(self):
        cache = KernelCache()
        first, hit1 = cache.get_or_compile(make_kernel())
        before = codegen_compiles()
        second, hit2 = cache.get_or_compile(make_kernel())
        assert (hit1, hit2) == (False, True)
        assert second is first
        # The acceptance check: a cache hit runs no codegen at all.
        assert codegen_compiles() == before

    def test_sanitizer_config_is_part_of_the_key(self):
        # Regression: a warm cache must not serve the uninstrumented
        # artifact once --sanitize is toggled on (or vice versa).
        cache = KernelCache()
        plain, _ = cache.get_or_compile(make_kernel(), sanitizer="none")
        sanitized, hit = cache.get_or_compile(
            make_kernel(), sanitizer=sanitizer_key(SanitizerConfig())
        )
        assert not hit
        assert sanitized is not plain
        # And back again still hits the original entry.
        _, hit = cache.get_or_compile(make_kernel(), sanitizer="none")
        assert hit

    def test_compiler_options_are_part_of_the_key(self):
        cache = KernelCache()
        config = OptimizationConfig()
        cache.get_or_compile(make_kernel(), options=config.describe())
        from dataclasses import replace

        toggled = replace(config, use_local=False)
        _, hit = cache.get_or_compile(
            make_kernel(), options=toggled.describe()
        )
        assert not hit
        assert cache.stats()["misses"] == 2

    def test_device_is_part_of_the_key(self):
        cache = KernelCache()
        cache.get_or_compile(make_kernel(), device="gtx580")
        _, hit = cache.get_or_compile(make_kernel(), device="hd5970")
        assert not hit

    def test_lru_eviction_is_bounded(self):
        cache = KernelCache(capacity=4)
        for i in range(10):
            cache.get_or_compile(make_kernel(const=i))
        assert len(cache) == 4
        assert cache.stats()["evictions"] == 6
        # Most-recent entries survive; the oldest were evicted.
        _, hit = cache.get_or_compile(make_kernel(const=9))
        assert hit
        _, hit = cache.get_or_compile(make_kernel(const=0))
        assert not hit


class TestSanitizerKey:
    def test_none_and_default_differ(self):
        assert sanitizer_key(None) != sanitizer_key(SanitizerConfig())

    def test_every_flag_matters(self):
        base = SanitizerConfig()
        from dataclasses import replace

        variants = [
            replace(base, bounds=False),
            replace(base, races=False),
            replace(base, divergence=False),
            replace(base, nan_poison=False),
            replace(base, deadline_ns=1e9),
            replace(base, validate_every=4),
        ]
        keys = {sanitizer_key(v) for v in variants}
        keys.add(sanitizer_key(base))
        assert len(keys) == len(variants) + 1


class TestEndToEnd:
    def test_second_run_hits_the_cache(self):
        reset_global_cache()
        bench = BENCHMARKS["jg-series-single"]
        first = run_configuration(
            bench, "gtx580", scale=0.1, steps=1, max_sim_items=64
        )
        assert first.executor["cache.misses"] >= 1
        assert first.executor["cache.hits"] == 0
        before = codegen_compiles()
        second = run_configuration(
            bench, "gtx580", scale=0.1, steps=1, max_sim_items=64
        )
        assert second.executor["cache.misses"] == 0
        assert second.executor["cache.hits"] >= 1
        # No codegen ran for the per-item artifact on the warm run.
        assert codegen_compiles() == before

    def test_sanitize_toggle_recompiles_end_to_end(self):
        # Regression, end-to-end flavor: warm the cache unsanitized,
        # then run guarded — the guarded run must be a miss (its
        # launches execute instrumented code, which is only correct if
        # the artifact was compiled under the sanitized key).
        reset_global_cache()
        bench = BENCHMARKS["jg-series-single"]
        run_configuration(bench, "gtx580", scale=0.1, steps=1, max_sim_items=64)
        guarded = run_configuration(
            bench,
            "gtx580",
            scale=0.1,
            steps=1,
            max_sim_items=64,
            sanitizer=SanitizerConfig(),
        )
        assert guarded.executor["cache.misses"] >= 1
        assert guarded.executor["executor.launches"].get("sanitized", 0) > 0

    def test_config_toggle_recompiles_end_to_end(self):
        reset_global_cache()
        from dataclasses import replace

        bench = BENCHMARKS["jg-series-single"]
        run_configuration(bench, "gtx580", scale=0.1, steps=1, max_sim_items=64)
        toggled = run_configuration(
            bench,
            "gtx580",
            scale=0.1,
            steps=1,
            max_sim_items=64,
            config=replace(OptimizationConfig(), vectorize=False),
        )
        assert toggled.executor["cache.misses"] >= 1
