"""Fuzzing the OpenCL-C frontend: structured errors, never crashes.

The ``repro.opencl.clc`` lexer/parser/translator consumes text from
two sources it does not control — the hand-tuned baselines and the
compiler's own emitted kernels — so malformed input must surface as
the structured source errors (:class:`repro.errors.ReproError`
subclasses: LexError, ParseError, CompileError), never as a raw
IndexError/KeyError/AttributeError/RecursionError escaping the
frontend.

Three properties:

- seeded random **mutations** of valid kernels (character deletion,
  insertion, duplication, truncation, token swaps) either compile or
  raise a structured error;
- **garbage token streams** built from the lexer's own vocabulary do
  the same;
- **parse -> print -> parse is a fixpoint**: emitting a parsed kernel
  as OpenCL C and re-parsing it reproduces the identical text, for
  every golden snapshot in ``tests/golden/``.
"""

import pathlib
import random
import string

import pytest

from repro.backend.opencl_gen import emit_opencl
from repro.errors import ReproError
from repro.opencl.clc import compile_opencl_source
from repro.opencl.clc.lexer import tokenize

GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "golden"
GOLDEN_SOURCES = sorted(GOLDEN_DIR.glob("*.cl"))

SAMPLE = """
__kernel void saxpy(__global float* y, __global const float* x,
                    float a, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
"""

TILED = """
__kernel void tile_sum(__global float* out, __global const float* in,
                       int n) {
    __local float tile[64];
    int lid = get_local_id(0);
    int gid = get_global_id(0);
    tile[lid] = in[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    for (int k = 0; k < 64; k = k + 1) {
        acc = acc + tile[k];
    }
    out[gid] = acc;
}
"""

BASES = [SAMPLE, TILED] + [p.read_text() for p in GOLDEN_SOURCES[:4]]

_ALPHABET = (
    string.ascii_letters + string.digits + "{}()[];,.*&|^%+-<>=!~ \n\t\"'#/"
)


def _mutate(source, rng):
    kind = rng.randrange(5)
    if not source:
        return source
    pos = rng.randrange(len(source))
    if kind == 0:  # delete a span
        return source[:pos] + source[pos + rng.randrange(1, 8) :]
    if kind == 1:  # insert random characters
        junk = "".join(
            rng.choice(_ALPHABET) for _ in range(rng.randrange(1, 6))
        )
        return source[:pos] + junk + source[pos:]
    if kind == 2:  # truncate
        return source[:pos]
    if kind == 3:  # duplicate a span
        end = min(len(source), pos + rng.randrange(1, 30))
        return source[:pos] + source[pos:end] + source[pos:]
    # swap two spans
    other = rng.randrange(len(source))
    lo, hi = sorted((pos, other))
    return source[:lo] + source[hi:] + source[lo:hi]


def _frontend(source):
    """Run the full frontend; success or a structured error both pass."""
    try:
        kernels = compile_opencl_source(source)
    except ReproError:
        return None
    except RecursionError:
        pytest.fail("frontend recursed without depth limit")
    return kernels


@pytest.mark.parametrize("base_index", range(len(BASES)))
def test_mutated_sources_never_crash(base_index):
    base = BASES[base_index]
    rng = random.Random(1000 + base_index)
    for round_no in range(150):
        source = base
        for _ in range(rng.randrange(1, 4)):
            source = _mutate(source, rng)
        _frontend(source)  # must not raise anything unstructured


def test_garbage_token_streams_never_crash():
    vocab = [
        "__kernel", "__global", "__local", "void", "float", "int",
        "if", "else", "for", "while", "return", "barrier", "x", "y",
        "42", "3.5f", "(", ")", "{", "}", "[", "]", ";", ",", "+",
        "-", "*", "/", "%", "=", "==", "<", ">", "&&", "||", "!",
        "->", ".", "0x1F", "get_global_id",
    ]
    rng = random.Random(7)
    for _ in range(200):
        source = " ".join(
            rng.choice(vocab) for _ in range(rng.randrange(1, 60))
        )
        _frontend(source)


def test_random_character_soup_never_crashes_lexer():
    rng = random.Random(11)
    for _ in range(200):
        source = "".join(
            rng.choice(_ALPHABET) for _ in range(rng.randrange(0, 120))
        )
        try:
            tokenize(source)
        except ReproError:
            pass


@pytest.mark.parametrize(
    "path", GOLDEN_SOURCES, ids=[p.name for p in GOLDEN_SOURCES]
)
def test_parse_print_parse_roundtrip_stable(path):
    kernels = compile_opencl_source(path.read_text())
    assert kernels, "golden snapshot {} parsed to no kernels".format(path.name)
    for name, kernel in sorted(kernels.items()):
        printed = emit_opencl(kernel, local_size_hint=128)
        reparsed = compile_opencl_source(printed)
        assert name in reparsed
        reprinted = emit_opencl(reparsed[name], local_size_hint=128)
        assert printed == reprinted, (
            "parse -> print -> parse is not a fixpoint for kernel "
            "{} of {}".format(name, path.name)
        )
