"""Property-based tests for the timing model's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.kernel_ir import Space
from repro.opencl.device import GTX580, GTX8800
from repro.opencl.executor import LaunchTrace, SiteTrace
from repro.opencl.timing import analyze_site, time_launch


def make_site(space, accesses, elem_bytes=4, width=1):
    site = SiteTrace(space, elem_bytes, width, is_store=False)
    for lane, idx in accesses:
        site.lanes.append(lane)
        site.indices.append(idx)
    return site


@given(
    st.lists(
        st.tuples(st.integers(0, 31), st.integers(0, 255)),
        min_size=1,
        max_size=120,
    )
)
@settings(max_examples=60, deadline=None)
def test_event_grouping_is_order_insensitive_per_lane_history(accesses):
    """Shuffling whole-lane histories does not change the aggregate
    (events are keyed by per-lane sequence, not arrival order)."""
    site_a = make_site(Space.GLOBAL, accesses)
    stats_a = analyze_site(site_a, GTX8800, local_size=32)
    # Reorder by stable-sorting on lane: preserves each lane's sequence.
    reordered = sorted(accesses, key=lambda pair: pair[0])
    site_b = make_site(Space.GLOBAL, reordered)
    stats_b = analyze_site(site_b, GTX8800, local_size=32)
    assert stats_a.transactions == stats_b.transactions
    assert stats_a.events == stats_b.events


@given(
    st.lists(
        st.tuples(st.integers(0, 31), st.integers(0, 1023)),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=60, deadline=None)
def test_strict_coalescing_never_cheaper_than_relaxed(accesses):
    site = make_site(Space.GLOBAL, accesses)
    strict = analyze_site(site, GTX8800, local_size=32)
    # Same trace under the cached device: relaxed counting.
    site2 = make_site(Space.GLOBAL, accesses)
    relaxed = analyze_site(site2, GTX580, local_size=32)
    # Segment sizes differ (64 vs 128B), so compare per-device lower
    # bounds instead: strict >= its own distinct-segment count is the
    # invariant worth holding.
    site3 = make_site(Space.GLOBAL, accesses)
    from dataclasses import replace

    relaxed_same_seg = analyze_site(
        site3, replace(GTX8800, strict_coalescing=False), local_size=32
    )
    assert strict.transactions >= relaxed_same_seg.transactions


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 255)),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=60, deadline=None)
def test_local_conflicts_bounded_by_lanes(accesses):
    site = make_site(Space.LOCAL, accesses)
    stats = analyze_site(site, GTX8800, local_size=16)
    assert stats.conflict_cycles >= stats.events
    assert stats.conflict_cycles <= len(accesses)


@given(st.integers(1, 10 ** 7), st.integers(0, 10 ** 6))
@settings(max_examples=40, deadline=None)
def test_kernel_time_monotone_in_ops(fp_ops, extra):
    a = LaunchTrace("k", 64, 64)
    a.op_cycles["fp"] = fp_ops
    b = LaunchTrace("k", 64, 64)
    b.op_cycles["fp"] = fp_ops + extra
    ta = time_launch(a, GTX580).kernel_ns
    tb = time_launch(b, GTX580).kernel_ns
    assert tb >= ta


def test_timing_deterministic():
    accesses = [(lane, lane * 3 % 64) for lane in range(32)] * 4
    runs = []
    for _ in range(3):
        trace = LaunchTrace("k", 32, 32)
        trace.op_cycles["fp"] = 1234
        trace.sites = {0: make_site(Space.GLOBAL, accesses)}
        runs.append(time_launch(trace, GTX8800).kernel_ns)
    assert runs[0] == runs[1] == runs[2]
