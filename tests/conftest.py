"""Shared fixtures: canonical Lime programs and small inputs."""

import numpy as np
import pytest

from repro.frontend import check_program, parse_program

NBODY_SOURCE = """
class NBody {
    static local float[[][3]] computeForces(float[[][4]] particles) {
        return NBody.forceOne(particles) @ particles;
    }
    static local float[[3]] forceOne(float[[4]] p, float[[][4]] particles) {
        float[] f = new float[3];
        for (int j = 0; j < particles.length; j++) {
            float dx = particles[j][0] - p[0];
            float dy = particles[j][1] - p[1];
            float dz = particles[j][2] - p[2];
            float r2 = dx * dx + dy * dy + dz * dz + 0.0125f;
            float inv = 1.0f / Math.sqrt(r2);
            float s = particles[j][3] * inv * inv * inv;
            f[0] = f[0] + dx * s;
            f[1] = f[1] + dy * s;
            f[2] = f[2] + dz * s;
        }
        return (float[[3]]) f;
    }
}
"""

SAXPY_SOURCE = """
class Saxpy {
    static local float[[]] apply(float[[]] xs) {
        return Saxpy.one(2.5f) @ xs;
    }
    static local float one(float x, float a) {
        return a * x + 1.0f;
    }
}
"""


@pytest.fixture(scope="session")
def nbody_checked():
    return check_program(parse_program(NBODY_SOURCE))


@pytest.fixture(scope="session")
def saxpy_checked():
    return check_program(parse_program(SAXPY_SOURCE))


@pytest.fixture
def particles():
    rng = np.random.RandomState(7)
    arr = rng.rand(48, 4).astype(np.float32)
    arr[:, 3] = np.abs(arr[:, 3]) + 0.05
    arr.setflags(write=False)
    return arr


def nbody_reference(particles):
    p = np.asarray(particles, dtype=np.float64)
    dx = p[None, :, 0] - p[:, None, 0]
    dy = p[None, :, 1] - p[:, None, 1]
    dz = p[None, :, 2] - p[:, None, 2]
    r2 = dx * dx + dy * dy + dz * dz + 0.0125
    inv = 1.0 / np.sqrt(r2)
    s = p[None, :, 3] * inv * inv * inv
    return np.stack(
        [(dx * s).sum(1), (dy * s).sum(1), (dz * s).sum(1)], axis=1
    ).astype(np.float32)
