"""Plain-text chart rendering for the regenerated figures.

The paper's figures are bar charts; these helpers render the same series
as ASCII bars so a terminal run of ``python -m repro figures`` or the
benchmark harness reads like the paper's plots.
"""

from __future__ import annotations

BAR_WIDTH = 46


def hbar(value, scale, width=BAR_WIDTH, char="#"):
    """One horizontal bar scaled so ``scale`` fills ``width`` columns."""
    if scale <= 0:
        return ""
    filled = int(round(min(value / scale, 1.0) * width))
    return char * max(filled, 1 if value > 0 else 0)


def bar_chart(rows, title=None, unit="", width=BAR_WIDTH):
    """Render ``rows`` of (label, value) as a bar chart.

    Values are scaled to the maximum; each line shows the label, the
    bar, and the numeric value.
    """
    lines = []
    if title:
        lines.append(title)
    if not rows:
        return "\n".join(lines + ["(no data)"])
    peak = max(value for _label, value in rows)
    label_width = max(len(label) for label, _value in rows)
    for label, value in rows:
        lines.append(
            "{:<{lw}s} |{:<{bw}s} {:8.1f}{}".format(
                label,
                hbar(value, peak, width),
                value,
                unit,
                lw=label_width,
                bw=width,
            )
        )
    return "\n".join(lines)


def grouped_bar_chart(groups, title=None, unit="x", width=BAR_WIDTH):
    """Render ``groups``: list of (group_label, [(series, value), ...])."""
    lines = []
    if title:
        lines.append(title)
    peak = max(
        (value for _g, rows in groups for _s, value in rows), default=0.0
    )
    for group_label, rows in groups:
        lines.append(group_label)
        series_width = max((len(s) for s, _v in rows), default=0)
        for series, value in rows:
            lines.append(
                "  {:<{sw}s} |{:<{bw}s} {:7.2f}{}".format(
                    series,
                    hbar(value, peak, width),
                    value,
                    unit,
                    sw=series_width,
                    bw=width,
                )
            )
    return "\n".join(lines)


def stacked_fraction_chart(rows, stages, title=None, width=60):
    """Render Figure 9-style stacked fraction bars.

    ``rows``: list of (label, {stage: fraction}); ``stages``: ordered
    (stage_name, glyph) pairs.
    """
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join("{}={}".format(glyph, name) for name, glyph in stages)
    lines.append("legend: " + legend)
    label_width = max((len(label) for label, _r in rows), default=0)
    for label, fractions in rows:
        bar = []
        for name, glyph in stages:
            cells = int(round(fractions.get(name, 0.0) * width))
            bar.append(glyph * cells)
        text = "".join(bar)[:width]
        lines.append(
            "{:<{lw}s} |{:<{w}s}|".format(label, text, lw=label_width, w=width)
        )
    return "\n".join(lines)


def figure7_chart(table, target):
    """Bar chart of one Figure 7 column."""
    rows = [(name, row[target]) for name, row in table.items()]
    return bar_chart(
        rows,
        title="Figure 7 — end-to-end speedup on {} (vs Lime bytecode)".format(
            target
        ),
        unit="x",
    )


def figure8_chart(table, gpu):
    """Grouped bars of Figure 8 for one GPU."""
    groups = []
    for name, row in table[gpu].items():
        series = [(k, v) for k, v in row.items() if not k.startswith("_")]
        groups.append((name, series))
    return grouped_bar_chart(
        groups,
        title="Figure 8 — speedup over hand-tuned OpenCL on {}".format(gpu),
    )


FIGURE9_STAGES = [
    ("kernel", "#"),
    ("java_marshal", "J"),
    ("c_marshal", "c"),
    ("opencl_setup", "s"),
    ("transfer", "t"),
    ("host_compute", "h"),
]


def failure_report(summary):
    """Render a :class:`repro.runtime.profiler.FailureLedger` summary
    dict (``RunResult.faults``) for the CLI.

    Delegates to the canonical renderer in
    :mod:`repro.runtime.profiler` — the ledger's own ``report()``, this
    function, and the ``run`` command now all emit the identical
    format, keyed by the canonical ``recovery.*`` metric names.
    """
    from repro.runtime.profiler import render_failure_summary

    return render_failure_summary(summary)


def figure9_chart(table, target):
    rows = [
        (name, {k: v for k, v in row.items() if not k.startswith("_")})
        for name, row in table.items()
    ]
    return stacked_fraction_chart(
        rows,
        FIGURE9_STAGES,
        title="Figure 9 — execution-time breakdown on {}".format(target),
    )


def executor_report(summary):
    """Render an :meth:`ExecutionProfile.executor_summary` dict as one
    text line keyed by the canonical ``executor.launches.*`` /
    ``cache.*`` metric names. Returns '' when the run recorded nothing.

    Delegates to the canonical renderer in
    :mod:`repro.runtime.profiler`.
    """
    from repro.runtime.profiler import render_executor_summary

    return render_executor_summary(summary)
