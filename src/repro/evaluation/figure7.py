"""Figure 7: end-to-end speedup (includes all overheads).

(a) CPU (Core i7): speedup of the OpenCL multicore runtime over the
    Lime-bytecode baseline on 1 and 6 cores. The paper reports 1-core
    performance close to the baseline (within ~10%, better for the
    transcendental benchmarks), ~4.8-5.7x on 6 cores for five
    benchmarks, and super-linear 13.6-32.5x for four (SMT + cheaper
    OpenCL transcendentals).

(b) GPU: speedups of 12-431x on the GTX580 and HD5970; lowest for the
    non-transcendental / communication-heavy trio (JG-Crypt, Mosaic,
    N-Body), highest for the transcendental-heavy ones; doubles 2-3x
    slower than singles on the GTX580, ~1.5x on the HD5970.
"""

from __future__ import annotations

from repro.apps.registry import BENCHMARKS
from repro.evaluation.harness import run_configuration

# The paper's x-axis order.
BENCH_ORDER = [
    "nbody-single",
    "nbody-double",
    "mosaic",
    "parboil-cp",
    "parboil-mriq",
    "parboil-rpes",
    "jg-crypt",
    "jg-series-single",
    "jg-series-double",
]

CPU_TARGETS = ["cpu-1", "cpu-6"]
GPU_TARGETS = ["gtx580", "hd5970"]


def run_figure7(scale=1.0, benchmarks=None, targets=None, steps=None):
    """Compute the Figure 7 speedup table.

    Returns a dict: benchmark -> {target -> speedup}, where speedup is
    baseline_ns / target_ns (>1 means faster than Lime bytecode), plus
    a "_baseline_ns" entry per benchmark.
    """
    benchmarks = benchmarks or BENCH_ORDER
    targets = targets or (CPU_TARGETS + GPU_TARGETS)
    table = {}
    for name in benchmarks:
        bench = BENCHMARKS[name]
        baseline = run_configuration(bench, "bytecode", scale=scale, steps=steps)
        row = {"_baseline_ns": baseline.total_ns}
        for target in targets:
            result = run_configuration(bench, target, scale=scale, steps=steps)
            _check_consistency(baseline, result)
            row[target] = baseline.total_ns / result.total_ns
        table[name] = row
    return table


def _check_consistency(baseline, result):
    a, b = baseline.checksum, result.checksum
    tolerance = max(1e-4, 5e-3 * abs(a))
    if abs(a - b) > tolerance:
        raise AssertionError(
            "{}@{}: checksum diverged from baseline ({} vs {})".format(
                result.benchmark, result.target, b, a
            )
        )


def format_figure7(table):
    """Render the speedup table the way the paper's bars read."""
    targets = [t for t in next(iter(table.values())) if not t.startswith("_")]
    lines = []
    header = "{:20s}".format("benchmark") + "".join(
        "{:>10s}".format(t) for t in targets
    )
    lines.append(header)
    for name, row in table.items():
        cells = "".join("{:>10.1f}".format(row[t]) for t in targets)
        lines.append("{:20s}{}".format(name, cells))
    return "\n".join(lines)
