"""Harnesses that regenerate every table and figure of the paper's
evaluation section (Section 5)."""

from repro.evaluation.harness import run_configuration, TARGETS
from repro.evaluation.figure7 import run_figure7
from repro.evaluation.figure8 import run_figure8
from repro.evaluation.figure9 import run_figure9
from repro.evaluation.tables import table1, table2, table3

__all__ = [
    "run_configuration",
    "TARGETS",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "table1",
    "table2",
    "table3",
]
