"""Executor micro-benchmark: host interpreter vs per-item vs batch.

The batch tier's reason to exist is wall-clock speed of the simulator
itself (the simulated nanoseconds are identical by construction — see
``tests/integration/test_tier_differential.py``). This module measures
that speed per app with a capture-and-replay harness:

1. **Capture** — run the app end to end once against a GPU target with
   ``CompiledKernel.launch`` wrapped to record every launch payload
   (buffers, scalars, NDRange) before it executes.
2. **Replay** — for each captured kernel, re-execute the recorded
   launches under each tier on fresh buffer copies, timing with
   ``time.perf_counter``. Compilation is warmed (and one untimed replay
   runs) before timing so codegen and tracing caches are excluded.
3. **Host interpreter** — the ``bytecode`` target's full-run wall time,
   as the no-offload baseline for the app.

Results are written as ``BENCH_executor.json`` (see
``benchmarks/perf/``), which CI's perf-smoke job gates on: the batch
tier must not be slower than per-item on any eligible kernel.

By default the benchmark compiles with ``use_local=False`` so that
local-memory tiling does not exclude the compute-heavy apps from the
batch tier (the tier declines kernels with barriers or LOCAL arrays);
``config=None`` on the entry points means "nolocal", not the compiler
default.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import time
from dataclasses import replace as _dc_replace

from repro.apps.registry import BENCHMARKS
from repro.compiler.options import OptimizationConfig
from repro.evaluation.harness import run_configuration
from repro.ioutil import atomic_write_json
from repro.opencl import executor as ex

DEFAULT_MAX_SIM_ITEMS = 4096

# The app the warm-restart measurement journals and resumes.
WARM_RESTART_APP = "jg-series-single"


def nolocal_config():
    """The benchmark's default config: local-memory staging off so the
    batch tier is eligible for every app's kernels."""
    return _dc_replace(OptimizationConfig(), use_local=False)


@contextlib.contextmanager
def capture_launches():
    """Record every ``CompiledKernel.launch`` while the block runs.

    Yields a dict kernel-name -> ``{"kernel": CompiledKernel,
    "launches": [(buffers, scalars, global_size, local_size), ...]}``
    with buffer snapshots taken *before* each launch mutates them.
    """
    captured = {}
    orig = ex.CompiledKernel.launch

    def recording(
        self,
        buffers,
        scalars,
        global_size,
        local_size,
        injector=None,
        guard=None,
        tier=None,
        tracer=None,
        index_base=0,
        device=None,
    ):
        rec = captured.setdefault(
            self.kernel.name, {"kernel": self, "launches": []}
        )
        rec["launches"].append(
            (
                {name: buf.copy() for name, buf in buffers.items()},
                dict(scalars),
                global_size,
                local_size,
            )
        )
        return orig(
            self,
            buffers,
            scalars,
            global_size,
            local_size,
            injector=injector,
            guard=guard,
            tier=tier,
            tracer=tracer,
            index_base=index_base,
            device=device,
        )

    ex.CompiledKernel.launch = recording
    try:
        yield captured
    finally:
        ex.CompiledKernel.launch = orig


def _replay_once(compiled, launches, tier):
    payloads = [
        ({name: buf.copy() for name, buf in bufs.items()}, scalars, gsz, lsz)
        for bufs, scalars, gsz, lsz in launches
    ]
    start = time.perf_counter()
    for bufs, scalars, gsz, lsz in payloads:
        compiled.launch(bufs, scalars, gsz, lsz, tier=tier)
    return time.perf_counter() - start


def _time_replay(compiled, launches, tier, repeats):
    """Best-of-``repeats`` wall time replaying ``launches`` under
    ``tier`` (one untimed warm-up pass first)."""
    _replay_once(compiled, launches, tier)
    return min(_replay_once(compiled, launches, tier) for _ in range(repeats))


def bench_app(
    name,
    scale=1.0,
    max_sim_items=DEFAULT_MAX_SIM_ITEMS,
    repeats=3,
    config=None,
    target="gtx580",
    tracer=None,
):
    """Benchmark one app; returns a plain-dict result.

    ``tracer`` traces the capture run (the end-to-end pass that records
    the launch payloads) — one shared tracer across apps gives
    ``bench --trace-out`` a per-app view of where the simulator spends
    its time.
    """
    bench = BENCHMARKS[name]
    config = config or nolocal_config()
    with capture_launches() as captured:
        run_configuration(
            bench,
            target,
            scale=scale,
            steps=1,
            config=config,
            max_sim_items=max_sim_items,
            tracer=tracer,
        )
    start = time.perf_counter()
    run_configuration(bench, "bytecode", scale=scale, steps=1)
    host_s = time.perf_counter() - start

    kernels = {}
    best = 0.0
    for kname, rec in sorted(captured.items()):
        compiled = rec["kernel"]
        launches = rec["launches"]
        entry = {
            "launches": len(launches),
            "global_size": launches[0][2],
            "eligible": bool(compiled.batch_supported),
        }
        # _batch_callable() can demote after codegen; check it before
        # trusting the static eligibility bit.
        if compiled.batch_supported and compiled._batch_callable() is None:
            entry["eligible"] = False
        if not entry["eligible"]:
            entry["reason"] = compiled.batch_reason
            kernels[kname] = entry
            continue
        per_item_s = _time_replay(compiled, launches, "per-item", repeats)
        batch_s = _time_replay(compiled, launches, "batch", repeats)
        entry["per_item_s"] = per_item_s
        entry["batch_s"] = batch_s
        entry["speedup"] = (
            per_item_s / batch_s if batch_s > 0 else float("inf")
        )
        best = max(best, entry["speedup"])
        kernels[kname] = entry
    return {
        "app": name,
        "target": target,
        "scale": scale,
        "max_sim_items": max_sim_items,
        "host_interp_s": host_s,
        "kernels": kernels,
        "best_batch_speedup": best,
    }


def run_bench(
    apps=None,
    scale=1.0,
    max_sim_items=DEFAULT_MAX_SIM_ITEMS,
    repeats=3,
    config=None,
    target="gtx580",
    out_path=None,
    trace_out=None,
):
    """Benchmark ``apps`` (default: all nine) and optionally write the
    ``BENCH_executor.json`` payload to ``out_path``.

    ``trace_out`` writes one trace file covering every app's capture
    run (Chrome JSON, or JSONL when the path ends in ``.jsonl``).
    """
    from repro.runtime.tracing import Tracer

    tracer = Tracer() if trace_out is not None else None
    apps = list(apps) if apps else sorted(BENCHMARKS)
    results = {
        "target": target,
        "scale": scale,
        "max_sim_items": max_sim_items,
        "repeats": repeats,
        "apps": {},
    }
    for name in apps:
        results["apps"][name] = bench_app(
            name,
            scale=scale,
            max_sim_items=max_sim_items,
            repeats=repeats,
            config=config,
            target=target,
            tracer=tracer,
        )
    results["apps_with_5x_batch_speedup"] = sorted(
        name
        for name, app in results["apps"].items()
        if app["best_batch_speedup"] >= 5.0
    )
    results["warm_restart"] = warm_restart_metrics(
        app=WARM_RESTART_APP,
        target=target,
        scale=METRICS_PIN_SCALE,
        max_sim_items=METRICS_PIN_SIM_ITEMS,
    )
    if out_path is not None:
        atomic_write_json(out_path, results)
    if tracer is not None:
        if str(trace_out).endswith(".jsonl"):
            tracer.write_jsonl(trace_out)
        else:
            tracer.write_chrome(trace_out)
    return results


METRICS_PIN_SCALE = 0.3
METRICS_PIN_SIM_ITEMS = 256


def warm_restart_metrics(
    app=WARM_RESTART_APP,
    target="gtx580",
    scale=METRICS_PIN_SCALE,
    max_sim_items=METRICS_PIN_SIM_ITEMS,
):
    """Measure the crash-recovery warm restart: journal a full run into
    a temp directory (with the on-disk kernel store enabled), drop the
    in-memory kernel cache as a process restart would, resume, and
    report the resumed run's integer counters. The interesting ones:
    ``journal.items_skipped`` (every item served from the WAL) and
    ``cache.disk_hits`` with ``cache.misses`` absent — zero recompiles.
    """
    from repro.opencl import kernel_cache as kc

    bench = BENCHMARKS[app]
    with tempfile.TemporaryDirectory(prefix="repro-warm-") as tmp:
        journal_dir = os.path.join(tmp, "journal")
        kc.configure_disk_store(os.path.join(tmp, "kernels"))
        try:
            cold = run_configuration(
                bench,
                target,
                scale=scale,
                steps=1,
                max_sim_items=max_sim_items,
                journal=journal_dir,
            )
            kc.reset_global_cache()
            warm = run_configuration(
                bench,
                target,
                scale=scale,
                steps=1,
                max_sim_items=max_sim_items,
                journal=journal_dir,
                resume=True,
            )
        finally:
            kc.configure_disk_store(None)
            kc.reset_global_cache()
    metrics = {
        key: value
        for key, value in sorted(warm.metrics.items())
        if isinstance(value, int) and not isinstance(value, bool)
    }
    return {
        "app": app,
        "bit_exact": warm.checksum == cold.checksum,
        "metrics": metrics,
    }


def collect_metrics(
    apps=None,
    scale=METRICS_PIN_SCALE,
    max_sim_items=METRICS_PIN_SIM_ITEMS,
    target="gtx580",
):
    """Capture every app's canonical counters at a *pinned* config.

    Runs each app end to end (default compiler config, fixed scale and
    work-item cap — deliberately independent of the REPRO_BENCH_* env
    knobs) and keeps the integer-valued metrics from
    ``RunResult.metrics``: ``executor.launches.*``, ``cache.*``,
    ``transfer.bytes_*``, histogram ``.count``s, and any ``recovery.*``
    / ``guards.*`` activity. Simulated-nanosecond floats are dropped —
    they move legitimately with cost-model tuning, while a count that
    changes means the execution shape changed and should be an explicit
    commit (see ``benchmarks/perf/test_metrics_baseline.py``).
    """
    apps = list(apps) if apps else sorted(BENCHMARKS)
    out = {
        "target": target,
        "scale": scale,
        "max_sim_items": max_sim_items,
        "apps": {},
    }
    for name in apps:
        result = run_configuration(
            BENCHMARKS[name],
            target,
            scale=scale,
            steps=1,
            max_sim_items=max_sim_items,
        )
        out["apps"][name] = {
            key: value
            for key, value in sorted(result.metrics.items())
            if isinstance(value, int) and not isinstance(value, bool)
        }
    # A pseudo-app capturing the journaled warm restart at the same
    # pinned config: its journal.items_skipped / cache.disk_hits counts
    # are diffed against the committed baseline like any other app, so
    # a regression in crash recovery shows up as a CI metrics diff.
    out["apps"]["warm-restart({})".format(WARM_RESTART_APP)] = (
        warm_restart_metrics(
            app=WARM_RESTART_APP,
            target=target,
            scale=scale,
            max_sim_items=max_sim_items,
        )["metrics"]
    )
    return out


def format_bench(results):
    """Human-readable table for the CLI."""
    lines = [
        "executor bench — target {}, scale {}, max-sim-items {}".format(
            results["target"], results["scale"], results["max_sim_items"]
        )
    ]
    for name in sorted(results["apps"]):
        app = results["apps"][name]
        lines.append(
            "{:18s} host-interp {:8.3f}s".format(name, app["host_interp_s"])
        )
        for kname in sorted(app["kernels"]):
            entry = app["kernels"][kname]
            if not entry["eligible"]:
                lines.append(
                    "  {:32s} batch-ineligible: {}".format(
                        kname, entry.get("reason", "?")
                    )
                )
                continue
            lines.append(
                "  {:32s} per-item {:8.3f}s  batch {:8.3f}s  {:6.1f}x".format(
                    kname,
                    entry["per_item_s"],
                    entry["batch_s"],
                    entry["speedup"],
                )
            )
    winners = results.get("apps_with_5x_batch_speedup", [])
    lines.append(
        "apps with >=5x batch speedup: {}".format(
            ", ".join(winners) if winners else "(none)"
        )
    )
    return "\n".join(lines)
