"""Tables 1-3 of the paper.

Table 1 is a qualitative programming-model comparison; Table 2 is the
device catalog (checked against :mod:`repro.opencl.device`); Table 3 is
the benchmark roster (checked against :mod:`repro.apps.registry`).
"""

from __future__ import annotations

from repro.apps.registry import BENCHMARKS
from repro.opencl.device import DEVICES

# Table 1: GPU programming in OpenCL vs Lime.
TABLE1 = [
    ("offload unit", "kernel", "filter"),
    ("communication", "API", "=> operator"),
    ("data parallelism", "manual", "map & reduce"),
    ("memory qualifiers", "manual", "compiler"),
    ("synchronization", "manual", "compiler"),
    ("scheduling", "manual", "compiler"),
]


def table1():
    lines = ["{:22s}{:>12s}{:>16s}".format("", "OpenCL", "Lime")]
    for row in TABLE1:
        lines.append("{:22s}{:>12s}{:>16s}".format(*row))
    return "\n".join(lines)


def table2():
    """The evaluation platforms, from the device models."""
    lines = [
        "{:28s}{:>6s}{:>10s}{:>10s}{:>10s}{:>8s}".format(
            "Model", "Cores", "FP/core", "Const", "Local", "L2"
        )
    ]
    for device in DEVICES.values():
        lines.append(
            "{:28s}{:>6d}{:>10d}{:>10s}{:>10s}{:>8s}".format(
                device.name,
                device.compute_units,
                device.fp_units_per_unit,
                _kb(device.constant_memory_bytes),
                "{}x{}".format(
                    device.compute_units, _kb(device.local_memory_bytes)
                ),
                _kb(device.l2_cache_bytes) if device.l2_cache_bytes else "-",
            )
        )
    return "\n".join(lines)


def _kb(nbytes):
    if nbytes >= 1024 * 1024:
        return "{}MB".format(nbytes // (1024 * 1024))
    return "{}KB".format(nbytes // 1024)


def table3():
    """The benchmark roster with the paper's size columns."""
    lines = [
        "{:20s}{:42s}{:>10s}{:>10s}{:>9s}".format(
            "Name", "Description", "Input", "Output", "Type"
        )
    ]
    for bench in BENCHMARKS.values():
        meta = bench.table3
        lines.append(
            "{:20s}{:42s}{:>10s}{:>10s}{:>9s}".format(
                bench.name,
                bench.description[:42],
                meta["input"],
                meta["output"],
                meta["dtype"],
            )
        )
    return "\n".join(lines)
