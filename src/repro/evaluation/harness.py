"""Execution targets and the end-to-end measurement loop.

A *target* is one column of Figure 7: the Lime-bytecode baseline
(host interpreter only), the OpenCL multicore runtime on 1 or 6 Core i7
cores, or one of the GPUs. ``run_configuration`` executes a benchmark's
full task-graph program against a target and reports simulated times
with the Figure 9 stage breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.compiler.options import OptimizationConfig
from repro.compiler.pipeline import Offloader
from repro.opencl.device import CORE_I7, get_device
from repro.runtime.engine import Engine
from repro.runtime.profiler import CommCostModel


@dataclass(frozen=True)
class Target:
    """One execution configuration."""

    name: str
    kind: str  # "bytecode" | "cpu" | "gpu"
    device_name: Optional[str] = None
    cores: Optional[int] = None

    def make_offloader(
        self, config=None, max_sim_items=None, sanitizer=None, exec_tier=None
    ):
        if self.kind == "bytecode":
            return None
        if self.kind == "cpu":
            device = CORE_I7.with_cores(self.cores)
            return Offloader(
                device=device,
                config=config or OptimizationConfig(),
                comm=CommCostModel.for_cpu(),
                max_sim_items=max_sim_items,
                sanitizer=sanitizer,
                exec_tier=exec_tier,
            )
        device = get_device(self.device_name)
        return Offloader(
            device=device,
            config=config or OptimizationConfig(),
            max_sim_items=max_sim_items,
            sanitizer=sanitizer,
            exec_tier=exec_tier,
        )


TARGETS = {
    "bytecode": Target(name="bytecode", kind="bytecode"),
    "cpu-1": Target(name="cpu-1", kind="cpu", cores=1),
    "cpu-6": Target(name="cpu-6", kind="cpu", cores=6),
    "gtx8800": Target(name="gtx8800", kind="gpu", device_name="gtx8800"),
    "gtx580": Target(name="gtx580", kind="gpu", device_name="gtx580"),
    "hd5970": Target(name="hd5970", kind="gpu", device_name="hd5970"),
}


@dataclass
class RunResult:
    benchmark: str
    target: str
    checksum: float
    total_ns: float
    host_compute_ns: float
    stages: dict
    offloaded: list
    rejections: list = field(default_factory=list)
    faults: dict = field(default_factory=dict)  # FailureLedger.summary()
    executor: dict = field(default_factory=dict)  # executor_summary()
    metrics: dict = field(default_factory=dict)  # MetricsRegistry.as_dict()
    fleet: dict = field(default_factory=dict)  # HealthMonitor.snapshot()
    journal: dict = field(default_factory=dict)  # RunJournal.stats()
    # Fleet command-queue accounting: per-device queue statistics
    # (DeviceFleet.queues_snapshot()) and the run's makespan — host
    # compute plus the furthest queue cursor. For single-device runs
    # the makespan equals total_ns (one implicit queue, no overlap).
    queues: dict = field(default_factory=dict)
    makespan_ns: float = 0.0
    # The run's full metrics in MetricsRegistry.delta() form — a
    # mergeable carve-out the serving daemon folds into per-tenant and
    # global registries (MetricsRegistry.merge_delta).
    metrics_delta: dict = field(default_factory=dict)
    # Graph-level fusion report (FusionPlanner.summary()): mode,
    # chains, fused kernels, elisions, bytes saved, declined seams by
    # typed reason. Empty at --fuse off, so existing JSON consumers
    # and the metrics baseline are unchanged.
    fusion: dict = field(default_factory=dict)

    @property
    def communication_ns(self):
        return sum(
            v
            for k, v in self.stages.items()
            if k not in ("kernel", "host_compute")
        )


def run_configuration(
    bench,
    target,
    scale=1.0,
    steps=None,
    config=None,
    resilience=None,
    max_sim_items=None,
    sanitizer=None,
    exec_tier=None,
    tracer=None,
    devices=None,
    fleet_policy=None,
    fleet_schedule=None,
    journal=None,
    resume=False,
    offloader=None,
    item_guard=None,
    fuse=None,
    hedge_urgency=None,
):
    """Run one benchmark end to end against one target.

    Args:
        bench: a :class:`repro.apps.base.Benchmark`.
        target: a :class:`Target` or its name.
        scale: workload scale factor (1.0 = the default simulated size;
            the paper-scale sizes are far larger, see DESIGN.md).
        steps: stream depth override (defaults to the benchmark's own).
        config: optimization toggles for the offloaded kernels.
        resilience: optional
            :class:`repro.runtime.resilience.ResiliencePolicy` enabling
            fault injection + retry/fallback for the offloaded filters.
        max_sim_items: override the simulated work-item cap.
        sanitizer: optional
            :class:`repro.runtime.sanitizer.SanitizerConfig` — runs the
            offloaded kernels under guarded (instrumented) execution.
        exec_tier: execution-tier request for kernel launches
            (``"auto"``/``"batch"``/``"per-item"``); ``None`` defers to
            the ``REPRO_EXEC_TIER`` environment variable, then ``auto``.
        tracer: optional :class:`repro.runtime.tracing.Tracer`; the run
            emits spans for every offload stage, and a final synthetic
            ``host_compute`` span (interpreter time is only known at
            the end of the run) so the trace covers the full reported
            simulated total.
        devices: optional list of device short keys — offload to a
            health-scheduled multi-device fleet
            (:class:`repro.compiler.pipeline.FleetOffloader`) instead
            of the single-device ``target``; the target is then only
            the fallback label.
        fleet_policy: placement strategy for ``devices`` — a
            :class:`repro.runtime.resilience.FleetPolicy`, or the
            strategy name (``"health"`` / ``"round-robin"``).
        fleet_schedule: dispatch schedule override for ``devices`` —
            ``"concurrent"`` (per-device command queues overlap;
            default) or ``"sequential"`` (one item in flight, the
            bit-exact comparison baseline). Folded into the effective
            :class:`~repro.runtime.resilience.FleetPolicy`, so the
            journal run key refuses a resume across schedules.
        journal: optional directory path — write-ahead-log every
            offloaded stream item to a crash-consistent
            :class:`repro.runtime.journal.RunJournal` there.
        resume: with ``journal``, recover the existing WAL (CRC-scan,
            torn-tail truncation, run-key check) and skip journaled
            items bit-exactly instead of recomputing them.
        offloader: a pre-built offloader (e.g. a
            :class:`repro.compiler.pipeline.FleetOffloader` over a
            *shared* :class:`repro.runtime.fleet.DeviceFleet` from the
            serving daemon); overrides the target/devices construction
            above. ``target`` (a string) then only labels the result.
        item_guard: optional callable ``guard(task_name)`` invoked
            before every task-worker item — the serving layer's
            deadline/budget/drain propagation point. May raise to abort
            the run at an item boundary; the exception is journaled as
            an ``aborted`` record before it propagates.
        fuse: graph-level fusion mode — ``"off"`` (the byte-identical
            seed path), ``"resident"`` (keep intermediate buffers
            device-resident across ``=>`` seams), or ``"kernel"``
            (additionally fuse legal chains into composite kernels);
            ``None`` defers to the ``REPRO_FUSE`` environment variable,
            then ``off``. See docs/FUSION.md.
        hedge_urgency: optional zero-argument callable returning the
            caller's deadline fraction (0.0 fresh → 1.0 at the
            deadline); installed on every fleet device worker so
            near-deadline serving sessions hedge eagerly
            (docs/HEDGING.md).

    Returns a :class:`RunResult` with simulated nanoseconds.
    """
    from repro.compiler.fusion import resolve_fuse_mode

    fuse = resolve_fuse_mode(fuse)
    target_label = target if isinstance(target, str) else target.name
    if isinstance(target, str) and (offloader is None or target in TARGETS):
        target = TARGETS[target]
    checked = bench.checked()
    inputs = bench.make_input(scale=scale)
    steps = steps if steps is not None else bench.steps
    effective_policy = fleet_policy
    if offloader is not None:
        target_name = target_label
        devices = None
    elif devices:
        from dataclasses import replace

        from repro.compiler.pipeline import FleetOffloader
        from repro.runtime.resilience import FleetPolicy

        policy = fleet_policy
        if isinstance(policy, str):
            policy = FleetPolicy(policy=policy)
        if fleet_schedule is not None:
            policy = replace(
                policy or FleetPolicy(), schedule=fleet_schedule
            )
        effective_policy = policy
        offloader = FleetOffloader(
            devices,
            policy=policy,
            config=config or OptimizationConfig(),
            max_sim_items=max_sim_items,
            sanitizer=sanitizer,
            exec_tier=exec_tier,
        )
        target_name = "fleet:" + "+".join(devices)
    else:
        offloader = target.make_offloader(
            config,
            max_sim_items=max_sim_items,
            sanitizer=sanitizer,
            exec_tier=exec_tier,
        )
        target_name = target.name
    run_journal = None
    if journal is not None:
        from repro.opencl.kernel_cache import sanitizer_key
        from repro.runtime.journal import RunJournal

        # Everything that shapes the item stream goes into the run key:
        # resuming against a different configuration is refused rather
        # than producing silently wrong "skips".
        descriptor = {
            "benchmark": bench.name,
            "target": target_name,
            "scale": scale,
            "steps": steps,
            "max_sim_items": max_sim_items,
            "config": (config or OptimizationConfig()).describe(),
            "sanitizer": sanitizer_key(sanitizer),
            "exec_tier": exec_tier,
            "devices": list(devices) if devices else None,
            "fleet_policy": (
                str(effective_policy) if effective_policy else None
            ),
            "resilient": resilience is not None,
            "fuse": fuse,
        }
        run_journal = RunJournal.open(journal, descriptor, resume=resume)
    try:
        engine = Engine(
            checked,
            offloader=offloader,
            resilience=resilience,
            tracer=tracer,
            journal=run_journal,
            item_guard=item_guard,
            fuse=fuse,
            hedge_urgency=hedge_urgency,
        )
        checksum = engine.run_static(
            bench.main_class, bench.run_method, list(inputs) + [steps]
        )
        if run_journal is not None:
            run_journal.record_complete(float(checksum))
            journal_stats = run_journal.stats()
        else:
            journal_stats = {}
    except Exception as err:
        # A run dying mid-stream still leaves a recoverable journal:
        # the abort record marks a clean boundary for a later --resume
        # (the wall-deadline watchdog and SIGTERM paths do the same).
        if run_journal is not None:
            run_journal.record_aborted(
                "{}: {}".format(type(err).__name__, err)
            )
        raise
    finally:
        if run_journal is not None:
            run_journal.close()
    stages = engine.profile.stages.as_dict()
    stages["host_compute"] = engine.host_compute_ns()
    fleet = getattr(offloader, "fleet", None)
    if fleet is not None:
        # The reduce point: merge the per-device queue cursors into the
        # global clock so the synthetic host_compute span starts after
        # the last queue drained and the trace covers the makespan.
        clock = getattr(engine.profile.tracer, "clock", None)
        if clock is not None:
            clock.ns = max(clock.ns, fleet.makespan_ns())
    engine.profile.tracer.charge(
        "host_compute",
        engine.host_compute_ns(),
        cat="host",
        benchmark=bench.name,
    )
    ledger = engine.profile.faults
    return RunResult(
        benchmark=bench.name,
        target=target_name,
        checksum=float(checksum),
        total_ns=engine.total_ns(),
        host_compute_ns=engine.host_compute_ns(),
        stages=stages,
        offloaded=list(engine.offloaded_tasks),
        rejections=list(offloader.rejections) if offloader else [],
        faults=ledger.summary() if ledger.any_activity() else {},
        executor=engine.profile.executor_summary(),
        metrics=engine.profile.metrics.as_dict(),
        fleet=fleet.snapshot() if fleet is not None else {},
        journal=journal_stats,
        queues=fleet.queues_snapshot() if fleet is not None else {},
        makespan_ns=engine.makespan_ns(),
        metrics_delta=engine.profile.metrics.delta({}),
        fusion=engine.fusion_summary(),
    )
