"""Figure 9: computation vs communication breakdown.

For every benchmark, the fraction of end-to-end time spent in each
stage: kernel computation, Java-side marshalling, C-side marshalling,
OpenCL API setup, and raw transfer; host-resident Lime code (sources and
sinks) is reported as host compute. Claims to reproduce:

(a) CPU: computation dominates everywhere except JG-Crypt (very low
    compute per byte → marshalling-bound);
(b) GPU (GTX580): communication averages ~40%, most of it marshalling
    (~30%); OpenCL setup is ~5% except for RPES (~40%, many launches);
    raw PCIe transfer is minor.
"""

from __future__ import annotations

from repro.apps.registry import BENCHMARKS
from repro.evaluation.figure7 import BENCH_ORDER
from repro.evaluation.harness import run_configuration

STAGES = [
    "kernel",
    "java_marshal",
    "c_marshal",
    "opencl_setup",
    "transfer",
    "host_compute",
]


def run_figure9(target, scale=1.0, benchmarks=None, steps=None):
    """Returns benchmark -> {stage -> fraction of total} for one target
    ("cpu-6" for Figure 9(a), "gtx580" for Figure 9(b))."""
    benchmarks = benchmarks or BENCH_ORDER
    table = {}
    for name in benchmarks:
        bench = BENCHMARKS[name]
        result = run_configuration(bench, target, scale=scale, steps=steps)
        total = sum(result.stages.values())
        table[name] = {
            stage: (result.stages.get(stage, 0.0) / total if total else 0.0)
            for stage in STAGES
        }
        table[name]["_total_ns"] = total
    return table


def communication_fraction(row):
    """Everything that is not device computation or host Lime code."""
    return (
        row["java_marshal"]
        + row["c_marshal"]
        + row["opencl_setup"]
        + row["transfer"]
    )


def format_figure9(table):
    lines = [
        "{:20s}{:>9s}{:>9s}{:>9s}{:>9s}{:>9s}{:>9s}{:>7s}".format(
            "benchmark",
            "kernel",
            "javaMsh",
            "cMsh",
            "setup",
            "pcie",
            "host",
            "comm%",
        )
    ]
    for name, row in table.items():
        lines.append(
            "{:20s}{:9.1%}{:9.1%}{:9.1%}{:9.1%}{:9.1%}{:9.1%}{:7.0%}".format(
                name,
                row["kernel"],
                row["java_marshal"],
                row["c_marshal"],
                row["opencl_setup"],
                row["transfer"],
                row["host_compute"],
                communication_fraction(row),
            )
        )
    return "\n".join(lines)
