"""Figure 8: compiled Lime vs hand-tuned OpenCL, kernel time only.

For each of the five benchmarks with a hand-tuned baseline, each of the
three GPUs, and each of the eight optimization configurations, measure
kernel-only time and report the ratio hand_ns / lime_ns (the paper's
"speedup relative to hand-tuned"; >1 means the compiled kernel is
faster). Headline claims to reproduce:

- the best configuration lands within 0.75-1.40x of hand-tuned;
- global-only is up to ~10x slower on the GTX8800 but within ~20% on
  the cache-equipped GTX580;
- Mosaic's compiled kernel beats hand-tuned (bank-conflict padding);
- Parboil-RPES gains strongly from texture memory on the GTX8800.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import BENCHMARKS, FIGURE8_BENCHMARKS
from repro.compiler.options import FIGURE8_CONFIGS
from repro.compiler.pipeline import compile_filter
from repro.opencl import get_device

GPUS = ["gtx8800", "gtx580", "hd5970"]

# Bound (non-stream) worker parameters per benchmark: input index ->
# parameter name. The first input is always the stream.
_BOUND_PARAMS = {
    "parboil-mriq": {"kspace": 1},
    "jg-crypt": {"key": 1},
}


def measure_compiled_kernel(bench, device_name, config, scale=1.0, local_size=64):
    """Kernel-only time of the compiled Lime filter under ``config``.

    Returns (kernel_ns, output) and checks the output against the NumPy
    reference.
    """
    checked = bench.checked()
    inputs = bench.make_input(scale=scale)
    bound = {
        name: inputs[idx] for name, idx in _BOUND_PARAMS.get(bench.name, {}).items()
    }
    cf = compile_filter(
        checked,
        bench.filter_worker(),
        device=get_device(device_name),
        config=config,
        bound_values=bound or None,
        local_size=local_size,
    )
    out = np.asarray(cf(inputs[0]))
    if bench.reference is not None:
        ref = np.asarray(bench.reference(*inputs))
        if out.dtype.kind == "f":
            ok = np.allclose(out, ref, rtol=2e-3, atol=1e-4)
        else:
            ok = np.array_equal(out, ref)
        if not ok:
            raise AssertionError(
                "{}@{} [{}]: compiled kernel output mismatch".format(
                    bench.name, device_name, config.describe()
                )
            )
    return cf.last_timing.kernel_ns, out


def measure_hand_tuned(bench, device_name, scale=1.0, local_size=64):
    inputs = bench.make_input(scale=scale)
    out, kernel_ns = bench.run_baseline(device_name, *inputs, local_size=local_size)
    if bench.reference is not None:
        ref = np.asarray(bench.reference(*inputs))
        out = np.asarray(out)
        if out.dtype.kind == "f":
            ok = np.allclose(out, ref, rtol=2e-3, atol=1e-4)
        else:
            ok = np.array_equal(out, ref)
        if not ok:
            raise AssertionError(
                "{}@{}: hand-tuned output mismatch".format(bench.name, device_name)
            )
    return kernel_ns


def run_figure8(scale=1.0, gpus=None, benchmarks=None, configs=None):
    """Returns gpu -> benchmark -> {config -> relative speedup,
    "_hand_ns" -> ns, "_lime_ns" -> {config -> ns}}."""
    gpus = gpus or GPUS
    benchmarks = benchmarks or FIGURE8_BENCHMARKS
    configs = configs or FIGURE8_CONFIGS
    table = {}
    for gpu in gpus:
        table[gpu] = {}
        for name in benchmarks:
            bench = BENCHMARKS[name]
            hand_ns = measure_hand_tuned(bench, gpu, scale=scale)
            row = {"_hand_ns": hand_ns, "_lime_ns": {}}
            for config_name, config in configs.items():
                lime_ns, _ = measure_compiled_kernel(
                    bench, gpu, config, scale=scale
                )
                row["_lime_ns"][config_name] = lime_ns
                row[config_name] = hand_ns / lime_ns
            table[gpu][name] = row
    return table


def best_config_ratio(row):
    """The benchmark's best bar (max speedup over hand-tuned)."""
    return max(v for k, v in row.items() if not k.startswith("_"))


def format_figure8(table):
    lines = []
    config_names = None
    for gpu, per_bench in table.items():
        lines.append("== {} ==".format(gpu))
        for name, row in per_bench.items():
            if config_names is None:
                config_names = [k for k in row if not k.startswith("_")]
            lines.append("  {}".format(name))
            for config_name in config_names:
                lines.append(
                    "    {:28s} {:6.2f}x vs hand-tuned".format(
                        config_name, row[config_name]
                    )
                )
    return "\n".join(lines)
