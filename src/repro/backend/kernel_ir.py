"""Kernel IR: the device-side program representation.

One IR, two producers, one consumer:

- the Lime compilation pipeline (:mod:`repro.compiler`) lowers filters to
  this IR;
- the OpenCL-C frontend (:mod:`repro.opencl.clc`) parses hand-written
  kernels to the same IR;
- the simulated device (:mod:`repro.opencl.executor`) executes only this
  IR, and :mod:`repro.backend.opencl_gen` pretty-prints it back to
  OpenCL C source.

The IR is structured (statements and expressions, not a CFG): OpenCL C
kernels are structured programs and keeping the loop structure explicit
is what makes the memory-optimization passes and the work-group
simulation straightforward.

Arrays are one-dimensional at this level: multidimensional Lime arrays
are flattened row-major during lowering, with index arithmetic made
explicit — exactly what the generated OpenCL does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Space(enum.Enum):
    """OpenCL address spaces (Section 2 of the paper)."""

    GLOBAL = "global"
    LOCAL = "local"
    PRIVATE = "private"
    CONSTANT = "constant"
    IMAGE = "image"


# -- types ---------------------------------------------------------------------


@dataclass(frozen=True)
class KScalar:
    """A device scalar type. ``kind`` is one of bool/char/int/long/
    float/double (char doubles as Lime's byte)."""

    kind: str

    def __str__(self):
        return self.kind

    @property
    def is_float(self):
        return self.kind in ("float", "double")

    @property
    def size(self):
        return _SCALAR_SIZES[self.kind]


_SCALAR_SIZES = {
    "bool": 1,
    "char": 1,
    "int": 4,
    "long": 8,
    "float": 4,
    "double": 8,
}

K_BOOL = KScalar("bool")
K_CHAR = KScalar("char")
K_INT = KScalar("int")
K_LONG = KScalar("long")
K_FLOAT = KScalar("float")
K_DOUBLE = KScalar("double")


@dataclass(frozen=True)
class KVector:
    """An OpenCL vector type like ``float4``."""

    base: KScalar
    width: int

    def __str__(self):
        return "{}{}".format(self.base.kind, self.width)

    @property
    def is_float(self):
        return self.base.is_float

    @property
    def size(self):
        return self.base.size * self.width


def is_vector(ktype):
    return isinstance(ktype, KVector)


# -- kernel structure -------------------------------------------------------------


@dataclass
class KParam:
    """A kernel parameter.

    Buffer parameters (``is_pointer``) carry an address space and an
    element type; scalar parameters are passed by value. ``read_only``
    buffers are eligible for constant/image placement.
    """

    name: str
    ktype: object  # KScalar or KVector (element type for pointers)
    space: Space = Space.PRIVATE
    is_pointer: bool = False
    read_only: bool = False


@dataclass
class KLocalArray:
    """A ``__local`` or ``__private`` array declared inside the kernel.

    ``size`` is in elements of ``ktype``; for LOCAL arrays sized by the
    work-group, ``size`` may be the symbolic string ``"local_size"``
    times a factor via ``per_item``. ``pad`` adds that many elements of
    padding per ``row`` elements (bank-conflict removal).
    """

    name: str
    ktype: object
    size: int
    space: Space = Space.PRIVATE
    pad: int = 0
    row: int = 0  # row length the padding applies to (0 = no rows)


# -- expressions ---------------------------------------------------------------------


class KExpr:
    pass


@dataclass
class KConst(KExpr):
    value: object
    ktype: object


@dataclass
class KVar(KExpr):
    name: str
    ktype: object


@dataclass
class KUn(KExpr):
    op: str
    operand: KExpr
    ktype: object


@dataclass
class KBin(KExpr):
    op: str
    left: KExpr
    right: KExpr
    ktype: object


@dataclass
class KSelect(KExpr):
    cond: KExpr
    then: KExpr
    otherwise: KExpr
    ktype: object


@dataclass
class KCast(KExpr):
    expr: KExpr
    ktype: object


@dataclass
class KCall(KExpr):
    """A builtin call: math functions (``sqrt``, ``native_sin``, ...) or
    work-item functions (``get_global_id``...)."""

    name: str
    args: List[KExpr]
    ktype: object


@dataclass
class KLoad(KExpr):
    """Load from a named array.

    ``index`` is in elements of ``ktype``: a scalar load reads
    ``array[index]``; a vector load of width W reads elements
    ``[index*W, index*W + W)`` (OpenCL ``vloadW(index, array)``).
    ``site`` is a unique static identifier used by the timing model to
    aggregate per-access-site statistics (coalescing, conflicts).
    """

    array: str
    index: KExpr
    space: Space
    ktype: object
    site: int = -1


@dataclass
class KImageLoad(KExpr):
    """``read_imagef(img, sampler, (int2)(x, 0))`` — always yields a
    4-wide vector (2-wide arrays use a packed representation)."""

    image: str
    coord: KExpr
    ktype: object  # KVector
    site: int = -1


@dataclass
class KVecExtract(KExpr):
    vec: KExpr
    lane: int
    ktype: object


@dataclass
class KVecBuild(KExpr):
    elems: List[KExpr]
    ktype: object  # KVector


# -- statements ----------------------------------------------------------------------


class KStmt:
    pass


@dataclass
class KDecl(KStmt):
    name: str
    ktype: object
    init: Optional[KExpr] = None


@dataclass
class KAssign(KStmt):
    """``name = value`` for scalars."""

    name: str
    value: KExpr


@dataclass
class KStore(KStmt):
    """Store into a named array; same indexing convention as
    :class:`KLoad` (vector stores write a whole vector)."""

    array: str
    index: KExpr
    value: KExpr
    space: Space
    ktype: object
    site: int = -1


@dataclass
class KIf(KStmt):
    cond: KExpr
    then: List[KStmt]
    otherwise: List[KStmt] = field(default_factory=list)


@dataclass
class KFor(KStmt):
    """Canonical loop: ``for (var = lo; var < hi; var += step)``."""

    var: str
    lo: KExpr
    hi: KExpr
    step: KExpr
    body: List[KStmt]


@dataclass
class KWhile(KStmt):
    cond: KExpr
    body: List[KStmt]


@dataclass
class KBarrier(KStmt):
    """``barrier(CLK_LOCAL_MEM_FENCE)``."""


@dataclass
class KReturn(KStmt):
    """Early exit from the kernel (void)."""


@dataclass
class KBreak(KStmt):
    pass


@dataclass
class KContinue(KStmt):
    pass


@dataclass
class KComment(KStmt):
    text: str


# -- the kernel -----------------------------------------------------------------------


@dataclass
class Kernel:
    """A complete device kernel.

    ``arrays`` lists in-kernel array declarations (private arrays, local
    scratch). ``meta`` is a free-form dict the glue layer uses (input /
    output parameter names, element shapes, reduction info).
    """

    name: str
    params: List[KParam]
    arrays: List[KLocalArray]
    body: List[KStmt]
    meta: dict = field(default_factory=dict)

    def param(self, name):
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)

    def buffer_params(self):
        return [p for p in self.params if p.is_pointer]

    def scalar_params(self):
        return [p for p in self.params if not p.is_pointer]


def walk_stmts(stmts):
    """Yield every statement in a statement list, recursively."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, KIf):
            yield from walk_stmts(stmt.then)
            yield from walk_stmts(stmt.otherwise)
        elif isinstance(stmt, (KFor, KWhile)):
            yield from walk_stmts(stmt.body)


def walk_exprs(node):
    """Yield every sub-expression of an expression or statement."""
    if isinstance(node, KExpr):
        yield node
        children = []
        if isinstance(node, KUn):
            children = [node.operand]
        elif isinstance(node, KBin):
            children = [node.left, node.right]
        elif isinstance(node, KSelect):
            children = [node.cond, node.then, node.otherwise]
        elif isinstance(node, KCast):
            children = [node.expr]
        elif isinstance(node, KCall):
            children = node.args
        elif isinstance(node, KLoad):
            children = [node.index]
        elif isinstance(node, KImageLoad):
            children = [node.coord]
        elif isinstance(node, KVecExtract):
            children = [node.vec]
        elif isinstance(node, KVecBuild):
            children = node.elems
        for child in children:
            yield from walk_exprs(child)
    elif isinstance(node, KStmt):
        for expr in stmt_exprs(node):
            yield from walk_exprs(expr)


def stmt_exprs(stmt):
    """Yield the expressions directly attached to ``stmt`` (not the ones
    inside nested statements — combine with :func:`walk_stmts` for a full
    traversal without double visits)."""
    if isinstance(stmt, KDecl):
        if stmt.init is not None:
            yield stmt.init
    elif isinstance(stmt, KAssign):
        yield stmt.value
    elif isinstance(stmt, KStore):
        yield stmt.index
        yield stmt.value
    elif isinstance(stmt, KIf):
        yield stmt.cond
    elif isinstance(stmt, KFor):
        yield stmt.lo
        yield stmt.hi
        yield stmt.step
    elif isinstance(stmt, KWhile):
        yield stmt.cond


def walk_stmt_exprs(stmt):
    """Yield every sub-expression attached directly to ``stmt``."""
    for expr in stmt_exprs(stmt):
        yield from walk_exprs(expr)


def assign_sites(kernel):
    """Assign unique site ids to every memory access in the kernel.
    Returns the list of access nodes, indexed by site id."""
    sites = []

    def visit(node):
        if isinstance(node, (KLoad, KImageLoad)):
            node.site = len(sites)
            sites.append(node)

    for stmt in walk_stmts(kernel.body):
        if isinstance(stmt, KStore):
            for expr in stmt_exprs(stmt):
                for sub in walk_exprs(expr):
                    visit(sub)
            stmt.site = len(sites)
            sites.append(stmt)
        else:
            for expr in stmt_exprs(stmt):
                for sub in walk_exprs(expr):
                    visit(sub)
    return sites
