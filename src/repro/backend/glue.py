"""Generated host-side coordination ("glue") code.

The paper's compiler emits C code that "handles data exchange and the
calls to the OpenCL API". :class:`CompiledFilter` is that generated glue,
as an executable object: invoked by the task-graph runtime as the
worker of an offloaded filter, it walks the full Figure 6 path on every
invocation —

1. **Java marshal**: serialize the input Lime value(s) — the stream
   input plus any worker parameters bound at task creation — to the byte
   wire format (:mod:`repro.runtime.marshal`);
2. **JNI crossing + C marshal**: decode the byte stream into C-layout
   (flattened, densely packed) device arrays;
3. **OpenCL setup**: create buffers, bind arguments, choose the NDRange;
4. **transfer**: host-to-device copies (PCIe);
5. **kernel**: execute on the simulated device
   (:mod:`repro.opencl.executor` + :mod:`repro.opencl.timing`);
6. the mirror path back: device-to-host transfer, C serialize, Java
   deserialize into a frozen Lime value array.

Every stage's simulated cost is recorded into a
:class:`repro.runtime.profiler.ExecutionProfile` under the Figure 9
stage names.
"""

from __future__ import annotations

import os
import zlib

import numpy as np

from repro.backend.kernel_ir import Space
from repro.errors import RuntimeFault, TransferFault


class _ConstantOverflow(Exception):
    """Internal: a constant-space buffer exceeded the device capacity;
    the caller falls back to the global-memory compilation."""
from repro.frontend.types import ArrayType
from repro.opencl.timing import time_launch
from repro.runtime import marshal
from repro.runtime.cost import StageTimes
from repro.runtime.sanitizer import LaunchGuard

_NP_DTYPES = {
    "bool": np.bool_,
    "char": np.int8,
    "int": np.int32,
    "long": np.int64,
    "float": np.float32,
    "double": np.float64,
}


def np_dtype(kscalar):
    return _NP_DTYPES[kscalar.kind]


# Simulation knob: cap on simulated work-items per launch. The generated
# kernels stride over the index space (Figure 4), so capping the NDRange
# changes only simulation effort, never results. Configurable per filter
# (Offloader(max_sim_items=...)), per process (REPRO_MAX_SIM_ITEMS), or
# per CLI invocation (--max-sim-items).
MAX_SIMULATED_ITEMS = 2048

MAX_SIM_ITEMS_ENV = "REPRO_MAX_SIM_ITEMS"


def resolve_max_sim_items(explicit=None):
    """The effective work-item cap: an explicit value wins, then the
    ``REPRO_MAX_SIM_ITEMS`` environment variable, then the default.
    Resolved lazily (per launch) so runtime changes to the environment
    or the module default take effect immediately."""
    if explicit is not None:
        value = int(explicit)
    else:
        env = os.environ.get(MAX_SIM_ITEMS_ENV)
        if env is None:
            return MAX_SIMULATED_ITEMS
        try:
            value = int(env)
        except ValueError:
            raise RuntimeFault(
                "{} must be an integer, got {!r}".format(MAX_SIM_ITEMS_ENV, env)
            )
    if value < 1:
        raise RuntimeFault(
            "the simulated work-item cap must be >= 1, got {}".format(value)
        )
    return value


class CompiledFilter:
    """The offloaded worker for one filter task.

    Args:
        bound_values: values for worker parameters bound at task-creation
            time (``task Cls.m(bound...)``), by parameter name. The
            remaining parameter is the stream port.
    """

    def __init__(
        self,
        name,
        worker,
        plan,
        compiled_kernel,
        device,
        comm,
        profile,
        marshaller=marshal.SPECIALIZED,
        reduce_kernel=None,
        reduce_op=None,
        local_size=None,
        bound_values=None,
        direct_marshal=False,
        overlap=False,
        constant_fallback=None,
        max_sim_items=None,
        sanitizer=None,
        exec_tier=None,
    ):
        self.name = name
        self.worker = worker  # MethodDecl: for input/output Lime types
        self.plan = plan  # KernelPlan (None for pure reductions)
        self.compiled_kernel = compiled_kernel
        self.device = device
        self.comm = comm
        self.profile = profile
        self.marshaller = marshaller
        self.reduce_kernel = reduce_kernel
        self.reduce_op = reduce_op
        self.local_size = local_size or device.default_local_size
        self.bound_values = dict(bound_values or {})
        # Section 5.3's future-work optimizations, implemented as opt-ins:
        # - direct_marshal: "marshal directly to a format as required for
        #   device memory. This would approximately halve the marshaling
        #   overhead" — the C-side conversion disappears.
        # - overlap: "communication costs can be hidden by well-known
        #   pipelining techniques that overlap communication and
        #   computation" — each stream item's communication hides behind
        #   the previous item's kernel.
        self.direct_marshal = direct_marshal
        self.overlap = overlap
        # Lazily-compiled no-constant-memory variant: the compiler places
        # unbounded arrays in constant memory optimistically; the glue
        # checks the actual size at launch time and re-targets global
        # memory when the 64KB capacity is exceeded.
        self.constant_fallback = constant_fallback
        self.max_sim_items = max_sim_items  # None -> env var -> default
        # Guarded execution: a SanitizerConfig
        # (repro.runtime.sanitizer) arms per-launch bounds/race/
        # divergence/NaN checks and the watchdog; None is the seed path.
        self.sanitizer = sanitizer
        # Execution-tier request for kernel launches ("auto"/"batch"/
        # "per-item"); None defers to REPRO_EXEC_TIER, then auto.
        self.exec_tier = exec_tier
        # Fault-injection hook: installed by the resilience layer
        # (repro.runtime.resilience); None means every stage is clean.
        self.injector = None
        self._fallback_filter = None
        self._prev_kernel_ns = 0.0
        self.launches = 0
        self.last_timing = None

        bound_names = set(self.bound_values)
        free = [p for p in worker.params if p.name not in bound_names]
        if len(free) > 1:
            raise RuntimeFault(
                "worker '{}' has {} unbound parameters".format(name, len(free))
            )
        self.stream_param = free[0] if free else None
        self.param_types = {p.name: p.type for p in worker.params}

    # -- worker protocol -------------------------------------------------------

    def __call__(self, value=None):
        stages = StageTimes()
        # One "item" span per stream-item invocation; the stage charges
        # below nest under it, advancing the simulated clock by exactly
        # the nanoseconds the profiler records — so trace and profile
        # can never disagree. When tracing is off this is the
        # NULL_TRACER and every call here is a no-op.
        with self.profile.tracer.span(
            "item", cat="task", task=self.name, seq=self.launches
        ):
            try:
                device_values = self._inbound(value, stages)
                try:
                    result = self._execute(device_values, stages)
                except _ConstantOverflow:
                    if self._fallback_filter is None:
                        self._fallback_filter = self.constant_fallback()
                        self._fallback_filter.profile = self.profile
                    self._fallback_filter.injector = self.injector
                    self._fallback_filter.sanitizer = self.sanitizer
                    self._fallback_filter.exec_tier = self.exec_tier
                    return self._fallback_filter(value)
                result = self._outbound(result, stages)
            except RuntimeFault as err:
                # A fault mid-path abandons this attempt; expose the
                # stage time already spent so the resilience layer can
                # account it as recovery overhead ("time lost").
                err.partial_stages = stages
                raise
        if self.overlap and self.launches > 0:
            # Note: the trace keeps the unhidden stage charges — span
            # durations are recorded as time is spent, before this
            # rescaling (see docs/OBSERVABILITY.md, "Limitations").
            self._hide_communication(stages)
        self._prev_kernel_ns = stages.kernel
        self.profile.record(self.name, stages)
        self.launches += 1
        return result

    def _hide_communication(self, stages):
        """Double-buffered pipelining: this item's communication overlaps
        the previous item's kernel execution, so only the part exceeding
        that kernel time remains on the critical path."""
        comm = (
            stages.java_marshal
            + stages.c_marshal
            + stages.opencl_setup
            + stages.transfer
        )
        if comm <= 0:
            return
        hidden = min(comm, self._prev_kernel_ns)
        scale = 1.0 - hidden / comm
        stages.java_marshal *= scale
        stages.c_marshal *= scale
        stages.opencl_setup *= scale
        stages.transfer *= scale

    # -- inbound path ------------------------------------------------------------

    def _transmit(self, data, direction):
        """Move wire bytes across the (possibly faulty) link. The
        receiving end's CRC check — standard on real interconnects —
        detects injected corruption; the sender still holds the intact
        value, so the fault is retryable."""
        if self.injector is None:
            return data
        wire = self.injector.transmit(data, direction, self.name)
        if wire is not data and zlib.crc32(wire) != zlib.crc32(data):
            raise TransferFault(
                "task '{}': {} transfer failed the CRC check "
                "({} bytes)".format(self.name, direction, len(data))
            )
        return data

    def _inbound(self, value, stages):
        """Walk every worker argument through the wire format; returns a
        dict param-name -> device-side value."""
        device_values = {}
        tracer = self.profile.tracer
        items = list(self.bound_values.items())
        if self.stream_param is not None:
            items.append((self.stream_param.name, value))
        for param_name, host_value in items:
            lime_type = self.param_types[param_name]
            data, stats = marshal.serialize(
                host_value, lime_type, self.marshaller
            )
            jns = self.comm.java_marshal_ns(stats)
            stages.java_marshal += jns
            tracer.charge("java_marshal", jns, cat="stage", param=param_name)
            # The marshal cost above is charged before the wire check:
            # a corrupted transfer still paid for serialization, and the
            # resilience layer bills that time as recovery overhead.
            data = self._transmit(data, "h2d")
            device_value, c_stats = marshal.deserialize(
                data, lime_type, self.marshaller
            )
            if not self.direct_marshal:
                cns = self.comm.c_marshal_ns(c_stats)
                stages.c_marshal += cns
                tracer.charge("c_marshal", cns, cat="stage", param=param_name)
            self.profile.bytes_to_device += stats.payload_bytes
            self.profile.metrics.inc(
                "transfer.bytes_to_device", stats.payload_bytes
            )
            tns = self.comm.transfer_ns(stats.payload_bytes)
            stages.transfer += tns
            tracer.charge(
                "transfer",
                tns,
                cat="stage",
                param=param_name,
                bytes=stats.payload_bytes,
                direction="h2d",
            )
            device_values[param_name] = device_value
        return device_values

    def _index_space(self, device_values):
        """The kernel's logical size n (map elements / reduce length)."""
        meta = self.plan.kernel.meta if self.plan is not None else {}
        iota = meta.get("iota_source")
        if iota is not None:
            if iota.get("literal") is not None:
                return int(iota["literal"])
            return int(device_values[iota["param"]])
        source_param = meta.get("source_param")
        if source_param is None and self.stream_param is not None:
            source_param = self.stream_param.name
        source = device_values.get(source_param)
        if source is None:
            raise RuntimeFault("cannot determine the kernel index space")
        return int(np.asarray(source).shape[0])

    # -- execution ------------------------------------------------------------------

    def _make_guard(self, kernel_name):
        """A fresh per-launch guard (watchdog budget and trip counters
        are per launch); None when guarded execution is off."""
        if self.sanitizer is None or not self.sanitizer.instruments_launch():
            return None
        return LaunchGuard(self.sanitizer, kernel_name, task=self.name)

    def _launch_config(self, n):
        local = self.local_size
        items = min(max(n, 1), resolve_max_sim_items(self.max_sim_items))
        global_size = ((items + local - 1) // local) * local
        return global_size, local

    def _flat(self, device_values, param_name):
        value = device_values[param_name]
        return np.ascontiguousarray(value).reshape(-1)

    def _execute(self, device_values, stages):
        plan = self.plan
        if plan is None:
            # Pure reduction over the stream input array.
            flat = self._flat(device_values, self.stream_param.name)
            return self._run_reduce(flat, len(flat), stages)

        n = self._index_space(device_values)
        buffers = {}
        scalars = {}
        kernel = plan.kernel
        meta = kernel.meta
        if plan.input_binding is not None:
            source_param = meta.get("source_param") or self.stream_param.name
            buffers["_in"] = self._flat(device_values, source_param)
        out_dtype = np_dtype(plan.output_elem)
        out = np.zeros(n * plan.output_row, dtype=out_dtype)
        buffers["_out"] = out

        for entry in plan.arg_bindings:
            kind = entry[0]
            if kind == "scalar":
                spec = entry[1]
                if spec.kind == "literal":
                    scalars[spec.param_name] = spec.literal
                else:
                    scalars[spec.param_name] = device_values[spec.worker_param]
            else:
                spec, binding = entry[1], entry[2]
                buffers[binding.buffer] = self._flat(
                    device_values, spec.worker_param
                )
                scalars[binding.length_param] = int(
                    np.asarray(device_values[spec.worker_param]).shape[0]
                )

        self._check_constant_capacity(buffers)
        global_size, local = self._launch_config(n)
        for spill in plan.spill_buffers:
            buffers[spill.buffer] = np.zeros(
                global_size * spill.spill_size, dtype=np_dtype(spill.elem)
            )
        scalars["_n"] = n

        n_buffers = len(buffers)
        if self.injector is not None:
            self.injector.maybe_oom(
                self.name, sum(buf.nbytes for buf in buffers.values())
            )
        tracer = self.profile.tracer
        trace = self.compiled_kernel.launch(
            buffers,
            scalars,
            global_size,
            local,
            injector=self.injector,
            guard=self._make_guard(kernel.name),
            tier=self.exec_tier,
            tracer=tracer,
        )
        timing = time_launch(trace, self.device)
        self.last_timing = timing
        stages.kernel += timing.kernel_ns
        tracer.charge(
            "kernel",
            timing.kernel_ns,
            cat="stage",
            kernel=kernel.name,
            tier=trace.tier,
            global_size=global_size,
        )
        setup_ns = self.comm.setup_ns(buffers=n_buffers, launches=1)
        stages.opencl_setup += setup_ns
        tracer.charge("opencl_setup", setup_ns, cat="stage", buffers=n_buffers)
        self.profile.kernel_launches += 1
        self.profile.record_tier(trace.tier)
        self.profile.metrics.histogram("kernel.launch_ns").observe(
            timing.kernel_ns
        )
        if self.injector is not None:
            # Silent output corruption: no fault is raised and no CRC
            # fails — only sampled differential validation catches it.
            self.injector.maybe_corrupt_output(out, self.name)

        if self.reduce_kernel is not None:
            return self._run_reduce(out, len(out), stages)
        return out

    def _check_constant_capacity(self, buffers):
        constant_bytes = sum(
            buffers[p.name].nbytes
            for p in self.plan.kernel.params
            if p.is_pointer and p.space is Space.CONSTANT and p.name in buffers
        )
        if (
            constant_bytes > self.device.constant_memory_bytes
            and self.constant_fallback is not None
        ):
            raise _ConstantOverflow()

    def _run_reduce(self, flat_input, n, stages):
        local = self.local_size
        groups = min((n + local - 1) // local, 64) or 1
        partials = np.zeros(groups, dtype=flat_input.dtype)
        if self.injector is not None:
            self.injector.maybe_oom(
                self.name, flat_input.nbytes + partials.nbytes
            )
        tracer = self.profile.tracer
        trace = self.reduce_kernel.launch(
            {"_in": flat_input, "_out": partials},
            {"_n": n},
            groups * local,
            local,
            injector=self.injector,
            guard=self._make_guard(self.reduce_kernel.kernel.name),
            tier=self.exec_tier,
            tracer=tracer,
        )
        timing = time_launch(trace, self.device)
        stages.kernel += timing.kernel_ns
        tracer.charge(
            "kernel",
            timing.kernel_ns,
            cat="stage",
            kernel=self.reduce_kernel.kernel.name,
            tier=trace.tier,
            global_size=groups * local,
        )
        setup_ns = self.comm.setup_ns(buffers=2, launches=1)
        stages.opencl_setup += setup_ns
        tracer.charge("opencl_setup", setup_ns, cat="stage", buffers=2)
        self.profile.kernel_launches += 1
        self.profile.record_tier(trace.tier)
        self.profile.metrics.histogram("kernel.launch_ns").observe(
            timing.kernel_ns
        )
        op = self.reduce_op
        if op == "+":
            result = partials.sum()
        elif op == "*":
            result = partials.prod()
        elif op == "min":
            result = partials.min()
        elif op == "max":
            result = partials.max()
        else:
            raise RuntimeFault("unknown reduction op '{}'".format(op))
        value = result.item()
        return float(value) if partials.dtype.kind == "f" else int(value)

    # -- outbound path -----------------------------------------------------------------

    def _outbound(self, result, stages):
        return_type = self.worker.return_type
        if not isinstance(return_type, ArrayType):
            # Scalar result: negligible wire cost; the API round trip is
            # already charged via setup.
            return result
        if self.plan is not None and self.plan.output_row > 1:
            result = result.reshape(-1, self.plan.output_row)
        tracer = self.profile.tracer
        data, c_stats = marshal.serialize(result, return_type, self.marshaller)
        data = self._transmit(data, "d2h")
        if not self.direct_marshal:
            cns = self.comm.c_marshal_ns(c_stats)
            stages.c_marshal += cns
            tracer.charge("c_marshal", cns, cat="stage", direction="d2h")
        value, j_stats = marshal.deserialize(data, return_type, self.marshaller)
        jns = self.comm.java_marshal_ns(j_stats)
        stages.java_marshal += jns
        tracer.charge("java_marshal", jns, cat="stage", direction="d2h")
        self.profile.bytes_from_device += c_stats.payload_bytes
        self.profile.metrics.inc(
            "transfer.bytes_from_device", c_stats.payload_bytes
        )
        tns = self.comm.transfer_ns(c_stats.payload_bytes)
        stages.transfer += tns
        tracer.charge(
            "transfer",
            tns,
            cat="stage",
            bytes=c_stats.payload_bytes,
            direction="d2h",
        )
        return value
