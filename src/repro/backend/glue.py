"""Generated host-side coordination ("glue") code.

The paper's compiler emits C code that "handles data exchange and the
calls to the OpenCL API". :class:`CompiledFilter` is that generated glue,
as an executable object: invoked by the task-graph runtime as the
worker of an offloaded filter, it walks the full Figure 6 path on every
invocation —

1. **Java marshal**: serialize the input Lime value(s) — the stream
   input plus any worker parameters bound at task creation — to the byte
   wire format (:mod:`repro.runtime.marshal`);
2. **JNI crossing + C marshal**: decode the byte stream into C-layout
   (flattened, densely packed) device arrays;
3. **OpenCL setup**: create buffers, bind arguments, choose the NDRange;
4. **transfer**: host-to-device copies (PCIe);
5. **kernel**: execute on the simulated device
   (:mod:`repro.opencl.executor` + :mod:`repro.opencl.timing`);
6. the mirror path back: device-to-host transfer, C serialize, Java
   deserialize into a frozen Lime value array.

Every stage's simulated cost is recorded into a
:class:`repro.runtime.profiler.ExecutionProfile` under the Figure 9
stage names.
"""

from __future__ import annotations

import os
import zlib

import numpy as np

from repro.backend.kernel_ir import Space
from repro.errors import DeviceOOM, LaunchFault, RuntimeFault, TransferFault


class _ConstantOverflow(Exception):
    """Internal: a constant-space buffer exceeded the device capacity;
    the caller falls back to the global-memory compilation."""
from repro.frontend.types import ArrayType
from repro.opencl.timing import time_launch
from repro.runtime import marshal
from repro.runtime.cost import StageTimes
from repro.runtime.sanitizer import LaunchGuard

_NP_DTYPES = {
    "bool": np.bool_,
    "char": np.int8,
    "int": np.int32,
    "long": np.int64,
    "float": np.float32,
    "double": np.float64,
}


def np_dtype(kscalar):
    return _NP_DTYPES[kscalar.kind]


# Simulation knob: cap on simulated work-items per launch. The generated
# kernels stride over the index space (Figure 4), so capping the NDRange
# changes only simulation effort, never results. Configurable per filter
# (Offloader(max_sim_items=...)), per process (REPRO_MAX_SIM_ITEMS), or
# per CLI invocation (--max-sim-items).
MAX_SIMULATED_ITEMS = 2048

MAX_SIM_ITEMS_ENV = "REPRO_MAX_SIM_ITEMS"


def resolve_max_sim_items(explicit=None):
    """The effective work-item cap: an explicit value wins, then the
    ``REPRO_MAX_SIM_ITEMS`` environment variable, then the default.
    Resolved lazily (per launch) so runtime changes to the environment
    or the module default take effect immediately."""
    if explicit is not None:
        value = int(explicit)
    else:
        env = os.environ.get(MAX_SIM_ITEMS_ENV)
        if env is None:
            return MAX_SIMULATED_ITEMS
        try:
            value = int(env)
        except ValueError:
            raise RuntimeFault(
                "{} must be an integer, got {!r}".format(MAX_SIM_ITEMS_ENV, env)
            )
    if value < 1:
        raise RuntimeFault(
            "the simulated work-item cap must be >= 1, got {}".format(value)
        )
    return value


# Stage names whose charges the overlap optimization hides behind the
# previous item's kernel time.
_COMM_STAGES = frozenset(
    ("java_marshal", "c_marshal", "opencl_setup", "transfer")
)


class _DeferredCharges:
    """Buffers ``tracer.charge`` calls during an overlap-mode item.

    ``Offloader(overlap=True)`` rescales the communication stage times
    *after* they are known (the hidden fraction depends on the previous
    item's kernel time), so live charges would put the unhidden values
    on the trace. Overlap items charge into this buffer instead and
    flush post-rescale — the trace clock then advances by exactly the
    nanoseconds the profiler records, same as non-overlap runs.
    """

    __slots__ = ("pending",)

    def __init__(self):
        self.pending = []

    def charge(self, name, ns, cat="stage", **args):
        self.pending.append((name, ns, cat, args))

    def flush(self, tracer, scale=1.0):
        """Emit (and drain) the buffered charges, applying ``scale`` to
        the communication stages only — kernel time is never hidden."""
        for name, ns, cat, args in self.pending:
            if scale != 1.0 and name in _COMM_STAGES:
                ns *= scale
            tracer.charge(name, ns, cat=cat, **args)
        self.pending = []


class LaunchRecord:
    """One stream item's marshalled inputs plus its accumulating stage
    times — the replayable unit of fleet failover.

    :meth:`CompiledFilter.prepare` builds the record (Java marshal →
    wire → C marshal → transfer, charged once);
    :meth:`CompiledFilter.run_prepared` executes from it. When the
    placed device faults mid-item, the fleet worker replays the *same*
    record on the next device — the marshal work is reused, only the
    bus transfer is paid again (:meth:`CompiledFilter.charge_failover`).
    """

    __slots__ = ("value", "device_values", "stages", "payload_bytes",
                 "deferred", "seq", "elided")

    def __init__(self, value=None, seq=0):
        self.value = value
        self.device_values = None
        self.stages = StageTimes()
        self.payload_bytes = 0
        self.deferred = None  # _DeferredCharges on overlap filters
        self.seq = seq
        # Parameters whose inbound marshal was elided because the value
        # was already resident on this filter's device (--fuse): a list
        # of (param_name, ResidentMeta). On failover to another device
        # these are the params with *no* host wire to replay — the
        # record re-materializes them from the host mirror, paying the
        # deferred d2h plus the full h2d marshal (docs/FUSION.md).
        self.elided = []


class CompiledFilter:
    """The offloaded worker for one filter task.

    Args:
        bound_values: values for worker parameters bound at task-creation
            time (``task Cls.m(bound...)``), by parameter name. The
            remaining parameter is the stream port.
    """

    def __init__(
        self,
        name,
        worker,
        plan,
        compiled_kernel,
        device,
        comm,
        profile,
        marshaller=marshal.SPECIALIZED,
        reduce_kernel=None,
        reduce_op=None,
        local_size=None,
        bound_values=None,
        direct_marshal=False,
        overlap=False,
        constant_fallback=None,
        max_sim_items=None,
        sanitizer=None,
        exec_tier=None,
        device_key=None,
    ):
        self.name = name
        self.worker = worker  # MethodDecl: for input/output Lime types
        self.plan = plan  # KernelPlan (None for pure reductions)
        self.compiled_kernel = compiled_kernel
        self.device = device
        self.comm = comm
        self.profile = profile
        self.marshaller = marshaller
        self.reduce_kernel = reduce_kernel
        self.reduce_op = reduce_op
        self.local_size = local_size or device.default_local_size
        self.bound_values = dict(bound_values or {})
        # Section 5.3's future-work optimizations, implemented as opt-ins:
        # - direct_marshal: "marshal directly to a format as required for
        #   device memory. This would approximately halve the marshaling
        #   overhead" — the C-side conversion disappears.
        # - overlap: "communication costs can be hidden by well-known
        #   pipelining techniques that overlap communication and
        #   computation" — each stream item's communication hides behind
        #   the previous item's kernel.
        self.direct_marshal = direct_marshal
        self.overlap = overlap
        # Lazily-compiled no-constant-memory variant: the compiler places
        # unbounded arrays in constant memory optimistically; the glue
        # checks the actual size at launch time and re-targets global
        # memory when the 64KB capacity is exceeded.
        self.constant_fallback = constant_fallback
        self.max_sim_items = max_sim_items  # None -> env var -> default
        # Guarded execution: a SanitizerConfig
        # (repro.runtime.sanitizer) arms per-launch bounds/race/
        # divergence/NaN checks and the watchdog; None is the seed path.
        self.sanitizer = sanitizer
        # Execution-tier request for kernel launches ("auto"/"batch"/
        # "per-item"); None defers to REPRO_EXEC_TIER, then auto.
        self.exec_tier = exec_tier
        # Fleet identity: the short device key ("gtx580") this filter's
        # launches run on. None outside fleet runs, which keeps kernel
        # charges arg-free and single-device traces byte-identical.
        self.device_key = device_key
        # Graph-level buffer planning (--fuse, compiler/fusion.py). The
        # planner flips these on legal => seams: emit_resident defers
        # the output's d2h bill into a ResidentMeta instead of charging
        # it; accept_resident elides the inbound marshal of a stream
        # value already resident on this device. Both default off, so
        # --fuse off is byte-identical to a build without the planner.
        self.emit_resident = False
        self.accept_resident = False
        # Fused-chain identity ("A+B") for composite filters; stamps
        # the per-item span so traces show the fused seam nesting.
        self.chain = None
        # Fault-injection hook: installed by the resilience layer
        # (repro.runtime.resilience); None means every stage is clean.
        self.injector = None
        # Retry policy for partitioned-relaunch chunks; the resilience
        # layer installs its own, otherwise defaults apply on first use.
        self.retry = None
        # Maximum binary-split depth for OOM-partitioned relaunch
        # (2**depth chunks at most); fleet runs set it from FleetPolicy.
        self.partition_depth = 4
        self._fallback_filter = None
        self._prev_kernel_ns = 0.0
        self.launches = 0
        self.last_timing = None

        bound_names = set(self.bound_values)
        free = [p for p in worker.params if p.name not in bound_names]
        if len(free) > 1:
            raise RuntimeFault(
                "worker '{}' has {} unbound parameters".format(name, len(free))
            )
        self.stream_param = free[0] if free else None
        self.param_types = {p.name: p.type for p in worker.params}

    # -- worker protocol -------------------------------------------------------

    def __call__(self, value=None):
        # One "item" span per stream-item invocation; the stage charges
        # nest under it, advancing the simulated clock by exactly the
        # nanoseconds the profiler records — so trace and profile can
        # never disagree. When tracing is off this is the NULL_TRACER
        # and every call here is a no-op.
        span_args = {"task": self.name, "seq": self.launches}
        if self.chain is not None:
            span_args["chain"] = self.chain
        with self.profile.tracer.span("item", cat="task", **span_args):
            record = self.prepare(value)
            return self.run_prepared(record)

    def prepare(self, value=None):
        """Marshal the worker's arguments once, returning a replayable
        :class:`LaunchRecord`. The fleet worker calls this on the first
        placed device's filter, then :meth:`run_prepared` — possibly on
        another device's filter after a failover."""
        record = LaunchRecord(value=value, seq=self.launches)
        if self.overlap:
            record.deferred = _DeferredCharges()
        sink = record.deferred or self.profile.tracer
        try:
            record.device_values = self._inbound(value, record, sink)
        except RuntimeFault as err:
            self._abandon(record, err)
            raise
        return record

    def run_prepared(self, record):
        """Execute + return path from an already-marshalled record. On
        a fault the record stays replayable: another device's filter
        can pick it up via :meth:`charge_failover` + this method."""
        stages = record.stages
        sink = record.deferred or self.profile.tracer
        try:
            try:
                result = self._execute(record.device_values, stages, sink)
            except _ConstantOverflow:
                if self._fallback_filter is None:
                    self._fallback_filter = self.constant_fallback()
                    self._fallback_filter.profile = self.profile
                self._fallback_filter.injector = self.injector
                self._fallback_filter.sanitizer = self.sanitizer
                self._fallback_filter.exec_tier = self.exec_tier
                if record.deferred is not None:
                    record.deferred.flush(self.profile.tracer)
                return self._fallback_filter(record.value)
            result = self._outbound(result, stages, sink)
        except RuntimeFault as err:
            self._abandon(record, err)
            raise
        scale = 1.0
        if self.overlap and self.launches > 0:
            scale = self._hide_communication(stages)
        if record.deferred is not None:
            record.deferred.flush(self.profile.tracer, scale)
        self._prev_kernel_ns = stages.kernel
        self.profile.record(self.name, stages)
        self.launches += 1
        return result

    def _abandon(self, record, err):
        """A fault mid-path abandons this attempt: flush any deferred
        charges unscaled (the time was genuinely spent, and a hidden
        fraction is unknowable for an incomplete item) and expose the
        stage time already spent so the resilience layer can account it
        as recovery overhead ("time lost")."""
        if record.deferred is not None:
            record.deferred.flush(self.profile.tracer)
        err.partial_stages = record.stages

    def charge_failover(self, record):
        """Account the re-transfer when ``record`` is replayed on this
        filter's device after a failover: the marshalled wire payload
        crosses the bus again, but the marshal work itself is reused.

        Parameters whose inbound marshal was *elided* (``--fuse``: the
        value was resident on the failed device) have no reusable wire —
        they re-materialize from the last host-resident boundary: the
        producer's deferred d2h is settled (paid once), then the full
        h2d marshal + transfer is charged here. After that the param is
        ordinary marshalled payload for any further failover."""
        sink = record.deferred or self.profile.tracer
        if record.payload_bytes > 0:
            tns = self.comm.transfer_ns(record.payload_bytes)
            record.stages.transfer += tns
            sink.charge(
                "transfer",
                tns,
                cat="stage",
                bytes=record.payload_bytes,
                direction="h2d",
                failover=True,
            )
            self.profile.bytes_to_device += record.payload_bytes
            self.profile.metrics.inc(
                "transfer.bytes_to_device", record.payload_bytes
            )
        if not record.elided:
            return
        for param_name, meta in record.elided:
            marshal.settle_resident_meta(
                meta, self.profile, reason="failover"
            )
            jns = self.comm.java_marshal_ns(meta.stats)
            record.stages.java_marshal += jns
            sink.charge(
                "java_marshal", jns, cat="stage", param=param_name,
                failover=True,
            )
            if not self.direct_marshal:
                cns = self.comm.c_marshal_ns(meta.stats)
                record.stages.c_marshal += cns
                sink.charge(
                    "c_marshal", cns, cat="stage", param=param_name,
                    failover=True,
                )
            tns = self.comm.transfer_ns(meta.payload_bytes)
            record.stages.transfer += tns
            sink.charge(
                "transfer",
                tns,
                cat="stage",
                param=param_name,
                bytes=meta.payload_bytes,
                direction="h2d",
                failover=True,
            )
            self.profile.bytes_to_device += meta.payload_bytes
            self.profile.metrics.inc(
                "transfer.bytes_to_device", meta.payload_bytes
            )
            record.payload_bytes += meta.payload_bytes
        record.elided = []

    # -- journal wire format ---------------------------------------------------
    #
    # The recovery journal (repro.runtime.journal) persists stream items
    # in the exact wire format the marshaller already defines: the input
    # digest is hashed over the stream parameter's serialized bytes, and
    # a completed item's output is stored as its marshalled form. None
    # of these helpers charge simulated time — journalling is a host-
    # process concern, invisible to the cost model.

    def stream_wire(self, value):
        """``value`` serialized through the stream parameter's wire
        format (the journal's input digest / in-flight payload)."""
        if self.stream_param is None:
            return b""
        data, _stats = marshal.serialize(
            value, self.stream_param.type, self.marshaller
        )
        return data

    def stream_value_from_wire(self, data):
        """Rebuild a stream input from :meth:`stream_wire` bytes."""
        if self.stream_param is None:
            return None
        value, _stats = marshal.deserialize(
            data, self.stream_param.type, self.marshaller
        )
        return value

    def result_wire(self, result):
        """A completed item's output in marshalled wire form."""
        data, _stats = marshal.serialize(
            result, self.worker.return_type, self.marshaller
        )
        return data

    def result_from_wire(self, data):
        """Rebuild an output value from :meth:`result_wire` bytes —
        the same deserialize path :meth:`_outbound` uses, so a
        journal-skipped item yields the bit-exact value a recomputed
        one would."""
        value, _stats = marshal.deserialize(
            data, self.worker.return_type, self.marshaller
        )
        return value

    def _hide_communication(self, stages):
        """Double-buffered pipelining: this item's communication overlaps
        the previous item's kernel execution, so only the part exceeding
        that kernel time remains on the critical path. Returns the scale
        applied so deferred trace charges can match."""
        comm = (
            stages.java_marshal
            + stages.c_marshal
            + stages.opencl_setup
            + stages.transfer
        )
        if comm <= 0:
            return 1.0
        hidden = min(comm, self._prev_kernel_ns)
        scale = 1.0 - hidden / comm
        stages.java_marshal *= scale
        stages.c_marshal *= scale
        stages.opencl_setup *= scale
        stages.transfer *= scale
        return scale

    # -- inbound path ------------------------------------------------------------

    def _transmit(self, data, direction):
        """Move wire bytes across the (possibly faulty) link. The
        receiving end's CRC check — standard on real interconnects —
        detects injected corruption; the sender still holds the intact
        value, so the fault is retryable."""
        if self.injector is None:
            return data
        wire = self.injector.transmit(
            data, direction, self.name, device=self.device_key
        )
        if wire is not data and zlib.crc32(wire) != zlib.crc32(data):
            raise TransferFault(
                "task '{}': {} transfer failed the CRC check "
                "({} bytes)".format(self.name, direction, len(data))
            )
        return data

    def _inbound(self, value, record, sink):
        """Walk every worker argument through the wire format; returns a
        dict param-name -> device-side value. ``sink`` receives the
        stage charges (the tracer, or the record's deferred buffer in
        overlap mode)."""
        device_values = {}
        stages = record.stages
        items = list(self.bound_values.items())
        if self.stream_param is not None:
            items.append((self.stream_param.name, value))
        for param_name, host_value in items:
            lime_type = self.param_types[param_name]
            if self.accept_resident and self._elide_inbound(
                param_name, host_value, record, device_values
            ):
                continue
            data, stats = marshal.serialize(
                host_value, lime_type, self.marshaller
            )
            jns = self.comm.java_marshal_ns(stats)
            stages.java_marshal += jns
            sink.charge("java_marshal", jns, cat="stage", param=param_name)
            # The marshal cost above is charged before the wire check:
            # a corrupted transfer still paid for serialization, and the
            # resilience layer bills that time as recovery overhead.
            data = self._transmit(data, "h2d")
            device_value, c_stats = marshal.deserialize(
                data, lime_type, self.marshaller
            )
            if not self.direct_marshal:
                cns = self.comm.c_marshal_ns(c_stats)
                stages.c_marshal += cns
                sink.charge("c_marshal", cns, cat="stage", param=param_name)
            self.profile.bytes_to_device += stats.payload_bytes
            self.profile.metrics.inc(
                "transfer.bytes_to_device", stats.payload_bytes
            )
            record.payload_bytes += stats.payload_bytes
            tns = self.comm.transfer_ns(stats.payload_bytes)
            stages.transfer += tns
            sink.charge(
                "transfer",
                tns,
                cat="stage",
                param=param_name,
                bytes=stats.payload_bytes,
                direction="h2d",
            )
            device_values[param_name] = device_value
        return device_values

    def _elide_inbound(self, param_name, host_value, record, device_values):
        """Skip the whole inbound path for a stream value that is
        already resident on this filter's device (--fuse): no
        serialize, no CRC transmit, no charges — the device buffer is
        reused in place. Returns False when the value is host data,
        settled, or resident on a *different* device (in which case the
        deferred d2h is paid and the normal marshal path runs)."""
        if (
            self.stream_param is None
            or param_name != self.stream_param.name
        ):
            return False
        meta = marshal.resident_meta(host_value)
        if meta is None:
            return False
        if meta.settled or meta.device_key != self.device_key:
            # Resident elsewhere: force it back through the host
            # mirror. Pays the producer's deferred d2h exactly once,
            # then the consumer marshals normally.
            marshal.settle_resident_meta(
                meta, self.profile, reason="cross_device"
            )
            return False
        device_values[param_name] = np.asarray(host_value)
        record.elided.append((param_name, meta))
        saved = 2 * meta.payload_bytes  # the skipped d2h + h2d crossings
        self.profile.metrics.inc("transfer.bytes_saved", saved)
        self.profile.metrics.inc("fusion.elisions")
        self.profile.tracer.instant(
            "marshal_elided",
            cat="fusion",
            task=self.name,
            param=param_name,
            producer=meta.producer,
            bytes=saved,
        )
        return True

    def _index_space(self, device_values):
        """The kernel's logical size n (map elements / reduce length)."""
        meta = self.plan.kernel.meta if self.plan is not None else {}
        iota = meta.get("iota_source")
        if iota is not None:
            if iota.get("literal") is not None:
                return int(iota["literal"])
            return int(device_values[iota["param"]])
        source_param = meta.get("source_param")
        if source_param is None and self.stream_param is not None:
            source_param = self.stream_param.name
        source = device_values.get(source_param)
        if source is None:
            raise RuntimeFault("cannot determine the kernel index space")
        return int(np.asarray(source).shape[0])

    # -- execution ------------------------------------------------------------------

    def _make_guard(self, kernel_name):
        """A fresh per-launch guard (watchdog budget and trip counters
        are per launch); None when guarded execution is off."""
        if self.sanitizer is None or not self.sanitizer.instruments_launch():
            return None
        return LaunchGuard(self.sanitizer, kernel_name, task=self.name)

    def _launch_config(self, n):
        local = self.local_size
        items = min(max(n, 1), resolve_max_sim_items(self.max_sim_items))
        global_size = ((items + local - 1) // local) * local
        return global_size, local

    def _flat(self, device_values, param_name):
        value = device_values[param_name]
        return np.ascontiguousarray(value).reshape(-1)

    def _device_args(self):
        """Extra tracer-charge args in fleet runs: tagging kernel time
        with the device key gives each device its own Perfetto track.
        Empty outside fleet runs so single-device traces are unchanged."""
        if self.device_key is None:
            return {}
        return {"device": self.device_key}

    def _execute(self, device_values, stages, sink):
        plan = self.plan
        if plan is None:
            # Pure reduction over the stream input array.
            flat = self._flat(device_values, self.stream_param.name)
            return self._run_reduce(flat, len(flat), stages, sink)

        n = self._index_space(device_values)
        buffers = {}
        scalars = {}
        kernel = plan.kernel
        meta = kernel.meta
        if plan.input_binding is not None:
            source_param = meta.get("source_param") or self.stream_param.name
            buffers["_in"] = self._flat(device_values, source_param)
        out_dtype = np_dtype(plan.output_elem)
        out = np.zeros(n * plan.output_row, dtype=out_dtype)
        buffers["_out"] = out

        for entry in plan.arg_bindings:
            kind = entry[0]
            if kind == "scalar":
                spec = entry[1]
                if spec.kind == "literal":
                    scalars[spec.param_name] = spec.literal
                else:
                    scalars[spec.param_name] = device_values[spec.worker_param]
            else:
                spec, binding = entry[1], entry[2]
                buffers[binding.buffer] = self._flat(
                    device_values, spec.worker_param
                )
                scalars[binding.length_param] = int(
                    np.asarray(device_values[spec.worker_param]).shape[0]
                )

        self._check_constant_capacity(buffers)
        global_size, local = self._launch_config(n)
        for spill in plan.spill_buffers:
            buffers[spill.buffer] = np.zeros(
                global_size * spill.spill_size, dtype=np_dtype(spill.elem)
            )
        scalars["_n"] = n

        n_buffers = len(buffers)
        total_bytes = sum(buf.nbytes for buf in buffers.values())
        oom = None
        if self.injector is not None:
            try:
                self.injector.maybe_oom(
                    self.name, total_bytes, device=self.device_key
                )
            except DeviceOOM:
                if not self._can_partition(n):
                    raise
                oom = True
        if oom:
            self._partitioned_launch(
                kernel, buffers, scalars, n, total_bytes, stages, sink
            )
        else:
            self._launch_once(
                kernel, buffers, scalars, global_size, local, stages, sink
            )
        if self.injector is not None:
            # Silent output corruption: no fault is raised and no CRC
            # fails — only sampled differential validation catches it.
            self.injector.maybe_corrupt_output(
                out, self.name, device=self.device_key
            )

        if self.reduce_kernel is not None:
            return self._run_reduce(out, len(out), stages, sink)
        return out

    def _launch_once(
        self, kernel, buffers, scalars, global_size, local, stages, sink,
        index_base=0,
    ):
        """One NDRange launch plus its simulated-time accounting."""
        trace = self.compiled_kernel.launch(
            buffers,
            scalars,
            global_size,
            local,
            injector=self.injector,
            guard=self._make_guard(kernel.name),
            tier=self.exec_tier,
            tracer=self.profile.tracer,
            index_base=index_base,
            device=self.device_key,
        )
        timing = time_launch(trace, self.device)
        if self.injector is not None:
            # Straggler injection: a slow device's launches take longer
            # before any accounting happens, so the histogram, the
            # health monitor, and the hedge budget all see the
            # degraded time.
            timing.kernel_ns += self.injector.launch_latency_ns(
                timing.kernel_ns, device=self.device_key
            )
        self.last_timing = timing
        stages.kernel += timing.kernel_ns
        charge_args = self._device_args()
        if index_base:
            charge_args["index_base"] = index_base
        sink.charge(
            "kernel",
            timing.kernel_ns,
            cat="stage",
            kernel=kernel.name,
            tier=trace.tier,
            global_size=global_size,
            **charge_args,
        )
        setup_ns = self.comm.setup_ns(buffers=len(buffers), launches=1)
        stages.opencl_setup += setup_ns
        sink.charge(
            "opencl_setup", setup_ns, cat="stage", buffers=len(buffers)
        )
        self.profile.kernel_launches += 1
        self.profile.record_tier(trace.tier)
        self.profile.metrics.histogram("kernel.launch_ns").observe(
            timing.kernel_ns
        )
        if self.device_key is not None:
            self.profile.metrics.histogram(
                "kernel.launch_ns.{}".format(self.device_key)
            ).observe(timing.kernel_ns)
        return timing

    def _can_partition(self, n):
        """OOM-partitioned relaunch is safe only for kernels with no
        group-level structure (barriers, local-memory tiling): chunk
        launches offset the global id via ``index_base``, which keeps
        absolute indexing (iota values, spill rows) correct but changes
        group shapes. ``batch_supported`` is exactly that conservative
        eligibility bit."""
        return (
            self.plan is not None
            and n >= 2
            and bool(self.compiled_kernel.batch_supported)
        )

    def _partitioned_launch(
        self, kernel, buffers, scalars, n, total_bytes, stages, sink
    ):
        """Device OOM recovery: split the index space ``[0, n)`` in half
        recursively (binary, at most ``partition_depth`` deep) until each
        chunk's estimated footprint fits, and launch the chunks
        back-to-back on the same buffers with ``index_base`` offsets.
        The union of grid-stride chunk launches covers exactly the
        original index space, so results are bit-identical. Chunks that
        hit transient launch faults retry under the retry policy."""
        from repro.runtime.resilience import RetryPolicy

        plan = self.plan
        retry = self.retry or RetryPolicy()
        ledger = self.profile.faults
        chunks = [0]

        def launch_chunk(lo, hi):
            global_size, local = self._launch_config(hi - lo)
            chunk_scalars = dict(scalars)
            chunk_scalars["_n"] = hi
            chunk_buffers = dict(buffers)
            for spill in plan.spill_buffers:
                # Spill rows are indexed by absolute global id, so a
                # chunk needs (index_base + global_size) rows.
                chunk_buffers[spill.buffer] = np.zeros(
                    (lo + global_size) * spill.spill_size,
                    dtype=np_dtype(spill.elem),
                )
            attempt = 0
            while True:
                try:
                    self._launch_once(
                        kernel,
                        chunk_buffers,
                        chunk_scalars,
                        global_size,
                        local,
                        stages,
                        sink,
                        index_base=lo,
                    )
                except LaunchFault as err:
                    ledger.record_fault(self.name, err.stage)
                    if attempt >= retry.max_retries:
                        raise
                    backoff = retry.backoff_ns(attempt)
                    ledger.record_retry(self.name)
                    ledger.add_time_lost(self.name, backoff)
                    self.profile.record_recovery(self.name, backoff)
                    sink.charge(
                        "retry_backoff",
                        backoff,
                        cat="recovery",
                        task=self.name,
                        attempt=attempt + 1,
                        chunk=lo,
                    )
                    attempt += 1
                    continue
                chunks[0] += 1
                return

        def run_range(lo, hi, depth):
            frac = (hi - lo) / float(n)
            try:
                self.injector.maybe_oom(
                    self.name, total_bytes * frac, device=self.device_key
                )
            except DeviceOOM:
                if depth >= self.partition_depth or hi - lo <= 1:
                    raise
                mid = (lo + hi) // 2
                run_range(lo, mid, depth + 1)
                run_range(mid, hi, depth + 1)
                return
            launch_chunk(lo, hi)

        mid = (n + 1) // 2
        run_range(0, mid, 1)
        run_range(mid, n, 1)
        ledger.record_partition(self.name, chunks[0])
        self.profile.tracer.instant(
            "partitioned_relaunch",
            cat="recovery",
            task=self.name,
            kernel=kernel.name,
            chunks=chunks[0],
            n=n,
            **self._device_args(),
        )

    def _check_constant_capacity(self, buffers):
        constant_bytes = sum(
            buffers[p.name].nbytes
            for p in self.plan.kernel.params
            if p.is_pointer and p.space is Space.CONSTANT and p.name in buffers
        )
        if (
            constant_bytes > self.device.constant_memory_bytes
            and self.constant_fallback is not None
        ):
            raise _ConstantOverflow()

    def _run_reduce(self, flat_input, n, stages, sink):
        local = self.local_size
        groups = min((n + local - 1) // local, 64) or 1
        partials = np.zeros(groups, dtype=flat_input.dtype)
        if self.injector is not None:
            self.injector.maybe_oom(
                self.name,
                flat_input.nbytes + partials.nbytes,
                device=self.device_key,
            )
        trace = self.reduce_kernel.launch(
            {"_in": flat_input, "_out": partials},
            {"_n": n},
            groups * local,
            local,
            injector=self.injector,
            guard=self._make_guard(self.reduce_kernel.kernel.name),
            tier=self.exec_tier,
            tracer=self.profile.tracer,
            device=self.device_key,
        )
        timing = time_launch(trace, self.device)
        if self.injector is not None:
            timing.kernel_ns += self.injector.launch_latency_ns(
                timing.kernel_ns, device=self.device_key
            )
        stages.kernel += timing.kernel_ns
        sink.charge(
            "kernel",
            timing.kernel_ns,
            cat="stage",
            kernel=self.reduce_kernel.kernel.name,
            tier=trace.tier,
            global_size=groups * local,
            **self._device_args(),
        )
        setup_ns = self.comm.setup_ns(buffers=2, launches=1)
        stages.opencl_setup += setup_ns
        sink.charge("opencl_setup", setup_ns, cat="stage", buffers=2)
        self.profile.kernel_launches += 1
        self.profile.record_tier(trace.tier)
        self.profile.metrics.histogram("kernel.launch_ns").observe(
            timing.kernel_ns
        )
        if self.device_key is not None:
            self.profile.metrics.histogram(
                "kernel.launch_ns.{}".format(self.device_key)
            ).observe(timing.kernel_ns)
        op = self.reduce_op
        if op == "+":
            result = partials.sum()
        elif op == "*":
            result = partials.prod()
        elif op == "min":
            result = partials.min()
        elif op == "max":
            result = partials.max()
        else:
            raise RuntimeFault("unknown reduction op '{}'".format(op))
        value = result.item()
        return float(value) if partials.dtype.kind == "f" else int(value)

    # -- outbound path -----------------------------------------------------------------

    def _outbound(self, result, stages, sink):
        return_type = self.worker.return_type
        if not isinstance(return_type, ArrayType):
            # Scalar result: negligible wire cost; the API round trip is
            # already charged via setup.
            return result
        if self.plan is not None and self.plan.output_row > 1:
            result = result.reshape(-1, self.plan.output_row)
        if self.emit_resident:
            return self._outbound_resident(result, return_type)
        data, c_stats = marshal.serialize(result, return_type, self.marshaller)
        data = self._transmit(data, "d2h")
        if not self.direct_marshal:
            cns = self.comm.c_marshal_ns(c_stats)
            stages.c_marshal += cns
            sink.charge("c_marshal", cns, cat="stage", direction="d2h")
        value, j_stats = marshal.deserialize(data, return_type, self.marshaller)
        jns = self.comm.java_marshal_ns(j_stats)
        stages.java_marshal += jns
        sink.charge("java_marshal", jns, cat="stage", direction="d2h")
        self.profile.bytes_from_device += c_stats.payload_bytes
        self.profile.metrics.inc(
            "transfer.bytes_from_device", c_stats.payload_bytes
        )
        tns = self.comm.transfer_ns(c_stats.payload_bytes)
        stages.transfer += tns
        sink.charge(
            "transfer",
            tns,
            cat="stage",
            bytes=c_stats.payload_bytes,
            direction="d2h",
        )
        return value

    def _outbound_resident(self, result, return_type):
        """The buffer-planner outbound (--fuse): the output buffer stays
        on this device. The value still takes the full serialize →
        deserialize round trip — the wire format is the canonical value
        representation, so the host mirror is bit-exact with what the
        normal path returns — but *nothing* is charged and no bytes
        cross the bus; the d2h bill it would have paid is deferred into
        the returned value's :class:`~repro.runtime.marshal
        .ResidentMeta`, settled exactly once by whoever forces the
        value back to the host (fused same-device consumers never do)."""
        data, c_stats = marshal.serialize(
            result, return_type, self.marshaller
        )
        value, j_stats = marshal.deserialize(
            data, return_type, self.marshaller
        )
        d2h_c_ns = (
            0.0 if self.direct_marshal else self.comm.c_marshal_ns(c_stats)
        )
        meta = marshal.ResidentMeta(
            producer=self.name,
            device_key=self.device_key,
            payload_bytes=c_stats.payload_bytes,
            stats=c_stats,
            d2h_c_ns=d2h_c_ns,
            d2h_j_ns=self.comm.java_marshal_ns(j_stats),
            d2h_t_ns=self.comm.transfer_ns(c_stats.payload_bytes),
        )
        return marshal.make_resident(value, meta)
