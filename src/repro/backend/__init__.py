"""Device-code backend: the kernel IR, the OpenCL C pretty-printer, and
the generated host-side glue (buffer management, transfers, launches)."""

from repro.backend.kernel_ir import Kernel, Space

__all__ = ["Kernel", "Space"]
