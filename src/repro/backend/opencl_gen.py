"""OpenCL C emission from kernel IR.

This is the textual half of the backend: the same kernel IR the
simulator executes pretty-prints to compilable OpenCL C (Figure 4 of the
paper shows the kind of output). The golden tests lock the emitted text
for representative kernels, and the quickstart example prints it so a
user can see exactly what the compiler generated.
"""

from __future__ import annotations

from repro.backend import kernel_ir as K

_SPACE_QUALIFIERS = {
    K.Space.GLOBAL: "__global",
    K.Space.LOCAL: "__local",
    K.Space.CONSTANT: "__constant",
    K.Space.PRIVATE: "__private",
}


def _ctype(ktype):
    if isinstance(ktype, K.KVector):
        return "{}{}".format(ktype.base.kind, ktype.width)
    if ktype.kind == "bool":
        return "int"
    return ktype.kind


def _const(value, ktype):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NAN"
        if value in (float("inf"), float("-inf")):
            return "INFINITY" if value > 0 else "-INFINITY"
        text = repr(value)
        if isinstance(ktype, K.KScalar) and ktype.kind == "float":
            return text + "f"
        return text
    return str(value)


class OpenCLPrinter:
    def __init__(self):
        self.lines = []
        self.indent = 0

    def emit(self, text):
        self.lines.append("    " * self.indent + text)

    # -- expressions --------------------------------------------------------

    def expr(self, e):
        if isinstance(e, K.KConst):
            return _const(e.value, e.ktype)
        if isinstance(e, K.KVar):
            return e.name
        if isinstance(e, K.KUn):
            return "({}{})".format(e.op, self.expr(e.operand))
        if isinstance(e, K.KBin):
            return "({} {} {})".format(self.expr(e.left), e.op, self.expr(e.right))
        if isinstance(e, K.KSelect):
            return "({} ? {} : {})".format(
                self.expr(e.cond), self.expr(e.then), self.expr(e.otherwise)
            )
        if isinstance(e, K.KCast):
            return "(({}){})".format(_ctype(e.ktype), self.expr(e.expr))
        if isinstance(e, K.KCall):
            if e.name.startswith("get_") and not e.args:
                return "{}(0)".format(e.name)
            return "{}({})".format(e.name, ", ".join(self.expr(a) for a in e.args))
        if isinstance(e, K.KLoad):
            if isinstance(e.ktype, K.KVector):
                return "vload{}({}, {})".format(
                    e.ktype.width, self.expr(e.index), e.array
                )
            return "{}[{}]".format(e.array, self.expr(e.index))
        if isinstance(e, K.KImageLoad):
            return "read_imagef({}, smp, (int2)({}, 0))".format(
                e.image, self.expr(e.coord)
            )
        if isinstance(e, K.KVecExtract):
            return "{}.s{:x}".format(self.expr(e.vec), e.lane)
        if isinstance(e, K.KVecBuild):
            return "(({}) ({}))".format(
                _ctype(e.ktype), ", ".join(self.expr(x) for x in e.elems)
            )
        raise TypeError("cannot print {}".format(type(e).__name__))

    # -- statements -----------------------------------------------------------

    def stmt(self, s):
        if isinstance(s, K.KDecl):
            if s.init is None:
                self.emit("{} {};".format(_ctype(s.ktype), s.name))
            else:
                self.emit(
                    "{} {} = {};".format(_ctype(s.ktype), s.name, self.expr(s.init))
                )
        elif isinstance(s, K.KAssign):
            self.emit("{} = {};".format(s.name, self.expr(s.value)))
        elif isinstance(s, K.KStore):
            if isinstance(s.ktype, K.KVector):
                self.emit(
                    "vstore{}({}, {}, {});".format(
                        s.ktype.width,
                        self.expr(s.value),
                        self.expr(s.index),
                        s.array,
                    )
                )
            else:
                self.emit(
                    "{}[{}] = {};".format(s.array, self.expr(s.index), self.expr(s.value))
                )
        elif isinstance(s, K.KIf):
            self.emit("if ({}) {{".format(self.expr(s.cond)))
            self._block(s.then)
            if s.otherwise:
                self.emit("} else {")
                self._block(s.otherwise)
            self.emit("}")
        elif isinstance(s, K.KFor):
            self.emit(
                "for (int {v} = {lo}; {v} < {hi}; {v} += {step}) {{".format(
                    v=s.var,
                    lo=self.expr(s.lo),
                    hi=self.expr(s.hi),
                    step=self.expr(s.step),
                )
            )
            self._block(s.body)
            self.emit("}")
        elif isinstance(s, K.KWhile):
            self.emit("while ({}) {{".format(self.expr(s.cond)))
            self._block(s.body)
            self.emit("}")
        elif isinstance(s, K.KBarrier):
            self.emit("barrier(CLK_LOCAL_MEM_FENCE);")
        elif isinstance(s, K.KReturn):
            self.emit("return;")
        elif isinstance(s, K.KBreak):
            self.emit("break;")
        elif isinstance(s, K.KContinue):
            self.emit("continue;")
        elif isinstance(s, K.KComment):
            self.emit("/* {} */".format(s.text))
        else:
            raise TypeError("cannot print {}".format(type(s).__name__))

    def _block(self, stmts):
        self.indent += 1
        for child in stmts:
            self.stmt(child)
        self.indent -= 1

    # -- kernel ------------------------------------------------------------------

    def print_kernel(self, kernel, local_size_hint=None):
        params = []
        image_params = set()
        for stmt in K.walk_stmts(kernel.body):
            for e in K.walk_stmt_exprs(stmt):
                if isinstance(e, K.KImageLoad):
                    image_params.add(e.image)
        for p in kernel.params:
            if p.is_pointer:
                if p.name in image_params:
                    params.append("__read_only image2d_t {}".format(p.name))
                    continue
                qualifier = _SPACE_QUALIFIERS.get(p.space, "__global")
                const = "const " if p.read_only and p.space is K.Space.GLOBAL else ""
                params.append(
                    "{} {}{}* {}".format(qualifier, const, _ctype(p.ktype), p.name)
                )
            else:
                params.append("{} {}".format(_ctype(p.ktype), p.name))
        self.emit("__kernel void {}({}) {{".format(kernel.name, ", ".join(params)))
        self.indent += 1
        if image_params:
            self.emit(
                "const sampler_t smp = CLK_NORMALIZED_COORDS_FALSE | "
                "CLK_ADDRESS_CLAMP | CLK_FILTER_NEAREST;"
            )
        for arr in kernel.arrays:
            size = arr.size
            if size == -1:
                rows = local_size_hint or 256
                row = arr.row if arr.row else 1
                size = rows * (row + arr.pad)
            elif arr.pad and arr.row:
                size = (arr.size // arr.row) * (arr.row + arr.pad)
            qualifier = _SPACE_QUALIFIERS[arr.space]
            self.emit(
                "{} {} {}[{}];".format(qualifier, _ctype(arr.ktype), arr.name, size)
            )
        for stmt in kernel.body:
            self.stmt(stmt)
        self.indent -= 1
        self.emit("}")
        return "\n".join(self.lines)


def emit_opencl(kernel, local_size_hint=None):
    """Render a kernel-IR kernel as OpenCL C source text."""
    return OpenCLPrinter().print_kernel(kernel, local_size_hint)
