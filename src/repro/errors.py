"""Shared diagnostics and exception hierarchy for the repro toolchain.

Every stage of the pipeline (Lime frontend, compiler, OpenCL-C frontend,
simulated runtime) reports problems through this module so that callers can
catch a single family of exceptions and so error messages carry uniform
source locations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SourceError(ReproError):
    """An error tied to a location in some source text.

    Attributes:
        message: human-readable description of the problem.
        location: a ``repro.frontend.source.Location`` (or ``None`` when the
            error is not tied to a specific position).
    """

    def __init__(self, message, location=None):
        self.message = message
        self.location = location
        super().__init__(self._render())

    def _render(self):
        if self.location is None:
            return self.message
        return "{}: {}".format(self.location, self.message)


class LexError(SourceError):
    """Malformed token in Lime or OpenCL-C source."""


class ParseError(SourceError):
    """Syntactically invalid Lime or OpenCL-C source."""


class TypeError_(SourceError):
    """A Lime type-system violation (named with a trailing underscore to
    avoid shadowing the builtin)."""


class IsolationError(TypeError_):
    """A violation of Lime's isolation rules: a ``local`` method touching
    global mutable state, calling a non-local method, or taking/returning
    non-value types."""


class CompileError(ReproError):
    """The GPU compilation pipeline could not produce a kernel."""


class KernelRejected(CompileError):
    """A task was examined for offload but does not satisfy the filter /
    map-purity invariants; callers typically fall back to host execution."""


class RuntimeFault(ReproError):
    """An error during task-graph or simulated-device execution.

    Every fault may carry a ``stage`` attribute naming the Figure 6
    stage that failed (``"marshal"``, ``"transfer"``, ``"launch"``,
    ``"oom"``, ...) so the resilience layer and the task-graph wrapper
    can report where in the offload path execution broke.
    """

    stage = None


class TaskFault(RuntimeFault):
    """A fault annotated with the task it occurred in.

    The task graph wraps any :class:`RuntimeFault` escaping a worker so
    that a mid-stream failure names the failing task and stage instead
    of surfacing a bare message. The original fault is preserved as
    ``__cause__``.
    """

    def __init__(self, message, task_name=None, stage=None):
        self.task_name = task_name
        self.stage = stage
        super().__init__(message)

    @classmethod
    def wrap(cls, err, task_name, default_stage):
        stage = getattr(err, "stage", None) or default_stage
        return cls(
            "task '{}' failed in stage '{}': {}".format(task_name, stage, err),
            task_name=task_name,
            stage=stage,
        )


class MarshalError(RuntimeFault):
    """A value could not be serialized to or deserialized from the wire
    format used across the host/device boundary."""

    stage = "marshal"


class DeviceError(RuntimeFault):
    """The simulated OpenCL device rejected an operation (bad buffer,
    out-of-range access, exceeded memory capacity, ...)."""

    stage = "device"


class TransferFault(DeviceError):
    """A host/device transfer delivered corrupted bytes (the simulated
    CRC check on the wire payload failed). Retryable: the source value
    is still intact on the sending side."""

    stage = "transfer"


class LaunchFault(DeviceError):
    """A kernel launch was rejected or aborted by the (simulated)
    device driver. Retryable."""

    stage = "launch"


class DeviceOOM(DeviceError):
    """The simulated device could not allocate buffers for a launch.
    Retryable, though a persistently OOM device typically ends in host
    demotion via the circuit breaker."""

    stage = "oom"


class SanitizerFault(RuntimeFault):
    """Base class for guarded-execution trips.

    Raised by the :mod:`repro.runtime.sanitizer` layer when an
    instrumented kernel launch detects a *silent* failure mode — an
    out-of-bounds access, a data race, barrier divergence, a blown
    watchdog deadline, NaN poisoning, or a differential-validation
    mismatch. Sanitizer trips count as device faults for the resilience
    layer: they are retried, ledgered, and ultimately demote the task to
    its host worker through the circuit breaker.

    ``trips`` counts how many individual violations the launch observed
    before raising (races are scanned post-launch and may batch several
    conflicting addresses into one fault).
    """

    stage = "sanitizer"
    trips = 1


class BoundsFault(SanitizerFault):
    """A global/local/constant/private load or store fell outside its
    buffer. Detected *before* the access executes, so output buffers
    hold no partially-corrupted data from the trapped instruction."""

    stage = "bounds"


class RaceFault(SanitizerFault):
    """Two work-items touched the same global address within one launch
    and at least one access was a store (write-write or read-write)."""

    stage = "race"


class DivergenceFault(SanitizerFault):
    """Work-items of one work-group reached different barrier counts —
    some items finished while their group mates were still waiting at a
    barrier (undefined behaviour on real devices)."""

    stage = "divergence"


class DeadlineFault(SanitizerFault):
    """The per-launch watchdog deadline (simulated ns) elapsed before
    the kernel finished: a hung or runaway kernel."""

    stage = "deadline"


class NaNPoisonFault(SanitizerFault):
    """A kernel stored a NaN into a floating-point buffer — the classic
    silent-poisoning failure that propagates through downstream math."""

    stage = "nan"


class ValidationFault(SanitizerFault):
    """Sampled differential validation re-ran a stream item on the host
    interpreter and the device result disagreed: the kernel is silently
    wrong. The host result is the ground truth."""

    stage = "validate"


class VoteMismatchFault(SanitizerFault):
    """Redundant cross-device voting re-ran a stream item on a second
    device and the marshalled output digests disagreed: one of the two
    devices is silently corrupting results. Neither side is trusted —
    the retry layer re-executes (and ultimately host-falls-back), and
    the breaker/ledger record the trip like any sanitizer fault."""

    stage = "vote"


class ServingError(ReproError):
    """Base class for serving-daemon errors (:mod:`repro.serving`).

    Deliberately NOT a :class:`RuntimeFault`: admission decisions,
    deadlines, quota exhaustion, and drain are *policy*, not device
    failures. The resilience layer must never retry them and the task
    graph must never wrap them as a :class:`TaskFault` — they propagate
    verbatim from the item guard to the session runner.
    """


class AdmissionRejected(ServingError):
    """A session was refused admission (load shedding, never a crash).

    Attributes:
        code: machine-readable reason — one of ``"queue_full"``,
            ``"tenant_inflight"``, ``"tenant_budget"``, ``"draining"``,
            or ``"duplicate"``.
        tenant: the tenant that asked.
        session: the session name that was refused.
    """

    def __init__(self, code, tenant, session, detail=""):
        self.code = code
        self.tenant = tenant
        self.session = session
        msg = "session '{}' (tenant '{}') rejected: {}".format(
            session, tenant, code
        )
        if detail:
            msg += " ({})".format(detail)
        super().__init__(msg)


class SessionAborted(ServingError):
    """An admitted session was stopped at an item boundary.

    Raised by the serving item guard inside the engine's worker chain;
    the run journal records it as an ``aborted`` frame, so ``--resume``
    can later continue the session bit-exactly.
    """

    reason = "aborted"


class SessionDeadlineExceeded(SessionAborted):
    """The session's wall-clock deadline elapsed mid-run."""

    reason = "deadline"


class TenantBudgetExceeded(SessionAborted):
    """The tenant's cumulative simulated-time budget ran out while this
    session was in flight (a sibling session spent the remainder)."""

    reason = "budget"


class SessionDrained(SessionAborted):
    """The daemon is draining (SIGTERM/SIGINT or an explicit drain
    request); in-flight sessions stop at the next item boundary."""

    reason = "drained"


class ControlFlowSignal(Exception):
    """Base for exceptions that are *control flow*, not failures.

    Deliberately NOT a :class:`ReproError`: resilience-layer handlers
    (``except RuntimeFault`` / ``except ReproError``) must never swallow
    normal stream termination and mistake it for a device fault.
    """


class UnderflowException(ControlFlowSignal):
    """Raised by a source task to signal the end of the stream.

    Mirrors Lime's ``UnderflowException``: any task may throw it to notify
    the runtime that the computation is finished.
    """
