"""Shared diagnostics and exception hierarchy for the repro toolchain.

Every stage of the pipeline (Lime frontend, compiler, OpenCL-C frontend,
simulated runtime) reports problems through this module so that callers can
catch a single family of exceptions and so error messages carry uniform
source locations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SourceError(ReproError):
    """An error tied to a location in some source text.

    Attributes:
        message: human-readable description of the problem.
        location: a ``repro.frontend.source.Location`` (or ``None`` when the
            error is not tied to a specific position).
    """

    def __init__(self, message, location=None):
        self.message = message
        self.location = location
        super().__init__(self._render())

    def _render(self):
        if self.location is None:
            return self.message
        return "{}: {}".format(self.location, self.message)


class LexError(SourceError):
    """Malformed token in Lime or OpenCL-C source."""


class ParseError(SourceError):
    """Syntactically invalid Lime or OpenCL-C source."""


class TypeError_(SourceError):
    """A Lime type-system violation (named with a trailing underscore to
    avoid shadowing the builtin)."""


class IsolationError(TypeError_):
    """A violation of Lime's isolation rules: a ``local`` method touching
    global mutable state, calling a non-local method, or taking/returning
    non-value types."""


class CompileError(ReproError):
    """The GPU compilation pipeline could not produce a kernel."""


class KernelRejected(CompileError):
    """A task was examined for offload but does not satisfy the filter /
    map-purity invariants; callers typically fall back to host execution."""


class RuntimeFault(ReproError):
    """An error during task-graph or simulated-device execution."""


class MarshalError(RuntimeFault):
    """A value could not be serialized to or deserialized from the wire
    format used across the host/device boundary."""


class DeviceError(RuntimeFault):
    """The simulated OpenCL device rejected an operation (bad buffer,
    out-of-range access, exceeded memory capacity, ...)."""


class UnderflowException(ReproError):
    """Raised by a source task to signal the end of the stream.

    Mirrors Lime's ``UnderflowException``: any task may throw it to notify
    the runtime that the computation is finished.
    """
