"""Multi-tenant serving for the repro runtime.

``repro serve`` turns the single-shot evaluation harness into a
long-lived daemon: many named *sessions* — each an independent stream
run — are admitted per-tenant, scheduled onto a bounded worker pool
over one shared :class:`repro.runtime.fleet.DeviceFleet` and the shared
kernel cache, and journaled per session so a drained or crashed daemon
restores cleanly with ``--resume``.

Layering:

- :mod:`repro.serving.admission` — per-tenant quotas, typed load
  shedding (:class:`repro.errors.AdmissionRejected`), per-tenant
  metrics carve-out.
- :mod:`repro.serving.session` — the session state machine and its
  on-disk ``session.json`` descriptor.
- :mod:`repro.serving.scheduler` — bounded queue + worker threads.
- :mod:`repro.serving.server` — the daemon: shared fleet, drain
  protocol, registry merging, report.
- :mod:`repro.serving.loadgen` — the clean-vs-chaos serving benchmark
  behind ``repro serve-bench`` (BENCH_serving.json).

See docs/SERVING.md for the session lifecycle and overload semantics.
"""

from repro.errors import (
    AdmissionRejected,
    ServingError,
    SessionAborted,
    SessionDeadlineExceeded,
    SessionDrained,
    TenantBudgetExceeded,
)
from repro.serving.admission import AdmissionController, TenantQuota
from repro.serving.server import ServeConfig, ServeDaemon
from repro.serving.session import Session, SessionSpec

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "ServeConfig",
    "ServeDaemon",
    "ServingError",
    "Session",
    "SessionAborted",
    "SessionDeadlineExceeded",
    "SessionDrained",
    "SessionSpec",
    "TenantBudgetExceeded",
    "TenantQuota",
]
