"""Per-tenant admission control, quotas, and load shedding.

Every session belongs to a *tenant*. The :class:`AdmissionController`
decides — under one lock, so decisions are atomic against concurrent
submissions — whether a new session may enter the daemon:

- ``draining`` — the daemon received SIGTERM (or an explicit drain):
  nothing new is admitted.
- ``tenant_inflight`` — the tenant already has ``max_inflight``
  admitted-but-unfinished sessions.
- ``tenant_budget`` — the tenant's cumulative *simulated* nanoseconds
  across completed sessions exhausted its ``sim_budget_ns``.
- ``queue_full`` — the scheduler's bounded queue is full (reported by
  the scheduler through :meth:`AdmissionController.shed`).

Rejection is always the typed :class:`repro.errors.AdmissionRejected` —
overload sheds load explicitly; it never grows an unbounded queue and
never crashes the daemon.

Each tenant also owns a private
:class:`repro.runtime.tracing.MetricsRegistry`. When a session
finishes, its run's full metrics arrive as a
``MetricsRegistry.delta({})`` (see ``RunResult.metrics_delta``) and are
merged into the tenant registry under the controller lock. Because
every session's counters land in exactly one tenant registry, the
per-tenant registries sum to the daemon's global merge *exactly* —
``tests/serving/test_tenant_metrics.py`` asserts this invariant.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.errors import AdmissionRejected
from repro.runtime.tracing import MetricsRegistry


@dataclass(frozen=True)
class TenantQuota:
    """Resource envelope for one tenant.

    Args:
        max_inflight: sessions a tenant may have admitted (queued or
            running) at once; further submissions shed with
            ``tenant_inflight``.
        sim_budget_ns: cumulative simulated nanoseconds the tenant may
            consume across its finished sessions; ``None`` = unlimited.
            Exhaustion sheds new sessions with ``tenant_budget`` and
            aborts the tenant's in-flight sessions at their next item
            boundary (:class:`repro.errors.TenantBudgetExceeded`).
    """

    max_inflight: int = 4
    sim_budget_ns: Optional[float] = None


class TenantState:
    """Mutable accounting for one tenant (guarded by the controller
    lock)."""

    def __init__(self, name, quota):
        self.name = name
        self.quota = quota
        self.registry = MetricsRegistry()
        self.inflight = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.aborted = 0
        self.failed = 0
        self.sim_ns_used = 0.0

    def over_budget(self):
        budget = self.quota.sim_budget_ns
        return budget is not None and self.sim_ns_used >= budget

    def snapshot(self):
        return {
            "quota": {
                "max_inflight": self.quota.max_inflight,
                "sim_budget_ns": self.quota.sim_budget_ns,
            },
            "inflight": self.inflight,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "aborted": self.aborted,
            "failed": self.failed,
            "sim_ns_used": self.sim_ns_used,
            "metrics": self.registry.as_dict(),
        }


class AdmissionController:
    """Thread-safe admission decisions plus per-tenant accounting.

    Args:
        default_quota: the :class:`TenantQuota` for tenants without an
            explicit entry in ``quotas``.
        quotas: ``{tenant name: TenantQuota}`` overrides.
        metrics: the daemon-level registry ``serving.*`` counters land
            in (the controller creates a private one when omitted —
            convenient for tests).
    """

    def __init__(self, default_quota=None, quotas=None, metrics=None):
        self._lock = threading.Lock()
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self.tenants = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.draining = False

    # -- tenant registry -------------------------------------------------------

    def tenant(self, name):
        """The (lazily created) :class:`TenantState` for ``name``."""
        with self._lock:
            return self._tenant(name)

    def _tenant(self, name):
        state = self.tenants.get(name)
        if state is None:
            quota = self.quotas.get(name, self.default_quota)
            state = TenantState(name, quota)
            self.tenants[name] = state
        return state

    # -- decisions -------------------------------------------------------------

    def admit(self, tenant_name, session_name):
        """Admit one session or raise :class:`AdmissionRejected`.

        On success the tenant's in-flight count is already charged —
        callers that subsequently fail to enqueue (bounded queue full)
        must release it via :meth:`shed`.
        """
        with self._lock:
            self.metrics.inc("serving.sessions.submitted")
            state = self._tenant(tenant_name)
            if self.draining:
                raise self._reject("draining", state, session_name)
            if state.inflight >= state.quota.max_inflight:
                raise self._reject(
                    "tenant_inflight",
                    state,
                    session_name,
                    "{} in flight >= quota {}".format(
                        state.inflight, state.quota.max_inflight
                    ),
                )
            if state.over_budget():
                raise self._reject(
                    "tenant_budget",
                    state,
                    session_name,
                    "{:.0f} sim ns used of {:.0f}".format(
                        state.sim_ns_used, state.quota.sim_budget_ns
                    ),
                )
            state.inflight += 1
            state.admitted += 1
            self.metrics.inc("serving.sessions.admitted")

    def shed(self, tenant_name, session_name, code="queue_full", detail=""):
        """Release an already-admitted session and raise the typed
        rejection (the scheduler calls this when its bounded queue is
        full)."""
        with self._lock:
            state = self._tenant(tenant_name)
            state.inflight -= 1
            state.admitted -= 1
            self.metrics.inc("serving.sessions.admitted", -1)
            raise self._reject(code, state, session_name, detail)

    def reject(self, tenant_name, session_name, code, detail=""):
        """Raise a typed rejection without touching in-flight counts
        (duplicate names, pre-admission refusals)."""
        with self._lock:
            state = self._tenant(tenant_name)
            raise self._reject(code, state, session_name, detail)

    def _reject(self, code, state, session_name, detail=""):
        state.rejected += 1
        self.metrics.inc("serving.sessions.rejected")
        self.metrics.inc("serving.rejected.{}".format(code))
        return AdmissionRejected(code, state.name, session_name, detail)

    # -- mid-run quota checks (called from the item guard) ---------------------

    def tenant_over_budget(self, tenant_name):
        """True when the tenant's *settled* sim-time spend exhausted its
        budget — in-flight sessions should abort at the next item."""
        with self._lock:
            return self._tenant(tenant_name).over_budget()

    # -- settlement ------------------------------------------------------------

    def finish(self, tenant_name, outcome, sim_ns=0.0, metrics_delta=None):
        """Settle one admitted session: release its in-flight slot,
        charge its simulated time, fold its metrics into the tenant
        registry.

        Args:
            outcome: ``"completed"`` | ``"aborted"`` | ``"drained"`` |
                ``"failed"`` (drained counts as aborted for quota
                purposes).
            sim_ns: the run's simulated nanoseconds (0 when it died
                before producing a result).
            metrics_delta: ``RunResult.metrics_delta`` (or None).
        """
        with self._lock:
            state = self._tenant(tenant_name)
            state.inflight -= 1
            state.sim_ns_used += float(sim_ns or 0.0)
            if outcome == "completed":
                state.completed += 1
            elif outcome == "failed":
                state.failed += 1
            else:
                state.aborted += 1
            if metrics_delta:
                state.registry.merge_delta(metrics_delta)

    def start_drain(self):
        with self._lock:
            if not self.draining:
                self.draining = True
                self.metrics.inc("serving.drains")

    def snapshot(self):
        """Per-tenant accounting, JSON-able."""
        with self._lock:
            return {
                name: state.snapshot()
                for name, state in sorted(self.tenants.items())
            }
