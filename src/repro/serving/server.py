"""The serving daemon: shared fleet, drain protocol, tenant metrics.

:class:`ServeDaemon` owns the process-wide serving state:

- one shared :class:`repro.runtime.fleet.DeviceFleet` (when device keys
  are configured) that every session's
  :class:`repro.compiler.pipeline.FleetOffloader` schedules onto — so
  sessions contend for the same health-scored devices and a device
  death degrades *placement* for everyone while each healthy session
  keeps its own results bit-exact;
- one daemon-level :class:`repro.runtime.profiler.ExecutionProfile`
  whose registry holds ``serving.*`` counters and the fleet's health
  events (the monitor is bound to it once, and shared-fleet offloaders
  do not rebind);
- the :class:`repro.serving.admission.AdmissionController` (per-tenant
  quotas + registries) and the bounded
  :class:`repro.serving.scheduler.FleetScheduler`.

Graceful degradation contract:

- a device killed mid-serve fails affected launches over to surviving
  fleet devices (or demotes to host) via the existing resilience layer;
  sessions on healthy devices are untouched;
- SIGTERM/SIGINT (or ``drain_after_ms``) starts a *drain*: admission
  shuts (``AdmissionRejected(draining)``), queued sessions are pulled
  un-run, running sessions stop at their next item boundary with the
  in-flight item journaled, and the daemon exits cleanly — ``repro
  serve --resume`` re-admits every non-completed session and replays
  its journal bit-exactly.

Metric attribution: each session runs in its own engine with a private
registry; its final ``RunResult.metrics_delta`` is merged once into the
session's tenant registry (under the admission lock) and once into the
daemon registry (under the daemon lock). Per-tenant registries
therefore sum to the daemon's session-scoped metrics exactly.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.registry import get_benchmark
from repro.errors import (
    AdmissionRejected,
    ReproError,
    SessionAborted,
    SessionDeadlineExceeded,
    SessionDrained,
    TenantBudgetExceeded,
)
from repro.evaluation.harness import run_configuration
from repro.runtime.profiler import ExecutionProfile
from repro.runtime.resilience import FleetPolicy, ResiliencePolicy
from repro.serving import session as sess
from repro.serving.admission import AdmissionController, TenantQuota
from repro.serving.scheduler import FleetScheduler
from repro.serving.session import Session, load_session_specs


@dataclass
class ServeConfig:
    """Everything the daemon needs, grouped so the CLI and the load
    generator construct it the same way."""

    # placement
    devices: Optional[list] = None  # fleet keys; None = single target
    target: str = "gtx580"
    fleet_policy: Optional[str] = None
    # dispatch schedule for the shared fleet's command queues:
    # "concurrent" lets sessions genuinely share fleet throughput
    # (each queue's cursor is monotonic across sessions), "sequential"
    # keeps one item in flight per session.
    fleet_schedule: str = "concurrent"
    # scheduling + admission
    max_concurrency: int = 4
    queue_depth: int = 16
    tenant_max_inflight: int = 4
    tenant_sim_budget_ns: Optional[float] = None
    # per-session run shape
    max_sim_items: Optional[int] = None
    exec_tier: Optional[str] = None
    session_deadline_ms: Optional[float] = None
    # tail tolerance: "on" arms hedged launches on the shared fleet;
    # each session's deadline fraction shrinks its own hedge budget,
    # so near-deadline sessions hedge eagerly (docs/HEDGING.md).
    hedge: str = "off"
    # chaos
    fault_rate: float = 0.0
    fault_seed: int = 0
    validate_every: int = 0
    breaker_cooloff: Optional[int] = None
    kill_devices: dict = field(default_factory=dict)
    oom_bytes: int = 0
    # persistence
    serve_dir: Optional[str] = None
    resume: bool = False


class ServeDaemon:
    """A long-lived multi-session serving loop (see module docstring)."""

    def __init__(self, config):
        self.config = config
        self.profile = ExecutionProfile()
        self.metrics = self.profile.metrics
        self._metrics_lock = threading.Lock()
        self.controller = AdmissionController(
            default_quota=TenantQuota(
                max_inflight=config.tenant_max_inflight,
                sim_budget_ns=config.tenant_sim_budget_ns,
            ),
            metrics=self.metrics,
        )
        self.fleet = None
        if config.devices:
            from repro.runtime.fleet import DeviceFleet

            from dataclasses import replace

            policy = config.fleet_policy
            if isinstance(policy, str):
                policy = FleetPolicy(policy=policy)
            policy = replace(
                policy or FleetPolicy(),
                schedule=config.fleet_schedule or "concurrent",
                hedge=config.hedge or "off",
            )
            self.fleet = DeviceFleet(list(config.devices), policy=policy)
            self.fleet.monitor.bind(self.profile)
        self.scheduler = FleetScheduler(
            self._run_session,
            max_concurrency=config.max_concurrency,
            queue_depth=config.queue_depth,
        )
        self.sessions = {}
        self._registry_lock = threading.Lock()
        self._drain = threading.Event()
        self._drain_timer = None
        self._old_handlers = {}

    # -- submission ------------------------------------------------------------

    def submit(self, spec):
        """Admit and enqueue one session; raises
        :class:`AdmissionRejected` (code ``duplicate`` /
        ``draining`` / ``tenant_inflight`` / ``tenant_budget`` /
        ``queue_full``) when it cannot run."""
        with self._registry_lock:
            existing = self.sessions.get(spec.name)
            # A shed session may be resubmitted; anything else with the
            # same name is a live or finished duplicate.
            if existing is not None and existing.state != sess.REJECTED:
                self.controller.reject(
                    spec.tenant, spec.name, "duplicate"
                )  # raises
        self.controller.admit(spec.tenant, spec.name)  # raises on refusal
        session = Session(spec, session_dir=self._session_dir(spec.name))
        session.state = sess.QUEUED
        session.persist()
        with self._registry_lock:
            self.sessions[spec.name] = session
        if not self.scheduler.submit(session):
            session.finish(sess.REJECTED, error="queue_full")
            self.controller.shed(spec.tenant, spec.name)  # raises
        self.metrics.gauge("serving.queue.depth").set(self.scheduler.depth())
        return session

    def try_submit(self, spec):
        """:meth:`submit`, but a rejection is returned (and recorded on
        a REJECTED session object) instead of raised."""
        try:
            return self.submit(spec), None
        except AdmissionRejected as rej:
            with self._registry_lock:
                session = self.sessions.get(spec.name)
                if session is None or not session.terminal:
                    session = Session(spec)
                    session.finish(sess.REJECTED, error=rej.code)
                    self.sessions.setdefault(spec.name, session)
            return None, rej

    def _session_dir(self, name):
        if self.config.serve_dir is None:
            return None
        return os.path.join(self.config.serve_dir, "sessions", name)

    # -- the per-session runner (worker threads land here) ---------------------

    def _item_guard(self, session):
        """The engine-level guard: fires before every task item of the
        session's run. Raising here stops the run at a clean item
        boundary; ``run_configuration`` journals the abort."""

        def guard(task_name):
            if self._drain.is_set():
                raise SessionDrained(
                    "session '{}' drained at task '{}'".format(
                        session.name, task_name
                    )
                )
            if session.deadline_exceeded():
                raise SessionDeadlineExceeded(
                    "session '{}' exceeded its {:.0f} ms deadline at "
                    "task '{}'".format(
                        session.name, session.spec.deadline_ms, task_name
                    )
                )
            if self.controller.tenant_over_budget(session.tenant):
                raise TenantBudgetExceeded(
                    "tenant '{}' sim budget exhausted at task '{}'".format(
                        session.tenant, task_name
                    )
                )

        return guard

    def _make_offloader(self):
        if self.fleet is None:
            return None, None
        from repro.compiler.pipeline import FleetOffloader

        offloader = FleetOffloader(
            fleet=self.fleet,
            max_sim_items=self.config.max_sim_items,
            exec_tier=self.config.exec_tier,
        )
        return offloader, "fleet:" + "+".join(self.fleet.keys)

    def _make_resilience(self):
        cfg = self.config
        # Fresh injector per session, same seed: a session's fault
        # schedule is identical to a solo run with the same flags, so
        # served results stay bit-exact against solo baselines.
        return ResiliencePolicy.from_flags(
            fault_rate=cfg.fault_rate,
            seed=cfg.fault_seed,
            validate_every=cfg.validate_every,
            cooloff=cfg.breaker_cooloff,
            kill_devices=cfg.kill_devices,
            oom_bytes=cfg.oom_bytes,
        )

    def _run_session(self, session):
        if self._drain.is_set():
            self._settle(session, sess.DRAINED, error="drained before start")
            return
        session.mark_running()
        self.metrics.gauge("serving.queue.depth").set(self.scheduler.depth())
        cfg = self.config
        offloader, target_label = self._make_offloader()
        try:
            result = run_configuration(
                get_benchmark(session.spec.benchmark),
                target_label if offloader is not None else cfg.target,
                scale=session.spec.scale,
                steps=session.spec.steps,
                resilience=self._make_resilience(),
                max_sim_items=cfg.max_sim_items,
                exec_tier=cfg.exec_tier,
                journal=session.journal_dir(),
                resume=cfg.resume,
                offloader=offloader,
                item_guard=self._item_guard(session),
                hedge_urgency=session.deadline_fraction,
            )
        except SessionDrained as err:
            self._settle(session, sess.DRAINED, error=str(err))
        except SessionAborted as err:
            self._settle(session, sess.ABORTED, error=str(err))
        except ReproError as err:
            self._settle(
                session,
                sess.FAILED,
                error="{}: {}".format(type(err).__name__, err),
            )
        except Exception as err:  # the daemon must never crash
            self._settle(
                session,
                sess.FAILED,
                error="unexpected {}: {}".format(type(err).__name__, err),
            )
        else:
            self._settle(session, sess.COMPLETED, result=result)

    def _settle(self, session, state, result=None, error=None):
        session.finish(state, result=result, error=error)
        outcome = {
            sess.COMPLETED: "completed",
            sess.FAILED: "failed",
        }.get(state, "aborted")
        delta = result.metrics_delta if result is not None else None
        self.controller.finish(
            session.tenant,
            outcome,
            sim_ns=result.total_ns if result is not None else 0.0,
            metrics_delta=delta,
        )
        with self._metrics_lock:
            if delta:
                self.metrics.merge_delta(delta)
            self.metrics.inc("serving.sessions.{}".format(state))
            if session.wall_ms is not None:
                self.metrics.histogram("serving.session.wall_ms").observe(
                    session.wall_ms
                )

    # -- drain protocol --------------------------------------------------------

    def request_drain(self, reason="requested"):
        """Stop admitting, pull queued sessions, abort running ones at
        their next item boundary. Idempotent and signal-safe (it only
        sets flags; settlement happens on worker threads)."""
        if self._drain.is_set():
            return
        self._drain.set()
        self.controller.start_drain()
        self.metrics.inc("serving.drain.{}".format(reason))

    def _drain_queued_sessions(self):
        for session in self.scheduler.drain_queued():
            self._settle(session, sess.DRAINED, error="drained in queue")

    def install_signal_handlers(self):
        """Route SIGTERM/SIGINT to :meth:`request_drain` (main thread
        only)."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            self._old_handlers[signum] = signal.signal(
                signum, self._on_signal
            )

    def restore_signal_handlers(self):
        for signum, handler in self._old_handlers.items():
            signal.signal(signum, handler)
        self._old_handlers = {}

    def _on_signal(self, signum, frame):
        self.request_drain(reason=signal.Signals(signum).name.lower())

    # -- the serve loop --------------------------------------------------------

    def serve(self, specs, drain_after_ms=None, poll_s=0.02):
        """Run ``specs`` to completion (or drain) and return the report.

        Args:
            specs: :class:`SessionSpec` list; each is submitted through
                admission (rejected ones are recorded, not raised).
            drain_after_ms: optional self-drain timer — the test/CI
                stand-in for an operator's SIGTERM.
        """
        # Parse + typecheck each distinct benchmark once, serially,
        # before worker threads share the memoized CheckedProgram.
        for name in sorted({s.benchmark for s in specs}):
            get_benchmark(name).checked()
        self.scheduler.start()
        if drain_after_ms is not None:
            self._drain_timer = threading.Timer(
                drain_after_ms / 1000.0, self.request_drain, ["timer"]
            )
            self._drain_timer.daemon = True
            self._drain_timer.start()
        for spec in specs:
            self.try_submit(spec)
        try:
            while True:
                if self._drain.is_set():
                    self._drain_queued_sessions()
                with self._registry_lock:
                    live = [
                        s for s in self.sessions.values() if not s.terminal
                    ]
                if not live:
                    break
                time.sleep(poll_s)
        finally:
            if self._drain_timer is not None:
                self._drain_timer.cancel()
            self.scheduler.stop()
        return self.report()

    def resume_specs(self):
        """Sessions persisted by a previous (drained/killed) daemon in
        ``serve_dir``, ready to re-submit."""
        if self.config.serve_dir is None:
            return []
        return load_session_specs(self.config.serve_dir)

    # -- reporting -------------------------------------------------------------

    def report(self):
        with self._registry_lock:
            sessions = {
                name: s.describe() for name, s in sorted(self.sessions.items())
            }
        states = [s["state"] for s in sessions.values()]
        return {
            "sessions": sessions,
            "counts": {
                state: states.count(state)
                for state in sorted(set(states))
            },
            "tenants": self.controller.snapshot(),
            "metrics": self.metrics.as_dict(),
            "fleet": self.fleet.snapshot() if self.fleet else {},
            "queues": (
                self.fleet.queues_snapshot() if self.fleet else {}
            ),
            "drained": self._drain.is_set(),
        }


def parse_kill_spec(values):
    """Parse repeated ``DEVICE:AFTER_N`` kill flags into the
    ``kill_devices`` dict :meth:`ResiliencePolicy.from_flags` expects."""
    kills = {}
    for value in values or []:
        try:
            device, after = value.rsplit(":", 1)
            kills[device] = int(after)
        except ValueError:
            raise ValueError(
                "expected DEVICE:AFTER_N, got {!r}".format(value)
            )
    return kills


def validate_specs(specs):
    """Fail fast on unknown benchmarks before the daemon starts."""
    for spec in specs:
        get_benchmark(spec.benchmark)
    return specs
