"""Sessions: one named stream run inside the serving daemon.

A session's life::

    PENDING --admit--> QUEUED --worker--> RUNNING --+--> COMPLETED
       |                                            +--> ABORTED   (deadline/budget)
       +--reject--> REJECTED                        +--> DRAINED   (daemon drain)
                    (never entered the queue)       +--> FAILED    (unexpected error)

    QUEUED --drain--> DRAINED   (pulled from the queue un-run)

Transitions only move forward; every terminal state is recorded with a
wall-clock latency so the load generator can report p50/p99.

Each session persists a ``session.json`` descriptor next to its run
journal (``<serve-dir>/sessions/<name>/``). A drained or killed daemon
restarted with ``--resume`` re-reads those descriptors, re-admits the
sessions, and each run's :class:`repro.runtime.journal.RunJournal`
replays the journaled items bit-exactly.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.ioutil import atomic_write

PENDING = "pending"
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
ABORTED = "aborted"
DRAINED = "drained"
FAILED = "failed"
REJECTED = "rejected"

TERMINAL_STATES = frozenset({COMPLETED, ABORTED, DRAINED, FAILED, REJECTED})

SESSION_FILENAME = "session.json"
SESSION_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SessionSpec:
    """Immutable description of one session's workload.

    ``deadline_ms`` is the session's wall-clock budget measured from the
    moment it starts running (queue time does not count); ``None``
    disables the deadline.
    """

    name: str
    benchmark: str
    tenant: str = "default"
    scale: float = 0.3
    steps: Optional[int] = None
    deadline_ms: Optional[float] = None

    def to_json(self):
        payload = asdict(self)
        payload["version"] = SESSION_FORMAT_VERSION
        return payload

    @classmethod
    def from_json(cls, payload):
        payload = dict(payload)
        payload.pop("version", None)
        return cls(**payload)

    @classmethod
    def parse(cls, text, **defaults):
        """Parse the CLI form ``NAME:BENCH[:TENANT]``."""
        parts = text.split(":")
        if len(parts) < 2 or len(parts) > 3 or not all(parts):
            raise ValueError(
                "expected NAME:BENCH[:TENANT], got {!r}".format(text)
            )
        name, benchmark = parts[0], parts[1]
        tenant = parts[2] if len(parts) == 3 else "default"
        return cls(name=name, benchmark=benchmark, tenant=tenant, **defaults)


class Session:
    """One session's mutable runtime state (owned by the daemon)."""

    def __init__(self, spec, session_dir=None):
        self.spec = spec
        self.session_dir = session_dir
        self.state = PENDING
        self.result = None  # RunResult on COMPLETED
        self.error = None  # str on ABORTED/DRAINED/FAILED/REJECTED
        self.submitted_at = time.monotonic()
        self.started_at = None
        self.finished_at = None

    @property
    def name(self):
        return self.spec.name

    @property
    def tenant(self):
        return self.spec.tenant

    @property
    def terminal(self):
        return self.state in TERMINAL_STATES

    @property
    def wall_ms(self):
        """Submit-to-finish wall latency (None until terminal)."""
        if self.finished_at is None:
            return None
        return (self.finished_at - self.submitted_at) * 1000.0

    def mark_running(self):
        self.state = RUNNING
        self.started_at = time.monotonic()

    def finish(self, state, result=None, error=None):
        self.state = state
        self.result = result
        self.error = error
        self.finished_at = time.monotonic()

    def deadline_exceeded(self):
        """True once the running session outlived ``deadline_ms``."""
        deadline = self.spec.deadline_ms
        if deadline is None or self.started_at is None:
            return False
        return (time.monotonic() - self.started_at) * 1000.0 > deadline

    def deadline_fraction(self):
        """How far through ``deadline_ms`` the running session is:
        0.0 fresh (or with no deadline), 1.0 at the deadline, capped
        there — past-deadline sessions are shed by the item guard, not
        hedged harder. The fleet's hedge budget scales down by this
        fraction (docs/HEDGING.md)."""
        deadline = self.spec.deadline_ms
        if deadline is None or self.started_at is None:
            return 0.0
        elapsed_ms = (time.monotonic() - self.started_at) * 1000.0
        return min(1.0, elapsed_ms / float(deadline))

    # -- persistence -----------------------------------------------------------

    def journal_dir(self):
        if self.session_dir is None:
            return None
        return os.path.join(self.session_dir, "journal")

    def persist(self):
        """Write ``session.json`` atomically (no-op without a dir)."""
        if self.session_dir is None:
            return
        os.makedirs(self.session_dir, exist_ok=True)
        path = os.path.join(self.session_dir, SESSION_FILENAME)
        payload = json.dumps(self.spec.to_json(), indent=2, sort_keys=True)
        atomic_write(path, (payload + "\n").encode("utf-8"))

    def describe(self):
        out = {
            "name": self.name,
            "tenant": self.tenant,
            "benchmark": self.spec.benchmark,
            "state": self.state,
            "wall_ms": self.wall_ms,
            "error": self.error,
        }
        if self.result is not None:
            out["checksum"] = self.result.checksum
            out["total_ns"] = self.result.total_ns
            out["journal"] = self.result.journal
            out["degraded"] = bool(
                self.result.faults.get("recovery.fallbacks", 0)
                or self.result.metrics_delta.get(
                    "recovery.failovers", {}
                ).get("inc", 0)
            )
        return out


def load_session_specs(serve_dir):
    """Recover the :class:`SessionSpec` list persisted under
    ``<serve_dir>/sessions/`` (for ``repro serve --resume``). Sorted by
    session name for deterministic re-submission order."""
    sessions_root = os.path.join(serve_dir, "sessions")
    specs = []
    if not os.path.isdir(sessions_root):
        return specs
    for entry in sorted(os.listdir(sessions_root)):
        path = os.path.join(sessions_root, entry, SESSION_FILENAME)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            continue
        specs.append(SessionSpec.from_json(payload))
    return specs
