"""The serving load generator behind ``repro serve-bench``.

Measures the daemon the way an operator would: two phases over the same
workload —

- **clean**: N sessions across T tenants on the shared device fleet,
  no faults;
- **chaos**: the same workload with fault injection and a device killed
  mid-serve (``--kill-device``), which exercises failover, demotion,
  and admission under degraded capacity.

Each phase reports sessions/sec, p50/p99 session wall latency, the
per-code rejection counts, and recovery totals. Every completed
session's checksum is compared against a *solo* run of the same
benchmark at the same shape (single target, no serving daemon, no
faults) — fault recovery and fleet placement affect only simulated
timing, never values, so ``bit_exact`` must hold in both phases.

Results land in ``BENCH_serving.json`` (same
:func:`repro.ioutil.atomic_write_json` convention as the executor and
recovery benches) for the CI artifact upload.
"""

from __future__ import annotations

from repro.apps.registry import BENCHMARKS
from repro.evaluation.harness import run_configuration
from repro.ioutil import atomic_write_json
from repro.serving.server import ServeConfig, ServeDaemon
from repro.serving.session import COMPLETED, SessionSpec

# Fast stream apps first: the bench should spend its wall clock on
# concurrency, not on any one giant kernel.
DEFAULT_APPS = ["jg-series-single", "mosaic", "jg-crypt"]


def build_workload(
    sessions=8,
    tenants=2,
    apps=None,
    scale=0.2,
    steps=None,
    deadline_ms=None,
):
    """Round-robin ``sessions`` specs across ``tenants`` and ``apps``."""
    apps = list(apps or DEFAULT_APPS)
    for name in apps:
        if name not in BENCHMARKS:
            raise KeyError("unknown benchmark '{}'".format(name))
    specs = []
    for idx in range(sessions):
        specs.append(
            SessionSpec(
                name="s{:03d}".format(idx),
                benchmark=apps[idx % len(apps)],
                tenant="t{}".format(idx % max(1, tenants)),
                scale=scale,
                steps=steps,
                deadline_ms=deadline_ms,
            )
        )
    return specs


def quantile(values, q):
    """Nearest-rank quantile of ``values`` (None when empty)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def solo_checksums(specs, config):
    """Ground-truth checksum per benchmark: a clean solo run at the
    same workload shape on the single-device target."""
    out = {}
    for spec in specs:
        if spec.benchmark in out:
            continue
        result = run_configuration(
            BENCHMARKS[spec.benchmark],
            config.target,
            scale=spec.scale,
            steps=spec.steps,
            max_sim_items=config.max_sim_items,
            exec_tier=config.exec_tier,
        )
        out[spec.benchmark] = result.checksum
    return out


def run_phase(config, specs, wall_clock):
    """Serve ``specs`` on a fresh daemon; returns the summarized phase
    plus the raw report."""
    daemon = ServeDaemon(config)
    start = wall_clock()
    report = daemon.serve(specs)
    wall_s = max(wall_clock() - start, 1e-9)
    sessions = report["sessions"]
    completed = [s for s in sessions.values() if s["state"] == COMPLETED]
    latencies = [
        s["wall_ms"] for s in sessions.values() if s["wall_ms"] is not None
    ]
    metrics = report["metrics"]
    rejected = {
        name.split("serving.rejected.", 1)[1]: value
        for name, value in metrics.items()
        if name.startswith("serving.rejected.")
    }
    return {
        "wall_s": wall_s,
        "counts": report["counts"],
        "sessions_per_sec": len(completed) / wall_s,
        "latency_ms": {
            "p50": quantile(latencies, 0.50),
            "p99": quantile(latencies, 0.99),
            "max": max(latencies) if latencies else None,
        },
        "rejected": rejected,
        "recovery": {
            "faults": metrics.get("recovery.faults", 0),
            "retries": metrics.get("recovery.retries", 0),
            "failovers": metrics.get("recovery.failovers", 0),
            "fallbacks": metrics.get("recovery.fallbacks", 0),
            "demotions": metrics.get("recovery.demotions", 0),
        },
        "fleet": report["fleet"],
        "checksums": {
            name: s.get("checksum")
            for name, s in sessions.items()
            if s["state"] == COMPLETED
        },
        "benchmarks": {
            name: s["benchmark"] for name, s in sessions.items()
        },
    }


def check_bit_exact(phase, solo):
    """Every completed session's checksum must equal its benchmark's
    solo ground truth; returns the mismatch list (empty = bit-exact)."""
    mismatches = []
    for name, checksum in phase["checksums"].items():
        expected = solo.get(phase["benchmarks"][name])
        if expected is None or checksum != expected:
            mismatches.append(
                {"session": name, "got": checksum, "want": expected}
            )
    return mismatches


def serving_bench(
    sessions=8,
    tenants=2,
    apps=None,
    scale=0.2,
    steps=None,
    devices=("gtx580", "hd5970"),
    target="gtx580",
    max_concurrency=4,
    queue_depth=16,
    max_sim_items=256,
    fault_rate=0.05,
    fault_seed=1234,
    kill_devices=None,
    out_path=None,
    wall_clock=None,
):
    """Run the clean and chaos phases and return (optionally writing)
    the ``BENCH_serving.json`` payload."""
    if wall_clock is None:
        import time

        wall_clock = time.monotonic
    if kill_devices is None:
        kill_devices = {list(devices)[0]: 3}
    specs = build_workload(
        sessions=sessions, tenants=tenants, apps=apps, scale=scale, steps=steps
    )

    def config(**chaos):
        return ServeConfig(
            devices=list(devices),
            target=target,
            max_concurrency=max_concurrency,
            queue_depth=queue_depth,
            tenant_max_inflight=sessions,  # the bench measures throughput,
            max_sim_items=max_sim_items,  # not quota shedding
            **chaos,
        )

    solo = solo_checksums(specs, config())
    clean = run_phase(config(), specs, wall_clock)
    chaos = run_phase(
        config(
            fault_rate=fault_rate,
            fault_seed=fault_seed,
            kill_devices=dict(kill_devices),
        ),
        specs,
        wall_clock,
    )
    payload = {
        "bench": "serving",
        "workload": {
            "sessions": sessions,
            "tenants": tenants,
            "apps": sorted({s.benchmark for s in specs}),
            "scale": scale,
            "devices": list(devices),
            "max_concurrency": max_concurrency,
            "queue_depth": queue_depth,
            "kill_devices": dict(kill_devices),
            "fault_rate": fault_rate,
        },
        "solo_checksums": solo,
        "clean": clean,
        "chaos": chaos,
        "bit_exact": {
            "clean": check_bit_exact(clean, solo),
            "chaos": check_bit_exact(chaos, solo),
        },
    }
    payload["ok"] = not payload["bit_exact"]["clean"] and not payload[
        "bit_exact"
    ]["chaos"]
    if out_path:
        atomic_write_json(out_path, payload)
    return payload
