"""Bounded scheduling of admitted sessions onto worker threads.

The scheduler is deliberately dumb: a :class:`queue.Queue` with a hard
``maxsize`` and ``max_concurrency`` worker threads draining it. All
policy lives elsewhere — admission decides *whether* a session enters,
the daemon's item guard decides *when* a running session must stop.
The queue being bounded is the load-shedding mechanism: a full queue
makes :meth:`submit` return ``False`` immediately (the daemon converts
that into ``AdmissionRejected(queue_full)``) instead of buffering
unbounded work.
"""

from __future__ import annotations

import queue
import threading


class FleetScheduler:
    """``max_concurrency`` workers draining a bounded session queue.

    Args:
        run_session: callable invoked with each dequeued session; must
            never raise (the daemon's runner catches everything and
            settles the session).
        max_concurrency: worker thread count.
        queue_depth: bound on *waiting* sessions (running sessions have
            already left the queue).
    """

    def __init__(self, run_session, max_concurrency=4, queue_depth=16):
        self.run_session = run_session
        self.max_concurrency = max(1, int(max_concurrency))
        self.queue_depth = max(1, int(queue_depth))
        self._queue = queue.Queue(maxsize=self.queue_depth)
        self._stop = threading.Event()
        self._threads = []

    def start(self):
        if self._threads:
            return
        for idx in range(self.max_concurrency):
            t = threading.Thread(
                target=self._worker,
                name="serve-worker-{}".format(idx),
                daemon=True,
            )
            t.start()
            self._threads.append(t)

    def submit(self, session):
        """Enqueue without blocking; False means the queue is full."""
        try:
            self._queue.put_nowait(session)
        except queue.Full:
            return False
        return True

    def depth(self):
        """Approximate count of sessions waiting in the queue."""
        return self._queue.qsize()

    def drain_queued(self):
        """Pull every still-queued session out un-run (daemon drain);
        returns them in queue order."""
        drained = []
        while True:
            try:
                session = self._queue.get_nowait()
            except queue.Empty:
                return drained
            drained.append(session)
            self._queue.task_done()

    def join(self):
        """Block until every submitted session has been processed (or
        pulled by :meth:`drain_queued`)."""
        self._queue.join()

    def stop(self):
        """Stop the workers once the queue is idle."""
        self._stop.set()
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads = []

    def _worker(self):
        while not self._stop.is_set():
            try:
                session = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            try:
                self.run_session(session)
            finally:
                self._queue.task_done()
