"""Kernel execution on the simulated device.

The executor compiles kernel IR to Python source (one generator function
per work-item; ``barrier()`` becomes ``yield`` and the scheduler resumes
every item of the work-group in lockstep phases), then runs it over an
NDRange. It produces two things:

- the actual output buffers — the simulator *computes real results*,
  which the tests compare against the host interpreter and NumPy
  references;
- a :class:`LaunchTrace`: per-straight-line-segment operation counts and
  a per-access-site memory trace (which work-item touched which address,
  in which order), from which :mod:`repro.opencl.timing` derives
  coalescing, bank-conflict, cache, and broadcast behavior.

Integer arithmetic wraps to 32 bits at multiplications, shifts, and
casts (the overflow-relevant operations for the benchmark suite); floats
compute in double precision and round on store into ``float`` buffers,
matching the host interpreter's conventions.
"""

from __future__ import annotations

import math
import os
import threading

import numpy as np

from repro.backend import kernel_ir as K
from repro.errors import DeviceError
from repro.runtime.tracing import NULL_TRACER

# Execution-tier knob: "auto" runs eligible kernels on the vectorized
# batch tier and everything else per-item; "batch" is the same
# preference stated explicitly; "per-item" forces the scalar tier.
# Guarded (sanitizer-instrumented) launches always run per-item.
EXEC_TIER_ENV = "REPRO_EXEC_TIER"
EXEC_TIERS = ("auto", "batch", "per-item")

# Global codegen counter: bumped every time kernel IR is actually
# translated and exec-compiled (per-item, sanitized, or batch). The
# compilation cache's acceptance test is that relaunching an identical
# kernel does not move this counter.
_codegen_compiles = 0


def codegen_compiles():
    """How many kernel-IR -> Python compilations have run so far."""
    return _codegen_compiles


def _count_codegen():
    global _codegen_compiles
    _codegen_compiles += 1


def resolve_exec_tier(explicit=None):
    """The effective tier: an explicit request wins, then the
    ``REPRO_EXEC_TIER`` environment variable, then ``auto``."""
    tier = explicit or os.environ.get(EXEC_TIER_ENV) or "auto"
    if tier not in EXEC_TIERS:
        raise DeviceError(
            "unknown execution tier {!r} (choose from: {})".format(
                tier, ", ".join(EXEC_TIERS)
            )
        )
    return tier


# Bump when CompiledKernel.artifact()'s shape changes: a mismatched
# on-disk kernel artifact is treated as a cache miss, never deserialized.
DISK_ARTIFACT_VERSION = 1


# ---------------------------------------------------------------------------
# Statistics containers
# ---------------------------------------------------------------------------


class SiteTrace:
    """Raw memory trace for one static access site.

    Accesses arrive either one at a time (the per-item tier appends to
    the ``lanes``/``indices`` lists) or as whole-ndrange blocks (the
    batch tier calls :meth:`append_block` once per executed access
    site per iteration). Both shapes merge in :meth:`arrays`; per-lane
    access order is preserved in either representation, which is all
    the timing model depends on.
    """

    __slots__ = (
        "space",
        "elem_bytes",
        "width",
        "is_store",
        "array",
        "lanes",
        "indices",
        "blocks",
    )

    def __init__(self, space, elem_bytes, width, is_store, array=None):
        self.space = space
        self.elem_bytes = elem_bytes
        self.width = width  # vector width (elements moved per access)
        self.is_store = is_store
        self.array = array  # buffer name (for the race sanitizer)
        self.lanes = []  # global work-item ids
        self.indices = []  # element indices (in units of width)
        self.blocks = []  # (lanes int64 array, indices int64 array) chunks

    def append_block(self, lanes, indices, count=None):
        """Record one vectorized visit to this site: ``lanes[i]``
        accessed element ``indices[i]`` (``indices`` may be a scalar,
        broadcast across ``count`` lanes)."""
        lanes = np.asarray(lanes, dtype=np.int64)
        n = len(lanes) if count is None else count
        idx = np.broadcast_to(np.asarray(indices, dtype=np.int64), (n,))
        self.blocks.append((lanes, idx))

    @property
    def accesses(self):
        return len(self.lanes) + sum(len(b) for b, _ in self.blocks)

    @property
    def bytes_moved(self):
        return self.accesses * self.elem_bytes * self.width

    def arrays(self):
        scalar_lanes = np.asarray(self.lanes, dtype=np.int64)
        scalar_idx = np.asarray(self.indices, dtype=np.int64)
        if not self.blocks:
            return scalar_lanes, scalar_idx
        lane_parts = [b for b, _ in self.blocks]
        idx_parts = [i for _, i in self.blocks]
        if len(scalar_lanes):
            lane_parts.insert(0, scalar_lanes)
            idx_parts.insert(0, scalar_idx)
        return np.concatenate(lane_parts), np.concatenate(idx_parts)


class LaunchTrace:
    """Everything one kernel launch did, for the timing model."""

    def __init__(self, kernel_name, global_size, local_size):
        self.kernel_name = kernel_name
        self.global_size = global_size
        self.local_size = local_size
        self.tier = "per-item"  # which execution tier ran this launch
        self.op_cycles = {
            "int": 0,
            "long": 0,
            "fp": 0,
            "dp": 0,
            "cmp": 0,
            "branch": 0,
            "trans_f": 0,
            "trans_d": 0,
        }
        self.sites = {}
        self.barriers = 0

    @property
    def work_groups(self):
        return (self.global_size + self.local_size - 1) // self.local_size

    def total_ops(self):
        return sum(self.op_cycles.values())


# ---------------------------------------------------------------------------
# Expression / statement code generation
# ---------------------------------------------------------------------------

_MATH_ONE = {
    "sqrt": "math.sqrt",
    "native_sqrt": "math.sqrt",
    "rsqrt": "_rsqrt",
    "native_rsqrt": "_rsqrt",
    "sin": "math.sin",
    "native_sin": "math.sin",
    "cos": "math.cos",
    "native_cos": "math.cos",
    "tan": "math.tan",
    "native_tan": "math.tan",
    "exp": "math.exp",
    "native_exp": "math.exp",
    "log": "math.log",
    "native_log": "math.log",
    "floor": "math.floor",
    "ceil": "math.ceil",
    "fabs": "abs",
    "abs": "abs",
}
_MATH_TWO = {
    "pow": "math.pow",
    "native_powr": "math.pow",
    "atan2": "math.atan2",
    "hypot": "math.hypot",
    "min": "min",
    "max": "max",
    "fmin": "min",
    "fmax": "max",
}

_WORKITEM_FUNCS = {
    "get_global_id": "_gid",
    "get_local_id": "_lid",
    "get_group_id": "_grp",
    "get_local_size": "_lsz",
    "get_global_size": "_gsz",
    "get_num_groups": "_ngrp",
}

_TRANSCENDENTALS = frozenset(
    {
        "sqrt",
        "native_sqrt",
        "rsqrt",
        "native_rsqrt",
        "sin",
        "native_sin",
        "cos",
        "native_cos",
        "tan",
        "native_tan",
        "exp",
        "native_exp",
        "log",
        "native_log",
        "pow",
        "native_powr",
        "atan2",
        "hypot",
    }
)


def _is_double(ktype):
    if isinstance(ktype, K.KScalar):
        return ktype.kind == "double"
    if isinstance(ktype, K.KVector):
        return ktype.base.kind == "double"
    return False


def _op_class(expr):
    """Which op counter an expression charges, or None."""
    if isinstance(expr, K.KBin):
        if expr.op in ("<", ">", "<=", ">=", "==", "!="):
            return "cmp", 1
        lanes = expr.ktype.width if isinstance(expr.ktype, K.KVector) else 1
        if _is_double(expr.ktype):
            return "dp", lanes
        if getattr(expr.ktype, "is_float", False) or (
            isinstance(expr.ktype, K.KVector) and expr.ktype.is_float
        ):
            return "fp", lanes
        if isinstance(expr.ktype, K.KScalar) and expr.ktype.kind == "long":
            return "long", lanes
        return "int", lanes
    if isinstance(expr, K.KUn):
        if _is_double(expr.ktype):
            return "dp", 1
        if getattr(expr.ktype, "is_float", False):
            return "fp", 1
        return "int", 1
    if isinstance(expr, K.KCall):
        if expr.name in _TRANSCENDENTALS:
            return ("trans_d" if _is_double(expr.ktype) else "trans_f"), 1
        if expr.name in _MATH_ONE or expr.name in _MATH_TWO:
            return ("dp" if _is_double(expr.ktype) else "fp"), 1
        return None
    if isinstance(expr, K.KSelect):
        return "branch", 1
    return None


class _Codegen:
    """Translates one kernel to the source of a per-item generator.

    With ``sanitize=True`` the emitted code additionally calls a
    per-site checker ``_ck<site>(index[, value])`` *before* every memory
    access and a watchdog tick ``_wd()`` at the top of every loop
    iteration. The op-count segments and access sites are identical in
    both modes, so instrumented launches report the same profile.
    """

    def __init__(self, kernel, sanitize=False):
        self.kernel = kernel
        self.sanitize = sanitize
        self.lines = []
        self.indent = 1
        self.temp = 0
        self.segments = []  # op-count dicts, one per straight-line segment
        self.current_segment = None
        self.sites = {}  # site -> (space, elem_bytes, width, is_store, array)
        self.has_barrier = False
        # Loop-context stack for break/continue translation: each entry
        # is ("plain", None) for loops whose Python form matches the IR
        # semantics directly, or ("wrapped", brk_var) for KFor loops
        # whose body is wrapped so that `continue` still reaches the
        # induction update.
        self.loop_stack = []

    # -- emission helpers ---------------------------------------------------

    def emit(self, line):
        self.lines.append("    " * self.indent + line)

    def fresh(self):
        self.temp += 1
        return "_t{}".format(self.temp)

    def _segment(self):
        """Current op-count accumulator; opens a new segment (with its
        counter bump emitted) when none is active."""
        if self.current_segment is None:
            seg_id = len(self.segments)
            self.segments.append(
                {
                    "int": 0,
                    "long": 0,
                    "fp": 0,
                    "dp": 0,
                    "cmp": 0,
                    "branch": 0,
                    "trans_f": 0,
                    "trans_d": 0,
                }
            )
            self.emit("_segc[{}] += 1".format(seg_id))
            self.current_segment = self.segments[seg_id]
        return self.current_segment

    def close_segment(self):
        self.current_segment = None

    def charge(self, expr):
        op = _op_class(expr)
        if op is not None:
            kind, n = op
            self._segment()[kind] += n

    # -- expressions ----------------------------------------------------------

    def expr(self, e):
        """Return a Python expression string, emitting hoisted statements
        for loads as needed."""
        if isinstance(e, K.KConst):
            if isinstance(e.value, bool):
                return "True" if e.value else "False"
            if isinstance(e.value, float):
                if e.value != e.value:
                    return "math.nan"
                if e.value == float("inf"):
                    return "math.inf"
                if e.value == float("-inf"):
                    return "(-math.inf)"
            return repr(e.value)
        if isinstance(e, K.KVar):
            return _pyname(e.name)
        if isinstance(e, K.KUn):
            self.charge(e)
            operand = self.expr(e.operand)
            if e.op == "!":
                return "(not {})".format(operand)
            if e.op == "~":
                return "(_i32(~({})))".format(operand)
            return "({}{})".format(e.op, operand)
        if isinstance(e, K.KBin):
            return self._binary(e)
        if isinstance(e, K.KSelect):
            self.charge(e)
            return "(({}) if ({}) else ({}))".format(
                self.expr(e.then), self.expr(e.cond), self.expr(e.otherwise)
            )
        if isinstance(e, K.KCast):
            return self._cast(e)
        if isinstance(e, K.KCall):
            return self._call(e)
        if isinstance(e, K.KLoad):
            return self._load(e)
        if isinstance(e, K.KImageLoad):
            return self._image_load(e)
        if isinstance(e, K.KVecExtract):
            return "({}[{}].item())".format(self.expr(e.vec), e.lane)
        if isinstance(e, K.KVecBuild):
            elems = ", ".join(self.expr(x) for x in e.elems)
            return "np.array([{}], dtype={})".format(elems, _np_dtype(e.ktype.base))
        raise DeviceError("cannot generate code for {}".format(type(e).__name__))

    def _binary(self, e):
        self.charge(e)
        left = self.expr(e.left)
        right = self.expr(e.right)
        op = e.op
        is_long = isinstance(e.ktype, K.KScalar) and e.ktype.kind == "long"
        is_int = isinstance(e.ktype, K.KScalar) and e.ktype.kind in (
            "int",
            "long",
            "char",
        )
        wrap = "_i64" if is_long else "_i32"
        shift_mask = 63 if is_long else 31
        if op == "/" and is_int:
            return "_idiv({}, {})".format(left, right)
        if op == "%" and is_int:
            return "_irem({}, {})".format(left, right)
        if op in ("*", "+", "-") and is_int:
            return "{}(({}) {} ({}))".format(wrap, left, op, right)
        if op == "<<":
            return "{}(({}) << (({}) & {}))".format(wrap, left, right, shift_mask)
        if op == ">>":
            return "(({}) >> (({}) & {}))".format(left, right, shift_mask)
        if op == ">>>":
            mask = "0xFFFFFFFFFFFFFFFF" if is_long else "0xFFFFFFFF"
            return "((({}) & {}) >> (({}) & {}))".format(
                left, mask, right, shift_mask
            )
        if op == "&&":
            return "(({}) and ({}))".format(left, right)
        if op == "||":
            return "(({}) or ({}))".format(left, right)
        return "(({}) {} ({}))".format(left, op, right)

    def _cast(self, e):
        inner = self.expr(e.expr)
        if isinstance(e.ktype, K.KScalar):
            kind = e.ktype.kind
            if kind == "int":
                return "_i32(int({}))".format(inner)
            if kind == "long":
                return "_i64(int({}))".format(inner)
            if kind == "char":
                return "_i8(int({}))".format(inner)
            if kind == "float":
                return "_f32({})".format(inner)
            if kind == "double":
                return "float({})".format(inner)
            if kind == "bool":
                return "bool({})".format(inner)
        return inner

    def _call(self, e):
        if e.name in _WORKITEM_FUNCS:
            return _WORKITEM_FUNCS[e.name]
        self.charge(e)
        if e.name in _MATH_ONE:
            return "{}({})".format(_MATH_ONE[e.name], self.expr(e.args[0]))
        if e.name in _MATH_TWO:
            return "{}({}, {})".format(
                _MATH_TWO[e.name], self.expr(e.args[0]), self.expr(e.args[1])
            )
        raise DeviceError("unknown device builtin '{}'".format(e.name))

    def _register_site(self, node, is_store):
        ktype = node.ktype
        if isinstance(ktype, K.KVector):
            elem_bytes = ktype.base.size
            width = ktype.width
        else:
            elem_bytes = ktype.size
            width = 1
        if isinstance(node, K.KImageLoad):
            space, array = K.Space.IMAGE, node.image
        else:
            space, array = node.space, node.array
        self.sites[node.site] = (space, elem_bytes, width, is_store, array)

    def _load(self, e):
        if e.site < 0:
            raise DeviceError("load without a site id (run assign_sites)")
        self._register_site(e, is_store=False)
        index = self.expr(e.index)
        temp = self.fresh()
        idx_var = self.fresh()
        self.emit("{} = {}".format(idx_var, index))
        if self.sanitize:
            self.emit("_ck{}({})".format(e.site, idx_var))
        array = _bufname(e.array, e.space)
        if isinstance(e.ktype, K.KVector):
            width = e.ktype.width
            self.emit(
                "{} = {}[{} * {} : {} * {} + {}]".format(
                    temp, array, idx_var, width, idx_var, width, width
                )
            )
        elif e.space is K.Space.PRIVATE:
            # Private arrays are per-item; no trace needed.
            self.emit("{} = {}[{}].item()".format(temp, array, idx_var))
            return temp
        else:
            self.emit("{} = {}[{}].item()".format(temp, array, idx_var))
        self.emit("_tr{}(( _gid, {} ))".format(e.site, idx_var))
        return temp

    def _image_load(self, e):
        if e.site < 0:
            raise DeviceError("image load without a site id")
        self._register_site(e, is_store=False)
        coord = self.expr(e.coord)
        temp = self.fresh()
        idx_var = self.fresh()
        self.emit("{} = {}".format(idx_var, coord))
        if self.sanitize:
            self.emit("_ck{}({})".format(e.site, idx_var))
        width = e.ktype.width
        self.emit(
            "{} = {}[{} * {} : {} * {} + {}]".format(
                temp,
                _bufname(e.image, K.Space.GLOBAL),
                idx_var,
                width,
                idx_var,
                width,
                width,
            )
        )
        self.emit("_tr{}(( _gid, {} ))".format(e.site, idx_var))
        return temp

    # -- statements ------------------------------------------------------------

    def stmt(self, s):
        if isinstance(s, K.KDecl):
            init = self.expr(s.init) if s.init is not None else _zero(s.ktype)
            self.emit("{} = {}".format(_pyname(s.name), init))
        elif isinstance(s, K.KAssign):
            self.emit("{} = {}".format(_pyname(s.name), self.expr(s.value)))
        elif isinstance(s, K.KStore):
            self._store(s)
        elif isinstance(s, K.KIf):
            self._segment()["branch"] += 1
            cond = self.expr(s.cond)
            self.emit("if {}:".format(cond))
            self._block(s.then)
            if s.otherwise:
                self.emit("else:")
                self._block(s.otherwise)
            self.close_segment()
        elif isinstance(s, K.KFor):
            var = _pyname(s.var)
            self.emit("{} = {}".format(var, self.expr(s.lo)))
            hi = self.fresh()
            self.emit("{} = {}".format(hi, self.expr(s.hi)))
            step = self.fresh()
            self.emit("{} = {}".format(step, self.expr(s.step)))
            self.close_segment()
            self.emit("while {} < {}:".format(var, hi))
            self.indent += 1
            if self.sanitize:
                self.emit("_wd()")
            self._segment()["cmp"] += 1
            self._segment()["branch"] += 1
            self._segment()["int"] += 1  # induction update
            if _has_loop_jumps(s.body):
                # A bare Python `continue` would skip the induction
                # update: wrap the body in a one-iteration loop so
                # `continue` becomes `break` out of the wrapper and the
                # update still runs; `break` sets a flag checked after.
                brk = self.fresh()
                self.emit("{} = False".format(brk))
                self.emit("for _once in (0,):")
                self.indent += 1
                self.loop_stack.append(("wrapped", brk))
                for child in s.body:
                    self.stmt(child)
                self.loop_stack.pop()
                self.indent -= 1
                self.close_segment()
                self.emit("if {}:".format(brk))
                self.emit("    break")
            else:
                self.loop_stack.append(("plain", None))
                for child in s.body:
                    self.stmt(child)
                self.loop_stack.pop()
            self.emit("{} += {}".format(var, step))
            self.indent -= 1
            self.close_segment()
        elif isinstance(s, K.KWhile):
            self.close_segment()
            self.emit("while {}:".format(self.expr(s.cond)))
            self.indent += 1
            if self.sanitize:
                self.emit("_wd()")
            self._segment()["cmp"] += 1
            self._segment()["branch"] += 1
            self.loop_stack.append(("plain", None))
            for child in s.body:
                self.stmt(child)
            self.loop_stack.pop()
            self.indent -= 1
            self.close_segment()
        elif isinstance(s, K.KBarrier):
            self.has_barrier = True
            self.emit("yield 0")
            self.close_segment()
        elif isinstance(s, K.KReturn):
            self.emit("return")
            self.close_segment()
        elif isinstance(s, K.KBreak):
            if self.loop_stack and self.loop_stack[-1][0] == "wrapped":
                self.emit("{} = True".format(self.loop_stack[-1][1]))
            self.emit("break")
            self.close_segment()
        elif isinstance(s, K.KContinue):
            if self.loop_stack and self.loop_stack[-1][0] == "wrapped":
                self.emit("break")  # out of the one-iteration wrapper
            else:
                self.emit("continue")
            self.close_segment()
        elif isinstance(s, K.KComment):
            self.emit("# {}".format(s.text))
        else:
            raise DeviceError("cannot execute {}".format(type(s).__name__))

    def _block(self, stmts):
        self.indent += 1
        self.close_segment()
        if not stmts:
            self.emit("pass")
        for child in stmts:
            self.stmt(child)
        self.indent -= 1
        self.close_segment()

    def _store(self, s):
        if s.site < 0:
            raise DeviceError("store without a site id (run assign_sites)")
        self._register_site(s, is_store=True)
        index = self.expr(s.index)
        value = self.expr(s.value)
        idx_var = self.fresh()
        self.emit("{} = {}".format(idx_var, index))
        if self.sanitize:
            val_var = self.fresh()
            self.emit("{} = {}".format(val_var, value))
            self.emit("_ck{}({}, {})".format(s.site, idx_var, val_var))
            value = val_var
        array = _bufname(s.array, s.space)
        if isinstance(s.ktype, K.KVector):
            width = s.ktype.width
            self.emit(
                "{}[{} * {} : {} * {} + {}] = {}".format(
                    array, idx_var, width, idx_var, width, width, value
                )
            )
        else:
            self.emit("{}[{}] = {}".format(array, idx_var, value))
        if s.space is not K.Space.PRIVATE:
            self.emit("_tr{}(( _gid, {} ))".format(s.site, idx_var))

    # -- top level --------------------------------------------------------------

    def generate(self):
        kernel = self.kernel
        buffer_args = [
            _bufname(p.name, p.space) for p in kernel.params if p.is_pointer
        ]
        scalar_args = [_pyname(p.name) for p in kernel.params if not p.is_pointer]
        local_args = [
            _bufname(a.name, a.space)
            for a in kernel.arrays
            if a.space is K.Space.LOCAL
        ]
        trace_args = []  # filled after body generation
        header_placeholder = len(self.lines)

        # Private array declarations come first.
        body_start = len(self.lines)
        for arr in kernel.arrays:
            if arr.space is K.Space.PRIVATE:
                self.emit(
                    "{} = np.zeros({}, dtype={})".format(
                        _bufname(arr.name, arr.space),
                        arr.size,
                        _np_dtype(arr.ktype),
                    )
                )
        for stmt in kernel.body:
            self.stmt(stmt)
        if not self.has_barrier:
            # Make every item function a generator uniformly.
            self.emit("if False:")
            self.emit("    yield 0")

        trace_args = ["_tr{}".format(site) for site in sorted(self.sites)]
        params = (
            ["_gid", "_lid", "_grp", "_lsz", "_gsz", "_ngrp", "_segc"]
            + buffer_args
            + scalar_args
            + local_args
            + trace_args
        )
        if self.sanitize:
            params += ["_wd"] + [
                "_ck{}".format(site) for site in sorted(self.sites)
            ]
        header = "def _item({}):".format(", ".join(params))
        source = [header] + self.lines
        return "\n".join(source), self.segments, self.sites


def _has_loop_jumps(stmts):
    """True when ``stmts`` contain a break/continue belonging to this
    loop level (not one captured by a nested loop)."""
    for stmt in stmts:
        if isinstance(stmt, (K.KBreak, K.KContinue)):
            return True
        if isinstance(stmt, K.KIf):
            if _has_loop_jumps(stmt.then) or _has_loop_jumps(stmt.otherwise):
                return True
        # Nested KFor/KWhile own their jumps: do not descend.
    return False


def _pyname(name):
    return "v_" + name


def _bufname(name, space):
    return "m_" + name


def _np_dtype(ktype):
    base = ktype.base if isinstance(ktype, K.KVector) else ktype
    return {
        "bool": "np.bool_",
        "char": "np.int8",
        "int": "np.int32",
        "long": "np.int64",
        "float": "np.float32",
        "double": "np.float64",
    }[base.kind]


def _zero(ktype):
    if isinstance(ktype, K.KVector):
        return "np.zeros({}, dtype={})".format(ktype.width, _np_dtype(ktype))
    if ktype.is_float:
        return "0.0"
    if ktype.kind == "bool":
        return "False"
    return "0"


# ---------------------------------------------------------------------------
# Batch (whole-ndrange vectorized) tier
# ---------------------------------------------------------------------------
#
# For branch-free, barrier-free kernels — the Figure 4 grid-stride shape
# every generated map kernel takes — the whole index space can execute
# as NumPy array expressions: one array op per IR node instead of one
# Python bytecode walk per node *per work-item*. The lowering keeps bit
# identity with the per-item tier (NaN-safe): integers compute in int64
# with the same explicit 32/64-bit wraps, floats compute in float64 and
# round at float32 stores/casts, and the transcendentals NumPy does not
# evaluate bit-identically to libm (tan/exp/log/pow/atan2/hypot) run
# element-wise through ``math``. Kernels using barriers, local memory,
# data-dependent inner loops, divergent branches, or division on a
# lazily-evaluated path decline the batch tier and fall back per-item.

_VARYING_WORKITEM = frozenset(
    {"get_global_id", "get_local_id", "get_group_id"}
)


class _Ineligible(Exception):
    """The kernel cannot run on the batch tier; ``str`` is the reason."""


def _expr_varying(e, varying):
    """Conservative: may ``e`` evaluate differently across work-items?"""
    if isinstance(e, K.KConst):
        return False
    if isinstance(e, K.KVar):
        return e.name in varying
    if isinstance(e, K.KCall):
        if e.name in _VARYING_WORKITEM:
            return True
        if e.name in _WORKITEM_FUNCS:
            return False
        return any(_expr_varying(a, varying) for a in e.args)
    if isinstance(e, (K.KLoad, K.KImageLoad)):
        return True  # loads are varying unless proven otherwise
    if isinstance(e, K.KBin):
        return _expr_varying(e.left, varying) or _expr_varying(
            e.right, varying
        )
    if isinstance(e, K.KUn):
        return _expr_varying(e.operand, varying)
    if isinstance(e, K.KCast):
        return _expr_varying(e.expr, varying)
    if isinstance(e, K.KSelect):
        return (
            _expr_varying(e.cond, varying)
            or _expr_varying(e.then, varying)
            or _expr_varying(e.otherwise, varying)
        )
    if isinstance(e, K.KVecExtract):
        return _expr_varying(e.vec, varying)
    if isinstance(e, K.KVecBuild):
        return any(_expr_varying(x, varying) for x in e.elems)
    return True


def _varying_vars(kernel):
    """Fixpoint of the set of variables that may differ across lanes."""
    varying = set()

    def visit(stmts):
        changed = False
        for s in stmts:
            if isinstance(s, K.KDecl):
                if (
                    s.name not in varying
                    and s.init is not None
                    and _expr_varying(s.init, varying)
                ):
                    varying.add(s.name)
                    changed = True
            elif isinstance(s, K.KAssign):
                if s.name not in varying and _expr_varying(s.value, varying):
                    varying.add(s.name)
                    changed = True
            elif isinstance(s, K.KFor):
                if s.var not in varying and any(
                    _expr_varying(b, varying) for b in (s.lo, s.hi, s.step)
                ):
                    varying.add(s.var)
                    changed = True
                changed |= visit(s.body)
            elif isinstance(s, K.KIf):
                changed |= visit(s.then)
                changed |= visit(s.otherwise)
            elif isinstance(s, K.KWhile):
                changed |= visit(s.body)
        return changed

    while visit(kernel.body):
        pass
    return varying


def _check_batch_expr(e, varying, lazy):
    """Reject expressions the batch lowering cannot mirror bit-exactly.

    ``lazy`` marks positions the per-item tier may skip at runtime
    (select branches, right-hand sides of ``&&``/``||``): the batch
    tier evaluates them eagerly, so anything that can *fault* there
    (division, rsqrt, a memory access) must decline."""
    if isinstance(e, K.KImageLoad):
        raise _Ineligible("image loads")
    if isinstance(e, K.KBin):
        if e.op in ("/", "%") and lazy:
            raise _Ineligible("division on a lazily-evaluated path")
        if isinstance(e.ktype, K.KVector):
            raise _Ineligible("vector arithmetic")
        if e.op == ">>>" and e.ktype.kind == "long":
            raise _Ineligible("64-bit unsigned shift")
        _check_batch_expr(e.left, varying, lazy)
        _check_batch_expr(
            e.right, varying, lazy or e.op in ("&&", "||")
        )
    elif isinstance(e, K.KUn):
        _check_batch_expr(e.operand, varying, lazy)
    elif isinstance(e, K.KCast):
        _check_batch_expr(e.expr, varying, lazy)
    elif isinstance(e, K.KSelect):
        _check_batch_expr(e.cond, varying, lazy)
        _check_batch_expr(e.then, varying, True)
        _check_batch_expr(e.otherwise, varying, True)
    elif isinstance(e, K.KCall):
        if e.name in ("rsqrt", "native_rsqrt") and lazy:
            raise _Ineligible("rsqrt on a lazily-evaluated path")
        if (
            e.name not in _WORKITEM_FUNCS
            and e.name not in _MATH_ONE
            and e.name not in _MATH_TWO
        ):
            raise _Ineligible("unknown builtin '{}'".format(e.name))
        for a in e.args:
            _check_batch_expr(a, varying, lazy)
    elif isinstance(e, K.KLoad):
        if isinstance(e.ktype, K.KVector) and e.space is K.Space.PRIVATE:
            raise _Ineligible("vector access to a private array")
        if lazy:
            raise _Ineligible("memory access on a lazily-evaluated path")
        _check_batch_expr(e.index, varying, lazy)
    elif isinstance(e, K.KVecExtract):
        _check_batch_expr(e.vec, varying, lazy)
    elif isinstance(e, K.KVecBuild):
        for x in e.elems:
            _check_batch_expr(x, varying, lazy)


def _check_batch_stmts(stmts, varying, depth, declared, in_loop):
    for s in stmts:
        if isinstance(s, K.KBarrier):
            raise _Ineligible("barrier synchronization")
        if isinstance(s, K.KWhile):
            raise _Ineligible("data-dependent while loop")
        if isinstance(s, K.KIf):
            raise _Ineligible("divergent branch")
        if isinstance(s, (K.KBreak, K.KContinue, K.KReturn)):
            raise _Ineligible("loop control jump")
        if isinstance(s, K.KDecl):
            if s.init is not None:
                _check_batch_expr(s.init, varying, False)
            if (
                depth == 0
                and s.name in varying
                and isinstance(s.ktype, K.KVector)
            ):
                raise _Ineligible("varying vector variable at top level")
            declared[s.name] = depth
        elif isinstance(s, K.KAssign):
            _check_batch_expr(s.value, varying, False)
            if declared.get(s.name, 0) < depth and s.name in varying:
                raise _Ineligible(
                    "cross-iteration assignment to an outer variable"
                )
        elif isinstance(s, K.KStore):
            if isinstance(s.ktype, K.KVector) and s.space is K.Space.PRIVATE:
                raise _Ineligible("vector access to a private array")
            _check_batch_expr(s.index, varying, False)
            _check_batch_expr(s.value, varying, False)
        elif isinstance(s, K.KFor):
            for bound in (s.lo, s.hi, s.step):
                _check_batch_expr(bound, varying, False)
            stride = any(
                _expr_varying(b, varying) for b in (s.lo, s.hi, s.step)
            )
            if stride:
                # The grid-stride loop: per-lane trip counts, handled by
                # masked iteration — but only at the top level.
                if depth > 0 or in_loop:
                    raise _Ineligible("nested data-dependent loop")
                inner = dict(declared)
                inner[s.var] = 1
                _check_batch_stmts(s.body, varying, 1, inner, True)
            else:
                declared[s.var] = depth
                _check_batch_stmts(s.body, varying, depth, declared, True)
        elif isinstance(s, K.KComment):
            pass


def batch_eligibility(kernel):
    """Can this kernel run on the vectorized batch tier?

    Returns ``(True, "")`` or ``(False, reason)``.
    """
    for arr in kernel.arrays:
        if arr.space is K.Space.LOCAL:
            return False, "local-memory tiling"
        if isinstance(arr.ktype, K.KVector) and arr.space is K.Space.PRIVATE:
            return False, "vector private array"
    varying = _varying_vars(kernel)
    try:
        _check_batch_stmts(kernel.body, varying, 0, {}, False)
    except _Ineligible as reason:
        return False, str(reason)
    return True, ""


_BATCH_MATH_ONE = {
    "sqrt": "_vsqrt",
    "native_sqrt": "_vsqrt",
    "rsqrt": "_vrsqrt",
    "native_rsqrt": "_vrsqrt",
    "sin": "_vsin",
    "native_sin": "_vsin",
    "cos": "_vcos",
    "native_cos": "_vcos",
    "tan": "_vtan",
    "native_tan": "_vtan",
    "exp": "_vexp",
    "native_exp": "_vexp",
    "log": "_vlog",
    "native_log": "_vlog",
    "floor": "_vfloor",
    "ceil": "_vceil",
    "fabs": "abs",
    "abs": "abs",
}
_BATCH_MATH_TWO = {
    "pow": "_vpow",
    "native_powr": "_vpow",
    "atan2": "_vatan2",
    "hypot": "_vhypot",
    "min": "_vmin",
    "max": "_vmax",
    "fmin": "_vmin",
    "fmax": "_vmax",
}


class _BatchCodegen:
    """Translates one batch-eligible kernel to a whole-ndrange function.

    The traversal mirrors :class:`_Codegen` statement for statement so
    the straight-line segments and access sites come out *identical* —
    :class:`CompiledKernel` asserts this at build time — and the op
    counters/memory trace (hence the simulated timing) match the
    per-item tier exactly. Values aligned to the active lane set:

    - at depth 0 (outside the grid-stride loop) every lane is active;
      varying values are full-length arrays aligned to ``_G0``
      (= ``arange(global_size)``);
    - inside the stride loop (depth 1) the active set is ``_A1`` (the
      lanes whose induction value is still below the bound); varying
      values are arrays aligned to it, and reads of varying variables
      declared outside re-align via ``[_A1]``.
    """

    def __init__(self, kernel, varying):
        self.kernel = kernel
        self.varying = varying
        self.lines = []
        self.indent = 1
        self.temp = 0
        self.segments = []
        self.current_segment = None
        self.sites = {}
        self.depth = 0
        self.var_depth = {}
        names = set()
        for stmt in K.walk_stmts(kernel.body):
            for e in K.walk_stmt_exprs(stmt):
                if isinstance(e, K.KCall):
                    names.add(e.name)
        self.uses_lid = "get_local_id" in names
        self.uses_grp = "get_group_id" in names

    # -- emission helpers (same shape as _Codegen) --------------------------

    def emit(self, line):
        self.lines.append("    " * self.indent + line)

    def fresh(self):
        self.temp += 1
        return "_t{}".format(self.temp)

    def _segment(self):
        if self.current_segment is None:
            seg_id = len(self.segments)
            self.segments.append(
                {
                    "int": 0,
                    "long": 0,
                    "fp": 0,
                    "dp": 0,
                    "cmp": 0,
                    "branch": 0,
                    "trans_f": 0,
                    "trans_d": 0,
                }
            )
            self.emit("_segc[{}] += _n{}".format(seg_id, self.depth))
            self.current_segment = self.segments[seg_id]
        return self.current_segment

    def close_segment(self):
        self.current_segment = None

    def charge(self, expr):
        op = _op_class(expr)
        if op is not None:
            kind, n = op
            self._segment()[kind] += n

    def _lanes(self):
        return "_G{}".format(self.depth)

    # -- expressions --------------------------------------------------------

    def expr(self, e):
        if isinstance(e, K.KConst):
            if isinstance(e.value, bool):
                return "True" if e.value else "False"
            if isinstance(e.value, float):
                if e.value != e.value:
                    return "math.nan"
                if e.value == float("inf"):
                    return "math.inf"
                if e.value == float("-inf"):
                    return "(-math.inf)"
            return repr(e.value)
        if isinstance(e, K.KVar):
            name = _pyname(e.name)
            if (
                self.depth == 1
                and self.var_depth.get(e.name, 0) == 0
                and e.name in self.varying
            ):
                return "{}[_A1]".format(name)
            return name
        if isinstance(e, K.KUn):
            self.charge(e)
            operand = self.expr(e.operand)
            if e.op == "!":
                return "_vnot({})".format(operand)
            if e.op == "~":
                return "(_vi32(~({})))".format(operand)
            return "({}{})".format(e.op, operand)
        if isinstance(e, K.KBin):
            return self._binary(e)
        if isinstance(e, K.KSelect):
            self.charge(e)
            return "_vsel({}, {}, {})".format(
                self.expr(e.cond), self.expr(e.then), self.expr(e.otherwise)
            )
        if isinstance(e, K.KCast):
            return self._cast(e)
        if isinstance(e, K.KCall):
            return self._call(e)
        if isinstance(e, K.KLoad):
            return self._load(e)
        if isinstance(e, K.KVecExtract):
            return "_vext({}, {})".format(self.expr(e.vec), e.lane)
        if isinstance(e, K.KVecBuild):
            elems = ", ".join(self.expr(x) for x in e.elems)
            return "_vbuild([{}], {}, _n{})".format(
                elems, _np_dtype(e.ktype.base), self.depth
            )
        raise DeviceError(
            "cannot batch-compile {}".format(type(e).__name__)
        )

    def _binary(self, e):
        self.charge(e)
        left = self.expr(e.left)
        right = self.expr(e.right)
        op = e.op
        is_long = isinstance(e.ktype, K.KScalar) and e.ktype.kind == "long"
        is_int = isinstance(e.ktype, K.KScalar) and e.ktype.kind in (
            "int",
            "long",
            "char",
        )
        wrap = "_vi64" if is_long else "_vi32"
        shift_mask = 63 if is_long else 31
        if op == "/" and is_int:
            return "_vidiv({}, {})".format(left, right)
        if op == "%" and is_int:
            return "_virem({}, {})".format(left, right)
        if op == "/" and not isinstance(e.ktype, K.KVector):
            return "_vfdiv({}, {})".format(left, right)
        if op in ("*", "+", "-") and is_int:
            return "{}(({}) {} ({}))".format(wrap, left, op, right)
        if op == "<<":
            return "{}(({}) << (({}) & {}))".format(
                wrap, left, right, shift_mask
            )
        if op == ">>":
            return "(({}) >> (({}) & {}))".format(left, right, shift_mask)
        if op == ">>>":
            if is_long:
                raise DeviceError("64-bit >>> is not batch-compilable")
            return "((({}) & 0xFFFFFFFF) >> (({}) & {}))".format(
                left, right, shift_mask
            )
        if op == "&&":
            return "_vand({}, {})".format(left, right)
        if op == "||":
            return "_vor({}, {})".format(left, right)
        return "(({}) {} ({}))".format(left, op, right)

    def _cast(self, e):
        inner = self.expr(e.expr)
        if isinstance(e.ktype, K.KScalar):
            kind = e.ktype.kind
            if kind == "int":
                return "_vci32({})".format(inner)
            if kind == "long":
                return "_vci64({})".format(inner)
            if kind == "char":
                return "_vci8({})".format(inner)
            if kind == "float":
                return "_vcf32({})".format(inner)
            if kind == "double":
                return "_vcdbl({})".format(inner)
            if kind == "bool":
                return "_vcbool({})".format(inner)
        return inner

    def _call(self, e):
        if e.name in _WORKITEM_FUNCS:
            base = _WORKITEM_FUNCS[e.name]
            if base == "_gid":
                return self._lanes()
            if base == "_lid":
                return "_L{}".format(self.depth)
            if base == "_grp":
                return "_R{}".format(self.depth)
            return base  # _lsz / _gsz / _ngrp are uniform scalars
        self.charge(e)
        if e.name in _BATCH_MATH_ONE:
            return "{}({})".format(
                _BATCH_MATH_ONE[e.name], self.expr(e.args[0])
            )
        if e.name in _BATCH_MATH_TWO:
            return "{}({}, {})".format(
                _BATCH_MATH_TWO[e.name],
                self.expr(e.args[0]),
                self.expr(e.args[1]),
            )
        raise DeviceError("unknown device builtin '{}'".format(e.name))

    def _register_site(self, node, is_store):
        ktype = node.ktype
        if isinstance(ktype, K.KVector):
            elem_bytes = ktype.base.size
            width = ktype.width
        else:
            elem_bytes = ktype.size
            width = 1
        self.sites[node.site] = (
            node.space,
            elem_bytes,
            width,
            is_store,
            node.array,
        )

    def _load(self, e):
        if e.site < 0:
            raise DeviceError("load without a site id (run assign_sites)")
        self._register_site(e, is_store=False)
        index = self.expr(e.index)
        temp = self.fresh()
        idx_var = self.fresh()
        self.emit("{} = {}".format(idx_var, index))
        array = _bufname(e.array, e.space)
        if isinstance(e.ktype, K.KVector):
            self.emit(
                "{} = _vload({}, {}, {})".format(
                    temp, array, idx_var, e.ktype.width
                )
            )
        elif e.space is K.Space.PRIVATE:
            self.emit(
                "{} = _pload({}, {}, {})".format(
                    temp, array, idx_var, self._cols()
                )
            )
            return temp
        else:
            self.emit("{} = _gload({}, {})".format(temp, array, idx_var))
        self.emit(
            "_tr{}({}, {}, _n{})".format(
                e.site, self._lanes(), idx_var, self.depth
            )
        )
        return temp

    def _cols(self):
        # Column selector for private (per-lane) arrays: lane position
        # == global id, so the active-lane index array doubles as it.
        return "_G0" if self.depth == 0 else "_A1"

    # -- statements ---------------------------------------------------------

    def stmt(self, s):
        if isinstance(s, K.KDecl):
            init = self.expr(s.init) if s.init is not None else _zero(s.ktype)
            if (
                self.depth == 0
                and s.name in self.varying
                and not isinstance(s.ktype, K.KVector)
            ):
                init = "_mat({}, _n0)".format(init)
            self.emit("{} = {}".format(_pyname(s.name), init))
            self.var_depth[s.name] = self.depth
        elif isinstance(s, K.KAssign):
            rhs = self.expr(s.value)
            if self.depth == 0 and s.name in self.varying:
                rhs = "_mat({}, _n0)".format(rhs)
            self.emit("{} = {}".format(_pyname(s.name), rhs))
        elif isinstance(s, K.KStore):
            self._store(s)
        elif isinstance(s, K.KFor):
            self._for(s)
        elif isinstance(s, K.KComment):
            self.emit("# {}".format(s.text))
        else:
            raise DeviceError(
                "cannot batch-execute {}".format(type(s).__name__)
            )

    def _for(self, s):
        stride = any(
            _expr_varying(b, self.varying) for b in (s.lo, s.hi, s.step)
        )
        if stride and self.depth == 0:
            self._stride_loop(s)
            return
        # Uniform trip count: a plain (scalar) Python loop, every
        # active lane marches through it in lockstep.
        var = _pyname(s.var)
        self.emit("{} = {}".format(var, self.expr(s.lo)))
        hi = self.fresh()
        self.emit("{} = {}".format(hi, self.expr(s.hi)))
        step = self.fresh()
        self.emit("{} = {}".format(step, self.expr(s.step)))
        self.close_segment()
        self.emit("while {} < {}:".format(var, hi))
        self.indent += 1
        self._segment()["cmp"] += 1
        self._segment()["branch"] += 1
        self._segment()["int"] += 1  # induction update
        self.var_depth[s.var] = self.depth
        for child in s.body:
            self.stmt(child)
        self.emit("{} += {}".format(var, step))
        self.indent -= 1
        self.close_segment()

    def _stride_loop(self, s):
        var = _pyname(s.var)
        lo = self.expr(s.lo)
        self.emit("_cur = np.array(_mat({}, _n0), dtype=np.int64)".format(lo))
        hi = self.fresh()
        self.emit("{} = {}".format(hi, self.expr(s.hi)))
        step = self.fresh()
        self.emit("{} = {}".format(step, self.expr(s.step)))
        self.close_segment()
        self.emit("while True:")
        self.indent += 1
        self.emit("_A1 = np.nonzero(_cur < {})[0]".format(hi))
        self.emit("if _A1.size == 0:")
        self.emit("    break")
        self.emit("_n1 = _A1.size")
        self.emit("_G1 = _G0[_A1]")
        if self.uses_lid:
            self.emit("_L1 = _L0[_A1]")
        if self.uses_grp:
            self.emit("_R1 = _R0[_A1]")
        self.emit("{} = _cur[_A1]".format(var))
        self.depth = 1
        self._segment()["cmp"] += 1
        self._segment()["branch"] += 1
        self._segment()["int"] += 1  # induction update
        self.var_depth[s.var] = 1
        for child in s.body:
            self.stmt(child)
        self.emit("_cur = _cur + ({})".format(step))
        self.depth = 0
        self.indent -= 1
        self.close_segment()

    def _store(self, s):
        if s.site < 0:
            raise DeviceError("store without a site id (run assign_sites)")
        self._register_site(s, is_store=True)
        index = self.expr(s.index)
        value = self.expr(s.value)
        idx_var = self.fresh()
        self.emit("{} = {}".format(idx_var, index))
        array = _bufname(s.array, s.space)
        if isinstance(s.ktype, K.KVector):
            self.emit(
                "_vstore({}, {}, {}, {})".format(
                    array, idx_var, value, s.ktype.width
                )
            )
        elif s.space is K.Space.PRIVATE:
            self.emit(
                "_pstore({}, {}, {}, {})".format(
                    array, idx_var, self._cols(), value
                )
            )
            return
        else:
            self.emit("_gstore({}, {}, {})".format(array, idx_var, value))
        self.emit(
            "_tr{}({}, {}, _n{})".format(
                s.site, self._lanes(), idx_var, self.depth
            )
        )

    # -- top level ----------------------------------------------------------

    def generate(self):
        kernel = self.kernel
        buffer_args = [
            _bufname(p.name, p.space) for p in kernel.params if p.is_pointer
        ]
        scalar_args = [
            _pyname(p.name) for p in kernel.params if not p.is_pointer
        ]
        for arr in kernel.arrays:
            if arr.space is K.Space.PRIVATE:
                # Per-lane private storage: one column per work-item.
                self.emit(
                    "{} = np.zeros(({}, _gsz), dtype={})".format(
                        _bufname(arr.name, arr.space),
                        arr.size,
                        _np_dtype(arr.ktype),
                    )
                )
        for stmt in kernel.body:
            self.stmt(stmt)
        trace_args = ["_tr{}".format(site) for site in sorted(self.sites)]
        params = (
            ["_G0", "_L0", "_R0", "_lsz", "_gsz", "_ngrp", "_n0", "_segc"]
            + buffer_args
            + scalar_args
            + trace_args
        )
        header = "def _batch({}):".format(", ".join(params))
        source = [header] + self.lines
        return "\n".join(source), self.segments, self.sites


# ---------------------------------------------------------------------------
# Runtime support injected into generated code
# ---------------------------------------------------------------------------


def _i32(x):
    x &= 0xFFFFFFFF
    return x - 0x100000000 if x >= 0x80000000 else x


def _i64(x):
    x &= 0xFFFFFFFFFFFFFFFF
    return x - 0x10000000000000000 if x >= 0x8000000000000000 else x


def _i8(x):
    x &= 0xFF
    return x - 0x100 if x >= 0x80 else x


def _f32(x):
    return float(np.float32(x))


def _idiv(a, b):
    if b == 0:
        raise DeviceError("device integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _irem(a, b):
    if b == 0:
        raise DeviceError("device integer remainder by zero")
    return a - _idiv(a, b) * b


def _rsqrt(x):
    return 1.0 / math.sqrt(x)


# -- batch-tier vectorized runtime ------------------------------------------
#
# Each helper accepts both NumPy arrays (varying values) and Python
# scalars (uniform values) and reproduces the per-item helper's result
# element for element — including its error behavior, so a kernel that
# would fault per-item faults identically in batch.


def _mat(x, n):
    """Materialize a uniform value as a full-length lane array."""
    if isinstance(x, np.ndarray):
        return x
    return np.broadcast_to(np.asarray(x), (n,))


def _vi32(x):
    # Pure two's-complement formula: correct for Python ints and for
    # int64 arrays alike (matches _i32 exactly on scalars).
    return ((x & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000


def _vi64(x):
    if isinstance(x, np.ndarray):
        return x  # int64 arithmetic already wraps mod 2**64
    return _i64(x)


def _toint(x):
    if isinstance(x, np.ndarray):
        if x.dtype.kind == "f":
            return np.trunc(x).astype(np.int64)
        return x.astype(np.int64)
    return int(x)


def _vci32(x):
    return _vi32(_toint(x))


def _vci64(x):
    return _vi64(_toint(x))


def _vci8(x):
    return ((_toint(x) & 0xFF) ^ 0x80) - 0x80


def _vcf32(x):
    if isinstance(x, np.ndarray):
        return x.astype(np.float32).astype(np.float64)
    return _f32(x)


def _vcdbl(x):
    if isinstance(x, np.ndarray):
        return x.astype(np.float64)
    return float(x)


def _vcbool(x):
    if isinstance(x, np.ndarray):
        return x.astype(bool)
    return bool(x)


def _vnot(x):
    if isinstance(x, np.ndarray):
        return np.logical_not(x)
    return not x


def _vand(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_and(a, b)
    return a and b


def _vor(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_or(a, b)
    return a or b


def _vsel(c, t, o):
    if isinstance(c, np.ndarray):
        if (isinstance(t, np.ndarray) and t.ndim == 2) or (
            isinstance(o, np.ndarray) and o.ndim == 2
        ):
            c = c[:, None]  # lane condition selecting whole vectors
        return np.where(c, t, o)
    return t if c else o


def _vmin(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.where(b < a, b, a)  # min()'s first-wins NaN behavior
    return min(a, b)


def _vmax(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.where(b > a, b, a)
    return max(a, b)


def _vidiv(a, b):
    if not isinstance(a, np.ndarray) and not isinstance(b, np.ndarray):
        return _idiv(a, b)
    b_arr = np.asarray(b)
    if not np.all(b_arr != 0):
        raise DeviceError("device integer division by zero")
    a_arr = np.asarray(a)
    q = np.floor_divide(a_arr, b_arr)
    r = a_arr - q * b_arr
    # C truncates toward zero; floor_divide floors. They differ by one
    # exactly when the remainder is nonzero and the signs disagree.
    return q + ((r != 0) & ((a_arr < 0) != (b_arr < 0)))


def _virem(a, b):
    if not isinstance(a, np.ndarray) and not isinstance(b, np.ndarray):
        return _irem(a, b)
    return np.asarray(a) - _vidiv(a, b) * np.asarray(b)


def _vfdiv(a, b):
    if not isinstance(a, np.ndarray) and not isinstance(b, np.ndarray):
        return a / b
    if not np.all(np.asarray(b) != 0):
        raise ZeroDivisionError("float division by zero")
    return a / b


def _vsqrt(x):
    if not isinstance(x, np.ndarray):
        return math.sqrt(x)
    if np.any(x < 0):
        raise ValueError("math domain error")
    return np.sqrt(x)  # bit-identical to math.sqrt on float64


def _vrsqrt(x):
    if not isinstance(x, np.ndarray):
        return _rsqrt(x)
    if np.any(x < 0):
        raise ValueError("math domain error")
    if not np.all(x != 0):
        raise ZeroDivisionError("float division by zero")
    return 1.0 / np.sqrt(x)


def _vfloor(x):
    if isinstance(x, np.ndarray):
        return np.floor(x)  # bit-identical to math.floor on float64
    return math.floor(x)


def _vceil(x):
    if isinstance(x, np.ndarray):
        return np.ceil(x)
    return math.ceil(x)


def _lift1(f):
    """Element-wise lift of a libm function NumPy does not reproduce
    bit-identically (verified: np.tan/exp/log differ from math.* in the
    last ulp on a fraction of inputs)."""
    ufunc = np.frompyfunc(f, 1, 1)

    def lifted(x):
        if isinstance(x, np.ndarray):
            return ufunc(x).astype(np.float64)
        return f(x)

    return lifted


def _lift2(f):
    ufunc = np.frompyfunc(f, 2, 1)

    def lifted(a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return ufunc(a, b).astype(np.float64)
        return f(a, b)

    return lifted


# np.sin/np.cos agree with math.sin/math.cos bit for bit on float64;
# the rest do not and must go through the scalar libm path.
def _vsin(x):
    return np.sin(x) if isinstance(x, np.ndarray) else math.sin(x)


def _vcos(x):
    return np.cos(x) if isinstance(x, np.ndarray) else math.cos(x)


_vtan = _lift1(math.tan)
_vexp = _lift1(math.exp)
_vlog = _lift1(math.log)
_vpow = _lift2(math.pow)
_vatan2 = _lift2(math.atan2)
_vhypot = _lift2(math.hypot)


def _gload(buf, ix):
    """Global/constant gather; mirrors ``buf[ix].item()`` per lane."""
    if isinstance(ix, np.ndarray):
        vals = buf[ix]
        if vals.dtype.kind == "f":
            return vals.astype(np.float64)
        if vals.dtype.kind == "b":
            return vals
        return vals.astype(np.int64)
    return buf[ix].item()


def _gstore(buf, ix, val):
    """Global scatter. NumPy fancy assignment resolves duplicate
    indices last-wins in lane order — the same winner as the per-item
    tier's ascending-gid sequential stores."""
    if isinstance(ix, np.ndarray):
        buf[ix] = val
    elif isinstance(val, np.ndarray):
        buf[ix] = val[-1]
    else:
        buf[ix] = val


def _pload(arr, ix, cols):
    """Private (per-lane columns) gather with the per-item upcast."""
    vals = arr[ix, cols]
    if vals.dtype.kind == "f":
        return vals.astype(np.float64)
    if vals.dtype.kind == "b":
        return vals
    return vals.astype(np.int64)


def _pstore(arr, ix, cols, val):
    arr[ix, cols] = val


def _vload(buf, ix, width):
    """Vector load; stays in the buffer's native dtype like the
    per-item tier's slice views."""
    if isinstance(ix, np.ndarray):
        return buf[np.asarray(ix)[:, None] * width + np.arange(width)]
    return buf[ix * width : ix * width + width]


def _vstore(buf, ix, val, width):
    if isinstance(ix, np.ndarray):
        buf[np.asarray(ix)[:, None] * width + np.arange(width)] = val
    elif isinstance(val, np.ndarray) and val.ndim == 2:
        buf[ix * width : ix * width + width] = val[-1]
    else:
        buf[ix * width : ix * width + width] = val


def _vext(vec, lane):
    if isinstance(vec, np.ndarray) and vec.ndim == 2:
        col = vec[:, lane]
        if col.dtype.kind == "f":
            return col.astype(np.float64)
        if col.dtype.kind == "b":
            return col
        return col.astype(np.int64)
    return vec[lane].item()


def _vbuild(elems, dtype, n):
    if any(isinstance(e, np.ndarray) for e in elems):
        cols = [
            e if isinstance(e, np.ndarray) else np.full(n, e) for e in elems
        ]
        return np.stack(cols, axis=-1).astype(dtype)
    return np.array(elems, dtype=dtype)


_GLOBALS = {
    "np": np,
    "math": math,
    "_i32": _i32,
    "_i64": _i64,
    "_i8": _i8,
    "_f32": _f32,
    "_idiv": _idiv,
    "_irem": _irem,
    "_rsqrt": _rsqrt,
    "min": min,
    "max": max,
    "abs": abs,
    # batch-tier helpers
    "_mat": _mat,
    "_vi32": _vi32,
    "_vi64": _vi64,
    "_vci32": _vci32,
    "_vci64": _vci64,
    "_vci8": _vci8,
    "_vcf32": _vcf32,
    "_vcdbl": _vcdbl,
    "_vcbool": _vcbool,
    "_vnot": _vnot,
    "_vand": _vand,
    "_vor": _vor,
    "_vsel": _vsel,
    "_vmin": _vmin,
    "_vmax": _vmax,
    "_vidiv": _vidiv,
    "_virem": _virem,
    "_vfdiv": _vfdiv,
    "_vsqrt": _vsqrt,
    "_vrsqrt": _vrsqrt,
    "_vfloor": _vfloor,
    "_vceil": _vceil,
    "_vsin": _vsin,
    "_vcos": _vcos,
    "_vtan": _vtan,
    "_vexp": _vexp,
    "_vlog": _vlog,
    "_vpow": _vpow,
    "_vatan2": _vatan2,
    "_vhypot": _vhypot,
    "_gload": _gload,
    "_gstore": _gstore,
    "_pload": _pload,
    "_pstore": _pstore,
    "_vload": _vload,
    "_vstore": _vstore,
    "_vext": _vext,
    "_vbuild": _vbuild,
}


# ---------------------------------------------------------------------------
# The compiled kernel and the NDRange scheduler
# ---------------------------------------------------------------------------


class CompiledKernel:
    """A kernel ready to launch on the simulator."""

    def __init__(self, kernel):
        K.assign_sites(kernel)
        self.kernel = kernel
        codegen = _Codegen(kernel)
        self.source, self.segments, self.site_meta = codegen.generate()
        namespace = dict(_GLOBALS)
        exec(compile(self.source, "<kernel:{}>".format(kernel.name), "exec"), namespace)
        self._item = namespace["_item"]
        _count_codegen()
        # The instrumented (sanitized) variant is compiled lazily — a
        # guard-free launch never even builds it, keeping the fast path
        # byte-for-byte identical to the seed.
        self.sanitized_source = None
        self._sanitized_item_fn = None
        # The batch (vectorized) variant is also lazy; eligibility is
        # decided up front so callers can report why a kernel fell back.
        self.batch_supported, self.batch_reason = batch_eligibility(kernel)
        self.batch_source = None
        self._batch_fn = None
        # Compiled kernels are shared across concurrent serving
        # sessions via the content-addressed cache; the lazy variant
        # builds are the only mutation after __init__, so one lock
        # around them makes the whole object safely shareable.
        self._lazy_lock = threading.Lock()

    def artifact(self):
        """A picklable snapshot for the content-addressed on-disk kernel
        store: the (site-assigned) kernel IR plus every generated source
        variant. The batch variant is decided/compiled eagerly so a
        process restored from this artifact never re-runs codegen."""
        self._batch_callable()
        return {
            "version": DISK_ARTIFACT_VERSION,
            "kernel": self.kernel,
            "source": self.source,
            "segments": self.segments,
            "site_meta": self.site_meta,
            "sanitized_source": self.sanitized_source,
            "batch_supported": self.batch_supported,
            "batch_reason": self.batch_reason,
            "batch_source": self.batch_source,
        }

    @classmethod
    def from_artifact(cls, art):
        """Rebuild a launchable kernel from :meth:`artifact` output.

        The stored sources are exec'd directly — codegen never runs, so
        :func:`codegen_compiles` stays untouched (the warm-restart
        "zero recompiles" guarantee).
        """
        if art.get("version") != DISK_ARTIFACT_VERSION:
            raise ValueError(
                "kernel artifact version mismatch: {!r}".format(
                    art.get("version")
                )
            )
        self = cls.__new__(cls)
        self.kernel = art["kernel"]
        self.source = art["source"]
        self.segments = art["segments"]
        self.site_meta = art["site_meta"]
        namespace = dict(_GLOBALS)
        exec(
            compile(
                self.source,
                "<kernel:{}:disk>".format(self.kernel.name),
                "exec",
            ),
            namespace,
        )
        self._item = namespace["_item"]
        self.sanitized_source = art["sanitized_source"]
        self._sanitized_item_fn = None
        if self.sanitized_source is not None:
            namespace = dict(_GLOBALS)
            exec(
                compile(
                    self.sanitized_source,
                    "<kernel:{}:sanitized:disk>".format(self.kernel.name),
                    "exec",
                ),
                namespace,
            )
            self._sanitized_item_fn = namespace["_item"]
        self.batch_supported = art["batch_supported"]
        self.batch_reason = art["batch_reason"]
        self.batch_source = art["batch_source"]
        self._batch_fn = None
        if self.batch_source is not None:
            namespace = dict(_GLOBALS)
            exec(
                compile(
                    self.batch_source,
                    "<kernel:{}:batch:disk>".format(self.kernel.name),
                    "exec",
                ),
                namespace,
            )
            self._batch_fn = namespace["_batch"]
        self._lazy_lock = threading.Lock()
        return self

    def _sanitized_item(self):
        if self._sanitized_item_fn is None:
            with self._lazy_lock:
                if self._sanitized_item_fn is not None:
                    return self._sanitized_item_fn
                codegen = _Codegen(self.kernel, sanitize=True)
                source, _segments, _sites = codegen.generate()
                self.sanitized_source = source
                namespace = dict(_GLOBALS)
                exec(
                    compile(
                        source,
                        "<kernel:{}:sanitized>".format(self.kernel.name),
                        "exec",
                    ),
                    namespace,
                )
                self._sanitized_item_fn = namespace["_item"]
                _count_codegen()
        return self._sanitized_item_fn

    def _batch_callable(self):
        """Build (once) and return the whole-ndrange function, or None
        when the kernel must run per-item.

        Safety net: the batch codegen must reproduce the per-item
        codegen's straight-line segments and access sites exactly —
        that equivalence is what makes the simulated timing identical.
        On any mismatch the kernel is permanently demoted to per-item
        rather than risking a skewed profile.
        """
        if not self.batch_supported:
            return None
        if self._batch_fn is None:
            with self._lazy_lock:
                if not self.batch_supported:
                    return None
                if self._batch_fn is not None:
                    return self._batch_fn
                codegen = _BatchCodegen(
                    self.kernel, _varying_vars(self.kernel)
                )
                try:
                    source, segments, sites = codegen.generate()
                except DeviceError as err:
                    self.batch_supported = False
                    self.batch_reason = str(err)
                    return None
                if segments != self.segments or sites != self.site_meta:
                    self.batch_supported = False
                    self.batch_reason = (
                        "batch codegen diverged from per-item segments/sites"
                    )
                    return None
                self.batch_source = source
                namespace = dict(_GLOBALS)
                exec(
                    compile(
                        source,
                        "<kernel:{}:batch>".format(self.kernel.name),
                        "exec",
                    ),
                    namespace,
                )
                self._batch_fn = namespace["_batch"]
                _count_codegen()
        return self._batch_fn

    def launch(
        self,
        buffers,
        scalars,
        global_size,
        local_size,
        injector=None,
        guard=None,
        tier=None,
        tracer=None,
        index_base=0,
        device=None,
    ):
        """Execute the NDRange.

        Args:
            buffers: dict param-name -> 1-D NumPy array (modified in
                place for output buffers).
            scalars: dict param-name -> Python scalar.
            global_size / local_size: NDRange configuration;
                ``global_size`` must be a multiple of ``local_size``.
            injector: optional fault injector
                (:class:`repro.runtime.resilience.FaultInjector`); when
                set, the launch may be aborted with a
                :class:`repro.errors.LaunchFault` before any work-item
                runs — output buffers are untouched, so the launch is
                safely retryable.
            guard: optional per-launch
                :class:`repro.runtime.sanitizer.LaunchGuard`; when set,
                the instrumented item code runs instead — every access
                is bounds/NaN-checked before executing, loops tick the
                watchdog, the scheduler flags barrier divergence, and
                the memory trace is scanned for data races post-launch.
                Trips raise :class:`repro.errors.SanitizerFault`
                subclasses. Guarded launches always run per-item.
            tier: execution-tier request ("auto"/"batch"/"per-item");
                None consults ``REPRO_EXEC_TIER`` and defaults to auto.
                Ineligible kernels fall back per-item either way; the
                tier that actually ran is recorded in ``trace.tier``.
            tracer: optional :class:`repro.runtime.tracing.Tracer`; the
                launch runs inside a "device" span (zero simulated
                duration — the timing model charges the kernel stage
                afterwards — but real wall-clock cost), and the
                post-launch race scan gets its own "sanitizer_scan"
                span.
            index_base: offset added to every work-item's global id —
                the glue's OOM-partitioned relaunch covers the index
                range ``[index_base, index_base + coverage)`` of a
                split NDRange with otherwise-identical per-index
                computation (grid-stride kernels stride from
                ``get_global_id(0)`` by ``global_size``). Offset
                launches always run per-item: the batch codegen assumes
                lane ids start at 0.
            device: fleet device key, if any — routed to the injector
                (per-device fault specs and the kill switch) and tagged
                on the "device" span so the Chrome exporter can give
                each fleet member its own track.

        Returns a :class:`LaunchTrace`.
        """
        if tracer is None:
            tracer = NULL_TRACER
        kernel = self.kernel
        if injector is not None:
            injector.maybe_fail_launch(kernel.name, device=device)
        if global_size % local_size != 0:
            raise DeviceError(
                "global size {} is not a multiple of local size {}".format(
                    global_size, local_size
                )
            )
        trace = LaunchTrace(kernel.name, global_size, local_size)
        seg_counts = [0] * len(self.segments)
        site_traces = {
            site: SiteTrace(space, elem_bytes, width, is_store, array)
            for site, (
                space,
                elem_bytes,
                width,
                is_store,
                array,
            ) in self.site_meta.items()
        }

        buffer_args = []
        for param in kernel.params:
            if param.is_pointer:
                if param.name not in buffers:
                    raise DeviceError(
                        "missing buffer argument '{}'".format(param.name)
                    )
                buffer_args.append(buffers[param.name])
        scalar_args = []
        for param in kernel.params:
            if not param.is_pointer:
                if param.name not in scalars:
                    raise DeviceError(
                        "missing scalar argument '{}'".format(param.name)
                    )
                scalar_args.append(scalars[param.name])

        extra_span_args = {}
        if device is not None:
            extra_span_args["device"] = device
        if index_base:
            extra_span_args["index_base"] = index_base

        resolved_tier = resolve_exec_tier(tier)
        if guard is None and index_base == 0 and resolved_tier in ("auto", "batch"):
            batch_fn = self._batch_callable()
            if batch_fn is not None:
                with tracer.span(
                    "device",
                    cat="executor",
                    kernel=kernel.name,
                    tier="batch",
                    global_size=global_size,
                    local_size=local_size,
                    **extra_span_args,
                ):
                    return self._launch_batch(
                        batch_fn,
                        trace,
                        seg_counts,
                        site_traces,
                        buffer_args,
                        scalar_args,
                        global_size,
                        local_size,
                    )

        local_specs = [a for a in kernel.arrays if a.space is K.Space.LOCAL]
        n_groups = global_size // local_size
        sorted_sites = sorted(site_traces)

        # One append callable per site, shared across the launch: each
        # receives (global_id, index) tuples.
        appenders = []
        for site in sorted_sites:
            tr = site_traces[site]
            lanes, indices = tr.lanes, tr.indices

            def make_append(lanes=lanes, indices=indices):
                def append(event):
                    lanes.append(event[0])
                    indices.append(event[1])

                return append

            appenders.append(make_append())

        # Guarded launches run the instrumented item code with one
        # checker per site plus the watchdog tick.
        item_fn = self._item
        guard_args = []
        if guard is not None:
            trace.tier = "sanitized"
            item_fn = self._sanitized_item()
            guard_args = [guard.tick] + self._make_checkers(
                guard, sorted_sites, buffers, local_size
            )

        with tracer.span(
            "device",
            cat="executor",
            kernel=kernel.name,
            tier=trace.tier,
            global_size=global_size,
            local_size=local_size,
            **extra_span_args,
        ):
            for group in range(n_groups):
                local_mem = [
                    np.zeros(
                        self._local_size_elems(spec, local_size),
                        _np_dtype_of(spec),
                    )
                    for spec in local_specs
                ]
                items = []
                for lid in range(local_size):
                    gid = index_base + group * local_size + lid
                    gen = item_fn(
                        gid,
                        lid,
                        group,
                        local_size,
                        global_size,
                        n_groups,
                        seg_counts,
                        *buffer_args,
                        *scalar_args,
                        *local_mem,
                        *appenders,
                        *guard_args,
                    )
                    items.append(gen)
                # Lockstep phases between barriers.
                live = items
                while live:
                    next_live = []
                    stopped = 0
                    for gen in live:
                        try:
                            next(gen)
                            next_live.append(gen)
                        except StopIteration:
                            stopped += 1
                        except IndexError as err:
                            raise DeviceError(
                                "kernel '{}': out-of-bounds buffer access "
                                "({})".format(kernel.name, err)
                            ) from err
                    if guard is not None:
                        guard.phase_check(group, len(next_live), stopped)
                    if next_live:
                        trace.barriers += 1
                    live = next_live

        for seg_id, count in enumerate(seg_counts):
            for kind, ops in self.segments[seg_id].items():
                trace.op_cycles[kind] += ops * count
        trace.sites = site_traces
        if guard is not None:
            with tracer.span(
                "sanitizer_scan", cat="executor", kernel=kernel.name
            ):
                guard.scan_races(site_traces)
        return trace

    def _launch_batch(
        self,
        batch_fn,
        trace,
        seg_counts,
        site_traces,
        buffer_args,
        scalar_args,
        global_size,
        local_size,
    ):
        """Run the whole NDRange as array operations.

        Semantically identical to the per-item loop for eligible
        kernels: the same buffers are mutated with the same values
        (bit for bit, NaN-safe), the same segments are counted the
        same number of times, and every access site records the same
        per-lane access order — so the derived timing model sees no
        difference either.
        """
        trace.tier = "batch"
        lanes = np.arange(global_size, dtype=np.int64)
        lids = lanes % local_size
        groups = lanes // local_size
        n_groups = global_size // local_size
        appenders = [site_traces[s].append_block for s in sorted(site_traces)]
        try:
            with np.errstate(all="ignore"):
                batch_fn(
                    lanes,
                    lids,
                    groups,
                    local_size,
                    global_size,
                    n_groups,
                    global_size,
                    seg_counts,
                    *buffer_args,
                    *scalar_args,
                    *appenders,
                )
        except IndexError as err:
            raise DeviceError(
                "kernel '{}': out-of-bounds buffer access ({})".format(
                    self.kernel.name, err
                )
            ) from err
        for seg_id, count in enumerate(seg_counts):
            for kind, ops in self.segments[seg_id].items():
                trace.op_cycles[kind] += ops * int(count)
        trace.sites = site_traces
        return trace

    def _make_checkers(self, guard, sorted_sites, buffers, local_size):
        """One bounds/NaN checker per access site, closed over the
        element capacity of the site's buffer."""
        kernel = self.kernel
        local_specs = {
            a.name: a for a in kernel.arrays if a.space is K.Space.LOCAL
        }
        private_specs = {
            a.name: a for a in kernel.arrays if a.space is K.Space.PRIVATE
        }
        limits = {}
        checkers = []
        for site in sorted_sites:
            space, _elem_bytes, width, _is_store, array = self.site_meta[site]
            if space is K.Space.LOCAL:
                spec = local_specs[array]
                limits[site] = self._local_size_elems(spec, local_size)
                is_float = _np_dtype_of(spec)().dtype.kind == "f"
            elif space is K.Space.PRIVATE:
                spec = private_specs[array]
                limits[site] = spec.size
                is_float = _np_dtype_of(spec)().dtype.kind == "f"
            else:  # GLOBAL / CONSTANT / IMAGE buffers come from the host
                buf = buffers[array]
                limits[site] = len(buf)
                is_float = buf.dtype.kind == "f"
            checkers.append(
                guard.make_checker(site, space, width, array, limits, is_float)
            )
        return checkers

    @staticmethod
    def _local_size_elems(spec, local_size):
        size = spec.size
        if size == -1:  # sized by work-group: local_size rows
            rows = local_size
            row = spec.row if spec.row else 1
            return rows * (row + spec.pad)
        if spec.pad and spec.row:
            rows = size // spec.row
            return rows * (spec.row + spec.pad)
        return size


def _np_dtype_of(spec):
    return {
        "bool": np.bool_,
        "char": np.int8,
        "int": np.int32,
        "long": np.int64,
        "float": np.float32,
        "double": np.float64,
    }[(spec.ktype.base if isinstance(spec.ktype, K.KVector) else spec.ktype).kind]


def compile_kernel(kernel):
    """Compile kernel IR for the simulator (cached per kernel object)."""
    return CompiledKernel(kernel)
