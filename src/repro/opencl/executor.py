"""Kernel execution on the simulated device.

The executor compiles kernel IR to Python source (one generator function
per work-item; ``barrier()`` becomes ``yield`` and the scheduler resumes
every item of the work-group in lockstep phases), then runs it over an
NDRange. It produces two things:

- the actual output buffers — the simulator *computes real results*,
  which the tests compare against the host interpreter and NumPy
  references;
- a :class:`LaunchTrace`: per-straight-line-segment operation counts and
  a per-access-site memory trace (which work-item touched which address,
  in which order), from which :mod:`repro.opencl.timing` derives
  coalescing, bank-conflict, cache, and broadcast behavior.

Integer arithmetic wraps to 32 bits at multiplications, shifts, and
casts (the overflow-relevant operations for the benchmark suite); floats
compute in double precision and round on store into ``float`` buffers,
matching the host interpreter's conventions.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backend import kernel_ir as K
from repro.errors import DeviceError

# ---------------------------------------------------------------------------
# Statistics containers
# ---------------------------------------------------------------------------


class SiteTrace:
    """Raw memory trace for one static access site."""

    __slots__ = (
        "space",
        "elem_bytes",
        "width",
        "is_store",
        "array",
        "lanes",
        "indices",
    )

    def __init__(self, space, elem_bytes, width, is_store, array=None):
        self.space = space
        self.elem_bytes = elem_bytes
        self.width = width  # vector width (elements moved per access)
        self.is_store = is_store
        self.array = array  # buffer name (for the race sanitizer)
        self.lanes = []  # global work-item ids
        self.indices = []  # element indices (in units of width)

    @property
    def accesses(self):
        return len(self.lanes)

    @property
    def bytes_moved(self):
        return self.accesses * self.elem_bytes * self.width

    def arrays(self):
        return (
            np.asarray(self.lanes, dtype=np.int64),
            np.asarray(self.indices, dtype=np.int64),
        )


class LaunchTrace:
    """Everything one kernel launch did, for the timing model."""

    def __init__(self, kernel_name, global_size, local_size):
        self.kernel_name = kernel_name
        self.global_size = global_size
        self.local_size = local_size
        self.op_cycles = {
            "int": 0,
            "long": 0,
            "fp": 0,
            "dp": 0,
            "cmp": 0,
            "branch": 0,
            "trans_f": 0,
            "trans_d": 0,
        }
        self.sites = {}
        self.barriers = 0

    @property
    def work_groups(self):
        return (self.global_size + self.local_size - 1) // self.local_size

    def total_ops(self):
        return sum(self.op_cycles.values())


# ---------------------------------------------------------------------------
# Expression / statement code generation
# ---------------------------------------------------------------------------

_MATH_ONE = {
    "sqrt": "math.sqrt",
    "native_sqrt": "math.sqrt",
    "rsqrt": "_rsqrt",
    "native_rsqrt": "_rsqrt",
    "sin": "math.sin",
    "native_sin": "math.sin",
    "cos": "math.cos",
    "native_cos": "math.cos",
    "tan": "math.tan",
    "native_tan": "math.tan",
    "exp": "math.exp",
    "native_exp": "math.exp",
    "log": "math.log",
    "native_log": "math.log",
    "floor": "math.floor",
    "ceil": "math.ceil",
    "fabs": "abs",
    "abs": "abs",
}
_MATH_TWO = {
    "pow": "math.pow",
    "native_powr": "math.pow",
    "atan2": "math.atan2",
    "hypot": "math.hypot",
    "min": "min",
    "max": "max",
    "fmin": "min",
    "fmax": "max",
}

_WORKITEM_FUNCS = {
    "get_global_id": "_gid",
    "get_local_id": "_lid",
    "get_group_id": "_grp",
    "get_local_size": "_lsz",
    "get_global_size": "_gsz",
    "get_num_groups": "_ngrp",
}

_TRANSCENDENTALS = frozenset(
    {
        "sqrt",
        "native_sqrt",
        "rsqrt",
        "native_rsqrt",
        "sin",
        "native_sin",
        "cos",
        "native_cos",
        "tan",
        "native_tan",
        "exp",
        "native_exp",
        "log",
        "native_log",
        "pow",
        "native_powr",
        "atan2",
        "hypot",
    }
)


def _is_double(ktype):
    if isinstance(ktype, K.KScalar):
        return ktype.kind == "double"
    if isinstance(ktype, K.KVector):
        return ktype.base.kind == "double"
    return False


def _op_class(expr):
    """Which op counter an expression charges, or None."""
    if isinstance(expr, K.KBin):
        if expr.op in ("<", ">", "<=", ">=", "==", "!="):
            return "cmp", 1
        lanes = expr.ktype.width if isinstance(expr.ktype, K.KVector) else 1
        if _is_double(expr.ktype):
            return "dp", lanes
        if getattr(expr.ktype, "is_float", False) or (
            isinstance(expr.ktype, K.KVector) and expr.ktype.is_float
        ):
            return "fp", lanes
        if isinstance(expr.ktype, K.KScalar) and expr.ktype.kind == "long":
            return "long", lanes
        return "int", lanes
    if isinstance(expr, K.KUn):
        if _is_double(expr.ktype):
            return "dp", 1
        if getattr(expr.ktype, "is_float", False):
            return "fp", 1
        return "int", 1
    if isinstance(expr, K.KCall):
        if expr.name in _TRANSCENDENTALS:
            return ("trans_d" if _is_double(expr.ktype) else "trans_f"), 1
        if expr.name in _MATH_ONE or expr.name in _MATH_TWO:
            return ("dp" if _is_double(expr.ktype) else "fp"), 1
        return None
    if isinstance(expr, K.KSelect):
        return "branch", 1
    return None


class _Codegen:
    """Translates one kernel to the source of a per-item generator.

    With ``sanitize=True`` the emitted code additionally calls a
    per-site checker ``_ck<site>(index[, value])`` *before* every memory
    access and a watchdog tick ``_wd()`` at the top of every loop
    iteration. The op-count segments and access sites are identical in
    both modes, so instrumented launches report the same profile.
    """

    def __init__(self, kernel, sanitize=False):
        self.kernel = kernel
        self.sanitize = sanitize
        self.lines = []
        self.indent = 1
        self.temp = 0
        self.segments = []  # op-count dicts, one per straight-line segment
        self.current_segment = None
        self.sites = {}  # site -> (space, elem_bytes, width, is_store, array)
        self.has_barrier = False
        # Loop-context stack for break/continue translation: each entry
        # is ("plain", None) for loops whose Python form matches the IR
        # semantics directly, or ("wrapped", brk_var) for KFor loops
        # whose body is wrapped so that `continue` still reaches the
        # induction update.
        self.loop_stack = []

    # -- emission helpers ---------------------------------------------------

    def emit(self, line):
        self.lines.append("    " * self.indent + line)

    def fresh(self):
        self.temp += 1
        return "_t{}".format(self.temp)

    def _segment(self):
        """Current op-count accumulator; opens a new segment (with its
        counter bump emitted) when none is active."""
        if self.current_segment is None:
            seg_id = len(self.segments)
            self.segments.append(
                {
                    "int": 0,
                    "long": 0,
                    "fp": 0,
                    "dp": 0,
                    "cmp": 0,
                    "branch": 0,
                    "trans_f": 0,
                    "trans_d": 0,
                }
            )
            self.emit("_segc[{}] += 1".format(seg_id))
            self.current_segment = self.segments[seg_id]
        return self.current_segment

    def close_segment(self):
        self.current_segment = None

    def charge(self, expr):
        op = _op_class(expr)
        if op is not None:
            kind, n = op
            self._segment()[kind] += n

    # -- expressions ----------------------------------------------------------

    def expr(self, e):
        """Return a Python expression string, emitting hoisted statements
        for loads as needed."""
        if isinstance(e, K.KConst):
            if isinstance(e.value, bool):
                return "True" if e.value else "False"
            if isinstance(e.value, float):
                if e.value != e.value:
                    return "math.nan"
                if e.value == float("inf"):
                    return "math.inf"
                if e.value == float("-inf"):
                    return "(-math.inf)"
            return repr(e.value)
        if isinstance(e, K.KVar):
            return _pyname(e.name)
        if isinstance(e, K.KUn):
            self.charge(e)
            operand = self.expr(e.operand)
            if e.op == "!":
                return "(not {})".format(operand)
            if e.op == "~":
                return "(_i32(~({})))".format(operand)
            return "({}{})".format(e.op, operand)
        if isinstance(e, K.KBin):
            return self._binary(e)
        if isinstance(e, K.KSelect):
            self.charge(e)
            return "(({}) if ({}) else ({}))".format(
                self.expr(e.then), self.expr(e.cond), self.expr(e.otherwise)
            )
        if isinstance(e, K.KCast):
            return self._cast(e)
        if isinstance(e, K.KCall):
            return self._call(e)
        if isinstance(e, K.KLoad):
            return self._load(e)
        if isinstance(e, K.KImageLoad):
            return self._image_load(e)
        if isinstance(e, K.KVecExtract):
            return "({}[{}].item())".format(self.expr(e.vec), e.lane)
        if isinstance(e, K.KVecBuild):
            elems = ", ".join(self.expr(x) for x in e.elems)
            return "np.array([{}], dtype={})".format(elems, _np_dtype(e.ktype.base))
        raise DeviceError("cannot generate code for {}".format(type(e).__name__))

    def _binary(self, e):
        self.charge(e)
        left = self.expr(e.left)
        right = self.expr(e.right)
        op = e.op
        is_long = isinstance(e.ktype, K.KScalar) and e.ktype.kind == "long"
        is_int = isinstance(e.ktype, K.KScalar) and e.ktype.kind in (
            "int",
            "long",
            "char",
        )
        wrap = "_i64" if is_long else "_i32"
        shift_mask = 63 if is_long else 31
        if op == "/" and is_int:
            return "_idiv({}, {})".format(left, right)
        if op == "%" and is_int:
            return "_irem({}, {})".format(left, right)
        if op in ("*", "+", "-") and is_int:
            return "{}(({}) {} ({}))".format(wrap, left, op, right)
        if op == "<<":
            return "{}(({}) << (({}) & {}))".format(wrap, left, right, shift_mask)
        if op == ">>":
            return "(({}) >> (({}) & {}))".format(left, right, shift_mask)
        if op == ">>>":
            mask = "0xFFFFFFFFFFFFFFFF" if is_long else "0xFFFFFFFF"
            return "((({}) & {}) >> (({}) & {}))".format(
                left, mask, right, shift_mask
            )
        if op == "&&":
            return "(({}) and ({}))".format(left, right)
        if op == "||":
            return "(({}) or ({}))".format(left, right)
        return "(({}) {} ({}))".format(left, op, right)

    def _cast(self, e):
        inner = self.expr(e.expr)
        if isinstance(e.ktype, K.KScalar):
            kind = e.ktype.kind
            if kind == "int":
                return "_i32(int({}))".format(inner)
            if kind == "long":
                return "_i64(int({}))".format(inner)
            if kind == "char":
                return "_i8(int({}))".format(inner)
            if kind == "float":
                return "_f32({})".format(inner)
            if kind == "double":
                return "float({})".format(inner)
            if kind == "bool":
                return "bool({})".format(inner)
        return inner

    def _call(self, e):
        if e.name in _WORKITEM_FUNCS:
            return _WORKITEM_FUNCS[e.name]
        self.charge(e)
        if e.name in _MATH_ONE:
            return "{}({})".format(_MATH_ONE[e.name], self.expr(e.args[0]))
        if e.name in _MATH_TWO:
            return "{}({}, {})".format(
                _MATH_TWO[e.name], self.expr(e.args[0]), self.expr(e.args[1])
            )
        raise DeviceError("unknown device builtin '{}'".format(e.name))

    def _register_site(self, node, is_store):
        ktype = node.ktype
        if isinstance(ktype, K.KVector):
            elem_bytes = ktype.base.size
            width = ktype.width
        else:
            elem_bytes = ktype.size
            width = 1
        if isinstance(node, K.KImageLoad):
            space, array = K.Space.IMAGE, node.image
        else:
            space, array = node.space, node.array
        self.sites[node.site] = (space, elem_bytes, width, is_store, array)

    def _load(self, e):
        if e.site < 0:
            raise DeviceError("load without a site id (run assign_sites)")
        self._register_site(e, is_store=False)
        index = self.expr(e.index)
        temp = self.fresh()
        idx_var = self.fresh()
        self.emit("{} = {}".format(idx_var, index))
        if self.sanitize:
            self.emit("_ck{}({})".format(e.site, idx_var))
        array = _bufname(e.array, e.space)
        if isinstance(e.ktype, K.KVector):
            width = e.ktype.width
            self.emit(
                "{} = {}[{} * {} : {} * {} + {}]".format(
                    temp, array, idx_var, width, idx_var, width, width
                )
            )
        elif e.space is K.Space.PRIVATE:
            # Private arrays are per-item; no trace needed.
            self.emit("{} = {}[{}].item()".format(temp, array, idx_var))
            return temp
        else:
            self.emit("{} = {}[{}].item()".format(temp, array, idx_var))
        self.emit("_tr{}(( _gid, {} ))".format(e.site, idx_var))
        return temp

    def _image_load(self, e):
        if e.site < 0:
            raise DeviceError("image load without a site id")
        self._register_site(e, is_store=False)
        coord = self.expr(e.coord)
        temp = self.fresh()
        idx_var = self.fresh()
        self.emit("{} = {}".format(idx_var, coord))
        if self.sanitize:
            self.emit("_ck{}({})".format(e.site, idx_var))
        width = e.ktype.width
        self.emit(
            "{} = {}[{} * {} : {} * {} + {}]".format(
                temp,
                _bufname(e.image, K.Space.GLOBAL),
                idx_var,
                width,
                idx_var,
                width,
                width,
            )
        )
        self.emit("_tr{}(( _gid, {} ))".format(e.site, idx_var))
        return temp

    # -- statements ------------------------------------------------------------

    def stmt(self, s):
        if isinstance(s, K.KDecl):
            init = self.expr(s.init) if s.init is not None else _zero(s.ktype)
            self.emit("{} = {}".format(_pyname(s.name), init))
        elif isinstance(s, K.KAssign):
            self.emit("{} = {}".format(_pyname(s.name), self.expr(s.value)))
        elif isinstance(s, K.KStore):
            self._store(s)
        elif isinstance(s, K.KIf):
            self._segment()["branch"] += 1
            cond = self.expr(s.cond)
            self.emit("if {}:".format(cond))
            self._block(s.then)
            if s.otherwise:
                self.emit("else:")
                self._block(s.otherwise)
            self.close_segment()
        elif isinstance(s, K.KFor):
            var = _pyname(s.var)
            self.emit("{} = {}".format(var, self.expr(s.lo)))
            hi = self.fresh()
            self.emit("{} = {}".format(hi, self.expr(s.hi)))
            step = self.fresh()
            self.emit("{} = {}".format(step, self.expr(s.step)))
            self.close_segment()
            self.emit("while {} < {}:".format(var, hi))
            self.indent += 1
            if self.sanitize:
                self.emit("_wd()")
            self._segment()["cmp"] += 1
            self._segment()["branch"] += 1
            self._segment()["int"] += 1  # induction update
            if _has_loop_jumps(s.body):
                # A bare Python `continue` would skip the induction
                # update: wrap the body in a one-iteration loop so
                # `continue` becomes `break` out of the wrapper and the
                # update still runs; `break` sets a flag checked after.
                brk = self.fresh()
                self.emit("{} = False".format(brk))
                self.emit("for _once in (0,):")
                self.indent += 1
                self.loop_stack.append(("wrapped", brk))
                for child in s.body:
                    self.stmt(child)
                self.loop_stack.pop()
                self.indent -= 1
                self.close_segment()
                self.emit("if {}:".format(brk))
                self.emit("    break")
            else:
                self.loop_stack.append(("plain", None))
                for child in s.body:
                    self.stmt(child)
                self.loop_stack.pop()
            self.emit("{} += {}".format(var, step))
            self.indent -= 1
            self.close_segment()
        elif isinstance(s, K.KWhile):
            self.close_segment()
            self.emit("while {}:".format(self.expr(s.cond)))
            self.indent += 1
            if self.sanitize:
                self.emit("_wd()")
            self._segment()["cmp"] += 1
            self._segment()["branch"] += 1
            self.loop_stack.append(("plain", None))
            for child in s.body:
                self.stmt(child)
            self.loop_stack.pop()
            self.indent -= 1
            self.close_segment()
        elif isinstance(s, K.KBarrier):
            self.has_barrier = True
            self.emit("yield 0")
            self.close_segment()
        elif isinstance(s, K.KReturn):
            self.emit("return")
            self.close_segment()
        elif isinstance(s, K.KBreak):
            if self.loop_stack and self.loop_stack[-1][0] == "wrapped":
                self.emit("{} = True".format(self.loop_stack[-1][1]))
            self.emit("break")
            self.close_segment()
        elif isinstance(s, K.KContinue):
            if self.loop_stack and self.loop_stack[-1][0] == "wrapped":
                self.emit("break")  # out of the one-iteration wrapper
            else:
                self.emit("continue")
            self.close_segment()
        elif isinstance(s, K.KComment):
            self.emit("# {}".format(s.text))
        else:
            raise DeviceError("cannot execute {}".format(type(s).__name__))

    def _block(self, stmts):
        self.indent += 1
        self.close_segment()
        if not stmts:
            self.emit("pass")
        for child in stmts:
            self.stmt(child)
        self.indent -= 1
        self.close_segment()

    def _store(self, s):
        if s.site < 0:
            raise DeviceError("store without a site id (run assign_sites)")
        self._register_site(s, is_store=True)
        index = self.expr(s.index)
        value = self.expr(s.value)
        idx_var = self.fresh()
        self.emit("{} = {}".format(idx_var, index))
        if self.sanitize:
            val_var = self.fresh()
            self.emit("{} = {}".format(val_var, value))
            self.emit("_ck{}({}, {})".format(s.site, idx_var, val_var))
            value = val_var
        array = _bufname(s.array, s.space)
        if isinstance(s.ktype, K.KVector):
            width = s.ktype.width
            self.emit(
                "{}[{} * {} : {} * {} + {}] = {}".format(
                    array, idx_var, width, idx_var, width, width, value
                )
            )
        else:
            self.emit("{}[{}] = {}".format(array, idx_var, value))
        if s.space is not K.Space.PRIVATE:
            self.emit("_tr{}(( _gid, {} ))".format(s.site, idx_var))

    # -- top level --------------------------------------------------------------

    def generate(self):
        kernel = self.kernel
        buffer_args = [
            _bufname(p.name, p.space) for p in kernel.params if p.is_pointer
        ]
        scalar_args = [_pyname(p.name) for p in kernel.params if not p.is_pointer]
        local_args = [
            _bufname(a.name, a.space)
            for a in kernel.arrays
            if a.space is K.Space.LOCAL
        ]
        trace_args = []  # filled after body generation
        header_placeholder = len(self.lines)

        # Private array declarations come first.
        body_start = len(self.lines)
        for arr in kernel.arrays:
            if arr.space is K.Space.PRIVATE:
                self.emit(
                    "{} = np.zeros({}, dtype={})".format(
                        _bufname(arr.name, arr.space),
                        arr.size,
                        _np_dtype(arr.ktype),
                    )
                )
        for stmt in kernel.body:
            self.stmt(stmt)
        if not self.has_barrier:
            # Make every item function a generator uniformly.
            self.emit("if False:")
            self.emit("    yield 0")

        trace_args = ["_tr{}".format(site) for site in sorted(self.sites)]
        params = (
            ["_gid", "_lid", "_grp", "_lsz", "_gsz", "_ngrp", "_segc"]
            + buffer_args
            + scalar_args
            + local_args
            + trace_args
        )
        if self.sanitize:
            params += ["_wd"] + [
                "_ck{}".format(site) for site in sorted(self.sites)
            ]
        header = "def _item({}):".format(", ".join(params))
        source = [header] + self.lines
        return "\n".join(source), self.segments, self.sites


def _has_loop_jumps(stmts):
    """True when ``stmts`` contain a break/continue belonging to this
    loop level (not one captured by a nested loop)."""
    for stmt in stmts:
        if isinstance(stmt, (K.KBreak, K.KContinue)):
            return True
        if isinstance(stmt, K.KIf):
            if _has_loop_jumps(stmt.then) or _has_loop_jumps(stmt.otherwise):
                return True
        # Nested KFor/KWhile own their jumps: do not descend.
    return False


def _pyname(name):
    return "v_" + name


def _bufname(name, space):
    return "m_" + name


def _np_dtype(ktype):
    base = ktype.base if isinstance(ktype, K.KVector) else ktype
    return {
        "bool": "np.bool_",
        "char": "np.int8",
        "int": "np.int32",
        "long": "np.int64",
        "float": "np.float32",
        "double": "np.float64",
    }[base.kind]


def _zero(ktype):
    if isinstance(ktype, K.KVector):
        return "np.zeros({}, dtype={})".format(ktype.width, _np_dtype(ktype))
    if ktype.is_float:
        return "0.0"
    if ktype.kind == "bool":
        return "False"
    return "0"


# ---------------------------------------------------------------------------
# Runtime support injected into generated code
# ---------------------------------------------------------------------------


def _i32(x):
    x &= 0xFFFFFFFF
    return x - 0x100000000 if x >= 0x80000000 else x


def _i64(x):
    x &= 0xFFFFFFFFFFFFFFFF
    return x - 0x10000000000000000 if x >= 0x8000000000000000 else x


def _i8(x):
    x &= 0xFF
    return x - 0x100 if x >= 0x80 else x


def _f32(x):
    return float(np.float32(x))


def _idiv(a, b):
    if b == 0:
        raise DeviceError("device integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _irem(a, b):
    if b == 0:
        raise DeviceError("device integer remainder by zero")
    return a - _idiv(a, b) * b


def _rsqrt(x):
    return 1.0 / math.sqrt(x)


_GLOBALS = {
    "np": np,
    "math": math,
    "_i32": _i32,
    "_i64": _i64,
    "_i8": _i8,
    "_f32": _f32,
    "_idiv": _idiv,
    "_irem": _irem,
    "_rsqrt": _rsqrt,
    "min": min,
    "max": max,
    "abs": abs,
}


# ---------------------------------------------------------------------------
# The compiled kernel and the NDRange scheduler
# ---------------------------------------------------------------------------


class CompiledKernel:
    """A kernel ready to launch on the simulator."""

    def __init__(self, kernel):
        K.assign_sites(kernel)
        self.kernel = kernel
        codegen = _Codegen(kernel)
        self.source, self.segments, self.site_meta = codegen.generate()
        namespace = dict(_GLOBALS)
        exec(compile(self.source, "<kernel:{}>".format(kernel.name), "exec"), namespace)
        self._item = namespace["_item"]
        # The instrumented (sanitized) variant is compiled lazily — a
        # guard-free launch never even builds it, keeping the fast path
        # byte-for-byte identical to the seed.
        self.sanitized_source = None
        self._sanitized_item_fn = None

    def _sanitized_item(self):
        if self._sanitized_item_fn is None:
            codegen = _Codegen(self.kernel, sanitize=True)
            source, _segments, _sites = codegen.generate()
            self.sanitized_source = source
            namespace = dict(_GLOBALS)
            exec(
                compile(
                    source,
                    "<kernel:{}:sanitized>".format(self.kernel.name),
                    "exec",
                ),
                namespace,
            )
            self._sanitized_item_fn = namespace["_item"]
        return self._sanitized_item_fn

    def launch(
        self, buffers, scalars, global_size, local_size, injector=None, guard=None
    ):
        """Execute the NDRange.

        Args:
            buffers: dict param-name -> 1-D NumPy array (modified in
                place for output buffers).
            scalars: dict param-name -> Python scalar.
            global_size / local_size: NDRange configuration;
                ``global_size`` must be a multiple of ``local_size``.
            injector: optional fault injector
                (:class:`repro.runtime.resilience.FaultInjector`); when
                set, the launch may be aborted with a
                :class:`repro.errors.LaunchFault` before any work-item
                runs — output buffers are untouched, so the launch is
                safely retryable.
            guard: optional per-launch
                :class:`repro.runtime.sanitizer.LaunchGuard`; when set,
                the instrumented item code runs instead — every access
                is bounds/NaN-checked before executing, loops tick the
                watchdog, the scheduler flags barrier divergence, and
                the memory trace is scanned for data races post-launch.
                Trips raise :class:`repro.errors.SanitizerFault`
                subclasses.

        Returns a :class:`LaunchTrace`.
        """
        kernel = self.kernel
        if injector is not None:
            injector.maybe_fail_launch(kernel.name)
        if global_size % local_size != 0:
            raise DeviceError(
                "global size {} is not a multiple of local size {}".format(
                    global_size, local_size
                )
            )
        trace = LaunchTrace(kernel.name, global_size, local_size)
        seg_counts = [0] * len(self.segments)
        site_traces = {
            site: SiteTrace(space, elem_bytes, width, is_store, array)
            for site, (
                space,
                elem_bytes,
                width,
                is_store,
                array,
            ) in self.site_meta.items()
        }

        buffer_args = []
        for param in kernel.params:
            if param.is_pointer:
                if param.name not in buffers:
                    raise DeviceError(
                        "missing buffer argument '{}'".format(param.name)
                    )
                buffer_args.append(buffers[param.name])
        scalar_args = []
        for param in kernel.params:
            if not param.is_pointer:
                if param.name not in scalars:
                    raise DeviceError(
                        "missing scalar argument '{}'".format(param.name)
                    )
                scalar_args.append(scalars[param.name])

        local_specs = [a for a in kernel.arrays if a.space is K.Space.LOCAL]
        n_groups = global_size // local_size
        sorted_sites = sorted(site_traces)

        # One append callable per site, shared across the launch: each
        # receives (global_id, index) tuples.
        appenders = []
        for site in sorted_sites:
            tr = site_traces[site]
            lanes, indices = tr.lanes, tr.indices

            def make_append(lanes=lanes, indices=indices):
                def append(event):
                    lanes.append(event[0])
                    indices.append(event[1])

                return append

            appenders.append(make_append())

        # Guarded launches run the instrumented item code with one
        # checker per site plus the watchdog tick.
        item_fn = self._item
        guard_args = []
        if guard is not None:
            item_fn = self._sanitized_item()
            guard_args = [guard.tick] + self._make_checkers(
                guard, sorted_sites, buffers, local_size
            )

        for group in range(n_groups):
            local_mem = [
                np.zeros(self._local_size_elems(spec, local_size), _np_dtype_of(spec))
                for spec in local_specs
            ]
            items = []
            for lid in range(local_size):
                gid = group * local_size + lid
                gen = item_fn(
                    gid,
                    lid,
                    group,
                    local_size,
                    global_size,
                    n_groups,
                    seg_counts,
                    *buffer_args,
                    *scalar_args,
                    *local_mem,
                    *appenders,
                    *guard_args,
                )
                items.append(gen)
            # Lockstep phases between barriers.
            live = items
            while live:
                next_live = []
                stopped = 0
                for gen in live:
                    try:
                        next(gen)
                        next_live.append(gen)
                    except StopIteration:
                        stopped += 1
                    except IndexError as err:
                        raise DeviceError(
                            "kernel '{}': out-of-bounds buffer access "
                            "({})".format(kernel.name, err)
                        ) from err
                if guard is not None:
                    guard.phase_check(group, len(next_live), stopped)
                if next_live:
                    trace.barriers += 1
                live = next_live

        for seg_id, count in enumerate(seg_counts):
            for kind, ops in self.segments[seg_id].items():
                trace.op_cycles[kind] += ops * count
        trace.sites = site_traces
        if guard is not None:
            guard.scan_races(site_traces)
        return trace

    def _make_checkers(self, guard, sorted_sites, buffers, local_size):
        """One bounds/NaN checker per access site, closed over the
        element capacity of the site's buffer."""
        kernel = self.kernel
        local_specs = {
            a.name: a for a in kernel.arrays if a.space is K.Space.LOCAL
        }
        private_specs = {
            a.name: a for a in kernel.arrays if a.space is K.Space.PRIVATE
        }
        limits = {}
        checkers = []
        for site in sorted_sites:
            space, _elem_bytes, width, _is_store, array = self.site_meta[site]
            if space is K.Space.LOCAL:
                spec = local_specs[array]
                limits[site] = self._local_size_elems(spec, local_size)
                is_float = _np_dtype_of(spec)().dtype.kind == "f"
            elif space is K.Space.PRIVATE:
                spec = private_specs[array]
                limits[site] = spec.size
                is_float = _np_dtype_of(spec)().dtype.kind == "f"
            else:  # GLOBAL / CONSTANT / IMAGE buffers come from the host
                buf = buffers[array]
                limits[site] = len(buf)
                is_float = buf.dtype.kind == "f"
            checkers.append(
                guard.make_checker(site, space, width, array, limits, is_float)
            )
        return checkers

    @staticmethod
    def _local_size_elems(spec, local_size):
        size = spec.size
        if size == -1:  # sized by work-group: local_size rows
            rows = local_size
            row = spec.row if spec.row else 1
            return rows * (row + spec.pad)
        if spec.pad and spec.row:
            rows = size // spec.row
            return rows * (spec.row + spec.pad)
        return size


def _np_dtype_of(spec):
    return {
        "bool": np.bool_,
        "char": np.int8,
        "int": np.int32,
        "long": np.int64,
        "float": np.float32,
        "double": np.float64,
    }[(spec.ktype.base if isinstance(spec.ktype, K.KVector) else spec.ktype).kind]


def compile_kernel(kernel):
    """Compile kernel IR for the simulator (cached per kernel object)."""
    return CompiledKernel(kernel)
