"""An OpenCL-like host API over the simulator.

Mirrors the host-side workflow of Figure 1 in the paper: discover a
device, build a program from OpenCL C source, create buffers, set kernel
arguments, enqueue transfers and NDRange launches on a command queue.
The hand-tuned baseline benchmarks and the examples drive the simulator
through this API, which keeps them honest about setup and transfer
costs: the queue accounts every operation into simulated nanoseconds
using the same device/communication models the Lime runtime uses.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import DeviceError, TransferFault
from repro.opencl.clc import compile_opencl_source
from repro.opencl.device import DEVICES, get_device
from repro.opencl.executor import compile_kernel
from repro.opencl.timing import time_launch
from repro.runtime.profiler import CommCostModel

READ_ONLY = "r"
WRITE_ONLY = "w"
READ_WRITE = "rw"


class Platform:
    """The simulated OpenCL platform: one per process, four devices."""

    name = "repro simulated OpenCL"

    def get_devices(self):
        return [Device(model) for model in DEVICES.values()]

    def get_device(self, name):
        return Device(get_device(name))


class Device:
    def __init__(self, model):
        self.model = model

    @property
    def name(self):
        return self.model.name

    def __repr__(self):
        return "<Device {}>".format(self.name)


class Context:
    def __init__(self, device):
        if isinstance(device, str):
            device = Platform().get_device(device)
        self.device = device


class Buffer:
    """A device buffer: a flat NumPy array plus access flags."""

    def __init__(self, context, flags, nbytes=None, dtype=np.float32, hostbuf=None):
        self.context = context
        self.flags = flags
        if hostbuf is not None:
            self.array = np.ascontiguousarray(hostbuf).reshape(-1).copy()
        elif nbytes is not None:
            count = nbytes // np.dtype(dtype).itemsize
            self.array = np.zeros(count, dtype=dtype)
        else:
            raise DeviceError("Buffer requires nbytes or hostbuf")

    @property
    def nbytes(self):
        return self.array.nbytes


class Program:
    """OpenCL C program: building parses the source through the clc
    frontend into kernel IR and compiles it for the simulator."""

    def __init__(self, context, source):
        self.context = context
        self.source = source
        self.kernels = None

    def build(self):
        self.kernels = compile_opencl_source(self.source)
        return self

    def create_kernel(self, name):
        if self.kernels is None:
            raise DeviceError("program not built (call .build())")
        if name not in self.kernels:
            raise DeviceError(
                "no kernel '{}' in program (found: {})".format(
                    name, ", ".join(sorted(self.kernels))
                )
            )
        return Kernel(self.context, self.kernels[name])


class Kernel:
    def __init__(self, context, kernel_ir):
        self.context = context
        self.kernel_ir = kernel_ir
        self.compiled = compile_kernel(kernel_ir)
        self._args = {}

    def set_arg(self, index, value):
        params = self.kernel_ir.params
        if index >= len(params):
            raise DeviceError("argument index {} out of range".format(index))
        self._args[params[index].name] = value

    def set_args(self, *values):
        for index, value in enumerate(values):
            self.set_arg(index, value)

    def bound_arguments(self):
        buffers, scalars = {}, {}
        for param in self.kernel_ir.params:
            if param.name not in self._args:
                raise DeviceError("kernel argument '{}' not set".format(param.name))
            value = self._args[param.name]
            if param.is_pointer:
                if not isinstance(value, Buffer):
                    raise DeviceError(
                        "argument '{}' must be a Buffer".format(param.name)
                    )
                buffers[param.name] = value.array
            else:
                if isinstance(value, Buffer):
                    raise DeviceError(
                        "argument '{}' is a scalar, got a Buffer".format(
                            param.name
                        )
                    )
                scalars[param.name] = (
                    value.item() if isinstance(value, np.generic) else value
                )
        return buffers, scalars


class CommandQueue:
    """In-order command queue with simulated-time accounting.

    ``profile`` accumulates per-category nanoseconds:
    ``transfer`` (reads+writes), ``setup`` (API overhead), ``kernel``
    (device execution). ``events`` lists every operation in order.

    Hand-tuned baselines get the same fault model as the Lime runtime:
    pass an ``injector`` (:class:`repro.runtime.resilience.FaultInjector`)
    and every transfer is CRC-checked over the (possibly corrupted)
    wire — a flipped bit raises :class:`repro.errors.TransferFault` —
    while launches route through the injector's launch/OOM points.
    ``device_key`` names this queue's device for the injector's
    per-device specs and kill switch, one queue per fleet device.
    """

    def __init__(self, context, comm=None, injector=None, device_key=None):
        self.context = context
        self.comm = comm or CommCostModel()
        self.injector = injector
        self.device_key = device_key
        self.profile = {"transfer": 0.0, "setup": 0.0, "kernel": 0.0}
        self.events = []
        self.last_timing = None

    def _transmit(self, payload, direction, label):
        if self.injector is None:
            return payload
        sent_crc = zlib.crc32(payload)
        received = self.injector.transmit(
            payload, direction, label, device=self.device_key
        )
        if zlib.crc32(received) != sent_crc:
            raise TransferFault(
                "CRC mismatch on {} transfer for '{}'".format(direction, label)
            )
        return received

    def enqueue_write_buffer(self, buffer, data):
        flat = np.ascontiguousarray(data).reshape(-1)
        wire = self._transmit(flat.tobytes(), "h2d", "write_buffer")
        if self.injector is not None:
            flat = np.frombuffer(wire, dtype=flat.dtype)
        if flat.nbytes != buffer.array.nbytes:
            buffer.array = flat.copy()
        else:
            buffer.array[:] = flat
        ns = self.comm.transfer_ns(flat.nbytes)
        self.profile["transfer"] += ns
        self.events.append(("write", flat.nbytes, ns))

    def enqueue_read_buffer(self, buffer, out):
        flat = out.reshape(-1)
        wire = self._transmit(
            buffer.array[: flat.size].tobytes(), "d2h", "read_buffer"
        )
        if self.injector is not None:
            flat[:] = np.frombuffer(wire, dtype=buffer.array.dtype)[: flat.size]
        else:
            flat[:] = buffer.array[: flat.size]
        ns = self.comm.transfer_ns(flat.nbytes)
        self.profile["transfer"] += ns
        self.events.append(("read", flat.nbytes, ns))

    def enqueue_nd_range(self, kernel, global_size, local_size=None):
        device = self.context.device.model
        local_size = local_size or device.default_local_size
        buffers, scalars = kernel.bound_arguments()
        if self.injector is not None:
            self.injector.maybe_oom(
                kernel.kernel_ir.name,
                sum(buf.nbytes for buf in buffers.values()),
                device=self.device_key,
            )
        trace = kernel.compiled.launch(
            buffers,
            scalars,
            global_size,
            local_size,
            injector=self.injector,
            device=self.device_key,
        )
        timing = time_launch(trace, device)
        self.last_timing = timing
        self.profile["kernel"] += timing.kernel_ns
        setup = self.comm.setup_ns(buffers=len(buffers), launches=1)
        self.profile["setup"] += setup
        self.events.append(("ndrange", kernel.kernel_ir.name, timing.kernel_ns))
        return timing

    def finish(self):
        """In-order simulation: everything already ran; returns total
        simulated nanoseconds."""
        return sum(self.profile.values())
