"""Recursive-descent parser for the OpenCL C kernel subset.

Handles a translation unit of ``__kernel`` function definitions (plus a
minimal object-like ``#define`` preprocessor for tuning constants, which
hand kernels habitually use).
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.frontend.source import SourceFile
from repro.frontend.tokens import TokenKind as T
from repro.opencl.clc import cast as C
from repro.opencl.clc.lexer import tokenize

_SCALAR_TYPES = {
    "void",
    "char",
    "uchar",
    "short",
    "ushort",
    "int",
    "uint",
    "long",
    "ulong",
    "float",
    "double",
    "bool",
}
_VECTOR_RE = re.compile(
    r"^(char|uchar|short|ushort|int|uint|long|ulong|float|double)(2|4|8|16)$"
)

_SPACE_QUALIFIERS = {
    "__global": "global",
    "global": "global",
    "__local": "local",
    "local": "local",
    "__constant": "constant",
    "constant": "constant",
    "__private": "private",
    "private": "private",
}

_ASSIGN_OPS = {
    T.ASSIGN: None,
    T.PLUS_ASSIGN: "+",
    T.MINUS_ASSIGN: "-",
    T.STAR_ASSIGN: "*",
    T.SLASH_ASSIGN: "/",
}

_TYPE_KEYWORDS = {
    T.KW_VOID: "void",
    T.KW_INT: "int",
    T.KW_LONG: "long",
    T.KW_FLOAT: "float",
    T.KW_DOUBLE: "double",
}


def preprocess(source):
    """Strip comments-level preprocessor lines, applying object-like
    ``#define NAME value`` substitutions textually."""
    defines = {}
    kept = []
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("#define"):
            parts = stripped.split(None, 2)
            if len(parts) == 3 and "(" not in parts[1]:
                defines[parts[1]] = parts[2]
            kept.append("")
        elif stripped.startswith("#"):
            kept.append("")
        elif "sampler_t" in stripped:
            # Sampler declarations configure image addressing; the
            # simulator's image reads are always clamped nearest-texel,
            # so the declaration is dropped.
            kept.append("")
        else:
            kept.append(line)
    text = "\n".join(kept)
    for name, value in defines.items():
        text = re.sub(r"\b{}\b".format(re.escape(name)), value, text)
    return text


def is_type_name(text):
    return text in _SCALAR_TYPES or bool(_VECTOR_RE.match(text))


class CParser:
    def __init__(self, source, filename="<opencl>"):
        text = preprocess(source)
        self.source = SourceFile(text, filename)
        self.tokens = tokenize(self.source)
        self.pos = 0

    # -- cursor -------------------------------------------------------------

    def peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def at(self, kind, offset=0):
        return self.peek(offset).kind is kind

    def at_ident(self, text, offset=0):
        token = self.peek(offset)
        return token.kind is T.IDENT and token.value == text

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind is not T.EOF:
            self.pos += 1
        return token

    def expect(self, kind, what=None):
        token = self.peek()
        if token.kind is not kind:
            raise ParseError(
                "expected {} but found {!r}".format(
                    what or kind.value, token.text or "<eof>"
                ),
                token.location,
            )
        return self.advance()

    def accept(self, kind):
        if self.at(kind):
            return self.advance()
        return None

    # -- top level -------------------------------------------------------------

    def parse_translation_unit(self):
        kernels = []
        while not self.at(T.EOF):
            kernels.append(self.parse_kernel())
        return kernels

    def parse_kernel(self):
        if not (self.at_ident("__kernel") or self.at_ident("kernel")):
            raise ParseError(
                "expected a __kernel definition", self.peek().location
            )
        self.advance()
        self._expect_type_name("void")
        name = self.expect(T.IDENT, "kernel name").value
        params = self.parse_params()
        body = self.parse_block()
        return C.CKernel(name=name, params=params, body=body)

    def _expect_type_name(self, expected=None):
        token = self.peek()
        if token.kind in _TYPE_KEYWORDS:
            self.advance()
            text = _TYPE_KEYWORDS[token.kind]
        elif token.kind is T.IDENT and is_type_name(token.value):
            self.advance()
            text = token.value
        else:
            raise ParseError(
                "expected a type but found {!r}".format(token.text or "<eof>"),
                token.location,
            )
        if expected is not None and text != expected:
            raise ParseError(
                "expected '{}' but found '{}'".format(expected, text),
                token.location,
            )
        return text

    def parse_params(self):
        self.expect(T.LPAREN)
        params = []
        if not self.at(T.RPAREN):
            while True:
                params.append(self.parse_param())
                if not self.accept(T.COMMA):
                    break
        self.expect(T.RPAREN)
        return params

    def parse_param(self):
        space = "private"
        is_const = False
        # Qualifiers in any order.
        while True:
            token = self.peek()
            if token.kind is T.IDENT and token.value in _SPACE_QUALIFIERS:
                space = _SPACE_QUALIFIERS[token.value]
                self.advance()
            elif token.kind is T.IDENT and token.value in (
                "__read_only",
                "read_only",
                "__write_only",
                "write_only",
            ):
                self.advance()
            elif token.kind is T.IDENT and token.value == "const":
                is_const = True
                self.advance()
            else:
                break
        if self.at_ident("image2d_t") or self.at_ident("image1d_t"):
            self.advance()
            name = self.expect(T.IDENT, "parameter name").value
            return C.CParam(
                name=name, type_name="float4", space="image", is_pointer=True,
                is_const=True,
            )
        type_name = self._expect_type_name()
        if self.at_ident("const"):
            self.advance()
            is_const = True
        is_pointer = bool(self.accept(T.STAR))
        name = self.expect(T.IDENT, "parameter name").value
        if is_pointer and space == "private":
            space = "global"  # a bare pointer defaults sensibly
        return C.CParam(
            name=name,
            type_name=type_name,
            space=space if is_pointer else "private",
            is_pointer=is_pointer,
            is_const=is_const,
        )

    # -- statements -----------------------------------------------------------------

    def parse_block(self):
        self.expect(T.LBRACE)
        stmts = []
        while not self.at(T.RBRACE):
            stmts.append(self.parse_stmt())
        self.expect(T.RBRACE)
        return C.CBlock(stmts)

    def parse_stmt(self):
        token = self.peek()
        if token.kind is T.LBRACE:
            return self.parse_block()
        if token.kind is T.KW_IF:
            self.advance()
            self.expect(T.LPAREN)
            cond = self.parse_expr()
            self.expect(T.RPAREN)
            then = self.parse_stmt()
            otherwise = None
            if self.accept(T.KW_ELSE):
                otherwise = self.parse_stmt()
            return C.CIf(cond, then, otherwise)
        if token.kind is T.KW_FOR:
            return self.parse_for()
        if token.kind is T.KW_WHILE:
            self.advance()
            self.expect(T.LPAREN)
            cond = self.parse_expr()
            self.expect(T.RPAREN)
            return C.CWhile(cond, self.parse_stmt())
        if token.kind is T.KW_RETURN:
            self.advance()
            self.expect(T.SEMI)
            return C.CReturn()
        if token.kind is T.KW_BREAK:
            self.advance()
            self.expect(T.SEMI)
            return C.CBreak()
        if token.kind is T.KW_CONTINUE:
            self.advance()
            self.expect(T.SEMI)
            return C.CContinue()
        if token.kind is T.SEMI:
            self.advance()
            return C.CBlock([])
        stmt = self.parse_simple_stmt()
        self.expect(T.SEMI)
        return stmt

    def parse_for(self):
        self.expect(T.KW_FOR)
        self.expect(T.LPAREN)
        init = None if self.at(T.SEMI) else self.parse_simple_stmt()
        self.expect(T.SEMI)
        cond = None if self.at(T.SEMI) else self.parse_expr()
        self.expect(T.SEMI)
        update = None if self.at(T.RPAREN) else self.parse_simple_stmt()
        self.expect(T.RPAREN)
        return C.CFor(init, cond, update, self.parse_stmt())

    def _at_declaration(self):
        token = self.peek()
        if token.kind in _TYPE_KEYWORDS and token.kind is not T.KW_VOID:
            return True
        if token.kind is T.IDENT and token.value in _SPACE_QUALIFIERS:
            return True
        if token.kind is T.IDENT and is_type_name(token.value):
            # `float4 v = ...` vs an expression starting with a call to
            # a function that happens to collide — types never appear in
            # expression position except casts (parenthesized).
            return self.peek(1).kind is T.IDENT
        return False

    def parse_simple_stmt(self):
        if self._at_declaration():
            return self.parse_decl()
        expr = self.parse_expr()
        token = self.peek()
        if token.kind in _ASSIGN_OPS:
            self.advance()
            value = self.parse_expr()
            return C.CAssign(expr, _ASSIGN_OPS[token.kind], value)
        if token.kind in (T.PLUS_PLUS, T.MINUS_MINUS):
            self.advance()
            op = "+" if token.kind is T.PLUS_PLUS else "-"
            return C.CAssign(expr, op, C.CNum(1, ""))
        if (
            isinstance(expr, C.CCall)
            and expr.name in ("barrier", "mem_fence")
        ):
            return C.CBarrier()
        return C.CExprStmt(expr)

    def parse_decl(self):
        space = "private"
        token = self.peek()
        if token.kind is T.IDENT and token.value in _SPACE_QUALIFIERS:
            space = _SPACE_QUALIFIERS[token.value]
            self.advance()
        if self.at_ident("const"):
            self.advance()
        type_name = self._expect_type_name()
        name = self.expect(T.IDENT, "variable name").value
        array_size = None
        if self.accept(T.LBRACKET):
            size_expr = self.parse_expr()
            array_size = _const_int(size_expr)
            if array_size is None:
                raise ParseError(
                    "array sizes must be integer constant expressions",
                    self.peek().location,
                )
            self.expect(T.RBRACKET)
        init = None
        if self.accept(T.ASSIGN):
            init = self.parse_expr()
        return C.CDecl(
            type_name=type_name,
            name=name,
            space=space,
            array_size=array_size,
            init=init,
        )

    # -- expressions --------------------------------------------------------------------
    # Precedence: ternary > || > && > | > ^ > & > equality > relational >
    # shift > additive > multiplicative > unary > postfix.

    def parse_expr(self):
        return self.parse_ternary()

    def parse_ternary(self):
        cond = self.parse_or()
        if self.accept(T.QUESTION):
            then = self.parse_ternary()
            self.expect(T.COLON)
            otherwise = self.parse_ternary()
            return C.CTernary(cond, then, otherwise)
        return cond

    def _binary(self, kinds, next_level):
        left = next_level()
        while self.peek().kind in kinds:
            token = self.advance()
            left = C.CBin(token.text, left, next_level())
        return left

    def parse_or(self):
        return self._binary({T.OR_OR}, self.parse_and)

    def parse_and(self):
        return self._binary({T.AND_AND}, self.parse_bitor)

    def parse_bitor(self):
        return self._binary({T.PIPE}, self.parse_bitxor)

    def parse_bitxor(self):
        return self._binary({T.CARET}, self.parse_bitand)

    def parse_bitand(self):
        return self._binary({T.AMP}, self.parse_equality)

    def parse_equality(self):
        return self._binary({T.EQ, T.NE}, self.parse_relational)

    def parse_relational(self):
        return self._binary({T.LT, T.GT, T.LE, T.GE}, self.parse_shift)

    def parse_shift(self):
        return self._binary({T.SHL, T.SHR, T.USHR}, self.parse_additive)

    def parse_additive(self):
        return self._binary({T.PLUS, T.MINUS}, self.parse_multiplicative)

    def parse_multiplicative(self):
        return self._binary({T.STAR, T.SLASH, T.PERCENT}, self.parse_unary)

    def parse_unary(self):
        token = self.peek()
        if token.kind is T.MINUS:
            self.advance()
            return C.CUn("-", self.parse_unary())
        if token.kind is T.BANG:
            self.advance()
            return C.CUn("!", self.parse_unary())
        if token.kind is T.TILDE:
            self.advance()
            return C.CUn("~", self.parse_unary())
        if token.kind is T.LPAREN and self._at_cast():
            self.advance()
            type_name = self._expect_type_name()
            self.expect(T.RPAREN)
            if self.at(T.LPAREN) and _VECTOR_RE.match(type_name):
                # Vector literal: (float4)(a, b, c, d).
                self.advance()
                args = [self.parse_expr()]
                while self.accept(T.COMMA):
                    args.append(self.parse_expr())
                self.expect(T.RPAREN)
                return C.CVecLit(type_name, args)
            return C.CCastExpr(type_name, self.parse_unary())
        return self.parse_postfix()

    def _at_cast(self):
        token = self.peek(1)
        if token.kind in _TYPE_KEYWORDS and token.kind is not T.KW_VOID:
            return self.peek(2).kind is T.RPAREN
        if token.kind is T.IDENT and is_type_name(token.value):
            return self.peek(2).kind is T.RPAREN
        return False

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind is T.LBRACKET:
                self.advance()
                index = self.parse_expr()
                self.expect(T.RBRACKET)
                expr = C.CIndex(expr, index)
            elif token.kind is T.DOT:
                self.advance()
                member = self.expect(T.IDENT, "member name").value
                expr = C.CMember(expr, member)
            else:
                return expr

    def parse_primary(self):
        token = self.peek()
        if token.kind is T.INT_LITERAL:
            self.advance()
            return C.CNum(token.value, "")
        if token.kind is T.LONG_LITERAL:
            self.advance()
            return C.CNum(token.value, "L")
        if token.kind is T.FLOAT_LITERAL:
            self.advance()
            return C.CNum(token.value, "f")
        if token.kind is T.DOUBLE_LITERAL:
            self.advance()
            return C.CNum(token.value, "")
        if token.kind is T.IDENT:
            self.advance()
            if self.at(T.LPAREN):
                self.advance()
                args = []
                if not self.at(T.RPAREN):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(T.COMMA):
                            break
                self.expect(T.RPAREN)
                return C.CCall(token.value, args)
            return C.CIdent(token.value)
        if token.kind is T.LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(T.RPAREN)
            return expr
        raise ParseError(
            "expected an expression but found {!r}".format(token.text or "<eof>"),
            token.location,
        )


def _const_int(expr):
    """Evaluate an integer constant expression, or None."""
    if isinstance(expr, C.CNum) and isinstance(expr.value, int):
        return expr.value
    if isinstance(expr, C.CUn) and expr.op == "-":
        inner = _const_int(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, C.CBin):
        left = _const_int(expr.left)
        right = _const_int(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/" and right != 0:
            return left // right
        if expr.op == "<<":
            return left << right
        if expr.op == ">>":
            return left >> right
    return None


def parse_kernels(source, filename="<opencl>"):
    """Parse OpenCL C source into a list of :class:`CKernel`."""
    return CParser(source, filename).parse_translation_unit()
