"""Lexing for OpenCL C, built on the Lime scanner.

The Lime lexer's operator and literal machinery matches C closely; the
only mismatch is keywords, so this wrapper re-tags Lime-only keywords
back to identifiers and keeps the C-meaningful ones.
"""

from __future__ import annotations

from repro.frontend.lexer import tokenize as lime_tokenize
from repro.frontend.tokens import Token, TokenKind as T

# Lime keywords that are ordinary identifiers in OpenCL C.
_DEMOTE = {
    T.KW_CLASS,
    T.KW_STATIC,  # `static` is invalid in OpenCL kernels anyway
    T.KW_LOCAL,
    T.KW_VALUE,
    T.KW_TASK,
    T.KW_NEW,
    T.KW_THROW,
    T.KW_BOOLEAN,
    T.KW_NULL,
    T.KW_VAR,
    T.KW_FINAL,
    T.KW_BYTE,
}


def tokenize(source, filename="<opencl>"):
    tokens = []
    for token in lime_tokenize(source, filename):
        if token.kind in _DEMOTE:
            tokens.append(
                Token(
                    kind=T.IDENT,
                    text=token.text,
                    location=token.location,
                    value=token.text,
                )
            )
        else:
            tokens.append(token)
    return tokens
