"""Translate the OpenCL C AST into kernel IR.

A small bidirectional-free type inference (declarations seed a symbol
table; expressions propagate upward with C-style promotion) is enough
for the kernel subset. Unsigned and 16-bit types are widened to their
signed 32/64-bit counterparts — the simulator computes in Python ints
with explicit wrapping, so this only affects extremely unusual kernels
that rely on unsigned wraparound semantics, which the baseline suite
avoids.
"""

from __future__ import annotations

import re

from repro.backend import kernel_ir as K
from repro.errors import CompileError
from repro.opencl.clc import cast as C

_SCALARS = {
    "bool": K.K_BOOL,
    "char": K.K_CHAR,
    "uchar": K.K_CHAR,
    "short": K.K_INT,
    "ushort": K.K_INT,
    "int": K.K_INT,
    "uint": K.K_INT,
    "long": K.K_LONG,
    "ulong": K.K_LONG,
    "float": K.K_FLOAT,
    "double": K.K_DOUBLE,
}

_VECTOR_RE = re.compile(
    r"^(char|uchar|short|ushort|int|uint|long|ulong|float|double)(2|4|8|16)$"
)

_SPACES = {
    "global": K.Space.GLOBAL,
    "local": K.Space.LOCAL,
    "constant": K.Space.CONSTANT,
    "private": K.Space.PRIVATE,
    "image": K.Space.IMAGE,
}

_LANES = {"x": 0, "y": 1, "z": 2, "w": 3}

_MATH_FUNCS = {
    "sqrt",
    "native_sqrt",
    "rsqrt",
    "native_rsqrt",
    "sin",
    "native_sin",
    "cos",
    "native_cos",
    "tan",
    "native_tan",
    "exp",
    "native_exp",
    "log",
    "native_log",
    "floor",
    "ceil",
    "fabs",
    "pow",
    "native_powr",
    "atan2",
    "hypot",
}

_MINMAX = {"min", "max", "fmin", "fmax", "abs"}

_WORKITEM = {
    "get_global_id",
    "get_local_id",
    "get_group_id",
    "get_local_size",
    "get_global_size",
    "get_num_groups",
}


def parse_type(name):
    if name in _SCALARS:
        return _SCALARS[name]
    match = _VECTOR_RE.match(name)
    if match:
        return K.KVector(_SCALARS[match.group(1)], int(match.group(2)))
    raise CompileError("unknown OpenCL type '{}'".format(name))


def _promote(a, b):
    """C-style usual arithmetic conversion over our kernel types."""
    if isinstance(a, K.KVector):
        return a
    if isinstance(b, K.KVector):
        return b
    order = {"bool": 0, "char": 1, "int": 2, "long": 3, "float": 4, "double": 5}
    winner = a if order[a.kind] >= order[b.kind] else b
    if winner.kind in ("bool", "char"):
        return K.K_INT
    return winner


class _ArrayInfo:
    __slots__ = ("space", "elem", "is_image")

    def __init__(self, space, elem, is_image=False):
        self.space = space
        self.elem = elem
        self.is_image = is_image


class Translator:
    def __init__(self, ckernel):
        self.ckernel = ckernel
        self.scalars = {}  # name -> ktype
        self.arrays = {}  # name -> _ArrayInfo
        self.params = []
        self.local_arrays = []

    def run(self):
        for param in self.ckernel.params:
            self._translate_param(param)
        body = self._block(self.ckernel.body)
        return K.Kernel(
            name=self.ckernel.name,
            params=self.params,
            arrays=self.local_arrays,
            body=body,
            meta={"kind": "handwritten"},
        )

    def _translate_param(self, param):
        if param.space == "image":
            elem = K.K_FLOAT
            self.params.append(
                K.KParam(
                    param.name, elem, K.Space.GLOBAL, is_pointer=True, read_only=True
                )
            )
            self.arrays[param.name] = _ArrayInfo(
                K.Space.IMAGE, elem, is_image=True
            )
            return
        ktype = parse_type(param.type_name)
        if param.is_pointer:
            space = _SPACES[param.space]
            self.params.append(
                K.KParam(
                    param.name,
                    ktype,
                    space,
                    is_pointer=True,
                    read_only=param.is_const,
                )
            )
            self.arrays[param.name] = _ArrayInfo(space, ktype)
        else:
            self.params.append(K.KParam(param.name, ktype))
            self.scalars[param.name] = ktype

    # -- statements -------------------------------------------------------------

    def _block(self, block):
        stmts = []
        for stmt in block.stmts:
            result = self._stmt(stmt)
            if result is not None:
                stmts.extend(result)
        return stmts

    def _stmt(self, stmt):
        if isinstance(stmt, C.CBlock):
            return self._block(stmt)
        if isinstance(stmt, C.CDecl):
            return self._decl(stmt)
        if isinstance(stmt, C.CExprStmt):
            if isinstance(stmt.expr, C.CCall) and stmt.expr.name.startswith(
                "vstore"
            ):
                return [_handle_vstore_stmt(self, stmt.expr)]
            # Other pure expression statements have no device effect.
            return []
        if isinstance(stmt, C.CAssign):
            return self._assign(stmt)
        if isinstance(stmt, C.CIf):
            cond = self._expr(stmt.cond)[0]
            then = self._stmt(stmt.then) or []
            otherwise = self._stmt(stmt.otherwise) or [] if stmt.otherwise else []
            return [K.KIf(cond, then, otherwise)]
        if isinstance(stmt, C.CFor):
            return self._for(stmt)
        if isinstance(stmt, C.CWhile):
            cond = self._expr(stmt.cond)[0]
            return [K.KWhile(cond, self._stmt(stmt.body) or [])]
        if isinstance(stmt, C.CReturn):
            return [K.KReturn()]
        if isinstance(stmt, C.CBreak):
            return [K.KBreak()]
        if isinstance(stmt, C.CContinue):
            return [K.KContinue()]
        if isinstance(stmt, C.CBarrier):
            return [K.KBarrier()]
        raise CompileError(
            "cannot translate {}".format(type(stmt).__name__)
        )

    def _decl(self, stmt):
        if stmt.type_name == "sampler_t":
            return []
        ktype = parse_type(stmt.type_name)
        if stmt.array_size is not None:
            space = K.Space.LOCAL if stmt.space == "local" else K.Space.PRIVATE
            self.local_arrays.append(
                K.KLocalArray(stmt.name, ktype, stmt.array_size, space)
            )
            self.arrays[stmt.name] = _ArrayInfo(space, ktype)
            return []
        self.scalars[stmt.name] = ktype
        init = None
        if stmt.init is not None:
            init, init_t = self._expr(stmt.init)
            if isinstance(ktype, K.KScalar) and isinstance(init_t, K.KScalar):
                if init_t != ktype:
                    init = K.KCast(init, ktype)
        return [K.KDecl(stmt.name, ktype, init)]

    def _assign(self, stmt):
        target = stmt.target
        if isinstance(target, C.CIdent):
            ktype = self.scalars.get(target.name)
            if ktype is None:
                raise CompileError(
                    "assignment to undeclared '{}'".format(target.name)
                )
            value, _ = self._expr(stmt.value)
            if stmt.op is not None:
                value = K.KBin(stmt.op, K.KVar(target.name, ktype), value, ktype)
            return [K.KAssign(target.name, value)]
        if isinstance(target, C.CIndex):
            base, index, info = self._index_parts(target)
            value, _ = self._expr(stmt.value)
            if stmt.op is not None:
                load = K.KLoad(base, index, info.space, info.elem)
                value = K.KBin(stmt.op, load, value, info.elem)
            return [K.KStore(base, index, value, info.space, info.elem)]
        if isinstance(target, C.CCall) and target.name.startswith("vstore"):
            raise CompileError("vstore is an expression-statement call")
        raise CompileError("unsupported assignment target")

    def _for(self, stmt):
        out = []
        # Canonical form: for (int i = lo; i < hi; i += step).
        init = stmt.init
        if (
            isinstance(init, C.CDecl)
            and init.array_size is None
            and isinstance(stmt.cond, C.CBin)
            and stmt.cond.op == "<"
            and isinstance(stmt.cond.left, C.CIdent)
            and stmt.cond.left.name == init.name
            and isinstance(stmt.update, C.CAssign)
            and isinstance(stmt.update.target, C.CIdent)
            and stmt.update.target.name == init.name
            and stmt.update.op == "+"
        ):
            ktype = parse_type(init.type_name)
            self.scalars[init.name] = ktype
            lo, _ = self._expr(init.init)
            hi, _ = self._expr(stmt.cond.right)
            step, _ = self._expr(stmt.update.value)
            body = self._stmt(stmt.body) or []
            out.append(K.KFor(init.name, lo, hi, step, body))
            return out
        # General form: init; while (cond) { body; update; }.
        if stmt.init is not None:
            out.extend(self._stmt(stmt.init) or [])
        cond = (
            self._expr(stmt.cond)[0]
            if stmt.cond is not None
            else K.KConst(True, K.K_BOOL)
        )
        body = self._stmt(stmt.body) or []
        if stmt.update is not None:
            if _contains_continue(body):
                raise CompileError(
                    "continue inside a non-canonical for loop is not "
                    "supported (the update would be skipped)"
                )
            body.extend(self._stmt(stmt.update) or [])
        out.append(K.KWhile(cond, body))
        return out

    # -- expressions -----------------------------------------------------------------

    def _expr(self, expr):
        """Returns (kexpr, ktype)."""
        if isinstance(expr, C.CNum):
            if expr.suffix == "f":
                return K.KConst(float(expr.value), K.K_FLOAT), K.K_FLOAT
            if expr.suffix == "L":
                return K.KConst(int(expr.value), K.K_LONG), K.K_LONG
            if isinstance(expr.value, float):
                return K.KConst(expr.value, K.K_DOUBLE), K.K_DOUBLE
            return K.KConst(expr.value, K.K_INT), K.K_INT
        if isinstance(expr, C.CIdent):
            ktype = self.scalars.get(expr.name)
            if ktype is None:
                raise CompileError("unknown identifier '{}'".format(expr.name))
            return K.KVar(expr.name, ktype), ktype
        if isinstance(expr, C.CUn):
            operand, ktype = self._expr(expr.operand)
            if expr.op == "!":
                return K.KUn("!", operand, K.K_BOOL), K.K_BOOL
            return K.KUn(expr.op, operand, ktype), ktype
        if isinstance(expr, C.CBin):
            return self._binary(expr)
        if isinstance(expr, C.CTernary):
            cond, _ = self._expr(expr.cond)
            then, t1 = self._expr(expr.then)
            otherwise, t2 = self._expr(expr.otherwise)
            ktype = _promote(t1, t2)
            return K.KSelect(cond, then, otherwise, ktype), ktype
        if isinstance(expr, C.CCall):
            return self._call(expr)
        if isinstance(expr, C.CIndex):
            base, index, info = self._index_parts(expr)
            if info.is_image:
                raise CompileError("images are read via read_imagef")
            return K.KLoad(base, index, info.space, info.elem), info.elem
        if isinstance(expr, C.CMember):
            return self._member(expr)
        if isinstance(expr, C.CCastExpr):
            ktype = parse_type(expr.type_name)
            inner, _ = self._expr(expr.expr)
            return K.KCast(inner, ktype), ktype
        if isinstance(expr, C.CVecLit):
            ktype = parse_type(expr.type_name)
            elems = [self._expr(a)[0] for a in expr.args]
            if len(elems) == 1:
                elems = elems * ktype.width  # splat
            return K.KVecBuild(elems, ktype), ktype
        raise CompileError("cannot translate {}".format(type(expr).__name__))

    def _binary(self, expr):
        left, lt = self._expr(expr.left)
        right, rt = self._expr(expr.right)
        if expr.op in ("<", ">", "<=", ">=", "==", "!="):
            return K.KBin(expr.op, left, right, K.K_BOOL), K.K_BOOL
        if expr.op in ("&&", "||"):
            return K.KBin(expr.op, left, right, K.K_BOOL), K.K_BOOL
        ktype = _promote(lt, rt)
        return K.KBin(expr.op, left, right, ktype), ktype

    def _index_parts(self, expr):
        if not isinstance(expr.base, C.CIdent):
            raise CompileError("only direct array indexing is supported")
        name = expr.base.name
        info = self.arrays.get(name)
        if info is None:
            raise CompileError("unknown array '{}'".format(name))
        index, _ = self._expr(expr.index)
        return name, index, info

    def _member(self, expr):
        base, ktype = self._expr(expr.base)
        if not isinstance(ktype, K.KVector):
            raise CompileError("member access on a non-vector value")
        name = expr.name
        if name in _LANES:
            lane = _LANES[name]
        elif re.fullmatch(r"s[0-9a-fA-F]", name):
            lane = int(name[1], 16)
        else:
            raise CompileError("unsupported vector member '.{}'".format(name))
        if lane >= ktype.width:
            raise CompileError(
                "lane {} out of range for {}".format(lane, ktype)
            )
        return K.KVecExtract(base, lane, ktype.base), ktype.base

    def _call(self, expr):
        name = expr.name
        if name in _WORKITEM:
            if expr.args and not (
                isinstance(expr.args[0], C.CNum) and expr.args[0].value == 0
            ):
                raise CompileError(
                    "only dimension 0 NDRanges are supported"
                )
            return K.KCall(name, [], K.K_INT), K.K_INT
        if name.startswith("vload"):
            width = int(name[5:])
            index, _ = self._expr(expr.args[0])
            pointer = expr.args[1]
            if not isinstance(pointer, C.CIdent):
                raise CompileError("vload requires a direct pointer")
            info = self.arrays.get(pointer.name)
            if info is None:
                raise CompileError("unknown array '{}'".format(pointer.name))
            vec = K.KVector(info.elem, width)
            return K.KLoad(pointer.name, index, info.space, vec), vec
        if name.startswith("vstore"):
            raise CompileError("vstore must be used as a statement")
        if name == "read_imagef":
            image = expr.args[0]
            if not isinstance(image, C.CIdent):
                raise CompileError("read_imagef requires a direct image")
            coord_arg = expr.args[-1]
            coord = self._image_coord(coord_arg)
            vec = K.KVector(K.K_FLOAT, 4)
            return K.KImageLoad(image.name, coord, vec), vec
        if name == "mad":
            a, ta = self._expr(expr.args[0])
            b, tb = self._expr(expr.args[1])
            c, tc = self._expr(expr.args[2])
            ktype = _promote(_promote(ta, tb), tc)
            return (
                K.KBin("+", K.KBin("*", a, b, ktype), c, ktype),
                ktype,
            )
        if name in _MATH_FUNCS or name in _MINMAX:
            args = []
            arg_t = None
            for arg in expr.args:
                kexpr, ktype = self._expr(arg)
                args.append(kexpr)
                arg_t = ktype if arg_t is None else _promote(arg_t, ktype)
            if arg_t is None:
                arg_t = K.K_FLOAT
            if name in _MATH_FUNCS and not arg_t.is_float:
                arg_t = K.K_FLOAT  # transcendentals promote ints to float
            return K.KCall(name, args, arg_t), arg_t
        raise CompileError("unknown device function '{}'".format(name))

    def _image_coord(self, coord_arg):
        """Extract the x coordinate from ``(int2)(x, 0)``."""
        if isinstance(coord_arg, C.CVecLit):
            return self._expr(coord_arg.args[0])[0]
        raise CompileError(
            "image coordinates must be literal (int2)(x, 0) expressions"
        )


def _contains_continue(stmts):
    for stmt in stmts:
        if isinstance(stmt, K.KContinue):
            return True
        if isinstance(stmt, K.KIf) and (
            _contains_continue(stmt.then) or _contains_continue(stmt.otherwise)
        ):
            return True
        # Nested loops own their continues.
    return False


def translate_kernel(ckernel):
    """Translate one parsed kernel into kernel IR."""
    return Translator(ckernel).run()


def _handle_vstore_stmt(translator, call):
    width = int(call.name[6:])
    value, _ = translator._expr(call.args[0])
    index, _ = translator._expr(call.args[1])
    pointer = call.args[2]
    if not isinstance(pointer, C.CIdent):
        raise CompileError("vstore requires a direct pointer")
    info = translator.arrays.get(pointer.name)
    if info is None:
        raise CompileError("unknown array '{}'".format(pointer.name))
    vec = K.KVector(info.elem, width)
    return K.KStore(pointer.name, index, value, info.space, vec)
