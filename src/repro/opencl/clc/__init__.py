"""An OpenCL C frontend.

The paper compares compiled Lime kernels against hand-tuned OpenCL
written by humans. To make that comparison real in this reproduction,
hand-written OpenCL C source (see ``repro.apps``) is parsed by this
package and translated into the same kernel IR the Lime compiler
produces, then executed and timed by the same simulator. One engine,
two producers — exactly like both toolchains meeting at the driver in
the paper.

Supported subset: what GPU compute kernels of the era use — address
space qualifiers, scalar and vector types (``floatN``/``intN``),
``vloadN``/``vstoreN``, vector member access (``.x``/``.s0``),
``barrier``, work-item functions, images via ``read_imagef``, the C
statement/expression core. Host-side OpenCL C features (printf, events,
atomics) are out of scope.
"""

from repro.opencl.clc.parser import parse_kernels
from repro.opencl.clc.to_kernel_ir import translate_kernel


def compile_opencl_source(source, filename="<opencl>"):
    """Parse OpenCL C source and translate every ``__kernel`` into
    kernel IR; returns a dict name -> Kernel."""
    kernels = parse_kernels(source, filename)
    return {k.name: translate_kernel(k) for k in kernels}
