"""A small C AST for the OpenCL kernel subset.

Types are carried as strings ("float", "int", "float4", ...); the
translator resolves them against :mod:`repro.backend.kernel_ir` types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class CParam:
    name: str
    type_name: str  # element type for pointers
    space: str  # "global" | "local" | "constant" | "private" | "image"
    is_pointer: bool
    is_const: bool


@dataclass
class CKernel:
    name: str
    params: List[CParam]
    body: "CBlock"


# -- statements ---------------------------------------------------------------


class CStmt:
    pass


@dataclass
class CBlock(CStmt):
    stmts: List[CStmt]


@dataclass
class CDecl(CStmt):
    type_name: str
    name: str
    space: str  # "private" | "local"
    array_size: Optional[int]  # None for scalars
    init: Optional["CExpr"]


@dataclass
class CExprStmt(CStmt):
    expr: "CExpr"


@dataclass
class CAssign(CStmt):
    target: "CExpr"
    op: Optional[str]  # None, "+", "-", "*", "/", "&", "|", "^", "<<", ">>"
    value: "CExpr"


@dataclass
class CIf(CStmt):
    cond: "CExpr"
    then: CStmt
    otherwise: Optional[CStmt]


@dataclass
class CFor(CStmt):
    init: Optional[CStmt]
    cond: Optional["CExpr"]
    update: Optional[CStmt]
    body: CStmt


@dataclass
class CWhile(CStmt):
    cond: "CExpr"
    body: CStmt


@dataclass
class CReturn(CStmt):
    pass


@dataclass
class CBreak(CStmt):
    pass


@dataclass
class CContinue(CStmt):
    pass


@dataclass
class CBarrier(CStmt):
    pass


# -- expressions ---------------------------------------------------------------


class CExpr:
    pass


@dataclass
class CNum(CExpr):
    value: object
    suffix: str  # "", "f", "L"


@dataclass
class CIdent(CExpr):
    name: str


@dataclass
class CUn(CExpr):
    op: str
    operand: CExpr


@dataclass
class CBin(CExpr):
    op: str
    left: CExpr
    right: CExpr


@dataclass
class CTernary(CExpr):
    cond: CExpr
    then: CExpr
    otherwise: CExpr


@dataclass
class CCall(CExpr):
    name: str
    args: List[CExpr]


@dataclass
class CIndex(CExpr):
    base: CExpr
    index: CExpr


@dataclass
class CMember(CExpr):
    base: CExpr
    name: str  # x/y/z/w or s0..sf


@dataclass
class CCastExpr(CExpr):
    type_name: str
    expr: CExpr


@dataclass
class CVecLit(CExpr):
    type_name: str  # e.g. "float4" or "int2"
    args: List[CExpr]
