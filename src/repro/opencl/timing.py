"""The device timing model.

Converts a :class:`repro.opencl.executor.LaunchTrace` into simulated
kernel nanoseconds for a given :class:`DeviceModel`. The model is
deliberately analytic (deterministic, additive) but captures every
first-order effect the paper's evaluation turns on:

- **coalescing** — global accesses are grouped into *simultaneous
  events*: accesses by the lanes of one warp at the same per-lane
  sequence position of one site. Each event costs as many memory
  transactions as distinct ``transaction_bytes``-sized segments it
  touches. Strided per-thread access (e.g. spilled private arrays)
  explodes into one transaction per lane; unit-stride access coalesces.
- **bank conflicts** — local-memory events cost the maximum number of
  lanes hitting any single bank (a broadcast of one word costs one
  cycle), so padding visibly pays off.
- **constant memory** — an event costs the number of *distinct* words
  read (1 for a broadcast, serialized otherwise).
- **caches (Fermi / CPU)** — on devices with an L1, repeated addresses
  within a work-group hit cache: only unique segments pay bandwidth,
  the rest are charged a per-access cache cycle. This is what makes the
  GTX580 insensitive to memory placement (Figure 8(b)).
- **double precision / transcendentals** — per-device throughput ratios
  (Section 5.1's 2-3x double slowdown; OpenCL's native transcendentals).

The roofline combination ``max(compute, memory) + launch overhead``
keeps the model monotone and explainable; the tests in
``tests/opencl/test_timing.py`` pin each effect individually.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend.kernel_ir import Space


@dataclass
class SiteStats:
    """Aggregated behavior of one access site under a given device."""

    space: Space
    accesses: int
    bytes_moved: int
    is_store: bool
    transactions: int = 0  # global/image: coalesced memory transactions
    unique_transactions: int = 0  # distinct segments per work-group (cache)
    conflict_cycles: int = 0  # local: serialized cycles across events
    serial_words: int = 0  # constant: distinct words summed over events
    events: int = 0  # simultaneous access events


@dataclass
class KernelTiming:
    """The timing verdict for one launch."""

    kernel_ns: float
    compute_ns: float
    memory_ns: float
    launch_overhead_ns: float
    op_cycles: dict
    site_stats: dict = field(default_factory=dict)

    def describe(self):
        return {
            "kernel_ns": self.kernel_ns,
            "compute_ns": self.compute_ns,
            "memory_ns": self.memory_ns,
            "ops": dict(self.op_cycles),
        }


def _event_keys(lanes, local_size, warp_width):
    """Group events into 'simultaneous' sets.

    Events of one site are recorded in per-item execution order; the
    k-th access a lane makes at a site lines up with the k-th access of
    every other lane (lockstep SIMT execution of uniform control flow).
    The simultaneous-event key is (group, warp, sequence#).
    """
    order = np.argsort(lanes, kind="stable")
    sorted_lanes = lanes[order]
    # Rank within each lane: position - first index of that lane value.
    change = np.empty(len(sorted_lanes), dtype=bool)
    if len(sorted_lanes):
        change[0] = True
        change[1:] = sorted_lanes[1:] != sorted_lanes[:-1]
    starts = np.flatnonzero(change)
    group_sizes = np.diff(np.append(starts, len(sorted_lanes)))
    offsets = np.repeat(starts, group_sizes)
    seq_sorted = np.arange(len(sorted_lanes)) - offsets
    seq = np.empty(len(lanes), dtype=np.int64)
    seq[order] = seq_sorted
    groups = lanes // local_size
    warps = (lanes % local_size) // warp_width
    # Composite key, dense enough for np.unique.
    return (groups.astype(np.int64) << 40) | (warps.astype(np.int64) << 28) | seq


def _count_distinct_pairs(keys, values):
    """Number of distinct (key, value) pairs."""
    if len(keys) == 0:
        return 0
    pairs = np.empty(len(keys), dtype=[("k", np.int64), ("v", np.int64)])
    pairs["k"] = keys
    pairs["v"] = values
    return len(np.unique(pairs))


def _max_per_key_bucket(keys, buckets):
    """For each key, the maximum multiplicity of any bucket value;
    returns the sum over keys (serialized cycles)."""
    if len(keys) == 0:
        return 0
    pairs = np.empty(len(keys), dtype=[("k", np.int64), ("b", np.int64)])
    pairs["k"] = keys
    pairs["b"] = buckets
    uniq, counts = np.unique(pairs, return_counts=True)
    # counts are multiplicities per (key, bucket); take max per key.
    keys_only = uniq["k"]
    order = np.argsort(keys_only, kind="stable")
    keys_sorted = keys_only[order]
    counts_sorted = counts[order]
    change = np.empty(len(keys_sorted), dtype=bool)
    change[0] = True
    change[1:] = keys_sorted[1:] != keys_sorted[:-1]
    starts = np.flatnonzero(change)
    maxima = np.maximum.reduceat(counts_sorted, starts)
    return int(maxima.sum())


def _strict_coalescing_transactions(keys, byte_addr, segment_bytes, access_bytes):
    """Transactions under pre-Fermi coalescing rules.

    Per simultaneous event: lanes hitting distinct, densely packed
    addresses (a contiguous run, lane k at base + k*width) coalesce into
    the segments the run spans; any other shape — a broadcast, a large
    stride, a scatter — issues one transaction per lane, which is the
    paper's up-to-10x global penalty on the GTX8800.
    """
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    addr_sorted = byte_addr[order]
    change = np.empty(len(keys_sorted), dtype=bool)
    change[0] = True
    change[1:] = keys_sorted[1:] != keys_sorted[:-1]
    starts = np.flatnonzero(change)
    ends = np.append(starts[1:], len(keys_sorted))
    total = 0
    for start, end in zip(starts, ends):
        window = addr_sorted[start:end]
        lanes = end - start
        lo = int(window.min())
        hi = int(window.max())
        distinct = len(np.unique(window))
        dense = distinct == lanes and (hi - lo) == (lanes - 1) * access_bytes
        if lanes == 1 or dense:
            total += (hi + access_bytes - 1) // segment_bytes - lo // segment_bytes + 1
        else:
            total += lanes
    return total


def _distinct_per_key_total(keys, values):
    """Sum over keys of the number of distinct values — the serialization
    cost of constant-memory events."""
    return _count_distinct_pairs(keys, values)


def analyze_site(trace_site, device, local_size):
    """Aggregate one :class:`SiteTrace` into :class:`SiteStats`."""
    lanes, indices = trace_site.arrays()
    stats = SiteStats(
        space=trace_site.space,
        accesses=trace_site.accesses,
        bytes_moved=trace_site.bytes_moved,
        is_store=trace_site.is_store,
    )
    if len(lanes) == 0:
        return stats
    warp = max(1, device.warp_width)
    keys = _event_keys(lanes, local_size, warp)
    stats.events = len(np.unique(keys))
    byte_addr = indices * (trace_site.elem_bytes * trace_site.width)
    if trace_site.space in (Space.GLOBAL, Space.IMAGE):
        seg_lo = byte_addr // device.transaction_bytes
        seg_hi = (
            byte_addr + trace_site.elem_bytes * trace_site.width - 1
        ) // device.transaction_bytes
        spans = int((seg_hi != seg_lo).sum())
        if not device.strict_coalescing or trace_site.space is Space.IMAGE:
            # Relaxed path: an event costs its distinct segments.
            transactions = _count_distinct_pairs(keys, seg_lo)
        else:
            # Strict pre-Fermi coalescing: an event is coalesced only
            # when its lanes hit distinct, densely packed addresses
            # within one segment-aligned window; anything else — a
            # broadcast, a stride, a scatter — serializes into one
            # transaction per lane (the paper's up-to-10x global
            # penalty on the GTX8800).
            transactions = _strict_coalescing_transactions(
                keys,
                byte_addr,
                device.transaction_bytes,
                trace_site.elem_bytes * trace_site.width,
            )
        stats.transactions = transactions + spans
        # Unique segments per work-group: what a group-resident cache
        # must fetch from DRAM.
        groups = lanes // local_size
        stats.unique_transactions = _count_distinct_pairs(groups, seg_lo) + spans
    elif trace_site.space is Space.LOCAL:
        words = byte_addr // 4
        banks = words % device.local_memory_banks
        # Broadcast detection: an event where every lane reads the same
        # word costs one cycle; otherwise the max-per-bank multiplicity.
        distinct_words = _distinct_per_key_total(keys, words)
        max_bank = _max_per_key_bucket(keys, banks)
        if distinct_words == stats.events:
            # Every event touched a single word: pure broadcast.
            stats.conflict_cycles = stats.events
        else:
            stats.conflict_cycles = max_bank
    elif trace_site.space is Space.CONSTANT:
        words = byte_addr // 4
        stats.serial_words = _distinct_per_key_total(keys, words)
    return stats


# Per-op cycle weights, shared across devices; device ratios are applied
# on top (dp ratio, transcendental cycles).
_BASE_CYCLES = {"int": 1.0, "long": 2.0, "fp": 1.0, "cmp": 1.0, "branch": 1.0}


def time_launch(trace, device):
    """Compute the simulated time of one kernel launch on ``device``."""
    local_size = max(1, trace.local_size)
    site_stats = {
        site: analyze_site(tr, device, local_size)
        for site, tr in trace.sites.items()
    }

    ops = trace.op_cycles
    cycles = 0.0
    for kind, weight in _BASE_CYCLES.items():
        cycles += ops.get(kind, 0) * weight
    cycles += ops.get("dp", 0) * device.dp_throughput_ratio
    cycles += ops.get("trans_f", 0) * device.transcendental_cycles
    cycles += (
        ops.get("trans_d", 0)
        * device.transcendental_cycles
        * device.dp_throughput_ratio
    )

    # On-chip memory joins the compute pipeline.
    dram_bytes = 0.0
    cache_hit_bytes = 0.0
    for stats in site_stats.values():
        if stats.space is Space.LOCAL:
            cycles += stats.conflict_cycles * local_size_weight(device)
        elif stats.space is Space.CONSTANT:
            cycles += stats.serial_words * local_size_weight(device)
        elif stats.space is Space.IMAGE:
            # Texture path: cached and vectorized; charge a fixed 2
            # cycles per event plus the DRAM traffic of unique segments.
            cycles += stats.events * 2 * local_size_weight(device)
            dram_bytes += stats.unique_transactions * device.transaction_bytes
        elif stats.space is Space.GLOBAL:
            if device.has_l1_cache:
                unique_bytes = stats.unique_transactions * device.transaction_bytes
                total_bytes = stats.transactions * device.transaction_bytes
                dram_bytes += unique_bytes
                cache_hit_bytes += max(0.0, total_bytes - unique_bytes)
            else:
                dram_bytes += stats.transactions * device.transaction_bytes

    total_lanes = device.compute_units * device.fp_units_per_unit
    effective_rate = (
        total_lanes * device.clock_ghz * device.compute_efficiency
    )  # ops per ns
    compute_ns = cycles / effective_rate if effective_rate else 0.0

    # Cache hits are serviced at the cache's rate across compute units.
    if cache_hit_bytes:
        cache_rate = (
            device.compute_units
            * device.cache_bytes_per_cycle
            * device.clock_ghz
        )  # bytes per ns
        compute_ns += cache_hit_bytes / cache_rate

    bandwidth = device.global_bandwidth_gbps * device.bandwidth_efficiency  # B/ns
    memory_ns = dram_bytes / bandwidth if bandwidth else 0.0
    # Uncovered latency: one burst per wave of work-groups.
    waves = max(1.0, trace.work_groups / device.compute_units)
    memory_ns += device.global_latency_ns * waves if dram_bytes else 0.0

    kernel_ns = max(compute_ns, memory_ns) + device.launch_overhead_ns
    return KernelTiming(
        kernel_ns=kernel_ns,
        compute_ns=compute_ns,
        memory_ns=memory_ns,
        launch_overhead_ns=device.launch_overhead_ns,
        op_cycles=dict(ops),
        site_stats=site_stats,
    )


def local_size_weight(device):
    """Cost, in pipeline cycles per lane-event, of an on-chip access.

    On-chip accesses are charged like ALU ops; the warp serialization is
    already reflected in the conflict counts, so the per-event weight is
    the warp width (one cycle per lane at full throughput equals one
    warp-cycle per event)."""
    return float(device.warp_width)
