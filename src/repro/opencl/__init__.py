"""The simulated OpenCL substrate.

The paper runs on real OpenCL drivers (NVIDIA CUDA 4.0, AMD SDK 2.5,
Intel's CPU runtime); this package replaces them with a simulator that
keeps the experiments honest:

- :mod:`repro.opencl.device` — device models parameterized by Table 2.
- :mod:`repro.opencl.api` — an OpenCL-like host API (context, queue,
  buffers, programs, kernels).
- :mod:`repro.opencl.executor` — executes kernel IR over an NDRange with
  real work-group/barrier semantics, collecting per-site memory traces.
- :mod:`repro.opencl.timing` — converts execution statistics into
  simulated kernel time per device (coalescing, bank conflicts, caches,
  double-precision ratios, native transcendentals).
- :mod:`repro.opencl.clc` — an OpenCL C frontend so hand-written
  baseline kernels run through the same executor.
"""

from repro.opencl.device import DEVICES, DeviceModel, get_device

__all__ = ["DEVICES", "DeviceModel", "get_device"]
