"""Content-addressed compilation cache for kernel IR.

``compile_filter`` rebuilds kernel IR from scratch for every stream
task and every :class:`Offloader`, so without a cache the simulator
re-runs codegen (IR -> Python source -> ``exec``) for kernels it has
already compiled — across stream items, engine runs, and evaluation
sweeps. The cache keys compiled artifacts by *content*:

    (IR fingerprint, compiler options, sanitizer config, device)

- The **fingerprint** is a SHA-256 over a canonical serialization of
  the kernel IR (params, in-kernel arrays, statements, types). Site
  ids and the free-form ``meta`` dict are excluded: sites are
  derived deterministically from the structure, and ``meta`` is
  consumed by the host glue, not by codegen.
- **Options** (``OptimizationConfig.describe()``) are part of the key
  because memory-plan toggles change the IR *and* because a future
  option may change codegen without changing the IR.
- The **sanitizer config** is part of the key so that toggling
  ``--sanitize`` can never reuse an artifact compiled for a different
  instrumentation level (see ``tests/opencl/test_kernel_cache.py``).
- The **device** name is included because memory plans are
  device-shaped.

The cache is bounded (LRU) and module-global: hit/miss counts are
exposed both globally and per :class:`ExecutionProfile` via the
``profile`` argument of :func:`cached_compile_kernel`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from collections import OrderedDict

from repro.backend import kernel_ir as K
from repro.opencl.executor import CompiledKernel
from repro.runtime.tracing import NULL_TRACER

DEFAULT_CAPACITY = 128

# Fields that do not affect the compiled artifact.
_SKIP_FIELDS = frozenset({"site", "meta"})


def _serialize(node, out):
    """Append a canonical token stream for ``node`` to ``out``."""
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        out.append(type(node).__name__)
        out.append("(")
        for f in dataclasses.fields(node):
            if f.name in _SKIP_FIELDS:
                continue
            out.append(f.name + "=")
            _serialize(getattr(node, f.name), out)
        out.append(")")
    elif isinstance(node, enum.Enum):
        out.append(type(node).__name__ + "." + node.name)
    elif isinstance(node, (list, tuple)):
        out.append("[")
        for item in node:
            _serialize(item, out)
            out.append(",")
        out.append("]")
    elif isinstance(node, float):
        # repr round-trips floats exactly (incl. -0.0 vs 0.0).
        out.append("f" + repr(node))
    elif isinstance(node, bool):
        out.append("b" + repr(node))
    elif isinstance(node, int):
        out.append("i" + repr(node))
    elif isinstance(node, str):
        out.append("s" + repr(node))
    elif node is None:
        out.append("~")
    else:
        raise TypeError(
            "cannot fingerprint {} in kernel IR".format(type(node).__name__)
        )


def kernel_fingerprint(kernel):
    """Deterministic SHA-256 hex digest of a kernel's compiled content."""
    out = []
    _serialize(kernel, out)
    return hashlib.sha256("".join(out).encode("utf-8")).hexdigest()


def sanitizer_key(sanitizer):
    """Stable cache-key component for a SanitizerConfig (or None)."""
    if sanitizer is None:
        return "none"
    return "bounds={},races={},divergence={},nan={},deadline={},validate={}".format(
        sanitizer.bounds,
        sanitizer.races,
        sanitizer.divergence,
        sanitizer.nan_poison,
        sanitizer.deadline_ns,
        sanitizer.validate_every,
    )


class KernelCache:
    """Bounded LRU cache of :class:`CompiledKernel` artifacts."""

    def __init__(self, capacity=DEFAULT_CAPACITY):
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self):
        return len(self._entries)

    def get_or_compile(self, kernel, options="", sanitizer="", device=""):
        key = (kernel_fingerprint(kernel), options, sanitizer, device)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry, True
        self.misses += 1
        entry = CompiledKernel(kernel)
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry, False

    def clear(self):
        self._entries.clear()

    def stats(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }


_GLOBAL_CACHE = KernelCache()


def global_kernel_cache():
    return _GLOBAL_CACHE


def reset_global_cache():
    """Drop all entries and zero the counters (test isolation)."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = KernelCache()
    return _GLOBAL_CACHE


def cached_compile_kernel(
    kernel, options="", sanitizer="", device="", profile=None
):
    """Compile ``kernel`` through the global cache.

    ``profile`` (an :class:`repro.runtime.profiler.ExecutionProfile`)
    gets its per-run hit/miss counters bumped when provided, and its
    tracer records a "cache_lookup" span (wall time covers codegen on a
    miss) plus a hit/miss instant.
    """
    tracer = profile.tracer if profile is not None else NULL_TRACER
    with tracer.span("cache_lookup", cat="compile", kernel=kernel.name) as sp:
        compiled, hit = _GLOBAL_CACHE.get_or_compile(
            kernel, options=options, sanitizer=sanitizer, device=device
        )
        sp.set(hit=hit)
    tracer.instant(
        "cache_hit" if hit else "cache_miss", cat="compile", kernel=kernel.name
    )
    if profile is not None:
        profile.record_cache(hit)
    return compiled
