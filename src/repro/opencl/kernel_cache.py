"""Content-addressed compilation cache for kernel IR.

``compile_filter`` rebuilds kernel IR from scratch for every stream
task and every :class:`Offloader`, so without a cache the simulator
re-runs codegen (IR -> Python source -> ``exec``) for kernels it has
already compiled — across stream items, engine runs, and evaluation
sweeps. The cache keys compiled artifacts by *content*:

    (IR fingerprint, compiler options, sanitizer config, device)

- The **fingerprint** is a SHA-256 over a canonical serialization of
  the kernel IR (params, in-kernel arrays, statements, types). Site
  ids and the free-form ``meta`` dict are excluded: sites are
  derived deterministically from the structure, and ``meta`` is
  consumed by the host glue, not by codegen.
- **Options** (``OptimizationConfig.describe()``) are part of the key
  because memory-plan toggles change the IR *and* because a future
  option may change codegen without changing the IR.
- The **sanitizer config** is part of the key so that toggling
  ``--sanitize`` can never reuse an artifact compiled for a different
  instrumentation level (see ``tests/opencl/test_kernel_cache.py``).
- The **device** name is included because memory plans are
  device-shaped.

The cache is bounded (LRU) and module-global: hit/miss counts are
exposed both globally and per :class:`ExecutionProfile` via the
``profile`` argument of :func:`cached_compile_kernel`.

The LRU can additionally be backed by a content-addressed **on-disk
store** (:class:`DiskKernelStore`) keyed by the *same* tuple, so a
restarted process recompiles nothing: lookups miss the in-memory LRU,
load the pickled :meth:`CompiledKernel.artifact` from disk, and count
as ``cache.disk_hits`` (codegen never runs). Enable it with
:func:`configure_disk_store`, the ``REPRO_KERNEL_CACHE_DIR``
environment variable, or ``repro run --kernel-cache DIR`` (``--journal
DIR`` defaults it to ``DIR/kernels``). Artifacts are written with
:func:`repro.ioutil.atomic_write`; a torn or unpicklable artifact is a
cache miss, never an error.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import threading
from collections import OrderedDict

from repro.backend import kernel_ir as K
from repro.ioutil import atomic_write
from repro.opencl.executor import DISK_ARTIFACT_VERSION, CompiledKernel
from repro.runtime.tracing import NULL_TRACER

DEFAULT_CAPACITY = 128

KERNEL_CACHE_DIR_ENV = "REPRO_KERNEL_CACHE_DIR"

# Fields that do not affect the compiled artifact.
_SKIP_FIELDS = frozenset({"site", "meta"})


def _serialize(node, out):
    """Append a canonical token stream for ``node`` to ``out``."""
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        out.append(type(node).__name__)
        out.append("(")
        for f in dataclasses.fields(node):
            if f.name in _SKIP_FIELDS:
                continue
            out.append(f.name + "=")
            _serialize(getattr(node, f.name), out)
        out.append(")")
    elif isinstance(node, enum.Enum):
        out.append(type(node).__name__ + "." + node.name)
    elif isinstance(node, (list, tuple)):
        out.append("[")
        for item in node:
            _serialize(item, out)
            out.append(",")
        out.append("]")
    elif isinstance(node, float):
        # repr round-trips floats exactly (incl. -0.0 vs 0.0).
        out.append("f" + repr(node))
    elif isinstance(node, bool):
        out.append("b" + repr(node))
    elif isinstance(node, int):
        out.append("i" + repr(node))
    elif isinstance(node, str):
        out.append("s" + repr(node))
    elif node is None:
        out.append("~")
    else:
        raise TypeError(
            "cannot fingerprint {} in kernel IR".format(type(node).__name__)
        )


def kernel_fingerprint(kernel):
    """Deterministic SHA-256 hex digest of a kernel's compiled content."""
    out = []
    _serialize(kernel, out)
    return hashlib.sha256("".join(out).encode("utf-8")).hexdigest()


def sanitizer_key(sanitizer):
    """Stable cache-key component for a SanitizerConfig (or None)."""
    if sanitizer is None:
        return "none"
    return "bounds={},races={},divergence={},nan={},deadline={},validate={}".format(
        sanitizer.bounds,
        sanitizer.races,
        sanitizer.divergence,
        sanitizer.nan_poison,
        sanitizer.deadline_ns,
        sanitizer.validate_every,
    )


class DiskKernelStore:
    """Content-addressed on-disk store of pickled
    :meth:`CompiledKernel.artifact` snapshots.

    Filenames are the SHA-256 of the full cache key, so the same
    directory safely holds artifacts for every (options, sanitizer,
    device) combination. Writes go through
    :func:`repro.ioutil.atomic_write`; loads treat *any* failure —
    missing file, torn pickle, version or key mismatch — as a miss and
    count it in :attr:`corrupt` when the file existed but could not be
    trusted.
    """

    def __init__(self, root):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.loads = 0
        self.stores = 0
        self.corrupt = 0

    def _path(self, key):
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return os.path.join(self.root, digest + ".kpkl")

    def load(self, key):
        """The stored :class:`CompiledKernel` for ``key``, or None."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            self.corrupt += 1
            return None
        try:
            if payload.get("key") != list(key):
                raise ValueError("key mismatch")
            entry = CompiledKernel.from_artifact(payload["artifact"])
        except Exception:
            self.corrupt += 1
            return None
        self.loads += 1
        return entry

    def store(self, key, compiled):
        payload = {
            "version": DISK_ARTIFACT_VERSION,
            "key": list(key),
            "artifact": compiled.artifact(),
        }
        atomic_write(self._path(key), pickle.dumps(payload))
        self.stores += 1


_DISK_STORE = None
_DISK_STORE_CONFIGURED = False


def configure_disk_store(root):
    """Set (or with None, clear) the process-wide on-disk kernel store.

    Overrides the ``REPRO_KERNEL_CACHE_DIR`` environment variable.
    """
    global _DISK_STORE, _DISK_STORE_CONFIGURED
    if root is None:
        _DISK_STORE = None
        _DISK_STORE_CONFIGURED = False
    else:
        _DISK_STORE = DiskKernelStore(root)
        _DISK_STORE_CONFIGURED = True
    return _DISK_STORE


def active_disk_store():
    """The configured store, else one resolved from the environment."""
    global _DISK_STORE
    if _DISK_STORE_CONFIGURED:
        return _DISK_STORE
    env = os.environ.get(KERNEL_CACHE_DIR_ENV)
    if not env:
        return None
    if _DISK_STORE is None or os.fspath(_DISK_STORE.root) != env:
        _DISK_STORE = DiskKernelStore(env)
    return _DISK_STORE


class KernelCache:
    """Bounded LRU cache of :class:`CompiledKernel` artifacts."""

    def __init__(self, capacity=DEFAULT_CAPACITY):
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        # The cache is shared by every concurrent serving session; one
        # lock covers the LRU mutation *and* the compile-on-miss, so
        # two sessions missing on the same kernel serialize (the
        # second one hits) instead of compiling twice or corrupting
        # the OrderedDict.
        self._lock = threading.RLock()

    def __len__(self):
        return len(self._entries)

    def lookup(self, kernel, options="", sanitizer="", device="", store=None):
        """Resolve ``kernel`` to a compiled entry (thread-safe).

        Returns ``(entry, kind)`` where kind is ``"hit"`` (in-memory
        LRU), ``"disk"`` (loaded from ``store`` — no codegen ran), or
        ``"miss"`` (codegen ran; the result is saved to ``store`` when
        one is given).
        """
        key = (kernel_fingerprint(kernel), options, sanitizer, device)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry, "hit"
            kind = "miss"
            if store is not None:
                entry = store.load(key)
                if entry is not None:
                    kind = "disk"
                    self.disk_hits += 1
            if entry is None:
                self.misses += 1
                entry = CompiledKernel(kernel)
                if store is not None:
                    store.store(key, entry)
            self._entries[key] = entry
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return entry, kind

    def get_or_compile(self, kernel, options="", sanitizer="", device=""):
        """Legacy bool-returning lookup (no disk store): ``(entry,
        in_memory_hit)``."""
        entry, kind = self.lookup(
            kernel, options=options, sanitizer=sanitizer, device=device
        )
        return entry, kind == "hit"

    def clear(self):
        self._entries.clear()

    def stats(self):
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }


_GLOBAL_CACHE = KernelCache()


def global_kernel_cache():
    return _GLOBAL_CACHE


def reset_global_cache():
    """Drop all entries and zero the counters (test isolation)."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = KernelCache()
    return _GLOBAL_CACHE


def cached_compile_kernel(
    kernel, options="", sanitizer="", device="", profile=None
):
    """Compile ``kernel`` through the global cache.

    ``profile`` (an :class:`repro.runtime.profiler.ExecutionProfile`)
    gets its per-run hit/miss counters bumped when provided, and its
    tracer records a "cache_lookup" span (wall time covers codegen on a
    miss) plus a hit/miss instant.
    """
    tracer = profile.tracer if profile is not None else NULL_TRACER
    store = active_disk_store()
    with tracer.span("cache_lookup", cat="compile", kernel=kernel.name) as sp:
        compiled, kind = _GLOBAL_CACHE.lookup(
            kernel,
            options=options,
            sanitizer=sanitizer,
            device=device,
            store=store,
        )
        sp.set(hit=kind != "miss", kind=kind)
    tracer.instant(
        "cache_hit" if kind != "miss" else "cache_miss",
        cat="compile",
        kernel=kernel.name,
    )
    if profile is not None:
        profile.record_cache(kind)
    return compiled
