"""Device models for the simulated OpenCL platform.

The catalog reproduces Table 2 of the paper:

    Type  Model                  Cores  FP/core        Const  Local     Caches
    CPU   Intel Core i7-990X     6      4 (4 double)   -      -         6x64K L1, 6x256K L2, 12M L3
    GPU   NVidia GeForce GTX8800 16     8 single       64KB   16x16KB   -
    GPU   NVidia GeForce GTX580  16     32 (16 double) 64KB   16x48KB   16x16K L1, 768K L2
    GPU   AMD Radeon HD5970      20     80 single      64KB   20x32KB   -

plus the microarchitectural parameters the timing model needs (clocks,
bandwidths, warp widths, bank counts, cache behavior). Absolute numbers
follow public spec sheets; the derating factors (`compute_efficiency`)
absorb everything a cycle-accurate model would capture and are the
calibration knobs of this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceModel:
    """Parameters of one simulated OpenCL device."""

    name: str
    kind: str  # "gpu" or "cpu"

    # Table 2 columns.
    compute_units: int  # streaming multiprocessors / CPU cores
    fp_units_per_unit: int  # single-precision lanes per compute unit
    dp_throughput_ratio: float  # how much slower double is than single
    constant_memory_bytes: int
    local_memory_bytes: int  # per compute unit
    has_l1_cache: bool
    l2_cache_bytes: int

    # Microarchitecture.
    clock_ghz: float
    warp_width: int  # SIMT width (NVIDIA warp / AMD wavefront)
    local_memory_banks: int
    global_bandwidth_gbps: float  # GB/s
    global_latency_ns: float  # uncovered latency per transaction burst
    transaction_bytes: int  # coalescing segment size
    transcendental_cycles: float  # per op (SFU on GPUs)
    launch_overhead_ns: float  # fixed cost per kernel launch

    # Pre-Fermi NVIDIA coalescing: anything not dense serializes into
    # one transaction per lane. Later GPUs (and AMD's read path) relax
    # this to distinct-segments-per-event.
    strict_coalescing: bool = False

    # CPU-only knobs.
    smt_threads: int = 1
    simd_width: int = 1

    # Calibration: fraction of peak a well-written kernel achieves.
    compute_efficiency: float = 0.25
    # Effective bandwidth fraction of peak for perfectly coalesced access.
    bandwidth_efficiency: float = 0.70
    # L1/L2 service rate for cache hits, bytes per cycle per unit.
    cache_bytes_per_cycle: float = 32.0

    @property
    def peak_flops(self):
        """Peak single-precision operations per second."""
        return self.compute_units * self.fp_units_per_unit * self.clock_ghz * 1e9

    @property
    def default_local_size(self):
        return min(256, self.warp_width * 4) if self.kind == "gpu" else 16

    def with_cores(self, cores):
        """A copy restricted to ``cores`` compute units (Figure 7(a)'s
        1-core vs 6-core sweep)."""
        from dataclasses import replace

        return replace(self, compute_units=cores)


GTX8800 = DeviceModel(
    name="NVidia GeForce GTX 8800",
    kind="gpu",
    compute_units=16,
    fp_units_per_unit=8,
    dp_throughput_ratio=8.0,  # G80 has no native double support
    constant_memory_bytes=64 * 1024,
    local_memory_bytes=16 * 1024,
    has_l1_cache=False,
    l2_cache_bytes=0,
    clock_ghz=1.35,
    warp_width=32,
    local_memory_banks=16,
    global_bandwidth_gbps=86.4,
    global_latency_ns=400.0,
    transaction_bytes=64,  # pre-Fermi segments
    strict_coalescing=True,
    transcendental_cycles=4.0,
    launch_overhead_ns=3_000.0,
    compute_efficiency=0.20,
    bandwidth_efficiency=0.65,
)

GTX580 = DeviceModel(
    name="NVidia GeForce GTX 580",
    kind="gpu",
    compute_units=16,
    fp_units_per_unit=32,
    dp_throughput_ratio=2.5,  # paper: doubles run 2-3x slower
    constant_memory_bytes=64 * 1024,
    local_memory_bytes=48 * 1024,
    has_l1_cache=True,
    l2_cache_bytes=768 * 1024,
    clock_ghz=1.544,
    warp_width=32,
    local_memory_banks=32,
    global_bandwidth_gbps=192.4,
    global_latency_ns=350.0,
    transaction_bytes=128,
    transcendental_cycles=4.0,
    launch_overhead_ns=2_200.0,
    compute_efficiency=0.19,
    bandwidth_efficiency=0.75,
)

HD5970 = DeviceModel(
    name="AMD Radeon HD 5970",
    kind="gpu",
    compute_units=20,
    fp_units_per_unit=80,
    dp_throughput_ratio=1.5,  # paper: 1.5x slower doubles
    constant_memory_bytes=64 * 1024,
    local_memory_bytes=32 * 1024,
    has_l1_cache=False,
    l2_cache_bytes=0,
    clock_ghz=0.725,
    warp_width=64,
    local_memory_banks=32,
    global_bandwidth_gbps=256.0,
    global_latency_ns=450.0,
    transaction_bytes=128,
    transcendental_cycles=4.0,
    launch_overhead_ns=3_500.0,
    # VLIW5 packing makes peak hard to reach in practice.
    compute_efficiency=0.11,
    bandwidth_efficiency=0.60,
)

CORE_I7 = DeviceModel(
    name="Intel Core i7-990X",
    kind="cpu",
    compute_units=6,
    fp_units_per_unit=4,  # 4-wide SSE, single and double
    dp_throughput_ratio=1.0,
    constant_memory_bytes=64 * 1024,  # emulated in cached global memory
    local_memory_bytes=64 * 1024,  # L1-resident
    has_l1_cache=True,
    l2_cache_bytes=12 * 1024 * 1024,
    clock_ghz=3.46,
    warp_width=1,
    local_memory_banks=1,
    global_bandwidth_gbps=25.6,
    global_latency_ns=60.0,
    transaction_bytes=64,
    transcendental_cycles=3.0,  # libm beats java.lang.Math by an order
    launch_overhead_ns=900.0,
    smt_threads=2,
    simd_width=4,
    # Calibrated so that 1-core scalar OpenCL matches the JVM baseline
    # (the paper's Figure 7(a): "1-core performance is generally the
    # same as the baseline"): peak assumes 4-wide SIMD + FMA, scalar
    # load/sqrt-chained kernels reach a few percent of that.
    compute_efficiency=0.032,
    bandwidth_efficiency=0.80,
    cache_bytes_per_cycle=16.0,
)

DEVICES = {
    "gtx8800": GTX8800,
    "gtx580": GTX580,
    "hd5970": HD5970,
    "core-i7": CORE_I7,
}


def get_device(name):
    """Look up a device model by its short name (see :data:`DEVICES`)."""
    key = name.lower()
    if key not in DEVICES:
        raise KeyError(
            "unknown device '{}' (available: {})".format(
                name, ", ".join(sorted(DEVICES))
            )
        )
    return DEVICES[key]
