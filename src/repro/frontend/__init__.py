"""The Lime surface-language frontend.

The frontend implements the GPU-relevant subset of Lime described in the
paper: Java-style classes and methods extended with

- ``value`` array types with bounded dimensions (``float[[][4]]``),
- ``local`` methods (the isolation primitive),
- the ``task`` operator and ``=>`` (connect),
- ``@`` (map) and ``!`` (reduce) for fine-grained data parallelism.

The public entry points are :func:`repro.frontend.parser.parse_program`
and :func:`repro.frontend.typecheck.check_program`.
"""

from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse_program
from repro.frontend.typecheck import check_program

__all__ = ["tokenize", "parse_program", "check_program"]
