"""Recursive-descent parser for the Lime subset.

Grammar highlights beyond the Java-like core:

- Value array types use double brackets around the dimension list:
  ``float[[][4]]`` is an unbounded array of bounded-4 float value arrays.
- ``task Cls.m`` creates a task with a static worker (a filter candidate);
  ``task Cls(args).m`` creates a stateful task from an instance worker.
- ``a => b`` connects tasks into a graph (lowest precedence,
  left-associative).
- ``Cls.m(bound) @ src`` maps ``m`` over ``src``; the element binds to the
  first parameter, the bound arguments to the rest.
- ``+! src``, ``*! src`` and ``Cls.m ! src`` are reductions.

The parser is deliberately plain: a token cursor with one-token lookahead
plus bounded backtracking (used only to disambiguate declarations from
expression statements and casts from parenthesized expressions).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.lexer import tokenize
from repro.frontend.source import SourceFile
from repro.frontend.tokens import TokenKind as T
from repro.frontend.types import (
    ArrayType,
    ClassType,
    PRIMITIVES,
)

_PRIM_KEYWORDS = {
    T.KW_VOID: "void",
    T.KW_BOOLEAN: "boolean",
    T.KW_BYTE: "byte",
    T.KW_INT: "int",
    T.KW_LONG: "long",
    T.KW_FLOAT: "float",
    T.KW_DOUBLE: "double",
}

_ASSIGN_OPS = {
    T.ASSIGN: None,
    T.PLUS_ASSIGN: "+",
    T.MINUS_ASSIGN: "-",
    T.STAR_ASSIGN: "*",
    T.SLASH_ASSIGN: "/",
}


class Parser:
    def __init__(self, source, filename="<lime>"):
        if isinstance(source, str):
            source = SourceFile(source, filename)
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0

    # -- cursor helpers ----------------------------------------------------

    def peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def at(self, kind, offset=0):
        return self.peek(offset).kind is kind

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind is not T.EOF:
            self.pos += 1
        return token

    def expect(self, kind, what=None):
        token = self.peek()
        if token.kind is not kind:
            expected = what or kind.value
            raise ParseError(
                "expected {} but found {!r}".format(expected, token.text or "<eof>"),
                token.location,
            )
        return self.advance()

    def accept(self, kind):
        if self.at(kind):
            return self.advance()
        return None

    def _mark(self):
        return self.pos

    def _reset(self, mark):
        self.pos = mark

    # -- program structure --------------------------------------------------

    def parse_program(self):
        classes = []
        while not self.at(T.EOF):
            classes.append(self.parse_class())
        return ast.Program(classes)

    def parse_class(self):
        is_value = bool(self.accept(T.KW_VALUE))
        start = self.expect(T.KW_CLASS)
        name = self.expect(T.IDENT, "class name").text
        self.expect(T.LBRACE)
        fields, methods = [], []
        while not self.at(T.RBRACE):
            member = self.parse_member(name)
            if isinstance(member, ast.MethodDecl):
                methods.append(member)
            else:
                fields.append(member)
        self.expect(T.RBRACE)
        return ast.ClassDecl(
            name=name,
            is_value=is_value,
            fields=fields,
            methods=methods,
            location=start.location,
        )

    def parse_member(self, owner):
        start = self.peek()
        is_static = is_final = is_local = False
        while True:
            if self.accept(T.KW_STATIC):
                is_static = True
            elif self.accept(T.KW_FINAL):
                is_final = True
            elif self.accept(T.KW_LOCAL):
                is_local = True
            else:
                break
        member_type = self.parse_type()
        if (
            isinstance(member_type, ClassType)
            and member_type.name == owner
            and self.at(T.LPAREN)
        ):
            # Constructor: `Owner(params) { ... }`.
            if is_static or is_final:
                raise ParseError(
                    "constructors may not be static or final", start.location
                )
            params = self.parse_params()
            body = self.parse_block()
            return ast.MethodDecl(
                name="<init>",
                params=params,
                return_type=PRIMITIVES["void"],
                is_static=False,
                is_local=is_local,
                body=body,
                location=start.location,
                owner=owner,
            )
        name = self.expect(T.IDENT, "member name").text
        if self.at(T.LPAREN):
            params = self.parse_params()
            body = self.parse_block()
            return ast.MethodDecl(
                name=name,
                params=params,
                return_type=member_type,
                is_static=is_static,
                is_local=is_local,
                body=body,
                location=start.location,
                owner=owner,
            )
        if is_local:
            raise ParseError("'local' applies only to methods", start.location)
        init = None
        if self.accept(T.ASSIGN):
            init = self.parse_expr()
        self.expect(T.SEMI)
        return ast.FieldDecl(
            name=name,
            type=member_type,
            is_static=is_static,
            is_final=is_final,
            init=init,
            location=start.location,
            owner=owner,
        )

    def parse_params(self):
        self.expect(T.LPAREN)
        params = []
        if not self.at(T.RPAREN):
            while True:
                param_type = self.parse_type()
                token = self.expect(T.IDENT, "parameter name")
                params.append(
                    ast.Param(name=token.text, type=param_type, location=token.location)
                )
                if not self.accept(T.COMMA):
                    break
        self.expect(T.RPAREN)
        return params

    # -- types ---------------------------------------------------------------

    def parse_type(self):
        token = self.peek()
        if token.kind in _PRIM_KEYWORDS:
            self.advance()
            base = PRIMITIVES[_PRIM_KEYWORDS[token.kind]]
        elif token.kind is T.IDENT:
            self.advance()
            base = ClassType(token.value)
        else:
            raise ParseError(
                "expected a type but found {!r}".format(token.text or "<eof>"),
                token.location,
            )
        return self._parse_array_suffix(base)

    def _parse_array_suffix(self, base):
        dims = []  # (bound, is_value) outermost first
        while self.at(T.LBRACKET):
            if self.at(T.RBRACKET, 1):
                self.advance()
                self.advance()
                dims.append((None, False))
            elif self.at(T.LBRACKET, 1):
                # Value array group: [[dim][dim]...].
                self.advance()
                group = self._parse_value_dims()
                dims.extend((bound, True) for bound in group)
                break
            else:
                token = self.peek(1)
                raise ParseError(
                    "mutable array dimensions may not carry bounds "
                    "(use a value array like float[[4]])",
                    token.location,
                )
        result = base
        for bound, is_value in reversed(dims):
            result = ArrayType(result, bound=bound, value=is_value)
        return result

    def _parse_value_dims(self):
        """Parse ``[...][...]...]`` after the opening ``[`` of a value
        group: one or more dims each ``[]`` or ``[INT]``, then the closing
        ``]`` of the group."""
        bounds = []
        while True:
            self.expect(T.LBRACKET)
            if self.at(T.INT_LITERAL):
                bounds.append(self.advance().value)
            else:
                bounds.append(None)
            self.expect(T.RBRACKET)
            if self.accept(T.RBRACKET):
                return bounds
            if not self.at(T.LBRACKET):
                raise ParseError(
                    "malformed value array type", self.peek().location
                )

    def _looks_like_type(self):
        """Speculatively check whether a type can be parsed at the cursor
        followed by an identifier — the declaration-statement test."""
        mark = self._mark()
        try:
            self.parse_type()
            ok = self.at(T.IDENT)
        except ParseError:
            ok = False
        self._reset(mark)
        return ok

    # -- statements -----------------------------------------------------------

    def parse_block(self):
        start = self.expect(T.LBRACE)
        stmts = []
        while not self.at(T.RBRACE):
            stmts.append(self.parse_stmt())
        self.expect(T.RBRACE)
        return ast.Block(stmts=stmts, location=start.location)

    def parse_stmt(self):
        token = self.peek()
        kind = token.kind
        if kind is T.LBRACE:
            return self.parse_block()
        if kind is T.KW_IF:
            return self.parse_if()
        if kind is T.KW_WHILE:
            return self.parse_while()
        if kind is T.KW_FOR:
            return self.parse_for()
        if kind is T.KW_RETURN:
            self.advance()
            value = None if self.at(T.SEMI) else self.parse_expr()
            self.expect(T.SEMI)
            return ast.Return(value=value, location=token.location)
        if kind is T.KW_BREAK:
            self.advance()
            self.expect(T.SEMI)
            return ast.Break(location=token.location)
        if kind is T.KW_CONTINUE:
            self.advance()
            self.expect(T.SEMI)
            return ast.Continue(location=token.location)
        if kind is T.KW_THROW:
            self.advance()
            expr = self.parse_expr()
            self.expect(T.SEMI)
            return ast.Throw(expr=expr, location=token.location)
        if kind is T.SEMI:
            self.advance()
            return ast.Block(stmts=[], location=token.location)
        stmt = self.parse_simple_stmt()
        self.expect(T.SEMI)
        return stmt

    def parse_if(self):
        start = self.expect(T.KW_IF)
        self.expect(T.LPAREN)
        cond = self.parse_expr()
        self.expect(T.RPAREN)
        then = self.parse_stmt()
        otherwise = None
        if self.accept(T.KW_ELSE):
            otherwise = self.parse_stmt()
        return ast.If(cond=cond, then=then, otherwise=otherwise, location=start.location)

    def parse_while(self):
        start = self.expect(T.KW_WHILE)
        self.expect(T.LPAREN)
        cond = self.parse_expr()
        self.expect(T.RPAREN)
        body = self.parse_stmt()
        return ast.While(cond=cond, body=body, location=start.location)

    def parse_for(self):
        start = self.expect(T.KW_FOR)
        self.expect(T.LPAREN)
        init = None if self.at(T.SEMI) else self.parse_simple_stmt()
        self.expect(T.SEMI)
        cond = None if self.at(T.SEMI) else self.parse_expr()
        self.expect(T.SEMI)
        update = None if self.at(T.RPAREN) else self.parse_simple_stmt()
        self.expect(T.RPAREN)
        body = self.parse_stmt()
        return ast.For(
            init=init, cond=cond, update=update, body=body, location=start.location
        )

    def parse_simple_stmt(self):
        """A declaration, assignment, increment, or expression — the forms
        allowed without trailing ``;`` (shared with for-headers)."""
        token = self.peek()
        if token.kind is T.KW_VAR:
            self.advance()
            name = self.expect(T.IDENT, "variable name").text
            self.expect(T.ASSIGN)
            init = self.parse_expr()
            return ast.VarDecl(
                name=name, declared_type=None, init=init, location=token.location
            )
        if token.kind in _PRIM_KEYWORDS or (
            token.kind is T.IDENT and self._looks_like_type()
        ):
            decl_type = self.parse_type()
            name = self.expect(T.IDENT, "variable name").text
            init = None
            if self.accept(T.ASSIGN):
                init = self.parse_expr()
            return ast.VarDecl(
                name=name, declared_type=decl_type, init=init, location=token.location
            )
        expr = self.parse_expr()
        assign = self.peek()
        if assign.kind in _ASSIGN_OPS:
            self.advance()
            value = self.parse_expr()
            return ast.Assign(
                target=expr,
                op=_ASSIGN_OPS[assign.kind],
                value=value,
                location=assign.location,
            )
        if assign.kind in (T.PLUS_PLUS, T.MINUS_MINUS):
            self.advance()
            op = "+" if assign.kind is T.PLUS_PLUS else "-"
            one = ast.IntLit(location=assign.location, value=1)
            return ast.Assign(
                target=expr, op=op, value=one, location=assign.location
            )
        return ast.ExprStmt(expr=expr, location=token.location)

    # -- expressions ------------------------------------------------------------
    #
    # Precedence, lowest first:
    #   connect (=>)  map (@)  reduce  ternary  ||  &&  |  ^  &  == !=
    #   < > <= >=  << >> >>>  + -  * / %  unary  postfix

    def parse_expr(self):
        return self.parse_connect()

    def parse_connect(self):
        left = self.parse_map()
        while self.at(T.CONNECT):
            token = self.advance()
            right = self.parse_map()
            node = ast.ConnectExpr(location=token.location, left=left, right=right)
            left = node
        return left

    def parse_map(self):
        # Reduction with an operator combinator: `+! src`, `*! src`.
        if self.peek().kind in (T.PLUS, T.STAR) and self.at(T.BANG, 1):
            op_token = self.advance()
            self.advance()  # the bang
            source = self.parse_map()
            return ast.ReduceExpr(
                location=op_token.location,
                op=op_token.text,
                func=None,
                source=source,
            )
        left = self.parse_ternary()
        if self.at(T.AT):
            token = self.advance()
            source = self.parse_map()
            func, bound = self._as_method_ref(left, token.location)
            return ast.MapExpr(
                location=token.location, func=func, bound_args=bound, source=source
            )
        if self.at(T.BANG):
            token = self.advance()
            source = self.parse_map()
            func, bound = self._as_method_ref(left, token.location)
            if bound:
                raise ParseError(
                    "a reduction combinator takes no bound arguments",
                    token.location,
                )
            return ast.ReduceExpr(
                location=token.location, op=None, func=func, source=source
            )
        return left

    def _as_method_ref(self, expr, location):
        """Reinterpret the expression left of ``@``/``!`` as a method
        reference with optional bound arguments."""
        if isinstance(expr, ast.Call) and isinstance(expr.receiver, ast.Name):
            ref = ast.MethodRef(
                location=expr.location,
                class_name=expr.receiver.name,
                method_name=expr.name,
            )
            return ref, expr.args
        if isinstance(expr, ast.FieldAccess) and isinstance(expr.receiver, ast.Name):
            ref = ast.MethodRef(
                location=expr.location,
                class_name=expr.receiver.name,
                method_name=expr.name,
            )
            return ref, []
        raise ParseError(
            "the left operand of '@'/'!' must be a method reference like "
            "Cls.m or a partial application like Cls.m(args)",
            location,
        )

    def parse_ternary(self):
        cond = self.parse_or()
        if self.accept(T.QUESTION):
            then = self.parse_ternary()
            self.expect(T.COLON)
            otherwise = self.parse_ternary()
            node = ast.Ternary(
                location=cond.location, cond=cond, then=then, otherwise=otherwise
            )
            return node
        return cond

    def _binary_level(self, kinds, next_level):
        left = next_level()
        while self.peek().kind in kinds:
            token = self.advance()
            right = next_level()
            left = ast.Binary(
                location=token.location, op=token.text, left=left, right=right
            )
        return left

    def parse_or(self):
        return self._binary_level({T.OR_OR}, self.parse_and)

    def parse_and(self):
        return self._binary_level({T.AND_AND}, self.parse_bitor)

    def parse_bitor(self):
        return self._binary_level({T.PIPE}, self.parse_bitxor)

    def parse_bitxor(self):
        return self._binary_level({T.CARET}, self.parse_bitand)

    def parse_bitand(self):
        return self._binary_level({T.AMP}, self.parse_equality)

    def parse_equality(self):
        return self._binary_level({T.EQ, T.NE}, self.parse_relational)

    def parse_relational(self):
        return self._binary_level({T.LT, T.GT, T.LE, T.GE}, self.parse_shift)

    def parse_shift(self):
        return self._binary_level({T.SHL, T.SHR, T.USHR}, self.parse_additive)

    def parse_additive(self):
        return self._binary_level({T.PLUS, T.MINUS}, self.parse_multiplicative)

    def parse_multiplicative(self):
        return self._binary_level({T.STAR, T.SLASH, T.PERCENT}, self.parse_unary)

    def parse_unary(self):
        token = self.peek()
        if token.kind is T.MINUS:
            self.advance()
            return ast.Unary(
                location=token.location, op="-", operand=self.parse_unary()
            )
        if token.kind is T.BANG:
            self.advance()
            return ast.Unary(
                location=token.location, op="!", operand=self.parse_unary()
            )
        if token.kind is T.TILDE:
            self.advance()
            return ast.Unary(
                location=token.location, op="~", operand=self.parse_unary()
            )
        if token.kind is T.LPAREN and self._looks_like_cast():
            self.advance()
            target = self.parse_type()
            self.expect(T.RPAREN)
            expr = self.parse_unary()
            return ast.Cast(location=token.location, target=target, expr=expr)
        return self.parse_postfix()

    def _looks_like_cast(self):
        """Distinguish ``(float) x`` and ``(float[[]]) x`` from ``(a + b)``.

        A cast when the parenthesized content is a primitive type, or an
        identifier followed by ``[`` (an array type) or by ``)`` and then a
        token that must start a unary expression and is not an operator
        continuation.
        """
        first = self.peek(1)
        if first.kind in _PRIM_KEYWORDS:
            return True
        if first.kind is not T.IDENT:
            return False
        second = self.peek(2)
        if second.kind is T.LBRACKET:
            # `(Foo[...]...) x` — always a cast; `(arr[i])` would put the
            # bracket inside the parens only after a full postfix parse,
            # and `(arr[i] + 1)` is ruled out by requiring the matching
            # `)` via a speculative type parse.
            mark = self._mark()
            self.advance()  # (
            try:
                self.parse_type()
                ok = self.at(T.RPAREN)
            except ParseError:
                ok = False
            self._reset(mark)
            return ok
        if second.kind is T.RPAREN:
            after = self.peek(3)
            return after.kind in (
                T.IDENT,
                T.INT_LITERAL,
                T.LONG_LITERAL,
                T.FLOAT_LITERAL,
                T.DOUBLE_LITERAL,
                T.LPAREN,
                T.KW_NEW,
            )
        return False

    def parse_postfix(self):
        expr = self.parse_primary()
        if isinstance(expr, ast.Name) and self.at(T.LPAREN):
            # Unqualified call within the enclosing class: `helper(x)`.
            args = self.parse_args()
            expr = ast.Call(
                location=expr.location, receiver=None, name=expr.name, args=args
            )
        while True:
            token = self.peek()
            if token.kind is T.LBRACKET:
                self.advance()
                index = self.parse_expr()
                self.expect(T.RBRACKET)
                expr = ast.Index(location=token.location, array=expr, index=index)
            elif token.kind is T.DOT:
                self.advance()
                name = self.expect(T.IDENT, "member name").text
                if self.at(T.LPAREN):
                    args = self.parse_args()
                    expr = ast.Call(
                        location=token.location,
                        receiver=expr,
                        name=name,
                        args=args,
                    )
                else:
                    expr = ast.FieldAccess(
                        location=token.location, receiver=expr, name=name
                    )
            else:
                return expr

    def parse_args(self):
        self.expect(T.LPAREN)
        args = []
        if not self.at(T.RPAREN):
            while True:
                args.append(self.parse_expr())
                if not self.accept(T.COMMA):
                    break
        self.expect(T.RPAREN)
        return args

    def parse_primary(self):
        token = self.peek()
        kind = token.kind
        if kind is T.INT_LITERAL:
            self.advance()
            return ast.IntLit(location=token.location, value=token.value)
        if kind is T.LONG_LITERAL:
            self.advance()
            return ast.LongLit(location=token.location, value=token.value)
        if kind is T.FLOAT_LITERAL:
            self.advance()
            return ast.FloatLit(location=token.location, value=token.value)
        if kind is T.DOUBLE_LITERAL:
            self.advance()
            return ast.DoubleLit(location=token.location, value=token.value)
        if kind is T.CHAR_LITERAL:
            self.advance()
            return ast.IntLit(location=token.location, value=token.value)
        if kind is T.STRING_LITERAL:
            self.advance()
            return ast.StringLit(location=token.location, value=token.value)
        if kind is T.KW_TRUE:
            self.advance()
            return ast.BoolLit(location=token.location, value=True)
        if kind is T.KW_FALSE:
            self.advance()
            return ast.BoolLit(location=token.location, value=False)
        if kind is T.KW_NULL:
            self.advance()
            return ast.NullLit(location=token.location)
        if kind is T.IDENT:
            self.advance()
            return ast.Name(location=token.location, name=token.value)
        if kind is T.LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(T.RPAREN)
            return expr
        if kind is T.KW_NEW:
            return self.parse_new()
        if kind is T.KW_TASK:
            return self.parse_task()
        raise ParseError(
            "expected an expression but found {!r}".format(token.text or "<eof>"),
            token.location,
        )

    def parse_new(self):
        start = self.expect(T.KW_NEW)
        token = self.peek()
        if token.kind in _PRIM_KEYWORDS:
            self.advance()
            elem = PRIMITIVES[_PRIM_KEYWORDS[token.kind]]
            return self._parse_new_array(start, elem)
        name = self.expect(T.IDENT, "type name").text
        if self.at(T.LBRACKET):
            return self._parse_new_array(start, ClassType(name))
        args = self.parse_args()
        return ast.New(location=start.location, class_name=name, args=args)

    def _parse_new_array(self, start, elem):
        dims = []
        saw_empty = False
        while self.at(T.LBRACKET):
            self.advance()
            if self.at(T.RBRACKET):
                self.advance()
                dims.append(None)
                saw_empty = True
            else:
                if saw_empty:
                    raise ParseError(
                        "cannot specify a dimension after an empty one",
                        self.peek().location,
                    )
                dims.append(self.parse_expr())
                self.expect(T.RBRACKET)
        if self.at(T.LBRACE):
            if len(dims) != 1 or dims[0] is not None:
                raise ParseError(
                    "array initializers require a single empty dimension "
                    "like new int[] { ... }",
                    self.peek().location,
                )
            self.advance()
            values = []
            if not self.at(T.RBRACE):
                while True:
                    values.append(self.parse_expr())
                    if not self.accept(T.COMMA):
                        break
            self.expect(T.RBRACE)
            return ast.ArrayInit(location=start.location, elem=elem, values=values)
        if not dims or dims[0] is None:
            raise ParseError(
                "array creation requires at least one sized dimension",
                start.location,
            )
        return ast.NewArray(location=start.location, elem=elem, dims=dims)

    def parse_task(self):
        start = self.expect(T.KW_TASK)
        class_name = self.expect(T.IDENT, "class name").text
        ctor_args = None
        if self.at(T.LPAREN):
            ctor_args = self.parse_args()
        self.expect(T.DOT)
        method_name = self.expect(T.IDENT, "worker method name").text
        worker_args = None
        if ctor_args is None and self.at(T.LPAREN):
            # Partially applied static worker: task Cls.m(args).
            worker_args = self.parse_args()
        return ast.TaskExpr(
            location=start.location,
            class_name=class_name,
            method_name=method_name,
            ctor_args=ctor_args,
            worker_args=worker_args,
        )


def parse_program(source, filename="<lime>"):
    """Parse Lime source text into an (untyped) :class:`repro.frontend.ast.Program`."""
    return Parser(source, filename).parse_program()


def parse_expression(source, filename="<lime-expr>"):
    """Parse a single Lime expression (used heavily by tests)."""
    parser = Parser(source, filename)
    expr = parser.parse_expr()
    parser.expect(T.EOF)
    return expr
