"""Pretty-printer for Lime ASTs.

Renders a parsed (or constructed) program back to surface syntax. Used
by diagnostics and tooling, and — through the round-trip property tests
— as a consistency check on the parser: ``parse(print(parse(s)))``
must equal ``parse(s)`` structurally.
"""

from __future__ import annotations

from repro.frontend import ast
from repro.frontend.types import ArrayType

_INDENT = "    "


def print_program(program):
    return "\n\n".join(print_class(cls) for cls in program.classes) + "\n"


def print_class(cls):
    lines = []
    prefix = "value " if cls.is_value else ""
    lines.append("{}class {} {{".format(prefix, cls.name))
    for fld in cls.fields:
        lines.append(_INDENT + _field(fld))
    if cls.fields and cls.methods:
        lines.append("")
    for index, method in enumerate(cls.methods):
        if index:
            lines.append("")
        lines.extend(_method(method))
    lines.append("}")
    return "\n".join(lines)


def _field(fld):
    parts = []
    if fld.is_static:
        parts.append("static")
    if fld.is_final:
        parts.append("final")
    parts.append(type_text(fld.type))
    parts.append(fld.name)
    text = " ".join(parts)
    if fld.init is not None:
        text += " = " + expr_text(fld.init)
    return text + ";"


def _method(method):
    parts = []
    if method.is_static:
        parts.append("static")
    if method.is_local:
        parts.append("local")
    if method.name == "<init>":
        signature = "{}({})".format(method.owner, _params(method))
    else:
        parts.append(type_text(method.return_type))
        signature = "{}({})".format(method.name, _params(method))
    header = _INDENT + " ".join(parts + [signature]) + " {"
    lines = [header]
    for stmt in method.body.stmts:
        lines.extend(stmt_lines(stmt, 2))
    lines.append(_INDENT + "}")
    return lines


def _params(method):
    return ", ".join(
        "{} {}".format(type_text(p.type), p.name) for p in method.params
    )


def type_text(t):
    """Render a type in surface syntax (value arrays with double
    brackets, as the paper writes them)."""
    if isinstance(t, ArrayType):
        dims = []
        node = t
        while isinstance(node, ArrayType):
            dims.append(node.bound)
            node = node.elem
        base = type_text(node)
        if t.value:
            inner = "".join(
                "[{}]".format("" if bound is None else bound) for bound in dims
            )
            return "{}[{}]".format(base, inner)
        return base + "[]" * len(dims)
    return str(t)


# -- statements -----------------------------------------------------------------


def stmt_lines(stmt, depth):
    pad = _INDENT * depth
    if isinstance(stmt, ast.Block):
        lines = [pad + "{"]
        for child in stmt.stmts:
            lines.extend(stmt_lines(child, depth + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.VarDecl):
        if stmt.declared_type is None:
            text = "var {} = {};".format(stmt.name, expr_text(stmt.init))
        elif stmt.init is None:
            text = "{} {};".format(type_text(stmt.declared_type), stmt.name)
        else:
            text = "{} {} = {};".format(
                type_text(stmt.declared_type), stmt.name, expr_text(stmt.init)
            )
        return [pad + text]
    if isinstance(stmt, ast.ExprStmt):
        return [pad + expr_text(stmt.expr) + ";"]
    if isinstance(stmt, ast.Assign):
        op = (stmt.op or "") + "="
        return [
            pad
            + "{} {} {};".format(expr_text(stmt.target), op, expr_text(stmt.value))
        ]
    if isinstance(stmt, ast.If):
        lines = [pad + "if ({})".format(expr_text(stmt.cond)) + " {"]
        lines.extend(_body_lines(stmt.then, depth))
        if stmt.otherwise is not None:
            lines.append(pad + "} else {")
            lines.extend(_body_lines(stmt.otherwise, depth))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.While):
        lines = [pad + "while ({})".format(expr_text(stmt.cond)) + " {"]
        lines.extend(_body_lines(stmt.body, depth))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.For):
        init = _inline_stmt(stmt.init)
        cond = expr_text(stmt.cond) if stmt.cond is not None else ""
        update = _inline_stmt(stmt.update)
        lines = [pad + "for ({}; {}; {})".format(init, cond, update) + " {"]
        lines.extend(_body_lines(stmt.body, depth))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [pad + "return;"]
        return [pad + "return {};".format(expr_text(stmt.value))]
    if isinstance(stmt, ast.Break):
        return [pad + "break;"]
    if isinstance(stmt, ast.Continue):
        return [pad + "continue;"]
    if isinstance(stmt, ast.Throw):
        return [pad + "throw {};".format(expr_text(stmt.expr))]
    raise TypeError("cannot print {}".format(type(stmt).__name__))


def _body_lines(stmt, depth):
    if isinstance(stmt, ast.Block):
        lines = []
        for child in stmt.stmts:
            lines.extend(stmt_lines(child, depth + 1))
        return lines
    return stmt_lines(stmt, depth + 1)


def _inline_stmt(stmt):
    if stmt is None:
        return ""
    lines = stmt_lines(stmt, 0)
    return lines[0].rstrip(";")


# -- expressions -----------------------------------------------------------------


def expr_text(expr):
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.LongLit):
        return "{}L".format(expr.value)
    if isinstance(expr, ast.FloatLit):
        return "{}f".format(_float_text(expr.value))
    if isinstance(expr, ast.DoubleLit):
        return _float_text(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.StringLit):
        return '"{}"'.format(
            expr.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
    if isinstance(expr, ast.Name):
        return expr.name
    if isinstance(expr, ast.Unary):
        return "{}{}".format(expr.op, _wrap(expr.operand))
    if isinstance(expr, ast.Binary):
        return "{} {} {}".format(_wrap(expr.left), expr.op, _wrap(expr.right))
    if isinstance(expr, ast.Ternary):
        return "{} ? {} : {}".format(
            _wrap(expr.cond), _wrap(expr.then), _wrap(expr.otherwise)
        )
    if isinstance(expr, ast.Cast):
        return "({}) {}".format(type_text(expr.target), _wrap(expr.expr))
    if isinstance(expr, ast.Index):
        return "{}[{}]".format(_wrap(expr.array), expr_text(expr.index))
    if isinstance(expr, ast.FieldAccess):
        return "{}.{}".format(_wrap(expr.receiver), expr.name)
    if isinstance(expr, ast.Call):
        args = ", ".join(expr_text(a) for a in expr.args)
        if expr.receiver is None:
            return "{}({})".format(expr.name, args)
        return "{}.{}({})".format(_wrap(expr.receiver), expr.name, args)
    if isinstance(expr, ast.New):
        return "new {}({})".format(
            expr.class_name, ", ".join(expr_text(a) for a in expr.args)
        )
    if isinstance(expr, ast.NewArray):
        dims = "".join(
            "[{}]".format("" if d is None else expr_text(d)) for d in expr.dims
        )
        return "new {}{}".format(type_text(expr.elem), dims)
    if isinstance(expr, ast.ArrayInit):
        return "new {}[] {{ {} }}".format(
            type_text(expr.elem), ", ".join(expr_text(v) for v in expr.values)
        )
    if isinstance(expr, ast.MethodRef):
        return "{}.{}".format(expr.class_name, expr.method_name)
    if isinstance(expr, ast.MapExpr):
        func = "{}.{}".format(expr.func.class_name, expr.func.method_name)
        if expr.bound_args:
            func += "({})".format(
                ", ".join(expr_text(a) for a in expr.bound_args)
            )
        return "{} @ {}".format(func, _wrap(expr.source))
    if isinstance(expr, ast.ReduceExpr):
        if expr.op is not None:
            head = expr.op
        else:
            head = "{}.{}".format(expr.func.class_name, expr.func.method_name)
            head += " "
        return "{}! {}".format(head, _wrap(expr.source))
    if isinstance(expr, ast.TaskExpr):
        if expr.ctor_args is not None:
            return "task {}({}).{}".format(
                expr.class_name,
                ", ".join(expr_text(a) for a in expr.ctor_args),
                expr.method_name,
            )
        text = "task {}.{}".format(expr.class_name, expr.method_name)
        if expr.worker_args is not None:
            text += "({})".format(
                ", ".join(expr_text(a) for a in expr.worker_args)
            )
        return text
    if isinstance(expr, ast.ConnectExpr):
        return "{} => {}".format(_wrap(expr.left), _wrap(expr.right))
    raise TypeError("cannot print {}".format(type(expr).__name__))


def _float_text(value):
    text = repr(float(value))
    return text


_ATOMS = (
    ast.IntLit,
    ast.LongLit,
    ast.FloatLit,
    ast.DoubleLit,
    ast.BoolLit,
    ast.StringLit,
    ast.Name,
    ast.Call,
    ast.Index,
    ast.FieldAccess,
    ast.New,
    ast.ArrayInit,
)


def _wrap(expr):
    """Parenthesize anything that is not syntactically atomic; produces
    more parens than strictly needed but guarantees re-parse fidelity."""
    if isinstance(expr, _ATOMS):
        return expr_text(expr)
    return "({})".format(expr_text(expr))
