"""Source text handling: locations, spans and snippet rendering.

Both the Lime frontend and the OpenCL-C frontend attach a
:class:`Location` to every token and AST node so that diagnostics across
the whole toolchain read uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Location:
    """A point in a source file (1-based line and column)."""

    filename: str
    line: int
    column: int

    def __str__(self):
        return "{}:{}:{}".format(self.filename, self.line, self.column)


@dataclass(frozen=True)
class Span:
    """A contiguous region of source text, from ``start`` to ``end``."""

    start: Location
    end: Location

    def __str__(self):
        return str(self.start)


class SourceFile:
    """A named piece of source text with line-oriented access.

    Used by the lexers to map offsets to :class:`Location` objects and by
    diagnostic rendering to show the offending line.
    """

    def __init__(self, text, filename="<lime>"):
        self.text = text
        self.filename = filename
        self._line_starts = self._compute_line_starts(text)

    @staticmethod
    def _compute_line_starts(text):
        starts = [0]
        for index, char in enumerate(text):
            if char == "\n":
                starts.append(index + 1)
        return starts

    def location(self, offset):
        """Return the :class:`Location` of a character ``offset``."""
        if offset < 0 or offset > len(self.text):
            raise ValueError("offset {} out of range".format(offset))
        line = self._bisect_line(offset)
        column = offset - self._line_starts[line] + 1
        return Location(self.filename, line + 1, column)

    def _bisect_line(self, offset):
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def line_text(self, line):
        """Return the text of a 1-based ``line`` without its newline."""
        if line < 1 or line > len(self._line_starts):
            raise ValueError("line {} out of range".format(line))
        start = self._line_starts[line - 1]
        if line == len(self._line_starts):
            end = len(self.text)
        else:
            end = self._line_starts[line] - 1
        return self.text[start:end]

    def snippet(self, location, marker="^"):
        """Render a two-line caret snippet for ``location``."""
        line_text = self.line_text(location.line)
        caret = " " * (location.column - 1) + marker
        return "{}\n{}".format(line_text, caret)
