"""The Lime type system.

The paper's central claim is that two type-system properties — *deep
immutability* (``value`` types) and *isolation* (``local`` methods) — give
the compiler the invariants it needs to generate good GPU code without
heroic analysis. This module defines the type objects those properties
hang off of:

- :class:`PrimType` — Java primitive types (always values).
- :class:`ArrayType` — arrays, with two Lime extensions: a dimension may
  carry a static *bound* (``float[[][4]]`` has an inner bound of 4), and
  the array may be a *value* array (deeply immutable, spelled with double
  brackets).
- :class:`ClassType` — reference types (host-only in this subset).
- :class:`TaskType` / :class:`TaskGraphType` — the types of ``task``
  expressions and ``=>`` compositions.

Helpers at the bottom implement Java-style widening/assignability and the
value-ness predicate the kernel identifier relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class PrimKind(enum.Enum):
    VOID = "void"
    BOOLEAN = "boolean"
    BYTE = "byte"
    INT = "int"
    LONG = "long"
    FLOAT = "float"
    DOUBLE = "double"


class Type:
    """Base class for all Lime types."""

    def is_value(self):
        """True when the type is deeply immutable."""
        raise NotImplementedError

    def __str__(self):
        raise NotImplementedError


@dataclass(frozen=True)
class PrimType(Type):
    kind: PrimKind

    def is_value(self):
        return True

    @property
    def is_numeric(self):
        return self.kind in _NUMERIC_KINDS

    @property
    def is_integral(self):
        return self.kind in (
            PrimKind.BYTE,
            PrimKind.INT,
            PrimKind.LONG,
        )

    @property
    def is_floating(self):
        return self.kind in (PrimKind.FLOAT, PrimKind.DOUBLE)

    def __str__(self):
        return self.kind.value


_NUMERIC_KINDS = frozenset(
    {PrimKind.BYTE, PrimKind.INT, PrimKind.LONG, PrimKind.FLOAT, PrimKind.DOUBLE}
)

VOID = PrimType(PrimKind.VOID)
BOOLEAN = PrimType(PrimKind.BOOLEAN)
BYTE = PrimType(PrimKind.BYTE)
INT = PrimType(PrimKind.INT)
LONG = PrimType(PrimKind.LONG)
FLOAT = PrimType(PrimKind.FLOAT)
DOUBLE = PrimType(PrimKind.DOUBLE)

PRIMITIVES = {
    "void": VOID,
    "boolean": BOOLEAN,
    "byte": BYTE,
    "int": INT,
    "long": LONG,
    "float": FLOAT,
    "double": DOUBLE,
}


@dataclass(frozen=True)
class ArrayType(Type):
    """An array type.

    ``bound`` is the static size of this (outermost) dimension, or ``None``
    when unbounded. ``value`` marks a Lime value array: deeply immutable,
    spelled with double brackets in the surface syntax. Value-ness is a
    whole-array property: ``float[[][4]]`` parses to
    ``ArrayType(ArrayType(FLOAT, bound=4, value=True), bound=None,
    value=True)``.
    """

    elem: Type
    bound: Optional[int] = None
    value: bool = False

    def is_value(self):
        return self.value and self.elem.is_value()

    @property
    def rank(self):
        """Number of array dimensions."""
        depth, t = 0, self
        while isinstance(t, ArrayType):
            depth += 1
            t = t.elem
        return depth

    @property
    def base_elem(self):
        """The non-array element type at the bottom of the nesting."""
        t = self
        while isinstance(t, ArrayType):
            t = t.elem
        return t

    def dims(self):
        """Return the tuple of per-dimension bounds, outermost first."""
        bounds, t = [], self
        while isinstance(t, ArrayType):
            bounds.append(t.bound)
            t = t.elem
        return tuple(bounds)

    def __str__(self):
        dims, t = [], self
        while isinstance(t, ArrayType):
            dims.append("[{}]".format("" if t.bound is None else t.bound))
            t = t.elem
        body = "".join(dims)
        if self.value:
            return "{}[{}]".format(t, body)
        return "{}{}".format(t, body)


@dataclass(frozen=True)
class ClassType(Type):
    name: str
    value: bool = False

    def is_value(self):
        return self.value

    def __str__(self):
        return self.name


STRING = ClassType("String")


@dataclass(frozen=True)
class TaskType(Type):
    """The type of a single ``task`` expression.

    ``input`` is :data:`VOID` for source tasks (workers with no
    parameters); ``output`` is :data:`VOID` for sinks.
    """

    input: Type
    output: Type
    isolated: bool = False

    def is_value(self):
        return False

    def __str__(self):
        return "task({} -> {})".format(self.input, self.output)


@dataclass(frozen=True)
class TaskGraphType(Type):
    """The type of a ``=>`` composition of tasks."""

    input: Type
    output: Type

    def is_value(self):
        return False

    def __str__(self):
        return "graph({} -> {})".format(self.input, self.output)


@dataclass(frozen=True)
class MethodRefType(Type):
    """Internal type for a method reference appearing before ``@``/``!``."""

    class_name: str
    method_name: str

    def is_value(self):
        return False

    def __str__(self):
        return "methodref({}.{})".format(self.class_name, self.method_name)


def value_array(elem, *bounds):
    """Build a (possibly nested) value array type.

    ``value_array(FLOAT, None, 4)`` is the paper's ``float[[][4]]``.
    """
    t = elem
    for bound in reversed(bounds):
        t = ArrayType(t, bound=bound, value=True)
    return t


def mutable_array(elem, *bounds):
    """Build a Java-style mutable array type (``float[][]``)."""
    t = elem
    for bound in reversed(bounds):
        t = ArrayType(t, bound=bound, value=False)
    return t


# -- conversions ------------------------------------------------------------

_WIDENING_ORDER = {
    PrimKind.BYTE: 0,
    PrimKind.INT: 1,
    PrimKind.LONG: 2,
    PrimKind.FLOAT: 3,
    PrimKind.DOUBLE: 4,
}


def widens_to(src, dst):
    """True when primitive ``src`` implicitly widens to ``dst``."""
    if not isinstance(src, PrimType) or not isinstance(dst, PrimType):
        return False
    if src == dst:
        return True
    if src.kind not in _WIDENING_ORDER or dst.kind not in _WIDENING_ORDER:
        return False
    return _WIDENING_ORDER[src.kind] < _WIDENING_ORDER[dst.kind]


def binary_result(left, right):
    """Java-style binary numeric promotion; ``None`` when inapplicable."""
    if not isinstance(left, PrimType) or not isinstance(right, PrimType):
        return None
    if not left.is_numeric or not right.is_numeric:
        return None
    order = _WIDENING_ORDER
    winner = left if order[left.kind] >= order[right.kind] else right
    # byte arithmetic promotes to int, as in Java.
    if winner.kind is PrimKind.BYTE:
        return INT
    return winner


def assignable(src, dst):
    """True when a value of type ``src`` may be assigned to ``dst``.

    Primitive widening is implicit. Array assignment is invariant in the
    element type; a bounded dimension accepts an unbounded source only via
    an explicit cast, and value-ness must match exactly (freezing a
    mutable array into a value array requires an explicit cast, which
    copies).
    """
    if src == dst:
        return True
    if widens_to(src, dst):
        return True
    if isinstance(src, ArrayType) and isinstance(dst, ArrayType):
        if src.value != dst.value:
            return False
        if dst.bound is not None and src.bound != dst.bound:
            return False
        if dst.bound is None and src.bound is not None:
            # A bounded array may flow into an unbounded slot.
            return assignable(src.elem, dst.elem) or src.elem == dst.elem
        return src.elem == dst.elem
    if isinstance(src, TaskType) and isinstance(dst, TaskGraphType):
        return src.input == dst.input and src.output == dst.output
    return False


def castable(src, dst):
    """True when an explicit cast from ``src`` to ``dst`` is legal.

    Beyond numeric casts, Lime allows casting between a mutable array and
    a value array of matching shape — the freeze/thaw conversions the
    paper's "value arrays must be initialized at construction time"
    discipline relies on. A freeze cast deep-copies at runtime.
    """
    if assignable(src, dst):
        return True
    if isinstance(src, PrimType) and isinstance(dst, PrimType):
        return src.is_numeric and dst.is_numeric
    if isinstance(src, ArrayType) and isinstance(dst, ArrayType):
        return _same_shape(src, dst)
    return False


def _same_shape(a, b):
    """Arrays with identical rank/base type and compatible bounds."""
    while isinstance(a, ArrayType) and isinstance(b, ArrayType):
        if a.bound is not None and b.bound is not None and a.bound != b.bound:
            return False
        a, b = a.elem, b.elem
    return a == b


def erase_value(t):
    """Strip value-ness (used when freezing/thawing via cast)."""
    if isinstance(t, ArrayType):
        return ArrayType(erase_value(t.elem), t.bound, False)
    return t


def freeze(t):
    """Mark an array type (deeply) as a value array."""
    if isinstance(t, ArrayType):
        return ArrayType(freeze(t.elem), t.bound, True)
    return t
