"""Isolation checking for ``local`` methods.

Lime's isolation discipline is what lets the compiler offload a filter
without alias or escape analysis (Section 3.1 of the paper):

- a ``local`` method may only call other ``local`` methods (plus the pure
  ``Math.*`` builtins and ``Lime.iota``);
- it may not read or write mutable global state: non-final static fields
  and any instance field that is not final are off-limits, and no field
  may ever be written;
- its parameters and return type must be value types, so data crossing
  the boundary can never mutate in flight;
- it may not construct tasks or graphs (those are host-side artifacts).

Violations raise :class:`repro.errors.IsolationError` with the offending
location.
"""

from __future__ import annotations

from repro.errors import IsolationError
from repro.frontend import ast


def check_isolation(checked):
    """Validate every ``local`` method in a :class:`CheckedProgram`."""
    for cls in checked.program.classes:
        for method in cls.methods:
            if method.is_local:
                _check_local_method(checked, cls, method)


def _check_local_method(checked, cls, method):
    for param in method.params:
        if not param.type.is_value():
            raise IsolationError(
                "parameter '{}' of local method '{}' has non-value type {}; "
                "local methods may only receive deeply immutable data".format(
                    param.name, method.qualified_name, param.type
                ),
                param.location,
            )
    if not _is_value_or_void(method.return_type):
        raise IsolationError(
            "local method '{}' returns non-value type {}".format(
                method.qualified_name, method.return_type
            ),
            method.location,
        )
    _check_node(checked, cls, method, method.body)


def _is_value_or_void(t):
    from repro.frontend.types import PrimKind, PrimType

    if isinstance(t, PrimType) and t.kind is PrimKind.VOID:
        return True
    return t.is_value()


def _check_node(checked, cls, method, node):
    if isinstance(node, ast.Name) and node.binding == "field":
        field = cls.lookup_field(node.name)
        if not field.is_final:
            raise IsolationError(
                "local method '{}' reads mutable field '{}'".format(
                    method.qualified_name, node.name
                ),
                node.location,
            )
    elif isinstance(node, ast.FieldAccess):
        _check_static_field_access(checked, method, node)
    elif isinstance(node, ast.Assign):
        _check_assignment_target(method, node)
    elif isinstance(node, ast.Call):
        _check_call(checked, method, node)
    elif isinstance(node, ast.New):
        raise IsolationError(
            "local method '{}' constructs an object; object allocation is "
            "host-only".format(method.qualified_name),
            node.location,
        )
    elif isinstance(node, (ast.MapExpr, ast.ReduceExpr)):
        func = node.func
        if func is not None and func.resolved is not None and not func.resolved.is_local:
            raise IsolationError(
                "local method '{}' maps/reduces with non-local method "
                "'{}'".format(method.qualified_name, func.resolved.qualified_name),
                func.location,
            )
    elif isinstance(node, (ast.TaskExpr, ast.ConnectExpr)):
        raise IsolationError(
            "local method '{}' builds a task graph; graph construction is "
            "host-only".format(method.qualified_name),
            node.location,
        )
    for child in ast.children(node):
        _check_node(checked, cls, method, child)


def _check_static_field_access(checked, method, node):
    receiver = node.receiver
    if not (isinstance(receiver, ast.Name) and receiver.binding == "class"):
        return  # array.length and similar are fine
    owner = checked.lookup_class(receiver.name)
    if owner is None:
        return
    field = owner.lookup_field(node.name)
    if field is not None and not field.is_final:
        raise IsolationError(
            "local method '{}' reads mutable static field '{}.{}'".format(
                method.qualified_name, owner.name, node.name
            ),
            node.location,
        )


def _check_assignment_target(method, node):
    target = node.target
    if isinstance(target, ast.Name) and target.binding == "field":
        raise IsolationError(
            "local method '{}' writes field '{}'".format(
                method.qualified_name, target.name
            ),
            target.location,
        )
    if isinstance(target, ast.FieldAccess):
        raise IsolationError(
            "local method '{}' writes a field".format(method.qualified_name),
            target.location,
        )


_ALLOWED_BUILTIN_PREFIXES = ("math.",)
_ALLOWED_BUILTINS = frozenset({"lime.iota"})


def _check_call(checked, method, node):
    if node.builtin is not None:
        ok = node.builtin in _ALLOWED_BUILTINS or node.builtin.startswith(
            _ALLOWED_BUILTIN_PREFIXES
        )
        if not ok:
            raise IsolationError(
                "local method '{}' calls host-only builtin '{}'".format(
                    method.qualified_name, node.builtin
                ),
                node.location,
            )
        return
    callee = node.resolved
    if callee is None:
        return
    if not callee.is_local:
        raise IsolationError(
            "local method '{}' calls non-local method '{}'".format(
                method.qualified_name, callee.qualified_name
            ),
            node.location,
        )
