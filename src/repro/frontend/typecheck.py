"""Type checking and name resolution for Lime programs.

The checker annotates the AST in place (``Expr.type``, ``Name.binding``,
``Call.resolved``/``Call.builtin``, ``Cast.freezes``) and enforces the
type-system rules the compiler later exploits:

- value arrays are deeply immutable: their elements are not assignable;
- a mutable array freezes into a value array only through an explicit
  cast (which deep-copies at runtime);
- ``@`` maps a *static* method over a *value* array and produces a value
  array; ``!`` reduces a value array with an operator or a binary
  combinator method;
- ``task``/``=>`` compose into typed task graphs whose ports must match.

Isolation rules for ``local`` methods live in
:mod:`repro.frontend.isolation` and are run as part of
:func:`check_program`.
"""

from __future__ import annotations

from repro.errors import TypeError_
from repro.frontend import ast
from repro.frontend import types as ty
from repro.frontend.types import (
    ArrayType,
    BOOLEAN,
    ClassType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    MethodRefType,
    PrimType,
    STRING,
    TaskGraphType,
    TaskType,
    Type,
    VOID,
)

# Math builtins: name -> arity. All are polymorphic over float/double
# (ints promote to double), mirroring how Lime kernels map them onto
# OpenCL's native math library.
MATH_BUILTINS = {
    "sqrt": 1,
    "rsqrt": 1,
    "sin": 1,
    "cos": 1,
    "tan": 1,
    "exp": 1,
    "log": 1,
    "floor": 1,
    "ceil": 1,
    "abs": 1,
    "atan2": 2,
    "pow": 2,
    "min": 2,
    "max": 2,
    "hypot": 2,
}

# Builtins treated as transcendental for cost modeling (see
# repro.opencl.timing); kept here so frontend and backend agree.
TRANSCENDENTALS = frozenset(
    {"sqrt", "rsqrt", "sin", "cos", "tan", "exp", "log", "atan2", "pow", "hypot"}
)

THROWABLE_CLASSES = frozenset({"UnderflowException"})


class Scope:
    """A lexical scope mapping variable names to types."""

    def __init__(self, parent=None):
        self.parent = parent
        self.bindings = {}

    def define(self, name, var_type, location):
        if name in self.bindings:
            raise TypeError_(
                "variable '{}' is already defined in this scope".format(name),
                location,
            )
        self.bindings[name] = var_type

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None


class CheckedProgram:
    """The result of :func:`check_program`: the annotated AST plus lookup
    tables used by the compiler and the runtime."""

    def __init__(self, program):
        self.program = program
        self.classes = {cls.name: cls for cls in program.classes}

    def lookup_method(self, class_name, method_name):
        cls = self.classes.get(class_name)
        if cls is None:
            return None
        return cls.lookup_method(method_name)

    def lookup_class(self, name):
        return self.classes.get(name)


class TypeChecker:
    def __init__(self, program):
        self.program = program
        self.classes = {}
        self.current_class = None
        self.current_method = None
        self.loop_depth = 0

    # -- driver --------------------------------------------------------------

    def check(self):
        for cls in self.program.classes:
            if cls.name in self.classes:
                raise TypeError_(
                    "duplicate class '{}'".format(cls.name), cls.location
                )
            if cls.name in ("Math", "Lime") or cls.name in THROWABLE_CLASSES:
                raise TypeError_(
                    "class name '{}' is reserved".format(cls.name), cls.location
                )
            self.classes[cls.name] = cls
        for cls in self.program.classes:
            self._check_class_members(cls)
        for cls in self.program.classes:
            self.current_class = cls
            for field in cls.fields:
                self._check_field(field)
            for method in cls.methods:
                self._check_method(method)
        self.current_class = None
        return CheckedProgram(self.program)

    def _check_class_members(self, cls):
        seen_fields, seen_methods = set(), set()
        for field in cls.fields:
            if field.name in seen_fields:
                raise TypeError_(
                    "duplicate field '{}'".format(field.name), field.location
                )
            seen_fields.add(field.name)
            self._validate_type(field.type, field.location)
        for method in cls.methods:
            if method.name in seen_methods:
                raise TypeError_(
                    "duplicate method '{}' (overloading is not supported)".format(
                        method.name
                    ),
                    method.location,
                )
            seen_methods.add(method.name)
            self._validate_type(method.return_type, method.location)
            for param in method.params:
                self._validate_type(param.type, param.location)

    def _validate_type(self, t, location):
        if isinstance(t, ClassType):
            if t.name not in self.classes and t != STRING:
                raise TypeError_("unknown type '{}'".format(t.name), location)
        elif isinstance(t, ArrayType):
            if t.bound is not None and t.bound <= 0:
                raise TypeError_(
                    "array bound must be positive, got {}".format(t.bound), location
                )
            if isinstance(t.elem, PrimType) and t.elem == VOID:
                raise TypeError_("void arrays are not allowed", location)
            self._validate_type(t.elem, location)

    # -- members --------------------------------------------------------------

    def _check_field(self, field):
        if field.init is not None:
            init_type = self.check_expr(field.init, Scope())
            self._require_assignable(init_type, field.type, field.location)
        elif field.is_final:
            raise TypeError_(
                "final field '{}' must have an initializer".format(field.name),
                field.location,
            )

    def _check_method(self, method):
        self.current_method = method
        scope = Scope()
        for param in method.params:
            scope.define(param.name, param.type, param.location)
        returns = self.check_stmt(method.body, scope)
        if method.return_type != VOID and not returns:
            raise TypeError_(
                "method '{}' may complete without returning a value".format(
                    method.qualified_name
                ),
                method.location,
            )
        self.current_method = None

    # -- statements -------------------------------------------------------------
    #
    # check_stmt returns True when the statement definitely returns (a very
    # small definite-return analysis, enough for the benchmark programs).

    def check_stmt(self, stmt, scope):
        if isinstance(stmt, ast.Block):
            inner = Scope(scope)
            returns = False
            for child in stmt.stmts:
                returns = self.check_stmt(child, inner) or returns
            return returns
        if isinstance(stmt, ast.VarDecl):
            return self._check_var_decl(stmt, scope)
        if isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr, scope)
            return False
        if isinstance(stmt, ast.Assign):
            self._check_assign(stmt, scope)
            return False
        if isinstance(stmt, ast.If):
            cond = self.check_expr(stmt.cond, scope)
            self._require(cond == BOOLEAN, "if condition must be boolean", stmt.location)
            then_returns = self.check_stmt(stmt.then, Scope(scope))
            else_returns = False
            if stmt.otherwise is not None:
                else_returns = self.check_stmt(stmt.otherwise, Scope(scope))
            return then_returns and else_returns
        if isinstance(stmt, ast.While):
            cond = self.check_expr(stmt.cond, scope)
            self._require(
                cond == BOOLEAN, "while condition must be boolean", stmt.location
            )
            self.loop_depth += 1
            self.check_stmt(stmt.body, Scope(scope))
            self.loop_depth -= 1
            return False
        if isinstance(stmt, ast.For):
            header = Scope(scope)
            if stmt.init is not None:
                self.check_stmt(stmt.init, header)
            if stmt.cond is not None:
                cond = self.check_expr(stmt.cond, header)
                self._require(
                    cond == BOOLEAN, "for condition must be boolean", stmt.location
                )
            if stmt.update is not None:
                self.check_stmt(stmt.update, header)
            self.loop_depth += 1
            self.check_stmt(stmt.body, Scope(header))
            self.loop_depth -= 1
            return False
        if isinstance(stmt, ast.Return):
            return self._check_return(stmt, scope)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            self._require(
                self.loop_depth > 0,
                "break/continue outside of a loop",
                stmt.location,
            )
            return False
        if isinstance(stmt, ast.Throw):
            expr = stmt.expr
            if not (
                isinstance(expr, ast.New) and expr.class_name in THROWABLE_CLASSES
            ):
                raise TypeError_(
                    "only 'throw new UnderflowException()' is supported",
                    stmt.location,
                )
            if expr.args:
                raise TypeError_(
                    "UnderflowException takes no arguments", stmt.location
                )
            expr.type = ClassType(expr.class_name)
            return True
        raise TypeError_("unsupported statement {}".format(type(stmt).__name__), None)

    def _check_var_decl(self, stmt, scope):
        if stmt.init is not None:
            init_type = self.check_expr(stmt.init, scope)
        else:
            init_type = None
        if stmt.declared_type is None:
            if init_type is None or init_type == VOID:
                raise TypeError_(
                    "cannot infer a type for 'var {}'".format(stmt.name),
                    stmt.location,
                )
            stmt.type = init_type
        else:
            self._validate_type(stmt.declared_type, stmt.location)
            stmt.type = stmt.declared_type
            if init_type is not None:
                self._require_assignable(init_type, stmt.type, stmt.location)
        scope.define(stmt.name, stmt.type, stmt.location)
        return False

    def _check_assign(self, stmt, scope):
        target_type = self.check_expr(stmt.target, scope)
        self._check_lvalue(stmt.target)
        value_type = self.check_expr(stmt.value, scope)
        if stmt.op is not None:
            result = ty.binary_result(target_type, value_type)
            if result is None:
                raise TypeError_(
                    "invalid operands for compound assignment", stmt.location
                )
            # Java compound assignment has an implicit narrowing cast.
            value_type = target_type
        self._require_assignable(value_type, target_type, stmt.location)

    def _check_lvalue(self, target):
        if isinstance(target, ast.Name):
            if target.binding in ("local", "param"):
                return
            if target.binding == "field":
                field = self.current_class.lookup_field(target.name)
                if field.is_final:
                    raise TypeError_(
                        "cannot assign to final field '{}'".format(target.name),
                        target.location,
                    )
                return
            raise TypeError_(
                "cannot assign to '{}'".format(target.name), target.location
            )
        if isinstance(target, ast.Index):
            array_type = target.array.type
            if isinstance(array_type, ArrayType) and array_type.value:
                raise TypeError_(
                    "cannot assign into a value array (value types are "
                    "deeply immutable)",
                    target.location,
                )
            return
        if isinstance(target, ast.FieldAccess):
            raise TypeError_(
                "field assignment through an explicit receiver is not "
                "supported; use an unqualified name inside the class",
                target.location,
            )
        raise TypeError_("invalid assignment target", target.location)

    def _check_return(self, stmt, scope):
        expected = self.current_method.return_type
        if stmt.value is None:
            self._require(
                expected == VOID,
                "method '{}' must return a value".format(
                    self.current_method.qualified_name
                ),
                stmt.location,
            )
            return True
        actual = self.check_expr(stmt.value, scope)
        self._require(
            expected != VOID,
            "void method '{}' may not return a value".format(
                self.current_method.qualified_name
            ),
            stmt.location,
        )
        self._require_assignable(actual, expected, stmt.location)
        return True

    # -- expressions -------------------------------------------------------------

    def check_expr(self, expr, scope):
        result = self._check_expr(expr, scope)
        expr.type = result
        return result

    def _check_expr(self, expr, scope):
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.LongLit):
            return LONG
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.DoubleLit):
            return DOUBLE
        if isinstance(expr, ast.BoolLit):
            return BOOLEAN
        if isinstance(expr, ast.StringLit):
            return STRING
        if isinstance(expr, ast.NullLit):
            raise TypeError_("'null' is not supported in this subset", expr.location)
        if isinstance(expr, ast.Name):
            return self._check_name(expr, scope)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, scope)
        if isinstance(expr, ast.Ternary):
            return self._check_ternary(expr, scope)
        if isinstance(expr, ast.Cast):
            return self._check_cast(expr, scope)
        if isinstance(expr, ast.Index):
            return self._check_index(expr, scope)
        if isinstance(expr, ast.FieldAccess):
            return self._check_field_access(expr, scope)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.New):
            return self._check_new(expr, scope)
        if isinstance(expr, ast.NewArray):
            return self._check_new_array(expr, scope)
        if isinstance(expr, ast.ArrayInit):
            return self._check_array_init(expr, scope)
        if isinstance(expr, ast.MapExpr):
            return self._check_map(expr, scope)
        if isinstance(expr, ast.ReduceExpr):
            return self._check_reduce(expr, scope)
        if isinstance(expr, ast.TaskExpr):
            return self._check_task(expr, scope)
        if isinstance(expr, ast.ConnectExpr):
            return self._check_connect(expr, scope)
        if isinstance(expr, ast.MethodRef):
            return MethodRefType(expr.class_name, expr.method_name)
        raise TypeError_(
            "unsupported expression {}".format(type(expr).__name__), expr.location
        )

    def _check_name(self, expr, scope):
        bound = scope.lookup(expr.name)
        if bound is not None:
            expr.binding = "local"
            return bound
        field = self.current_class.lookup_field(expr.name) if self.current_class else None
        if field is not None:
            expr.binding = "field"
            expr.owner = self.current_class.name
            return field.type
        if expr.name in self.classes or expr.name in ("Math", "Lime"):
            expr.binding = "class"
            return ClassType(expr.name)
        raise TypeError_("unknown name '{}'".format(expr.name), expr.location)

    def _check_unary(self, expr, scope):
        operand = self.check_expr(expr.operand, scope)
        if expr.op == "-":
            self._require(
                isinstance(operand, PrimType) and operand.is_numeric,
                "unary '-' requires a numeric operand",
                expr.location,
            )
            return ty.binary_result(operand, operand)
        if expr.op == "!":
            self._require(
                operand == BOOLEAN, "'!' requires a boolean operand", expr.location
            )
            return BOOLEAN
        if expr.op == "~":
            self._require(
                isinstance(operand, PrimType) and operand.is_integral,
                "'~' requires an integral operand",
                expr.location,
            )
            return ty.binary_result(operand, operand)
        raise TypeError_("unknown unary operator '{}'".format(expr.op), expr.location)

    _COMPARISONS = frozenset({"<", ">", "<=", ">="})
    _EQUALITY = frozenset({"==", "!="})
    _LOGICAL = frozenset({"&&", "||"})
    _BITWISE = frozenset({"&", "|", "^", "<<", ">>", ">>>"})
    _ARITH = frozenset({"+", "-", "*", "/", "%"})

    def _check_binary(self, expr, scope):
        left = self.check_expr(expr.left, scope)
        right = self.check_expr(expr.right, scope)
        op = expr.op
        if op in self._LOGICAL:
            self._require(
                left == BOOLEAN and right == BOOLEAN,
                "'{}' requires boolean operands".format(op),
                expr.location,
            )
            return BOOLEAN
        if op in self._COMPARISONS:
            self._require(
                ty.binary_result(left, right) is not None,
                "'{}' requires numeric operands".format(op),
                expr.location,
            )
            return BOOLEAN
        if op in self._EQUALITY:
            ok = ty.binary_result(left, right) is not None or (
                left == right == BOOLEAN
            )
            self._require(
                ok, "'{}' requires comparable operands".format(op), expr.location
            )
            return BOOLEAN
        if op in self._BITWISE:
            self._require(
                isinstance(left, PrimType)
                and isinstance(right, PrimType)
                and left.is_integral
                and right.is_integral,
                "'{}' requires integral operands".format(op),
                expr.location,
            )
            return ty.binary_result(left, right)
        if op in self._ARITH:
            result = ty.binary_result(left, right)
            self._require(
                result is not None,
                "'{}' requires numeric operands (got {} and {})".format(
                    op, left, right
                ),
                expr.location,
            )
            return result
        raise TypeError_("unknown binary operator '{}'".format(op), expr.location)

    def _check_ternary(self, expr, scope):
        cond = self.check_expr(expr.cond, scope)
        self._require(
            cond == BOOLEAN, "ternary condition must be boolean", expr.location
        )
        then = self.check_expr(expr.then, scope)
        otherwise = self.check_expr(expr.otherwise, scope)
        if then == otherwise:
            return then
        result = ty.binary_result(then, otherwise)
        self._require(
            result is not None, "incompatible ternary branch types", expr.location
        )
        return result

    def _check_cast(self, expr, scope):
        source = self.check_expr(expr.expr, scope)
        self._validate_type(expr.target, expr.location)
        self._require(
            ty.castable(source, expr.target),
            "cannot cast {} to {}".format(source, expr.target),
            expr.location,
        )
        if isinstance(source, ArrayType) and isinstance(expr.target, ArrayType):
            expr.freezes = not source.is_value() and expr.target.is_value()
            expr.thaws = source.is_value() and not expr.target.is_value()
        return expr.target

    def _check_index(self, expr, scope):
        array = self.check_expr(expr.array, scope)
        self._require(
            isinstance(array, ArrayType),
            "cannot index a non-array value of type {}".format(array),
            expr.location,
        )
        index = self.check_expr(expr.index, scope)
        self._require(
            isinstance(index, PrimType)
            and index.is_integral
            and index.kind is not ty.PrimKind.LONG,
            "array index must be an int",
            expr.location,
        )
        return array.elem

    def _check_field_access(self, expr, scope):
        # `Cls.field` — static field access.
        if isinstance(expr.receiver, ast.Name) and expr.receiver.name in self.classes:
            expr.receiver.binding = "class"
            expr.receiver.type = ClassType(expr.receiver.name)
            cls = self.classes[expr.receiver.name]
            field = cls.lookup_field(expr.name)
            if field is None or not field.is_static:
                raise TypeError_(
                    "class '{}' has no static field '{}'".format(
                        cls.name, expr.name
                    ),
                    expr.location,
                )
            return field.type
        receiver = self.check_expr(expr.receiver, scope)
        if isinstance(receiver, ArrayType) and expr.name == "length":
            return INT
        raise TypeError_(
            "unknown field '{}' on {}".format(expr.name, receiver), expr.location
        )

    def _check_call(self, expr, scope):
        # Builtin namespaces first: Math.*, Lime.*.
        if isinstance(expr.receiver, ast.Name):
            namespace = expr.receiver.name
            if namespace == "Math":
                return self._check_math_call(expr, scope)
            if namespace == "Lime":
                return self._check_lime_call(expr, scope)
            if namespace in self.classes:
                expr.receiver.binding = "class"
                expr.receiver.type = ClassType(namespace)
                return self._check_user_call(expr, scope, namespace, static=True)
        if expr.receiver is None:
            return self._check_user_call(
                expr, scope, self.current_class.name, static=None
            )
        # Instance call through an arbitrary expression.
        receiver = self.check_expr(expr.receiver, scope)
        if isinstance(receiver, (TaskType, TaskGraphType)) and expr.name == "finish":
            self._require(not expr.args, "finish() takes no arguments", expr.location)
            self._require(
                receiver.input == VOID,
                "finish() requires a graph rooted at a source task",
                expr.location,
            )
            expr.builtin = "finish"
            return VOID
        if isinstance(receiver, ClassType) and receiver.name in self.classes:
            return self._check_user_call(
                expr, scope, receiver.name, static=False
            )
        raise TypeError_(
            "cannot call '{}' on a value of type {}".format(expr.name, receiver),
            expr.location,
        )

    def _check_math_call(self, expr, scope):
        arity = MATH_BUILTINS.get(expr.name)
        if arity is None:
            raise TypeError_(
                "unknown Math builtin '{}'".format(expr.name), expr.location
            )
        self._require(
            len(expr.args) == arity,
            "Math.{} expects {} argument(s)".format(expr.name, arity),
            expr.location,
        )
        arg_types = [self.check_expr(arg, scope) for arg in expr.args]
        for arg_type in arg_types:
            self._require(
                isinstance(arg_type, PrimType) and arg_type.is_numeric,
                "Math.{} requires numeric arguments".format(expr.name),
                expr.location,
            )
        expr.builtin = "math." + expr.name
        expr.receiver.binding = "class"
        expr.receiver.type = ClassType("Math")
        if expr.name in ("min", "max", "abs"):
            # Polymorphic over any numeric type, like java.lang.Math.
            result = arg_types[0]
            for arg_type in arg_types[1:]:
                result = ty.binary_result(result, arg_type)
            return result
        # Transcendentals: float in -> float out, otherwise double
        # (Lime maps these to OpenCL's native math on the device).
        if all(t == FLOAT for t in arg_types):
            return FLOAT
        return DOUBLE

    def _check_lime_call(self, expr, scope):
        expr.receiver.binding = "class"
        expr.receiver.type = ClassType("Lime")
        if expr.name == "iota":
            self._require(
                len(expr.args) == 1, "Lime.iota expects one argument", expr.location
            )
            arg = self.check_expr(expr.args[0], scope)
            self._require(arg == INT, "Lime.iota expects an int", expr.location)
            expr.builtin = "lime.iota"
            return ArrayType(INT, bound=None, value=True)
        if expr.name == "print":
            self._require(
                len(expr.args) == 1, "Lime.print expects one argument", expr.location
            )
            self.check_expr(expr.args[0], scope)
            expr.builtin = "lime.print"
            return VOID
        raise TypeError_(
            "unknown Lime builtin '{}'".format(expr.name), expr.location
        )

    def _check_user_call(self, expr, scope, class_name, static):
        cls = self.classes[class_name]
        method = cls.lookup_method(expr.name)
        if method is None or method.name == "<init>":
            raise TypeError_(
                "class '{}' has no method '{}'".format(class_name, expr.name),
                expr.location,
            )
        if static is True and not method.is_static:
            raise TypeError_(
                "'{}' is an instance method; call it through an instance".format(
                    method.qualified_name
                ),
                expr.location,
            )
        if static is False and method.is_static:
            raise TypeError_(
                "'{}' is static; call it through the class name".format(
                    method.qualified_name
                ),
                expr.location,
            )
        self._check_args(expr.args, method, scope, expr.location)
        expr.resolved = method
        return method.return_type

    def _check_args(self, args, method, scope, location):
        if len(args) != len(method.params):
            raise TypeError_(
                "'{}' expects {} argument(s), got {}".format(
                    method.qualified_name, len(method.params), len(args)
                ),
                location,
            )
        for arg, param in zip(args, method.params):
            arg_type = self.check_expr(arg, scope)
            self._require_assignable(arg_type, param.type, arg.location)

    def _check_new(self, expr, scope):
        if expr.class_name in THROWABLE_CLASSES:
            raise TypeError_(
                "exceptions may only appear in 'throw' statements", expr.location
            )
        cls = self.classes.get(expr.class_name)
        if cls is None:
            raise TypeError_(
                "unknown class '{}'".format(expr.class_name), expr.location
            )
        ctor = cls.lookup_method("<init>")
        if ctor is None:
            self._require(
                not expr.args,
                "class '{}' has no constructor taking arguments".format(cls.name),
                expr.location,
            )
        else:
            self._check_args(expr.args, ctor, scope, expr.location)
        return ClassType(cls.name, value=cls.is_value)

    def _check_new_array(self, expr, scope):
        self._validate_type(expr.elem, expr.location)
        for dim in expr.dims:
            if dim is not None:
                dim_type = self.check_expr(dim, scope)
                self._require(
                    dim_type == INT, "array dimension must be an int", expr.location
                )
        result = expr.elem
        for _ in expr.dims:
            result = ArrayType(result, bound=None, value=False)
        return result

    def _check_array_init(self, expr, scope):
        self._validate_type(expr.elem, expr.location)
        self._require(expr.values, "empty array initializer", expr.location)
        for value in expr.values:
            value_type = self.check_expr(value, scope)
            self._require_assignable(value_type, expr.elem, value.location)
        return ArrayType(expr.elem, bound=None, value=False)

    # -- Lime operators -----------------------------------------------------------

    def _check_map(self, expr, scope):
        source = self.check_expr(expr.source, scope)
        self._require(
            isinstance(source, ArrayType) and source.is_value(),
            "'@' maps over a value array, got {}".format(source),
            expr.location,
        )
        method = self._resolve_combinator(expr.func)
        self._require(
            method.is_static,
            "a map function must be static (got '{}')".format(
                method.qualified_name
            ),
            expr.location,
        )
        self._require(
            len(method.params) == 1 + len(expr.bound_args),
            "map function '{}' expects {} parameter(s): the element plus "
            "{} bound argument(s)".format(
                method.qualified_name, 1 + len(expr.bound_args), len(expr.bound_args)
            ),
            expr.location,
        )
        elem_param = method.params[0]
        self._require_assignable(source.elem, elem_param.type, expr.location)
        for arg, param in zip(expr.bound_args, method.params[1:]):
            arg_type = self.check_expr(arg, scope)
            self._require_assignable(arg_type, param.type, arg.location)
        self._require(
            method.return_type != VOID,
            "a map function must return a value",
            expr.location,
        )
        expr.func.resolved = method
        expr.func.type = MethodRefType(expr.func.class_name, expr.func.method_name)
        return ArrayType(ty.freeze(method.return_type), bound=source.bound, value=True)

    def _check_reduce(self, expr, scope):
        source = self.check_expr(expr.source, scope)
        self._require(
            isinstance(source, ArrayType) and source.is_value(),
            "'!' reduces a value array, got {}".format(source),
            expr.location,
        )
        elem = source.elem
        if expr.op is not None:
            self._require(
                isinstance(elem, PrimType) and elem.is_numeric,
                "operator reduction requires a numeric element type",
                expr.location,
            )
            return elem
        if expr.func.class_name == "Math" and expr.func.method_name in ("min", "max"):
            self._require(
                isinstance(elem, PrimType) and elem.is_numeric,
                "Math.{} reduction requires numeric elements".format(
                    expr.func.method_name
                ),
                expr.location,
            )
            expr.func.type = MethodRefType("Math", expr.func.method_name)
            return elem
        method = self._resolve_combinator(expr.func)
        self._require(
            method.is_static
            and len(method.params) == 2
            and method.params[0].type == method.params[1].type == method.return_type,
            "a reduction combinator must be a static method T x T -> T",
            expr.location,
        )
        self._require_assignable(elem, method.params[0].type, expr.location)
        expr.func.resolved = method
        expr.func.type = MethodRefType(expr.func.class_name, expr.func.method_name)
        return method.return_type

    def _resolve_combinator(self, ref):
        cls = self.classes.get(ref.class_name)
        if cls is None:
            raise TypeError_(
                "unknown class '{}'".format(ref.class_name), ref.location
            )
        method = cls.lookup_method(ref.method_name)
        if method is None:
            raise TypeError_(
                "class '{}' has no method '{}'".format(
                    ref.class_name, ref.method_name
                ),
                ref.location,
            )
        return method

    def _check_task(self, expr, scope):
        cls = self.classes.get(expr.class_name)
        if cls is None:
            raise TypeError_(
                "unknown class '{}'".format(expr.class_name), expr.location
            )
        method = cls.lookup_method(expr.method_name)
        if method is None:
            raise TypeError_(
                "class '{}' has no method '{}'".format(
                    expr.class_name, expr.method_name
                ),
                expr.location,
            )
        if expr.is_static_worker:
            self._require(
                method.is_static,
                "'task {}.{}' names an instance method; construct an "
                "instance: task {}(...).{}".format(
                    cls.name, method.name, cls.name, method.name
                ),
                expr.location,
            )
            if expr.worker_args is not None:
                self._require(
                    len(expr.worker_args) <= len(method.params),
                    "too many bound arguments for worker '{}'".format(
                        method.qualified_name
                    ),
                    expr.location,
                )
                for arg, param in zip(expr.worker_args, method.params):
                    arg_type = self.check_expr(arg, scope)
                    self._require_assignable(arg_type, param.type, arg.location)
        else:
            self._require(
                not method.is_static,
                "'{}' is static; use task {}.{}".format(
                    method.qualified_name, cls.name, method.name
                ),
                expr.location,
            )
            ctor = cls.lookup_method("<init>")
            if ctor is None:
                self._require(
                    not expr.ctor_args,
                    "class '{}' has no constructor taking arguments".format(cls.name),
                    expr.location,
                )
            else:
                self._check_args(expr.ctor_args, ctor, scope, expr.location)
        bound = len(expr.worker_args) if expr.worker_args is not None else 0
        free_params = method.params[bound:]
        self._require(
            len(free_params) <= 1,
            "a task worker takes at most one input (bind the leading "
            "parameters with task {}.{}(...))".format(
                expr.class_name, expr.method_name
            ),
            expr.location,
        )
        input_type = free_params[0].type if free_params else VOID
        expr.resolved = method
        # A filter: isolated unit of computation, the offload candidate.
        isolated = method.is_static and method.is_local
        return TaskType(input=input_type, output=method.return_type, isolated=isolated)

    def _check_connect(self, expr, scope):
        left = self.check_expr(expr.left, scope)
        right = self.check_expr(expr.right, scope)
        for side, name in ((left, "left"), (right, "right")):
            self._require(
                isinstance(side, (TaskType, TaskGraphType)),
                "the {} operand of '=>' must be a task or graph, got {}".format(
                    name, side
                ),
                expr.location,
            )
        self._require(
            ty.assignable(left.output, right.input),
            "cannot connect: upstream produces {} but downstream "
            "consumes {}".format(left.output, right.input),
            expr.location,
        )
        return TaskGraphType(input=left.input, output=right.output)

    # -- helpers --------------------------------------------------------------------

    def _require(self, condition, message, location):
        if not condition:
            raise TypeError_(message, location)

    def _require_assignable(self, src, dst, location):
        self._require(
            ty.assignable(src, dst),
            "cannot assign {} to {}".format(src, dst),
            location,
        )


def check_program(program):
    """Type-check ``program`` (mutating the AST annotations) and run the
    isolation checker; returns a :class:`CheckedProgram`."""
    checked = TypeChecker(program).check()
    # Imported here to avoid a cycle at module load.
    from repro.frontend.isolation import check_isolation

    check_isolation(checked)
    return checked
