"""Hand-written lexer for the Lime surface language.

A straightforward maximal-munch scanner. Comments (``//`` and ``/* */``)
and whitespace are skipped. Numeric literals follow Java's conventions:
an unsuffixed decimal with a ``.`` or exponent is a ``double``; an ``f``
suffix makes a ``float``; an ``L`` suffix makes a ``long``.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.frontend.source import SourceFile
from repro.frontend.tokens import KEYWORDS, Token, TokenKind

# Multi-character operators, longest first so maximal munch works by
# scanning this list in order.
_OPERATORS = [
    (">>>", TokenKind.USHR),
    ("=>", TokenKind.CONNECT),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AND_AND),
    ("||", TokenKind.OR_OR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("++", TokenKind.PLUS_PLUS),
    ("--", TokenKind.MINUS_MINUS),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMI),
    (",", TokenKind.COMMA),
    (".", TokenKind.DOT),
    ("=", TokenKind.ASSIGN),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
    ("!", TokenKind.BANG),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("^", TokenKind.CARET),
    ("~", TokenKind.TILDE),
    ("?", TokenKind.QUESTION),
    (":", TokenKind.COLON),
    ("@", TokenKind.AT),
]


def _is_ident_start(char):
    return char.isalpha() or char == "_" or char == "$"


def _is_ident_part(char):
    return char.isalnum() or char == "_" or char == "$"


class Lexer:
    """Scans a :class:`SourceFile` into a list of tokens."""

    def __init__(self, source):
        if isinstance(source, str):
            source = SourceFile(source)
        self.source = source
        self.text = source.text
        self.pos = 0

    def tokens(self):
        """Lex the whole input, returning tokens ending with ``EOF``."""
        result = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result

    def next_token(self):
        self._skip_trivia()
        if self.pos >= len(self.text):
            return self._make(TokenKind.EOF, self.pos, self.pos)
        char = self.text[self.pos]
        if _is_ident_start(char):
            return self._lex_word()
        if char.isdigit() or (char == "." and self._peek_is_digit(1)):
            return self._lex_number()
        if char == '"':
            return self._lex_string()
        if char == "'":
            return self._lex_char()
        return self._lex_operator()

    # -- trivia ----------------------------------------------------------

    def _skip_trivia(self):
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char.isspace():
                self.pos += 1
            elif self.text.startswith("//", self.pos):
                end = self.text.find("\n", self.pos)
                self.pos = len(self.text) if end < 0 else end + 1
            elif self.text.startswith("/*", self.pos):
                end = self.text.find("*/", self.pos + 2)
                if end < 0:
                    raise LexError(
                        "unterminated block comment",
                        self.source.location(self.pos),
                    )
                self.pos = end + 2
            else:
                return

    # -- token classes ----------------------------------------------------

    def _lex_word(self):
        start = self.pos
        while self.pos < len(self.text) and _is_ident_part(self.text[self.pos]):
            self.pos += 1
        text = self.text[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        value = text if kind is TokenKind.IDENT else None
        return self._make(kind, start, self.pos, value)

    def _lex_number(self):
        start = self.pos
        is_float = False
        if self.text.startswith(("0x", "0X"), self.pos):
            self.pos += 2
            while self.pos < len(self.text) and self._is_hex(self.text[self.pos]):
                self.pos += 1
            return self._finish_int(start, base=16)
        while self._peek_is_digit(0):
            self.pos += 1
        if self.pos < len(self.text) and self.text[self.pos] == ".":
            is_float = True
            self.pos += 1
            while self._peek_is_digit(0):
                self.pos += 1
        if self.pos < len(self.text) and self.text[self.pos] in "eE":
            lookahead = self.pos + 1
            if lookahead < len(self.text) and self.text[lookahead] in "+-":
                lookahead += 1
            if lookahead < len(self.text) and self.text[lookahead].isdigit():
                is_float = True
                self.pos = lookahead
                while self._peek_is_digit(0):
                    self.pos += 1
        if self.pos < len(self.text) and self.text[self.pos] in "fF":
            self.pos += 1
            text = self.text[start : self.pos]
            return self._make(
                TokenKind.FLOAT_LITERAL, start, self.pos, float(text[:-1])
            )
        if self.pos < len(self.text) and self.text[self.pos] in "dD":
            self.pos += 1
            text = self.text[start : self.pos]
            return self._make(
                TokenKind.DOUBLE_LITERAL, start, self.pos, float(text[:-1])
            )
        if is_float:
            text = self.text[start : self.pos]
            return self._make(TokenKind.DOUBLE_LITERAL, start, self.pos, float(text))
        return self._finish_int(start, base=10)

    def _finish_int(self, start, base):
        if self.pos < len(self.text) and self.text[self.pos] in "lL":
            self.pos += 1
            text = self.text[start : self.pos]
            return self._make(
                TokenKind.LONG_LITERAL, start, self.pos, int(text[:-1], base)
            )
        text = self.text[start : self.pos]
        if not text or (base == 16 and len(text) <= 2):
            raise LexError("malformed number", self.source.location(start))
        return self._make(TokenKind.INT_LITERAL, start, self.pos, int(text, base))

    _ESCAPES = {
        "n": "\n",
        "t": "\t",
        "r": "\r",
        "0": "\0",
        "\\": "\\",
        "'": "'",
        '"': '"',
        "b": "\b",
        "f": "\f",
    }

    def _lex_string(self):
        start = self.pos
        self.pos += 1
        chars = []
        while True:
            if self.pos >= len(self.text) or self.text[self.pos] == "\n":
                raise LexError(
                    "unterminated string literal", self.source.location(start)
                )
            char = self.text[self.pos]
            if char == '"':
                self.pos += 1
                return self._make(
                    TokenKind.STRING_LITERAL, start, self.pos, "".join(chars)
                )
            if char == "\\":
                chars.append(self._lex_escape(start))
            else:
                chars.append(char)
                self.pos += 1

    def _lex_char(self):
        start = self.pos
        self.pos += 1
        if self.pos >= len(self.text):
            raise LexError("unterminated char literal", self.source.location(start))
        if self.text[self.pos] == "\\":
            value = self._lex_escape(start)
        else:
            value = self.text[self.pos]
            self.pos += 1
        if self.pos >= len(self.text) or self.text[self.pos] != "'":
            raise LexError("unterminated char literal", self.source.location(start))
        self.pos += 1
        return self._make(TokenKind.CHAR_LITERAL, start, self.pos, ord(value))

    def _lex_escape(self, literal_start):
        # self.pos points at the backslash.
        if self.pos + 1 >= len(self.text):
            raise LexError(
                "unterminated escape sequence", self.source.location(literal_start)
            )
        escape = self.text[self.pos + 1]
        if escape not in self._ESCAPES:
            raise LexError(
                "unknown escape sequence '\\{}'".format(escape),
                self.source.location(self.pos),
            )
        self.pos += 2
        return self._ESCAPES[escape]

    def _lex_operator(self):
        for text, kind in _OPERATORS:
            if self.text.startswith(text, self.pos):
                start = self.pos
                self.pos += len(text)
                return self._make(kind, start, self.pos)
        raise LexError(
            "unexpected character {!r}".format(self.text[self.pos]),
            self.source.location(self.pos),
        )

    # -- helpers ----------------------------------------------------------

    def _peek_is_digit(self, offset):
        index = self.pos + offset
        return index < len(self.text) and self.text[index].isdigit()

    @staticmethod
    def _is_hex(char):
        return char.isdigit() or char.lower() in "abcdef"

    def _make(self, kind, start, end, value=None):
        return Token(
            kind=kind,
            text=self.text[start:end],
            location=self.source.location(start),
            value=value,
        )


def tokenize(source, filename="<lime>"):
    """Lex ``source`` (a string or :class:`SourceFile`) into tokens."""
    if isinstance(source, str):
        source = SourceFile(source, filename)
    return Lexer(source).tokens()
