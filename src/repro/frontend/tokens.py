"""Token kinds for the Lime lexer.

The token set covers the Java-like core plus Lime's extensions: the
``task`` keyword, the ``=>`` connect operator, ``@`` for map, and the
postfix ``!`` reduce marker (lexed as ``BANG`` and disambiguated from
logical negation by the parser).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.frontend.source import Location


class TokenKind(enum.Enum):
    # Literals and identifiers.
    IDENT = "identifier"
    INT_LITERAL = "int literal"
    LONG_LITERAL = "long literal"
    FLOAT_LITERAL = "float literal"
    DOUBLE_LITERAL = "double literal"
    STRING_LITERAL = "string literal"
    CHAR_LITERAL = "char literal"

    # Keywords.
    KW_CLASS = "class"
    KW_STATIC = "static"
    KW_FINAL = "final"
    KW_LOCAL = "local"
    KW_VALUE = "value"
    KW_TASK = "task"
    KW_NEW = "new"
    KW_RETURN = "return"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_THROW = "throw"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_VOID = "void"
    KW_BOOLEAN = "boolean"
    KW_BYTE = "byte"
    KW_INT = "int"
    KW_LONG = "long"
    KW_FLOAT = "float"
    KW_DOUBLE = "double"
    KW_NULL = "null"
    KW_VAR = "var"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."

    # Operators.
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"
    EQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    AND_AND = "&&"
    OR_OR = "||"
    BANG = "!"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    SHL = "<<"
    SHR = ">>"
    USHR = ">>>"
    QUESTION = "?"
    COLON = ":"

    # Lime-specific operators.
    CONNECT = "=>"
    AT = "@"

    EOF = "<eof>"


KEYWORDS = {
    "class": TokenKind.KW_CLASS,
    "static": TokenKind.KW_STATIC,
    "final": TokenKind.KW_FINAL,
    "local": TokenKind.KW_LOCAL,
    "value": TokenKind.KW_VALUE,
    "task": TokenKind.KW_TASK,
    "new": TokenKind.KW_NEW,
    "return": TokenKind.KW_RETURN,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "throw": TokenKind.KW_THROW,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "void": TokenKind.KW_VOID,
    "boolean": TokenKind.KW_BOOLEAN,
    "byte": TokenKind.KW_BYTE,
    "int": TokenKind.KW_INT,
    "long": TokenKind.KW_LONG,
    "float": TokenKind.KW_FLOAT,
    "double": TokenKind.KW_DOUBLE,
    "null": TokenKind.KW_NULL,
    "var": TokenKind.KW_VAR,
}


@dataclass(frozen=True)
class Token:
    """A single lexed token.

    ``value`` holds the literal's parsed value (int/float/str) for literal
    tokens and the identifier text for ``IDENT``; it is ``None`` for pure
    punctuation.
    """

    kind: TokenKind
    text: str
    location: Location
    value: object = None

    def __str__(self):
        return "{}({!r})".format(self.kind.name, self.text)
