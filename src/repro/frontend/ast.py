"""Abstract syntax for the Lime subset.

Every node carries a ``location`` for diagnostics. Expression nodes also
carry a ``type`` slot, ``None`` until the typechecker fills it in; the
same node objects serve as the typed program representation consumed by
:mod:`repro.ir`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.frontend.source import Location
from repro.frontend.types import Type


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Program:
    classes: List["ClassDecl"]

    def lookup_class(self, name):
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None


@dataclass
class ClassDecl:
    name: str
    is_value: bool
    fields: List["FieldDecl"]
    methods: List["MethodDecl"]
    location: Location

    def lookup_method(self, name):
        for method in self.methods:
            if method.name == name:
                return method
        return None

    def lookup_field(self, name):
        for fld in self.fields:
            if fld.name == name:
                return fld
        return None


@dataclass
class Param:
    name: str
    type: Type
    location: Location


@dataclass
class MethodDecl:
    name: str
    params: List[Param]
    return_type: Type
    is_static: bool
    is_local: bool
    body: "Block"
    location: Location
    owner: Optional[str] = None  # class name, set by the parser

    @property
    def qualified_name(self):
        return "{}.{}".format(self.owner, self.name)


@dataclass
class FieldDecl:
    name: str
    type: Type
    is_static: bool
    is_final: bool
    init: Optional["Expr"]
    location: Location
    owner: Optional[str] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt]
    location: Location


@dataclass
class VarDecl(Stmt):
    name: str
    declared_type: Optional[Type]  # None for `var`
    init: Optional["Expr"]
    location: Location
    type: Optional[Type] = None  # resolved type, set by the checker


@dataclass
class ExprStmt(Stmt):
    expr: "Expr"
    location: Location


@dataclass
class Assign(Stmt):
    """``target op= value``; ``op`` is ``None`` for plain assignment or one
    of ``+ - * /`` for compound forms (desugared by the checker)."""

    target: "Expr"
    op: Optional[str]
    value: "Expr"
    location: Location


@dataclass
class If(Stmt):
    cond: "Expr"
    then: Stmt
    otherwise: Optional[Stmt]
    location: Location


@dataclass
class While(Stmt):
    cond: "Expr"
    body: Stmt
    location: Location


@dataclass
class For(Stmt):
    """A classic C-style for. ``init`` is a statement or None; ``update``
    is a statement or None."""

    init: Optional[Stmt]
    cond: Optional["Expr"]
    update: Optional[Stmt]
    body: Stmt
    location: Location


@dataclass
class Return(Stmt):
    value: Optional["Expr"]
    location: Location


@dataclass
class Break(Stmt):
    location: Location


@dataclass
class Continue(Stmt):
    location: Location


@dataclass
class Throw(Stmt):
    expr: "Expr"
    location: Location


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    location: Location
    type: Optional[Type] = field(default=None, init=False)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class LongLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class DoubleLit(Expr):
    value: float


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Name(Expr):
    name: str
    # Filled by the checker: "local", "param", "field", or "class".
    binding: Optional[str] = None
    # For "field" bindings: the class declaring the field.
    owner: Optional[str] = None


@dataclass
class Unary(Expr):
    op: str  # "-", "!", "~"
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # arithmetic, comparison, logical, bitwise, shifts
    left: Expr
    right: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass
class Cast(Expr):
    target: Type
    expr: Expr
    # Set by the checker when the cast freezes a mutable array into a
    # value array (deep copy) or thaws the reverse way.
    freezes: bool = False
    thaws: bool = False


@dataclass
class Index(Expr):
    array: Expr
    index: Expr


@dataclass
class FieldAccess(Expr):
    """``receiver.name`` — also covers ``array.length`` and static field
    access ``Cls.name`` (the checker rewrites ``receiver`` bindings)."""

    receiver: Expr
    name: str


@dataclass
class Call(Expr):
    """A method call.

    ``receiver`` is ``None`` for unqualified calls (resolved within the
    enclosing class), a :class:`Name` bound to a class for static calls,
    or any expression for instance calls. Builtins (``Math.sqrt``,
    ``Lime.iota``, ``graph.finish``) are resolved by the checker and
    tagged via ``builtin``.
    """

    receiver: Optional[Expr]
    name: str
    args: List[Expr]
    builtin: Optional[str] = None
    resolved: Optional[object] = None  # MethodDecl after checking


@dataclass
class New(Expr):
    class_name: str
    args: List[Expr]


@dataclass
class NewArray(Expr):
    """``new float[n][4]`` — dims are expressions; trailing dims may be
    omitted (``None``) as in Java."""

    elem: Type
    dims: List[Optional[Expr]]


@dataclass
class ArrayInit(Expr):
    """``new int[] { 1, 2, 3 }`` — a one-dimensional initialized array."""

    elem: Type
    values: List[Expr]


@dataclass
class MethodRef(Expr):
    """``Cls.m`` in map/reduce position."""

    class_name: str
    method_name: str
    resolved: Optional[object] = None


@dataclass
class MapExpr(Expr):
    """``Cls.m(bound...) @ source``.

    The worker is applied per element as ``m(elem, *bound_args)``; the
    result is a value array of the worker's return type.
    """

    func: MethodRef
    bound_args: List[Expr]
    source: Expr


@dataclass
class ReduceExpr(Expr):
    """``+! source`` or ``Cls.m ! source``.

    ``op`` is an operator string (``+``, ``*``) or ``None`` when ``func``
    names a binary combinator method.
    """

    op: Optional[str]
    func: Optional[MethodRef]
    source: Expr


@dataclass
class TaskExpr(Expr):
    """A ``task`` expression, in one of three forms:

    - ``task Cls.m`` — static worker (isolated filter when ``m`` is
      ``local`` with value-typed ports);
    - ``task Cls.m(args)`` — *partially applied* static worker: ``args``
      bind the leading parameters at task-creation time, the remaining
      parameter (if any) is the task's input port;
    - ``task Cls(args).m`` — instance worker (stateful task).
    """

    class_name: str
    method_name: str
    ctor_args: Optional[List[Expr]]  # None for static workers
    worker_args: Optional[List[Expr]] = None  # partial application
    resolved: Optional[object] = None

    @property
    def is_static_worker(self):
        return self.ctor_args is None


@dataclass
class ConnectExpr(Expr):
    """``left => right`` — task-graph composition."""

    left: Expr
    right: Expr


# ---------------------------------------------------------------------------
# Traversal helper
# ---------------------------------------------------------------------------


def children(node):
    """Yield the direct child AST nodes of ``node`` (statements and
    expressions only). Used by generic walkers in the analysis passes."""
    if isinstance(node, Block):
        yield from node.stmts
    elif isinstance(node, VarDecl):
        if node.init is not None:
            yield node.init
    elif isinstance(node, ExprStmt):
        yield node.expr
    elif isinstance(node, Assign):
        yield node.target
        yield node.value
    elif isinstance(node, If):
        yield node.cond
        yield node.then
        if node.otherwise is not None:
            yield node.otherwise
    elif isinstance(node, While):
        yield node.cond
        yield node.body
    elif isinstance(node, For):
        if node.init is not None:
            yield node.init
        if node.cond is not None:
            yield node.cond
        if node.update is not None:
            yield node.update
        yield node.body
    elif isinstance(node, Return):
        if node.value is not None:
            yield node.value
    elif isinstance(node, Throw):
        yield node.expr
    elif isinstance(node, Unary):
        yield node.operand
    elif isinstance(node, Binary):
        yield node.left
        yield node.right
    elif isinstance(node, Ternary):
        yield node.cond
        yield node.then
        yield node.otherwise
    elif isinstance(node, Cast):
        yield node.expr
    elif isinstance(node, Index):
        yield node.array
        yield node.index
    elif isinstance(node, FieldAccess):
        yield node.receiver
    elif isinstance(node, Call):
        if node.receiver is not None:
            yield node.receiver
        yield from node.args
    elif isinstance(node, New):
        yield from node.args
    elif isinstance(node, NewArray):
        for dim in node.dims:
            if dim is not None:
                yield dim
    elif isinstance(node, ArrayInit):
        yield from node.values
    elif isinstance(node, MapExpr):
        yield node.func
        yield from node.bound_args
        yield node.source
    elif isinstance(node, ReduceExpr):
        if node.func is not None:
            yield node.func
        yield node.source
    elif isinstance(node, TaskExpr):
        if node.ctor_args is not None:
            yield from node.ctor_args
        if node.worker_args is not None:
            yield from node.worker_args
    elif isinstance(node, ConnectExpr):
        yield node.left
        yield node.right


def walk(node):
    """Depth-first pre-order traversal over statements and expressions."""
    yield node
    for child in children(node):
        yield from walk(child)
